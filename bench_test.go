// Repository-level benchmarks: one family per experiment of EXPERIMENTS.md
// (and hence per reproduced figure/artifact of the paper). Run with
//
//	go test -bench=. -benchmem .
//
// The experiment harness (cmd/crosse-experiments) prints the same
// measurements as formatted tables with parameter sweeps; these benchmarks
// are the testing.B counterparts for regression tracking.
package crosse

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"crosse/internal/core"
	"crosse/internal/dataset"
	"crosse/internal/engine"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sesql"
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// --- shared fixtures ---

func benchFixture(b *testing.B, landfills, extraKB int) *core.Enricher {
	b.Helper()
	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = landfills
	if err := dataset.Populate(db, cfg); err != nil {
		b.Fatal(err)
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		b.Fatal(err)
	}
	ocfg := dataset.DefaultOntology()
	ocfg.ExtraTriples = extraKB
	if _, err := dataset.PopulateOntology(p, "alice", ocfg); err != nil {
		b.Fatal(err)
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		b.Fatal(err)
	}
	return core.New(db, p, nil)
}

// --- E2 / Fig. 5: SESQL parser ---

func BenchmarkSESQLParse(b *testing.B) {
	queries := map[string]string{
		"PlainSQL":        `SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'`,
		"SchemaExtension": `SELECT a, b FROM t ENRICH SCHEMAEXTENSION(a, p)`,
		"BoolExtension":   `SELECT a FROM t ENRICH BOOLSCHEMAEXTENSION(a, p, C)`,
		"ReplaceConstant": `SELECT a FROM t WHERE ${a = X:c1} ENRICH REPLACECONSTANT(c1, X, q)`,
		"ReplaceVariable": `SELECT a FROM t WHERE ${a <> b:c1} ENRICH REPLACEVARIABLE(c1, b, p)`,
		"Example46":       `SELECT e1.l AS x, e2.l AS y FROM t AS e1, t AS e2 WHERE ${e1.a <> e2.a:c1} AND e1.a = e2.a ENRICH REPLACEVARIABLE(c1, e2.a, p)`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sesql.Parse(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3 / Fig. 4: triple store ---

func BenchmarkTripleStoreInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	triples := make([]rdf.Triple, 1<<16)
	for i := range triples {
		triples[i] = rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(10000))),
			P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(20))),
			O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(50000))),
		}
	}
	b.ResetTimer()
	st := rdf.NewStore()
	for i := 0; i < b.N; i++ {
		st.Add(triples[i%len(triples)])
	}
}

func BenchmarkTripleStoreLookup(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < size; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(size/10+1))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(20))),
				O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", i)),
			})
		}
		probe := rdf.Pattern{S: rdf.NewIRI("http://x/s1")}
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st.Match(probe)
			}
		})
	}
}

// --- E4 / Fig. 6: full pipeline per enrichment strategy ---

func BenchmarkPipeline(b *testing.B) {
	enr := benchFixture(b, 200, 0)
	queries := map[string]string{
		"SchemaExtension": `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`,
		"SchemaReplacement": `SELECT name, city FROM landfill
ENRICH SCHEMAREPLACEMENT(city, inCountry)`,
		"BoolSchemaExtension": `SELECT elem_name, landfill_name FROM elem_contained
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`,
		"BoolSchemaReplacement": `SELECT name, city FROM landfill
ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, country_00)`,
		"ReplaceConstant": `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = HazardousWaste:c1}
ENRICH REPLACECONSTANT(c1, HazardousWaste, dangerQuery)`,
		"ReplaceVariable": `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = 'element_000':c1}
ENRICH REPLACEVARIABLE(c1, elem_name, oreAssemblage)`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := enr.Query("alice", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: enrichment vs baselines ---

func BenchmarkEnrichVsBaseline(b *testing.B) {
	enr := benchFixture(b, 200, 0)

	b.Run("PlainSQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enr.DB.Query(`SELECT elem_name, landfill_name FROM elem_contained`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SESQLExtension", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enr.Query("alice", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Hand-written: knowledge manually exported to a relational table.
	if _, err := enr.DB.Exec(`CREATE TABLE danger (elem TEXT, level TEXT)`); err != nil {
		b.Fatal(err)
	}
	view, err := enr.Platform.View("alice")
	if err != nil {
		b.Fatal(err)
	}
	tab, _ := enr.DB.Catalog().Table("danger")
	view.ForEach(rdf.Pattern{P: dataset.IRI("dangerLevel")}, func(t rdf.Triple) bool {
		name := t.S.Value[len(core.DefaultIRIPrefix):]
		_ = tab.Insert([]sqlval.Value{sqlval.NewString(name), sqlval.NewString(t.O.Value)})
		return true
	})
	b.Run("HandWrittenJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enr.DB.Query(`SELECT e.elem_name, e.landfill_name, d.level
FROM elem_contained e LEFT JOIN danger d ON e.elem_name = d.elem`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: KB scaling ---

func BenchmarkKBScaling(b *testing.B) {
	const q = `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`
	for _, extra := range []int{0, 10000, 100000} {
		enr := benchFixture(b, 100, extra)
		b.Run(fmt.Sprintf("extraKB%d", extra), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := enr.Query("alice", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: FDW federation ---

func BenchmarkFDW(b *testing.B) {
	remote := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 500
	if err := dataset.Populate(remote, cfg); err != nil {
		b.Fatal(err)
	}
	local, err := remote.Catalog().Table("elem_contained")
	if err != nil {
		b.Fatal(err)
	}

	srv := fdw.NewServer(remote.Catalog())
	a, c := net.Pipe()
	go srv.ServeConn(a)
	client := fdw.NewClient(c)
	defer client.Close()
	ft, err := client.ForeignTable("elem_contained", "")
	if err != nil {
		b.Fatal(err)
	}
	probe := sqlval.NewString(dataset.LandfillName(0))

	b.Run("LocalScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = local.Scan(func([]sqlval.Value) bool { return true })
		}
	})
	b.Run("RemoteScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ft.Scan(func([]sqlval.Value) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RemotePushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ft.ScanEq("landfill_name", probe, func([]sqlval.Value) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFDWRetryOverhead measures what the resilience envelope
// (per-request deadlines, retry accounting, circuit-breaker bookkeeping)
// costs on the happy path: the same remote scan through a client with the
// full envelope versus one with deadlines and retries disabled. The two
// sub-benchmarks should stay within a few percent of each other — the
// envelope is armed per round trip, not per row.
func BenchmarkFDWRetryOverhead(b *testing.B) {
	remote := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 500
	if err := dataset.Populate(remote, cfg); err != nil {
		b.Fatal(err)
	}
	srv := fdw.NewServer(remote.Catalog())

	scanWith := func(b *testing.B, ccfg fdw.Config) {
		a, c := net.Pipe()
		go srv.ServeConn(a)
		client := fdw.NewClientConfig(c, ccfg)
		defer client.Close()
		ft, err := client.ForeignTable("elem_contained", "")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ft.Scan(func([]sqlval.Value) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("resilient", func(b *testing.B) {
		scanWith(b, fdw.Config{}) // defaults: 30s deadline, 3 attempts, breaker
	})
	b.Run("baseline", func(b *testing.B) {
		scanWith(b, fdw.Config{RequestTimeout: -1, Retry: fdw.RetryPolicy{MaxAttempts: 1}})
	})
}

// --- E8: crowdsourcing fan-out ---

func BenchmarkBeliefImport(b *testing.B) {
	for _, statements := range []int{100, 1000} {
		b.Run(fmt.Sprintf("statements%d", statements), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := kb.NewPlatform()
				_ = p.RegisterUser("expert")
				for j := 0; j < statements; j++ {
					_, _ = p.Insert("expert", rdf.Triple{
						S: dataset.IRI(fmt.Sprintf("e%d", j)),
						P: dataset.IRI("dangerLevel"),
						O: rdf.NewLiteral("high"),
					})
				}
				_ = p.RegisterUser("peer")
				b.StartTimer()
				if _, err := p.ImportFrom("peer", "expert", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManyUserMemory proves the overlay-view memory story: N users
// sharing one corpus. isolatedStores is the pre-overlay architecture (every
// user re-interns and re-indexes the corpus into a private store);
// sharedOverlays is the platform layout (one SharedStore arena holding the
// dictionary and union indexes once, each user a View of encoded TripleKeys
// plus per-view counters). Compare B/op: overlay per-user cost is ID-keyed
// maps only — no term strings, no dictionary — so total bytes must not
// scale with users × dictionary size. bytes/user reports the marginal cost
// of one extra believer of the whole corpus.
func BenchmarkManyUserMemory(b *testing.B) {
	const corpusSize = 10000
	const users = 50
	rng := rand.New(rand.NewSource(5))
	corpus := make([]rdf.Triple, corpusSize)
	for i := range corpus {
		corpus[i] = rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/subject-%d", rng.Intn(corpusSize/4+1))),
			P: rdf.NewIRI(fmt.Sprintf("http://x/predicate-%d", rng.Intn(20))),
			O: rdf.NewIRI(fmt.Sprintf("http://x/object-%d", i)),
		}
	}

	b.Run("isolatedStores", func(b *testing.B) {
		b.ReportAllocs()
		var sink []*rdf.Store
		for i := 0; i < b.N; i++ {
			stores := make([]*rdf.Store, users)
			for u := range stores {
				stores[u] = rdf.NewStore()
				stores[u].AddAll(corpus)
			}
			sink = stores
		}
		if len(sink) != users {
			b.Fatal("missing stores")
		}
	})
	b.Run("sharedOverlays", func(b *testing.B) {
		b.ReportAllocs()
		var sink []*rdf.View
		for i := 0; i < b.N; i++ {
			shared := rdf.NewSharedStore()
			keys := make([]rdf.TripleKey, len(corpus))
			for j, t := range corpus {
				keys[j] = shared.AcquireTriple(t)
			}
			views := make([]*rdf.View, users)
			for u := range views {
				views[u] = shared.NewView()
				views[u].AddBatch(keys)
			}
			sink = views
		}
		if len(sink) != users || sink[0].Len() != sink[0].Count(rdf.Pattern{}) {
			b.Fatal("broken views")
		}
	})
}

// BenchmarkConcurrentEnrich measures multi-user query throughput: goroutines
// run the full SESQL enrichment pipeline against DISTINCT users' overlay
// views of one shared corpus. Each query opens one read transaction over
// (view, arena) and runs lock-free inside, so ns/op should scale down
// near-linearly with GOMAXPROCS (compare -cpu 1,2,4,8).
func BenchmarkConcurrentEnrich(b *testing.B) {
	enr := benchFixture(b, 100, 5000)
	const users = 8
	names := make([]string, users)
	for u := range names {
		names[u] = fmt.Sprintf("peer%d", u)
		if err := enr.Platform.RegisterUser(names[u]); err != nil {
			b.Fatal(err)
		}
		if _, err := enr.Platform.ImportFrom(names[u], "alice", nil); err != nil {
			b.Fatal(err)
		}
	}
	const q = `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		user := names[int(next.Add(1))%users]
		for pb.Next() {
			if _, err := enr.Query(user, q); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// --- E9: relational engine ---

func BenchmarkSQL(b *testing.B) {
	db := engine.Open()
	cfg := dataset.DefaultConfig()
	cfg.Landfills = 800
	if err := dataset.Populate(db, cfg); err != nil {
		b.Fatal(err)
	}
	queries := map[string]string{
		"Scan":      `SELECT COUNT(*) FROM elem_contained`,
		"Filter":    `SELECT COUNT(*) FROM elem_contained WHERE elem_name = 'element_000'`,
		"HashJoin":  `SELECT COUNT(*) FROM elem_contained e, landfill l WHERE e.landfill_name = l.name`,
		"GroupBy":   `SELECT elem_name, COUNT(*), AVG(amount) FROM elem_contained GROUP BY elem_name`,
		"OrderTopK": `SELECT elem_name, amount FROM elem_contained ORDER BY amount DESC LIMIT 10`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sqlBenchDB builds the table set the compiled-executor benchmark
// families share: points (indexed PK + secondary index on k) and two
// dimension tables for the multi-join shapes.
func sqlBenchDB(b *testing.B, rows int) *engine.DB {
	b.Helper()
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE points (id INT PRIMARY KEY, k TEXT, v DOUBLE, n INT);
		CREATE INDEX idx_points_k ON points (k);
		CREATE TABLE dims (id INT PRIMARY KEY, grp TEXT);
		CREATE TABLE grps (grp TEXT, label TEXT);
	`); err != nil {
		b.Fatal(err)
	}
	points, _ := db.Catalog().Table("points")
	dims, _ := db.Catalog().Table("dims")
	grps, _ := db.Catalog().Table("grps")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < rows; i++ {
		if err := points.Insert([]sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewString(fmt.Sprintf("k%d", i%97)),
			sqlval.NewFloat(rng.Float64() * 1000),
			sqlval.NewInt(int64(rng.Intn(1000))),
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < rows/5; i++ {
		if err := dims.Insert([]sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewString(fmt.Sprintf("g%d", i%13)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 13; i++ {
		if err := grps.Insert([]sqlval.Value{
			sqlval.NewString(fmt.Sprintf("g%d", i)),
			sqlval.NewString(fmt.Sprintf("label %d", i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkSQLSelect measures the single-table planner fast paths:
// indexed equality seeks vs full scans, and bounded top-K vs full sort.
func BenchmarkSQLSelect(b *testing.B) {
	db := sqlBenchDB(b, 5000)
	cases := []struct {
		name string
		q    string
		opts sqlexec.Options
	}{
		{"IndexedSeek", `SELECT v FROM points WHERE id = 3000`, sqlexec.Options{}},
		{"FullScanEq", `SELECT v FROM points WHERE id = 3000`, sqlexec.Options{DisableIndexSeek: true}},
		{"SecondarySeek", `SELECT COUNT(*) FROM points WHERE k = 'k42'`, sqlexec.Options{}},
		{"TopK", `SELECT id, v FROM points ORDER BY v DESC LIMIT 10`, sqlexec.Options{}},
		{"FullSort", `SELECT id, v FROM points ORDER BY v DESC LIMIT 10`, sqlexec.Options{DisableTopK: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryOpts(c.q, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLJoin measures the multi-join pipeline: a three-table
// star-ish join, hash vs nested-loop ablation (smaller set — nested loops
// are quadratic), the streaming aggregation over the joined rows, and the
// 100k-row probe join the parallel-scaling sweep tracks (run with
// -cpu 1,4,8: the morsel-driven probe should scale near-linearly).
func BenchmarkSQLJoin(b *testing.B) {
	const multi = `SELECT COUNT(*) FROM points p JOIN dims d ON p.id = d.id JOIN grps g ON d.grp = g.grp WHERE p.n < 500`
	big := sqlBenchDB(b, 5000)
	b.Run("MultiJoinHash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := big.Query(multi); err != nil {
				b.Fatal(err)
			}
		}
	})
	huge := sqlBenchDB(b, 100000)
	b.Run("Hash100k", func(b *testing.B) {
		const q = `SELECT COUNT(*) FROM points p JOIN dims d ON p.id = d.id WHERE p.n < 500`
		for i := 0; i < b.N; i++ {
			if _, err := huge.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	small := sqlBenchDB(b, 600)
	for _, c := range []struct {
		name string
		opts sqlexec.Options
	}{
		{"Hash", sqlexec.Options{}},
		{"NestedLoop", sqlexec.Options{DisableHashJoin: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := small.QueryOpts(multi, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLGroupBy and BenchmarkSQLOrderTopK are the other two
// parallel-scaling families: per-worker aggregation maps merged by
// commutative accumulators, and per-worker bounded heaps merged into one
// top-K. Both run over 100k rows so the morsel path engages at its default
// threshold; compare -cpu 1,4,8.
func BenchmarkSQLGroupBy(b *testing.B) {
	db := sqlBenchDB(b, 100000)
	const q = `SELECT k, COUNT(*), MIN(v), MAX(v) FROM points GROUP BY k`
	b.Run("Merge100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSQLOrderTopK(b *testing.B) {
	db := sqlBenchDB(b, 100000)
	const q = `SELECT id, v FROM points ORDER BY v DESC LIMIT 10`
	b.Run("Heap100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The four families below track the stages parallelised after the initial
// morsel engine landed (see internal/sqlexec/parallel.go and
// internal/sparql/parallel.go): partitioned hash-join builds, deterministic
// SUM/AVG merges, the full final sort (ORDER BY without LIMIT), and SPARQL
// property-path head fan-out. All clear the engines' parallel thresholds;
// compare -cpu 1,4,8 — CI guards that 8-core ns/op never regresses past
// 1-core (cmd/benchjson -guard).

// BenchmarkSQLJoinBuildHeavy drives a small scan into a 100k-row build
// side, so the partitioned parallel hash build dominates the query.
func BenchmarkSQLJoinBuildHeavy(b *testing.B) {
	db := sqlBenchDB(b, 100000)
	const q = `SELECT COUNT(*) FROM dims d JOIN points p ON d.id = p.id`
	b.Run("Build100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLGroupBySum exercises the morsel-structured compensated
// SUM/AVG merge (bit-identical to serial; see aggState.sumFloat).
func BenchmarkSQLGroupBySum(b *testing.B) {
	db := sqlBenchDB(b, 100000)
	const q = `SELECT k, SUM(v), AVG(v) FROM points GROUP BY k`
	b.Run("Sum100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLOrderFullSort is ORDER BY without LIMIT: per-worker sorted
// runs merged by a loser tree instead of one serial 100k-row sort.
func BenchmarkSQLOrderFullSort(b *testing.B) {
	db := sqlBenchDB(b, 100000)
	const q = `SELECT id, v FROM points ORDER BY v DESC`
	b.Run("Sort100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLCompiledPlan isolates what the plan cache buys: a cache hit
// (epoch check + map lookup + streaming execution) vs parse+compile+run
// per call, plus the bare parse+compile cost of a multi-join query. The
// measured query is an indexed point seek — the shape where planning would
// otherwise dominate.
func BenchmarkSQLCompiledPlan(b *testing.B) {
	db := sqlBenchDB(b, 5000)
	const q = `SELECT v, k FROM points WHERE id = 3000`
	parse := func() (*sqlparser.Select, error) {
		st, err := sqlparser.Parse(q)
		if err != nil {
			return nil, err
		}
		return st.(*sqlparser.Select), nil
	}

	b.Run("CachedRun", func(b *testing.B) {
		cache := core.NewQueryCache(0)
		if _, err := cache.SQLSelect(db.Catalog(), q, sqlexec.Options{}, parse); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := cache.SQLSelect(db.Catalog(), q, sqlexec.Options{}, parse)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ParseCompileRun", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := parse()
			if err != nil {
				b.Fatal(err)
			}
			p, err := sqlexec.Compile(db.Catalog(), sel)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ParseCompileOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := parse()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sqlexec.Compile(db.Catalog(), sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MultiJoinCompileOnly", func(b *testing.B) {
		const mj = `SELECT p.id, p.v, g.label FROM points p JOIN dims d ON p.id = d.id JOIN grps g ON d.grp = g.grp WHERE p.v > 500 ORDER BY p.v DESC LIMIT 20`
		for i := 0; i < b.N; i++ {
			st, err := sqlparser.Parse(mj)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sqlexec.Compile(db.Catalog(), st.(*sqlparser.Select)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: SPARQL engine ---

// sparqlBenchStore builds the 20k-triple store the SPARQL benchmark
// families share: 10% hazard facts, a level per element, a subclass chain.
func sparqlBenchStore() *rdf.Store { return sparqlBenchStoreN(20000) }

func sparqlBenchStoreN(elems int) *rdf.Store {
	const ns = core.DefaultIRIPrefix
	st := rdf.NewStore()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < elems; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%selem%d", ns, i))
		if i%10 == 0 {
			st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "isA"), O: rdf.NewIRI(ns + "Hazard")})
		}
		st.Add(rdf.Triple{S: s, P: rdf.NewIRI(ns + "level"),
			O: rdf.NewTypedLiteral(fmt.Sprint(rng.Intn(10)), rdf.XSDInteger)})
	}
	for i := 0; i < 60; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i)),
			P: rdf.NewIRI(ns + "sub"),
			O: rdf.NewIRI(fmt.Sprintf("%sclass%d", ns, i+1)),
		})
	}
	return st
}

const sparqlBenchBGPJoin = `SELECT ?x ?l WHERE { ?x <` + core.DefaultIRIPrefix + `isA> <` + core.DefaultIRIPrefix + `Hazard> . ?x <` + core.DefaultIRIPrefix + `level> ?l }`

func BenchmarkSPARQL(b *testing.B) {
	const ns = core.DefaultIRIPrefix
	st := sparqlBenchStore()
	queries := map[string]string{
		"BGPJoin": sparqlBenchBGPJoin,
		"Filter":  `SELECT ?x WHERE { ?x <` + ns + `level> ?l . FILTER (?l > 7) }`,
		"PathTC":  `SELECT ?c WHERE { <` + ns + `class0> <` + ns + `sub>+ ?c }`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Eval(st, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The parallel-scaling family: a 110k-triple store whose 10k-match head
	// pattern clears the morsel threshold, so -cpu 1,4,8 tracks the
	// parallel BGP pipeline rather than the serial fallback.
	big := sparqlBenchStoreN(100000)
	b.Run("BGPJoin100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sparql.Eval(big, sparqlBenchBGPJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSPARQLPathHead is the property-path fan-out family: the driving
// step is a path whose 10k-pair frontier is materialised once and split
// into morsels, and each worker runs the downstream probe + FILTER
// pipeline over its pairs. DisableReorder pins the path step as the head —
// the cost model would otherwise drive from the plain pattern, and the
// point here is the path-head fan-out. Compare -cpu 1,4,8.
func BenchmarkSPARQLPathHead(b *testing.B) {
	const ns = core.DefaultIRIPrefix
	big := sparqlBenchStoreN(100000)
	q := `SELECT ?x ?c ?l WHERE { ?x <` + ns + `isA>/<` + ns + `sub>* ?c . ?x <` + ns + `level> ?l . FILTER REGEX(STR(?x), "[2468]0$") }`
	parsed, err := sparql.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sparql.Compile(parsed)
	if err != nil {
		b.Fatal(err)
	}
	opts := sparql.Options{DisableReorder: true}
	b.Run("Closure100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := plan.EvalOpts(big, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Bindings) == 0 {
				b.Fatal("no solutions")
			}
		}
	})
}

// BenchmarkSPARQLCompiledPlan isolates what the compiled-plan cache buys on
// the hot enrichment path: Cached evaluates a pre-compiled plan (what a
// QueryCache hit executes — no lexing, parsing or planning), ParsePlanEval
// is the full pipeline per call, and ParseCompile is the planning work
// alone (the part a cache hit skips).
func BenchmarkSPARQLCompiledPlan(b *testing.B) {
	st := sparqlBenchStore()
	q := sparqlBenchBGPJoin

	b.Run("Cached", func(b *testing.B) {
		b.ReportAllocs()
		parsed, err := sparql.Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := sparql.Compile(parsed)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Eval(st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ParsePlanEval", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sparql.Eval(st, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ParseCompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parsed, err := sparql.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sparql.Compile(parsed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSPARQLBGPJoinAllocs contrasts the two result-delivery modes of
// the ID-native executor on the BGP join: Bindings materialises the public
// map-based form per solution, Stream decodes on access and allocates no
// per-solution state — the path internal/core's enrichment pipeline uses.
// Compare allocs/op against the PR 1 term-level engine (~18k allocs/op on
// this query) for the executor's allocation story.
func BenchmarkSPARQLBGPJoinAllocs(b *testing.B) {
	st := sparqlBenchStore()
	parsed, err := sparql.Parse(sparqlBenchBGPJoin)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sparql.Compile(parsed)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("Bindings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := plan.Eval(st)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Bindings) == 0 {
				b.Fatal("no solutions")
			}
		}
	})
	b.Run("Stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := plan.Stream(st, func(s sparql.Solution) bool {
				if t, ok := s.Term(0); ok && t.IsIRI() {
					n++
				}
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("no solutions")
			}
		}
	})
}

// BenchmarkStoreCount measures pattern-cardinality probes across store
// sizes. With the dictionary-encoded store, Count reads index sizes instead
// of enumerating matches, so ns/op must stay flat (O(1)) as the store grows —
// this is the probe the SPARQL join orderer issues once per candidate
// pattern per BGP.
func BenchmarkStoreCount(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < size; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(size/10+1))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(20))),
				O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(size/2+1))),
			})
		}
		s0 := rdf.NewIRI("http://x/s0")
		p0 := rdf.NewIRI("http://x/p0")
		o0 := rdf.NewIRI("http://x/o0")
		pats := []rdf.Pattern{
			{S: s0},               // S??
			{P: p0},               // ?P?
			{O: o0},               // ??O
			{S: s0, P: p0},        // SP?
			{P: p0, O: o0},        // ?PO
			{S: s0, O: o0},        // S?O
			{},                    // ???
			{S: s0, P: p0, O: o0}, // SPO
		}
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st.Count(pats[i%len(pats)])
			}
		})
	}
}

// BenchmarkStoreClone measures the point-in-time snapshot path: Clone
// bulk-copies the encoded indexes under one lock instead of re-inserting
// (and re-hashing) every triple.
func BenchmarkStoreClone(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		st := rdf.NewStore()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < size; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(size/10+1))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(20))),
				O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(size/2+1))),
			})
		}
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c := st.Clone(); c.Len() != st.Len() {
					b.Fatal("clone lost triples")
				}
			}
		})
	}
}

// BenchmarkPipelineCache compares a full SESQL evaluation with the
// compiled-query cache enabled (the default) versus disabled: the delta is
// the lexing/parsing work repeated enrichment queries now skip.
func BenchmarkPipelineCache(b *testing.B) {
	const query = `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`
	b.Run("Cached", func(b *testing.B) {
		enr := benchFixture(b, 200, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enr.Query("alice", query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Uncached", func(b *testing.B) {
		enr := benchFixture(b, 200, 0)
		enr.SetQueryCache(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enr.Query("alice", query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- durability: platform snapshots (cold-start recovery) ---

// snapshotPlatform builds a multi-user platform: one curator owning
// `triples` distinct statements and `users` peers each believing an equal
// slice of the corpus (the crowdsourcing shape a production deployment
// restarts with).
func snapshotPlatform(b *testing.B, triples, users int) *kb.Platform {
	b.Helper()
	p := kb.NewPlatform()
	if err := p.RegisterUser("curator"); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < triples; i++ {
		_, err := p.Insert("curator", rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/subject-%d", rng.Intn(triples/4+1))),
			P: rdf.NewIRI(fmt.Sprintf("http://x/predicate-%d", rng.Intn(24))),
			O: rdf.NewIRI(fmt.Sprintf("http://x/object-%d", i)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for u := 0; u < users; u++ {
		peer := fmt.Sprintf("peer%d", u)
		if err := p.RegisterUser(peer); err != nil {
			b.Fatal(err)
		}
		i := -1
		if _, err := p.ImportFrom(peer, "curator", func(*kb.Statement) bool {
			i++
			return i%users == u
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := dataset.RegisterDangerQuery(p); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSnapshotSave measures writing the semantic platform's binary
// snapshot (arena + views + statements). MB/s is reported via SetBytes.
func BenchmarkSnapshotSave(b *testing.B) {
	for _, triples := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("triples%d", triples), func(b *testing.B) {
			p := snapshotPlatform(b, triples, 4)
			var probe bytes.Buffer
			if err := p.Snapshot(&probe); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(probe.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Snapshot(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotLoad is the cold-start experiment: restoring a
// 100k-triple, multi-user platform from the binary snapshot (bulk ID-level
// load) vs rebuilding it from the reified N-Triples export (parse + Insert
// + Import — the platform's only durability before the snapshot codec).
// The snapshot path must stay ≥ 5× faster; see ROADMAP "Durability".
func BenchmarkSnapshotLoad(b *testing.B) {
	const triples, users = 100000, 4
	p := snapshotPlatform(b, triples, users)

	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	var ntriples bytes.Buffer
	if err := p.Save(&ntriples); err != nil {
		b.Fatal(err)
	}

	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(int64(snap.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			restored, err := kb.Restore(bytes.NewReader(snap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if restored.Shared().Len() != p.Shared().Len() {
				b.Fatalf("restored %d triples, want %d", restored.Shared().Len(), p.Shared().Len())
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.SetBytes(int64(ntriples.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rebuilt, err := kb.Load(bytes.NewReader(ntriples.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if rebuilt.Shared().Len() != p.Shared().Len() {
				b.Fatalf("rebuilt %d triples, want %d", rebuilt.Shared().Len(), p.Shared().Len())
			}
		}
	})
}
