// Package sqlval defines the value domain of the relational engine:
// typed scalar values, NULL, three-valued logic, comparison, and coercion
// rules. Every layer above storage (expressions, executor, SESQL pipeline)
// exchanges rows as []sqlval.Value.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the scalar types supported by the engine.
type Type int

const (
	// TypeNull is the type of the untyped NULL value.
	TypeNull Type = iota
	// TypeInt is a 64-bit signed integer.
	TypeInt
	// TypeFloat is a 64-bit IEEE-754 float.
	TypeFloat
	// TypeString is a UTF-8 string.
	TypeString
	// TypeBool is a boolean.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType maps a SQL type name (as written in DDL) to a Type.
// Unknown names report an error so DDL typos fail loudly.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "SERIAL":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CHARACTER":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return TypeNull, fmt.Errorf("sqlval: unknown type name %q", name)
	}
}

// Value is a single scalar cell. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{typ: TypeInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{typ: TypeFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{typ: TypeString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Type reports the type of the value.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Int returns the integer payload; valid only when Type()==TypeInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; for TypeInt it widens to float64.
func (v Value) Float() float64 {
	if v.typ == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload; valid only when Type()==TypeString.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload; valid only when Type()==TypeBool.
func (v Value) Bool() bool { return v.b }

// String renders the value the way result tables print it.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal that re-parses to the same
// value. Strings are single-quoted with quote doubling. Used when the
// enrichment pipeline generates the final SQL of Fig. 6.
func (v Value) SQLLiteral() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

// Equal reports strict equality (same type class and same payload; ints and
// floats compare numerically). NULL is not Equal to anything, NULL included —
// use IsNull for NULL checks. Mirrors SQL's `=` semantics minus 3VL.
func (v Value) Equal(o Value) bool {
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// numeric reports whether the value belongs to the numeric type class.
func (v Value) numeric() bool { return v.typ == TypeInt || v.typ == TypeFloat }

// ErrIncomparable is returned by Compare for cross-class comparisons.
type ErrIncomparable struct {
	A, B Type
}

func (e *ErrIncomparable) Error() string {
	return fmt.Sprintf("sqlval: cannot compare %s with %s", e.A, e.B)
}

// Compare orders two non-NULL values of the same type class.
// It returns -1, 0, +1. Comparing NULL or values of different classes
// (e.g. TEXT vs INTEGER) is an error; the expression layer turns that into
// a typed query error rather than a silent false.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, &ErrIncomparable{a.typ, b.typ}
	}
	switch {
	case a.numeric() && b.numeric():
		af, bf := a.Float(), b.Float()
		// Compare in int64 space when both are ints to avoid float rounding.
		if a.typ == TypeInt && b.typ == TypeInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			}
			return 0, nil
		}
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	case a.typ == TypeString && b.typ == TypeString:
		return strings.Compare(a.s, b.s), nil
	case a.typ == TypeBool && b.typ == TypeBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, &ErrIncomparable{a.typ, b.typ}
}

// CompareForSort is a total order used by ORDER BY and DISTINCT: NULLs sort
// first, then type classes (numeric < string < bool), then value order.
func CompareForSort(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	ca, cb := classOf(a.typ), classOf(b.typ)
	if ca != cb {
		if ca < cb {
			return -1
		}
		return 1
	}
	c, err := Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}

func classOf(t Type) int {
	switch t {
	case TypeInt, TypeFloat:
		return 0
	case TypeString:
		return 1
	case TypeBool:
		return 2
	default:
		return -1
	}
}

// Coerce converts v to the target column type t, following lenient SQL
// assignment rules: ints widen to float, floats narrow to int when integral,
// numeric/bool to string via formatting, and strings parse to numerics or
// bools when well formed. NULL coerces to every type.
func Coerce(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if v.typ == t {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.typ {
		case TypeFloat:
			if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
				return NewInt(int64(v.f)), nil
			}
			return Null, fmt.Errorf("sqlval: cannot coerce non-integral %v to INTEGER", v.f)
		case TypeString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("sqlval: cannot coerce %q to INTEGER", v.s)
			}
			return NewInt(i), nil
		case TypeBool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case TypeFloat:
		switch v.typ {
		case TypeInt:
			return NewFloat(float64(v.i)), nil
		case TypeString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null, fmt.Errorf("sqlval: cannot coerce %q to DOUBLE", v.s)
			}
			return NewFloat(f), nil
		}
	case TypeString:
		return NewString(v.String()), nil
	case TypeBool:
		switch v.typ {
		case TypeInt:
			return NewBool(v.i != 0), nil
		case TypeString:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "t", "1":
				return NewBool(true), nil
			case "false", "f", "0":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("sqlval: cannot coerce %q to BOOLEAN", v.s)
		}
	}
	return Null, fmt.Errorf("sqlval: cannot coerce %s to %s", v.typ, t)
}

// Tri is SQL three-valued logic: True, False or Unknown.
type Tri int

// Three-valued logic constants.
const (
	False Tri = iota
	True
	Unknown
)

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is 3VL conjunction.
func (t Tri) And(o Tri) Tri {
	switch {
	case t == False || o == False:
		return False
	case t == Unknown || o == Unknown:
		return Unknown
	default:
		return True
	}
}

// Or is 3VL disjunction.
func (t Tri) Or(o Tri) Tri {
	switch {
	case t == True || o == True:
		return True
	case t == Unknown || o == Unknown:
		return Unknown
	default:
		return False
	}
}

// Not is 3VL negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Value converts the Tri back to a SQL value (Unknown ⇒ NULL).
func (t Tri) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// String implements fmt.Stringer for diagnostics.
func (t Tri) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}
