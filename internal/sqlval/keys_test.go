package sqlval

import (
	"math"
	"testing"
)

func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(0), NewInt(2), NewInt(-7), NewInt(math.MaxInt64),
		NewFloat(0), NewFloat(2), NewFloat(2.5), NewFloat(-7), NewFloat(1e21),
		NewString(""), NewString("2"), NewString("true"), NewString("a|b"),
		NewBool(true), NewBool(false),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := string(AppendKey(nil, v))
		if prev, dup := seen[k]; dup {
			t.Errorf("AppendKey collision: %v (%s) and %v (%s) → %q",
				prev, prev.Type(), v, v.Type(), k)
		}
		seen[k] = v
	}
	// Raw keys keep INTEGER 2 and DOUBLE 2.0 distinct (DISTINCT semantics).
	if string(AppendKey(nil, NewInt(2))) == string(AppendKey(nil, NewFloat(2))) {
		t.Error("AppendKey must not fold int and float")
	}
}

// Concatenated keys of a tuple must stay injective: the same bytes must
// not arise from a different split of string content.
func TestAppendKeyTupleInjective(t *testing.T) {
	tuples := [][]Value{
		{NewString("ab"), NewString("c")},
		{NewString("a"), NewString("bc")},
		{NewString("as2:i1"), Null},
		{NewString("as2:"), NewInt(1)},
		{NewString(""), NewString("")},
		{NewString("")},
		{NewInt(12), NewInt(3)},
		{NewInt(1), NewInt(23)},
	}
	seen := map[string]int{}
	for i, tup := range tuples {
		var key []byte
		for _, v := range tup {
			key = AppendKey(key, v)
		}
		if j, dup := seen[string(key)]; dup {
			t.Errorf("tuple %d and %d share key %q", j, i, key)
		}
		seen[string(key)] = i
	}
}

func TestAppendJoinKeyMatchesCompare(t *testing.T) {
	vals := []Value{
		NewInt(0), NewInt(2), NewInt(-7),
		NewFloat(0), NewFloat(2), NewFloat(2.5), NewFloat(-7), NewFloat(1e21),
		NewString("2"), NewString("x"),
		NewBool(true), NewBool(false),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka := string(AppendJoinKey(nil, a))
			kb := string(AppendJoinKey(nil, b))
			c, err := Compare(a, b)
			equal := err == nil && c == 0
			if equal != (ka == kb) {
				t.Errorf("join key for %v (%s) vs %v (%s): keyEq=%v compareEq=%v",
					a, a.Type(), b, b.Type(), ka == kb, equal)
			}
		}
	}
}

func TestAppendKeyReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	k1 := AppendKey(buf, NewString("hello"))
	if &k1[0] != &buf[:1][0] {
		t.Error("AppendKey should write into the provided buffer")
	}
}
