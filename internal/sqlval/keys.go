package sqlval

import "strconv"

// keys.go — allocation-free comparable encodings of Values. The executor
// uses these everywhere a value becomes a hash-map key (DISTINCT rows,
// GROUP BY keys, hash-join build tables, DISTINCT aggregates, storage-level
// hash indexes). The encodings are append-style so callers can reuse one
// scratch buffer per operator and probe maps with the zero-copy
// map[string(...)] conversion; only storing a *new* key allocates.

// AppendKey appends a type-tagged encoding of v to dst and returns the
// extended slice. The encoding is injective over the full value domain:
// two Values produce the same bytes iff they have the same type and
// payload (so INTEGER 2 and DOUBLE 2.0 encode differently — the rule
// DISTINCT and GROUP BY follow). Every encoding is self-delimiting
// (strings are length-prefixed; numeric renderings never contain a tag
// byte), so concatenating the keys of a value tuple is itself injective —
// DISTINCT rows and multi-expression GROUP BY keys need no separator.
func AppendKey(dst []byte, v Value) []byte {
	switch v.typ {
	case TypeNull:
		return append(dst, 'n')
	case TypeInt:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.i, 10)
	case TypeFloat:
		dst = append(dst, 'd')
		f := v.f
		if f == 0 {
			f = 0 // fold -0.0 into +0.0: Compare treats them as equal
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	case TypeString:
		dst = append(dst, 's')
		dst = strconv.AppendUint(dst, uint64(len(v.s)), 10)
		dst = append(dst, ':')
		return append(dst, v.s...)
	case TypeBool:
		if v.b {
			return append(dst, 'b', '1')
		}
		return append(dst, 'b', '0')
	default:
		return append(dst, '?')
	}
}

// AppendJoinKey appends the equi-join encoding of v: like AppendKey but
// with the numeric types folded into one bucket, so INTEGER 2 and DOUBLE
// 2.0 produce the same key — mirroring Compare, under which they are
// equal. Numerics encode canonically as the float64 they widen to
// (rendering v.Float(), -0.0 folded into +0.0), which guarantees
// Compare-equal values always share a key. The converse can fail for
// integers beyond 2^53 (distinct ints that widen to the same float64
// collide in one bucket), so hash-join probes must re-verify candidates
// with Compare — the bucket is an accelerator, not the equality test.
func AppendJoinKey(dst []byte, v Value) []byte {
	switch v.typ {
	case TypeInt, TypeFloat:
		dst = append(dst, 'N')
		f := v.Float()
		if f == 0 {
			f = 0
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	default:
		return AppendKey(dst, v)
	}
}
