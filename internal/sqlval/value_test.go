package sqlval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull:   "NULL",
		TypeInt:    "INTEGER",
		TypeFloat:  "DOUBLE",
		TypeString: "TEXT",
		TypeBool:   "BOOLEAN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	ok := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "BigInt": TypeInt, "serial": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat, "numeric": TypeFloat,
		"text": TypeString, "VARCHAR": TypeString, "char": TypeString,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	}
	for name, want := range ok {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Type() != TypeNull {
		t.Error("zero Value must be NULL")
	}
	if !Null.IsNull() {
		t.Error("Null must be NULL")
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Float widens int")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() {
		t.Error("Bool accessor")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(5), "5"},
		{NewString("a'b"), "'a''b'"},
		{NewString("plain"), "'plain'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.SQLLiteral(); got != c.want {
			t.Errorf("SQLLiteral() = %q, want %q", got, c.want)
		}
	}
}

func TestCompareNumeric(t *testing.T) {
	c, err := Compare(NewInt(1), NewInt(2))
	if err != nil || c != -1 {
		t.Errorf("1<2: got %d, %v", c, err)
	}
	c, err = Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Errorf("2==2.0: got %d, %v", c, err)
	}
	c, err = Compare(NewFloat(3.5), NewInt(3))
	if err != nil || c != 1 {
		t.Errorf("3.5>3: got %d, %v", c, err)
	}
	// Large int64 precision preserved in int-int path.
	big := int64(1) << 62
	c, err = Compare(NewInt(big), NewInt(big+1))
	if err != nil || c != -1 {
		t.Errorf("big ints compare exactly: got %d, %v", c, err)
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	c, err := Compare(NewString("a"), NewString("b"))
	if err != nil || c != -1 {
		t.Errorf("a<b failed: %d %v", c, err)
	}
	c, err = Compare(NewBool(false), NewBool(true))
	if err != nil || c != -1 {
		t.Errorf("false<true failed: %d %v", c, err)
	}
	c, err = Compare(NewBool(true), NewBool(true))
	if err != nil || c != 0 {
		t.Errorf("true==true failed: %d %v", c, err)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("NULL comparison must error")
	}
	if _, err := Compare(NewString("x"), NewInt(1)); err == nil {
		t.Error("cross-class comparison must error")
	}
	var ic *ErrIncomparable
	_, err := Compare(NewString("x"), NewBool(true))
	if err == nil {
		t.Fatal("expected error")
	}
	var ok bool
	ic, ok = err.(*ErrIncomparable)
	if !ok || ic.A != TypeString || ic.B != TypeBool {
		t.Errorf("error detail wrong: %v", err)
	}
}

func TestEqual(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2)) {
		t.Error("2 == 2.0")
	}
	if Null.Equal(Null) {
		t.Error("NULL must not Equal NULL")
	}
	if NewString("a").Equal(NewInt(1)) {
		t.Error("cross-class Equal must be false")
	}
}

func TestCompareForSortTotalOrder(t *testing.T) {
	// NULL < numerics < strings < bools
	ordered := []Value{Null, NewInt(-1), NewFloat(0.5), NewInt(7), NewString("a"), NewString("b"), NewBool(false), NewBool(true)}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := CompareForSort(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Equal-rank pairs (NULL/NULL) compare 0; distinct ranks must match.
			if (want != 0 && got != want) || (want == 0 && got != 0) {
				t.Errorf("CompareForSort(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewFloat(3.0), TypeInt)
	if err != nil || v.Int() != 3 {
		t.Errorf("3.0→INT: %v %v", v, err)
	}
	if _, err := Coerce(NewFloat(3.5), TypeInt); err == nil {
		t.Error("3.5→INT must fail")
	}
	v, err = Coerce(NewString(" 42 "), TypeInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("' 42 '→INT: %v %v", v, err)
	}
	v, err = Coerce(NewInt(5), TypeFloat)
	if err != nil || v.Float() != 5.0 {
		t.Errorf("5→FLOAT: %v %v", v, err)
	}
	v, err = Coerce(NewString("2.5"), TypeFloat)
	if err != nil || v.Float() != 2.5 {
		t.Errorf("'2.5'→FLOAT: %v %v", v, err)
	}
	v, err = Coerce(NewInt(0), TypeBool)
	if err != nil || v.Bool() {
		t.Errorf("0→BOOL: %v %v", v, err)
	}
	v, err = Coerce(NewString("true"), TypeBool)
	if err != nil || !v.Bool() {
		t.Errorf("'true'→BOOL: %v %v", v, err)
	}
	if _, err := Coerce(NewString("maybe"), TypeBool); err == nil {
		t.Error("'maybe'→BOOL must fail")
	}
	v, err = Coerce(NewBool(true), TypeString)
	if err != nil || v.Str() != "true" {
		t.Errorf("true→TEXT: %v %v", v, err)
	}
	v, err = Coerce(Null, TypeInt)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL coerces to anything: %v %v", v, err)
	}
	if _, err := Coerce(NewFloat(math.Inf(1)), TypeInt); err == nil {
		t.Error("Inf→INT must fail")
	}
}

func TestCoerceIdempotent(t *testing.T) {
	f := func(i int64, s string, b bool) bool {
		for _, v := range []Value{NewInt(i), NewString(s), NewBool(b)} {
			once, err := Coerce(v, v.Type())
			if err != nil {
				return false
			}
			twice, err := Coerce(once, v.Type())
			if err != nil {
				return false
			}
			if !once.IsNull() && !once.Equal(twice) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(NewInt(a), NewInt(b))
		y, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		x, err1 := Compare(NewString(a), NewString(b))
		y, err2 := Compare(NewString(b), NewString(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTriTruthTables(t *testing.T) {
	vals := []Tri{True, False, Unknown}
	// Kleene K3 tables.
	and := map[[2]Tri]Tri{
		{True, True}: True, {True, False}: False, {True, Unknown}: Unknown,
		{False, True}: False, {False, False}: False, {False, Unknown}: False,
		{Unknown, True}: Unknown, {Unknown, False}: False, {Unknown, Unknown}: Unknown,
	}
	or := map[[2]Tri]Tri{
		{True, True}: True, {True, False}: True, {True, Unknown}: True,
		{False, True}: True, {False, False}: False, {False, Unknown}: Unknown,
		{Unknown, True}: True, {Unknown, False}: Unknown, {Unknown, Unknown}: Unknown,
	}
	for _, a := range vals {
		for _, b := range vals {
			if got := a.And(b); got != and[[2]Tri{a, b}] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[[2]Tri{a, b}])
			}
			if got := a.Or(b); got != or[[2]Tri{a, b}] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[[2]Tri{a, b}])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

func TestTriValueRoundTrip(t *testing.T) {
	if !True.Value().Bool() || False.Value().Bool() || !Unknown.Value().IsNull() {
		t.Error("Tri.Value mapping wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf mapping wrong")
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := Tri(x%3), Tri(y%3)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
