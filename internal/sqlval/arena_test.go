package sqlval

import "testing"

func TestRowArena(t *testing.T) {
	a := NewRowArena(3)
	r1 := a.Next()
	if len(r1) != 3 || cap(r1) != 3 {
		t.Fatalf("len=%d cap=%d, want 3/3", len(r1), cap(r1))
	}
	r1[0] = NewInt(1)
	r2 := a.Copy([]Value{NewInt(7), NewString("x"), Null})
	// Rows must be zeroed and independent: writing r2 cannot touch r1, and
	// appending to a row reallocates instead of clobbering a neighbour.
	if r1[1] != Null || r1[0] != NewInt(1) {
		t.Fatalf("neighbour row corrupted: %v", r1)
	}
	if r2[0] != NewInt(7) || r2[1] != NewString("x") {
		t.Fatalf("Copy = %v", r2)
	}
	grown := append(r1, NewInt(9))
	r3 := a.Next()
	if r3[0] != Null {
		t.Fatalf("append into arena row leaked into the next row: %v", r3)
	}
	_ = grown

	// Cross block boundaries: rows stay valid and distinct.
	rows := make([][]Value, 0, arenaBlockRows*2)
	for i := 0; i < arenaBlockRows*2; i++ {
		r := a.Next()
		r[0] = NewInt(int64(i))
		rows = append(rows, r)
	}
	for i, r := range rows {
		if r[0] != NewInt(int64(i)) {
			t.Fatalf("row %d = %v", i, r[0])
		}
	}

	// Zero width is a nil row, not a panic.
	if r := NewRowArena(0).Next(); r != nil {
		t.Fatalf("zero-width Next = %v", r)
	}
}
