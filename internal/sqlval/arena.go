package sqlval

// RowArena hands out fixed-width row slices carved from large shared
// blocks, so materialising n rows costs O(n/block) allocations instead of
// one per row. The per-row slices are full-capacity sub-slices: appending
// to one reallocates rather than clobbering a neighbour. Rows stay valid
// for as long as the caller keeps them; the arena itself is cheap enough
// to be created per query. Not safe for concurrent use.
type RowArena struct {
	width int
	buf   []Value
	used  int
	block int // rows per block; grows geometrically so small results stay small
}

// Block sizing: the first block is small (a one-row SELECT should not pay
// for hundreds of rows), then doubles per block up to the cap, where the
// per-row allocation amortisation dominates.
const (
	arenaFirstBlockRows = 16
	arenaBlockRows      = 512
)

// NewRowArena returns an arena producing rows of the given width.
func NewRowArena(width int) *RowArena {
	return &RowArena{width: width, block: arenaFirstBlockRows}
}

// Next returns a zeroed row of the arena's width.
func (a *RowArena) Next() []Value {
	if a.width == 0 {
		return nil
	}
	if a.used+a.width > len(a.buf) {
		a.buf = make([]Value, a.block*a.width)
		a.used = 0
		if a.block < arenaBlockRows {
			a.block *= 2
		}
	}
	r := a.buf[a.used : a.used+a.width : a.used+a.width]
	a.used += a.width
	return r
}

// Copy returns an arena-backed copy of row (which must have the arena's
// width).
func (a *RowArena) Copy(row []Value) []Value {
	r := a.Next()
	copy(r, row)
	return r
}
