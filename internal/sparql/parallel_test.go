package sparql

// parallel_test.go — regression tests for the morsel-driven parallel path
// (parallel.go). The ordered contract under test: ORDER BY output — and
// any OFFSET/LIMIT window over it — is byte-identical at every
// Parallelism setting, ties included. The executor guarantees this by
// making the sort a total order (full-row ID tiebreak, see emitSorted),
// so low-cardinality order keys are exactly what these queries use.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

// TestParallelOrderedDeterminism runs 100 randomised ORDER BY (+ OFFSET /
// LIMIT) queries over a tie-heavy store and requires the parallel results
// at 2 and 4 workers to be byte-identical to the forced-serial result.
func TestParallelOrderedDeterminism(t *testing.T) {
	forceParallel(t)
	const ns = "http://x/"
	p := func(name string) rdf.Term { return rdf.NewIRI(ns + name) }
	st := rdf.NewStore()
	// Seven rank values and five zones over 300 subjects: every sort key
	// ties heavily, so any order instability between the serial and
	// parallel paths shows up immediately.
	for i := 0; i < 300; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i))
		st.Add(rdf.Triple{S: s, P: p("rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i%7), rdf.XSDInteger)})
		st.Add(rdf.Triple{S: s, P: p("zone"), O: rdf.NewIRI(fmt.Sprintf("%szone%d", ns, i%5))})
		if i%3 == 0 {
			st.Add(rdf.Triple{S: s, P: p("tag"), O: rdf.NewLiteral(fmt.Sprintf("t%d", i%4))})
		}
	}

	rng := rand.New(rand.NewSource(59))
	projections := []string{"?x ?r", "?r ?z", "?x ?r ?z", "?z", "?r ?t"}
	orders := []string{
		" ORDER BY ?r",
		" ORDER BY DESC(?r)",
		" ORDER BY ?z ?r",
		" ORDER BY DESC(?z) ?r",
		" ORDER BY ?t ?r",
	}
	for q := 0; q < 100; q++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		if rng.Intn(3) == 0 {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(projections[rng.Intn(len(projections))])
		b.WriteString(fmt.Sprintf(" WHERE { ?x <%srank> ?r . ?x <%szone> ?z .", ns, ns))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" OPTIONAL { ?x <%stag> ?t }", ns))
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" FILTER (?r > 1)")
		}
		b.WriteString(" }")
		b.WriteString(orders[rng.Intn(len(orders))])
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(25)+1))
			if rng.Intn(2) == 0 {
				b.WriteString(fmt.Sprintf(" OFFSET %d", rng.Intn(10)))
			}
		}
		text := b.String()

		qu, err := Parse(text)
		if err != nil {
			t.Fatalf("generated unparseable query %q: %v", text, err)
		}
		base, err := EvalQueryOpts(st, qu, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%q serial: %v", text, err)
		}
		want := renderSeq(base.Bindings, base.Vars)
		for _, par := range []int{2, 4} {
			got, err := EvalQueryOpts(st, qu, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%q parallelism %d: %v", text, par, err)
			}
			if g := renderSeq(got.Bindings, got.Vars); !reflect.DeepEqual(g, want) {
				t.Fatalf("%q: parallelism %d diverges from serial\nserial:   %v\nparallel: %v",
					text, par, want, g)
			}
		}
	}
}

// TestParallelStreamLimit pins the streaming path: StreamOpts at higher
// parallelism honours LIMIT/OFFSET and early consumer stops exactly like
// the serial stream.
func TestParallelStreamLimit(t *testing.T) {
	forceParallel(t)
	const ns = "http://x/"
	st := rdf.NewStore()
	for i := 0; i < 200; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i)),
			P: rdf.NewIRI(ns + "rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i%9), rdf.XSDInteger),
		})
	}
	for _, text := range []string{
		fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank> ?r } LIMIT 17", ns),
		fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank> ?r } OFFSET 5 LIMIT 17", ns),
		fmt.Sprintf("SELECT DISTINCT ?r WHERE { ?x <%srank> ?r } LIMIT 4", ns),
	} {
		qu, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Compile(qu)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 4} {
			n := 0
			if err := pl.StreamOpts(st, Options{Parallelism: par}, func(Solution) bool {
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := qu.Limit
			if want > 200 {
				want = 200
			}
			if n != want {
				t.Fatalf("%q parallelism %d: streamed %d solutions, want %d", text, par, n, want)
			}
			// Early stop after 3 solutions.
			n = 0
			if err := pl.StreamOpts(st, Options{Parallelism: par}, func(Solution) bool {
				n++
				return n < 3
			}); err != nil {
				t.Fatal(err)
			}
			if n != 3 {
				t.Fatalf("%q parallelism %d: early stop streamed %d, want 3", text, par, n)
			}
		}
	}
}
