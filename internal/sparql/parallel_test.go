package sparql

// parallel_test.go — regression tests for the morsel-driven parallel path
// (parallel.go). The ordered contract under test: ORDER BY output — and
// any OFFSET/LIMIT window over it — is byte-identical at every
// Parallelism setting, ties included. The executor guarantees this by
// making the sort a total order (full-row ID tiebreak, see emitSorted),
// so low-cardinality order keys are exactly what these queries use.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

// TestParallelOrderedDeterminism runs 100 randomised ORDER BY (+ OFFSET /
// LIMIT) queries over a tie-heavy store and requires the parallel results
// at 2 and 4 workers to be byte-identical to the forced-serial result.
func TestParallelOrderedDeterminism(t *testing.T) {
	forceParallel(t)
	const ns = "http://x/"
	p := func(name string) rdf.Term { return rdf.NewIRI(ns + name) }
	st := rdf.NewStore()
	// Seven rank values and five zones over 300 subjects: every sort key
	// ties heavily, so any order instability between the serial and
	// parallel paths shows up immediately.
	for i := 0; i < 300; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i))
		st.Add(rdf.Triple{S: s, P: p("rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i%7), rdf.XSDInteger)})
		st.Add(rdf.Triple{S: s, P: p("zone"), O: rdf.NewIRI(fmt.Sprintf("%szone%d", ns, i%5))})
		if i%3 == 0 {
			st.Add(rdf.Triple{S: s, P: p("tag"), O: rdf.NewLiteral(fmt.Sprintf("t%d", i%4))})
		}
	}

	rng := rand.New(rand.NewSource(59))
	projections := []string{"?x ?r", "?r ?z", "?x ?r ?z", "?z", "?r ?t"}
	orders := []string{
		" ORDER BY ?r",
		" ORDER BY DESC(?r)",
		" ORDER BY ?z ?r",
		" ORDER BY DESC(?z) ?r",
		" ORDER BY ?t ?r",
	}
	for q := 0; q < 100; q++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		if rng.Intn(3) == 0 {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(projections[rng.Intn(len(projections))])
		b.WriteString(fmt.Sprintf(" WHERE { ?x <%srank> ?r . ?x <%szone> ?z .", ns, ns))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" OPTIONAL { ?x <%stag> ?t }", ns))
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" FILTER (?r > 1)")
		}
		b.WriteString(" }")
		b.WriteString(orders[rng.Intn(len(orders))])
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(25)+1))
			if rng.Intn(2) == 0 {
				b.WriteString(fmt.Sprintf(" OFFSET %d", rng.Intn(10)))
			}
		}
		text := b.String()

		qu, err := Parse(text)
		if err != nil {
			t.Fatalf("generated unparseable query %q: %v", text, err)
		}
		base, err := EvalQueryOpts(st, qu, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%q serial: %v", text, err)
		}
		want := renderSeq(base.Bindings, base.Vars)
		for _, par := range []int{2, 4} {
			got, err := EvalQueryOpts(st, qu, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%q parallelism %d: %v", text, par, err)
			}
			if g := renderSeq(got.Bindings, got.Vars); !reflect.DeepEqual(g, want) {
				t.Fatalf("%q: parallelism %d diverges from serial\nserial:   %v\nparallel: %v",
					text, par, want, g)
			}
		}
	}
}

// TestParallelPathHeadDeterminism pins the property-path head fan-out.
// Path closure enumeration is map-order nondeterministic even serially, so
// unordered queries compare as multisets; under ORDER BY the total-order
// sort (full-row tiebreak) makes the output byte-identical at every
// Parallelism setting and the comparison is exact. Each parallel run must
// actually take the parallel path (empty ParallelFallback) rather than
// silently running serial.
func TestParallelPathHeadDeterminism(t *testing.T) {
	forceParallel(t)
	const ns = "http://x/"
	p := func(name string) rdf.Term { return rdf.NewIRI(ns + name) }
	st := rdf.NewStore()
	// A category tree (cat0..cat9, subClassOf chains of length i%4) under
	// 240 members: the memberOf/subClassOf* frontier is large and
	// duplicate-heavy, so morsel boundaries cut through repeated pairs.
	for c := 0; c < 10; c++ {
		for d := 0; d < c%4; d++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%scat%d_%d", ns, c, d)),
				P: p("subClassOf"),
				O: rdf.NewIRI(fmt.Sprintf("%scat%d_%d", ns, c, d+1)),
			})
		}
	}
	for i := 0; i < 240; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i))
		st.Add(rdf.Triple{S: s, P: p("memberOf"), O: rdf.NewIRI(fmt.Sprintf("%scat%d_0", ns, i%10))})
		st.Add(rdf.Triple{S: s, P: p("rank"), O: rdf.NewTypedLiteral(fmt.Sprint(i%5), rdf.XSDInteger)})
	}
	for _, tc := range []struct {
		text    string
		ordered bool // exact sequence compare; else sorted multiset
		count   int  // when > 0, compare size only (LIMIT over unordered)
	}{
		{text: fmt.Sprintf("SELECT ?x ?c WHERE { ?x <%smemberOf>/<%ssubClassOf>* ?c }", ns, ns)},
		{text: fmt.Sprintf("SELECT DISTINCT ?c WHERE { ?x <%smemberOf>/<%ssubClassOf>+ ?c }", ns, ns)},
		{text: fmt.Sprintf("SELECT ?x ?c ?r WHERE { ?x <%smemberOf>/<%ssubClassOf>* ?c . ?x <%srank> ?r } ORDER BY ?r ?c", ns, ns, ns), ordered: true},
		{text: fmt.Sprintf("SELECT ?x ?c WHERE { ?x <%smemberOf>/<%ssubClassOf>* ?c } LIMIT 40", ns, ns), count: 40},
	} {
		qu, err := Parse(tc.text)
		if err != nil {
			t.Fatal(err)
		}
		base, err := EvalQueryOpts(st, qu, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%q serial: %v", tc.text, err)
		}
		if base.ParallelFallback != "parallelism=1" {
			t.Fatalf("%q serial fallback = %q", tc.text, base.ParallelFallback)
		}
		if len(base.Bindings) == 0 {
			t.Fatalf("%q: empty fixture result", tc.text)
		}
		want := renderSeq(base.Bindings, base.Vars)
		if !tc.ordered {
			sort.Strings(want)
		}
		for _, par := range []int{2, 4} {
			got, err := EvalQueryOpts(st, qu, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%q parallelism %d: %v", tc.text, par, err)
			}
			if got.ParallelFallback != "" {
				t.Fatalf("%q parallelism %d fell back: %q", tc.text, par, got.ParallelFallback)
			}
			if tc.count > 0 {
				if len(got.Bindings) != tc.count {
					t.Fatalf("%q parallelism %d: %d solutions, want %d", tc.text, par, len(got.Bindings), tc.count)
				}
				continue
			}
			g := renderSeq(got.Bindings, got.Vars)
			if !tc.ordered {
				sort.Strings(g)
			}
			if !reflect.DeepEqual(g, want) {
				t.Fatalf("%q: parallelism %d diverges from serial\nserial:   %v\nparallel: %v",
					tc.text, par, want, g)
			}
		}
	}
}

// TestParallelFallbackReasons pins the fallback taxonomy: every serial
// execution names why it did not parallelise, and parallel executions
// report an empty reason — on both the Eval and the streaming APIs.
func TestParallelFallbackReasons(t *testing.T) {
	const ns = "http://x/"
	st := rdf.NewStore()
	for i := 0; i < 100; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i)),
			P: rdf.NewIRI(ns + "rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i%9), rdf.XSDInteger),
		})
	}
	sel := fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank> ?r }", ns)
	pathSel := fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank>+ ?r }", ns)

	// Default thresholds: 100 matches is below parMinMatches.
	for _, tc := range []struct {
		query string
		opts  Options
		want  string
	}{
		{sel, Options{Parallelism: 1}, "parallelism=1"},
		{sel, Options{Parallelism: 4}, "driving pattern below parallel threshold"},
		{pathSel, Options{Parallelism: 4}, "driving path frontier below parallel threshold"},
		{fmt.Sprintf("ASK { ?x <%srank> ?r }", ns), Options{Parallelism: 4}, "ask query"},
		{sel + " LIMIT 0", Options{Parallelism: 4}, "limit 0"},
	} {
		res, err := EvalOpts(st, tc.query, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.ParallelFallback != tc.want {
			t.Errorf("%q opts %+v: fallback %q, want %q", tc.query, tc.opts, res.ParallelFallback, tc.want)
		}
	}

	// Forced thresholds: the same SELECT parallelises, reason empty; the
	// streaming API reports the same facts.
	forceParallel(t)
	qu, err := Parse(sel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalQueryOpts(st, qu, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelFallback != "" {
		t.Errorf("eligible query fell back: %q", res.ParallelFallback)
	}
	pl, err := Compile(qu)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pl.StreamInfoOpts(st, Options{Parallelism: 4}, func(Solution) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if info.ParallelFallback != "" {
		t.Errorf("eligible stream fell back: %q", info.ParallelFallback)
	}
	info, err = pl.StreamInfoOpts(st, Options{Parallelism: 1}, func(Solution) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if info.ParallelFallback != "parallelism=1" {
		t.Errorf("serial stream fallback = %q", info.ParallelFallback)
	}
}

// TestParallelStreamLimit pins the streaming path: StreamOpts at higher
// parallelism honours LIMIT/OFFSET and early consumer stops exactly like
// the serial stream.
func TestParallelStreamLimit(t *testing.T) {
	forceParallel(t)
	const ns = "http://x/"
	st := rdf.NewStore()
	for i := 0; i < 200; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%se%03d", ns, i)),
			P: rdf.NewIRI(ns + "rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i%9), rdf.XSDInteger),
		})
	}
	for _, text := range []string{
		fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank> ?r } LIMIT 17", ns),
		fmt.Sprintf("SELECT ?x ?r WHERE { ?x <%srank> ?r } OFFSET 5 LIMIT 17", ns),
		fmt.Sprintf("SELECT DISTINCT ?r WHERE { ?x <%srank> ?r } LIMIT 4", ns),
	} {
		qu, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Compile(qu)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 4} {
			n := 0
			if err := pl.StreamOpts(st, Options{Parallelism: par}, func(Solution) bool {
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := qu.Limit
			if want > 200 {
				want = 200
			}
			if n != want {
				t.Fatalf("%q parallelism %d: streamed %d solutions, want %d", text, par, n, want)
			}
			// Early stop after 3 solutions.
			n = 0
			if err := pl.StreamOpts(st, Options{Parallelism: par}, func(Solution) bool {
				n++
				return n < 3
			}); err != nil {
				t.Fatal(err)
			}
			if n != 3 {
				t.Fatalf("%q parallelism %d: early stop streamed %d, want 3", text, par, n)
			}
		}
	}
}
