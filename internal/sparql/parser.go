package sparql

import (
	"fmt"
	"strings"

	"crosse/internal/rdf"
)

// Parse parses a SPARQL query text into a Query.
func Parse(src string) (*Query, error) {
	p := &parser{lex: lexer{in: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, fmt.Errorf("sparql: unexpected %s after query", p.tok)
	}
	return q, nil
}

type parser struct {
	lex      lexer
	tok      token
	prefixes map[string]string
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// kw reports whether the current token is the given keyword (case
// insensitive identifier).
func (p *parser) kw(word string) bool {
	return p.tok.kind == tIdent && strings.EqualFold(p.tok.text, word)
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("sparql: expected %s, got %s", word, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return fmt.Errorf("sparql: expected %s, got %s", what, p.tok)
	}
	return p.advance()
}

func (p *parser) query() (*Query, error) {
	// PREFIX declarations.
	for p.kw("PREFIX") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tPrefixed && p.tok.kind != tIdent {
			return nil, fmt.Errorf("sparql: expected prefix name, got %s", p.tok)
		}
		name := strings.TrimSuffix(p.tok.text, ":")
		// The lexer may deliver "pfx" tIdent followed by ":"… keep it
		// simple: prefixed token "pfx:" or ident then expect IRI next.
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tIRI {
			return nil, fmt.Errorf("sparql: expected IRI for prefix %q, got %s", name, p.tok)
		}
		p.prefixes[name] = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	q := &Query{Limit: -1}
	switch {
	case p.kw("SELECT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.kw("DISTINCT") {
			q.Distinct = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		switch {
		case p.tok.kind == tStar:
			q.Star = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.kind == tVar:
			for p.tok.kind == tVar {
				q.Vars = append(q.Vars, p.tok.text)
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("sparql: expected projection, got %s", p.tok)
		}
	case p.kw("ASK"):
		q.Form = Ask
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sparql: expected SELECT or ASK, got %s", p.tok)
	}

	if p.kw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	q.Where = g

	if p.kw("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			switch {
			case p.tok.kind == tVar:
				q.Order = append(q.Order, OrderKey{Var: p.tok.text})
				if err := p.advance(); err != nil {
					return nil, err
				}
			case p.kw("ASC"), p.kw("DESC"):
				desc := p.kw("DESC")
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expect(tLParen, "("); err != nil {
					return nil, err
				}
				if p.tok.kind != tVar {
					return nil, fmt.Errorf("sparql: expected variable in ORDER BY, got %s", p.tok)
				}
				q.Order = append(q.Order, OrderKey{Var: p.tok.text, Desc: desc})
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expect(tRParen, ")"); err != nil {
					return nil, err
				}
			default:
				if len(q.Order) == 0 {
					return nil, fmt.Errorf("sparql: empty ORDER BY")
				}
				goto orderDone
			}
		}
	}
orderDone:
	// LIMIT and OFFSET accepted in either order, per the SPARQL grammar.
	for p.kw("LIMIT") || p.kw("OFFSET") {
		isLimit := p.kw("LIMIT")
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tNumber {
			return nil, fmt.Errorf("sparql: expected number, got %s", p.tok)
		}
		var n int
		if _, err := fmt.Sscanf(p.tok.text, "%d", &n); err != nil {
			return nil, fmt.Errorf("sparql: bad solution modifier %q", p.tok.text)
		}
		if isLimit {
			q.Limit = n
		} else {
			q.Offset = n
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (p *parser) group() (*Group, error) {
	if err := p.expect(tLBrace, "{"); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch {
		case p.tok.kind == tRBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			return g, nil
		case p.kw("FILTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Filter{Expr: e})
			p.eatDot()
		case p.kw("OPTIONAL"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.group()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Optional{Group: sub})
			p.eatDot()
		case p.tok.kind == tLBrace:
			left, err := p.group()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("UNION"); err != nil {
				return nil, err
			}
			right, err := p.group()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Union{Left: left, Right: right})
			p.eatDot()
		case p.tok.kind == tEOF:
			return nil, fmt.Errorf("sparql: unterminated group pattern")
		default:
			tp, err := p.triple()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, tp...)
			p.eatDot()
		}
	}
}

func (p *parser) eatDot() {
	if p.tok.kind == tDot {
		p.advance() //nolint:errcheck // lexer errors resurface on next token use
	}
}

// triple parses subject predicate object, with ';' predicate-object lists
// and ',' object lists.
func (p *parser) triple() ([]Element, error) {
	s, err := p.node()
	if err != nil {
		return nil, err
	}
	var out []Element
	for {
		path, err := p.path()
		if err != nil {
			return nil, err
		}
		for {
			o, err := p.node()
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: s, P: path, O: o})
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return out, nil
}

func (p *parser) node() (NodePattern, error) {
	switch p.tok.kind {
	case tVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return NodePattern{}, err
		}
		return Variable(v), nil
	default:
		t, err := p.termToken()
		if err != nil {
			return NodePattern{}, err
		}
		return Node(t), nil
	}
}

// termToken parses a concrete RDF term at the current token.
func (p *parser) termToken() (rdf.Term, error) {
	switch p.tok.kind {
	case tIRI:
		t := rdf.NewIRI(p.tok.text)
		return t, p.advance()
	case tPrefixed:
		t, err := p.expandPrefixed(p.tok.text)
		if err != nil {
			return rdf.Term{}, err
		}
		return t, p.advance()
	case tString:
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		// Optional ^^ datatype.
		if p.tok.kind == tCaret {
			if err := p.advance(); err != nil {
				return rdf.Term{}, err
			}
			if p.tok.kind != tCaret {
				return rdf.Term{}, fmt.Errorf("sparql: expected ^^ before datatype")
			}
			if err := p.advance(); err != nil {
				return rdf.Term{}, err
			}
			if p.tok.kind != tIRI {
				return rdf.Term{}, fmt.Errorf("sparql: expected datatype IRI, got %s", p.tok)
			}
			dt := p.tok.text
			return rdf.NewTypedLiteral(lex, dt), p.advance()
		}
		return rdf.NewLiteral(lex), nil
	case tNumber:
		txt := p.tok.text
		dt := rdf.XSDInteger
		if strings.Contains(txt, ".") {
			dt = rdf.XSDDouble
		}
		return rdf.NewTypedLiteral(txt, dt), p.advance()
	case tIdent:
		// Bare 'a' is rdf:type; 'true'/'false' are boolean literals.
		switch {
		case p.tok.text == "a":
			return rdf.NewIRI(rdf.RDFType), p.advance()
		case strings.EqualFold(p.tok.text, "true"):
			return rdf.NewTypedLiteral("true", rdf.XSDBoolean), p.advance()
		case strings.EqualFold(p.tok.text, "false"):
			return rdf.NewTypedLiteral("false", rdf.XSDBoolean), p.advance()
		}
		return rdf.Term{}, fmt.Errorf("sparql: unexpected identifier %q as term", p.tok.text)
	default:
		return rdf.Term{}, fmt.Errorf("sparql: expected term, got %s", p.tok)
	}
}

func (p *parser) expandPrefixed(name string) (rdf.Term, error) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return rdf.Term{}, fmt.Errorf("sparql: malformed prefixed name %q", name)
	}
	pfx, local := name[:i], name[i+1:]
	base, ok := p.prefixes[pfx]
	if !ok {
		// Built-in convenience prefixes used throughout the platform.
		switch pfx {
		case "rdf":
			base = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
		case "rdfs":
			base = "http://www.w3.org/2000/01/rdf-schema#"
		case "xsd":
			base = "http://www.w3.org/2001/XMLSchema#"
		case "smg":
			base = "http://smartground.eu/onto#"
		default:
			return rdf.Term{}, fmt.Errorf("sparql: unknown prefix %q", pfx)
		}
	}
	return rdf.NewIRI(base + local), nil
}

// path parses a property path with precedence: alternative < sequence <
// unary (inverse / closures).
func (p *parser) path() (Path, error) {
	left, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		left = PathAlt{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) pathSeq() (Path, error) {
	left, err := p.pathUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tSlash {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.pathUnary()
		if err != nil {
			return nil, err
		}
		left = PathSeq{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) pathUnary() (Path, error) {
	if p.tok.kind == tCaret {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.pathUnary()
		if err != nil {
			return nil, err
		}
		return PathInverse{P: inner}, nil
	}
	var base Path
	switch p.tok.kind {
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.path()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, ")"); err != nil {
			return nil, err
		}
		base = inner
	case tVar:
		base = PathVar{Name: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		t, err := p.termToken()
		if err != nil {
			return nil, err
		}
		if !t.IsIRI() {
			return nil, fmt.Errorf("sparql: predicate must be an IRI, got %s", t)
		}
		base = PathIRI{IRI: t}
	}
	// Closure modifiers.
	for {
		switch p.tok.kind {
		case tPlus:
			base = PathClosure{P: base, Min: 1, Max: -1}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tStar:
			base = PathClosure{P: base, Min: 0, Max: -1}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tQuestion:
			base = PathClosure{P: base, Min: 0, Max: 1}
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return base, nil
		}
	}
}

// expr parses a FILTER expression: || over && over comparison over unary.
func (p *parser) expr() (Expr, error) {
	return p.exprOr()
}

func (p *parser) exprOr() (Expr, error) {
	left, err := p.exprAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprAnd()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprAnd() (Expr, error) {
	left, err := p.exprCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprCmp()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprCmp() (Expr, error) {
	left, err := p.exprUnary()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.tok.kind {
	case tEq:
		op = OpEq
	case tNe:
		op = OpNe
	case tLt:
		op = OpLt
	case tLe:
		op = OpLe
	case tGt:
		op = OpGt
	case tGe:
		op = OpGe
	default:
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.exprUnary()
	if err != nil {
		return nil, err
	}
	return Binary{Op: op, L: left, R: right}, nil
}

func (p *parser) exprUnary() (Expr, error) {
	switch {
	case p.tok.kind == tBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	case p.tok.kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.tok.kind == tVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return VarRef{Name: v}, nil
	case p.tok.kind == tIdent:
		name := strings.ToUpper(p.tok.text)
		switch name {
		case "BOUND", "REGEX", "STR", "ISIRI", "ISLITERAL":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tLParen, "("); err != nil {
				return nil, err
			}
			var args []Expr
			if p.tok.kind != tRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind != tComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.expect(tRParen, ")"); err != nil {
				return nil, err
			}
			return Call{Name: name, Args: args}, nil
		case "TRUE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Lit{Term: rdf.NewTypedLiteral("true", rdf.XSDBoolean)}, nil
		case "FALSE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Lit{Term: rdf.NewTypedLiteral("false", rdf.XSDBoolean)}, nil
		}
		return nil, fmt.Errorf("sparql: unknown function %q", p.tok.text)
	default:
		t, err := p.termToken()
		if err != nil {
			return nil, err
		}
		return Lit{Term: t}, nil
	}
}
