// Package sparql implements the SPARQL subset CroSSE uses to query
// contextual knowledge (Sec. III-B): SELECT and ASK queries over basic graph
// patterns with FILTER, OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET,
// PREFIX declarations, and property paths (sequence, alternative, inverse,
// and the +, *, ? closures). The Semantic Query Module (internal/core)
// constructs these queries programmatically; users can also register stored
// queries (e.g. the paper's `dangerQuery`) via internal/kb.
package sparql

import (
	"fmt"
	"strings"

	"crosse/internal/rdf"
)

// QueryForm discriminates SELECT from ASK queries.
type QueryForm int

const (
	// Select returns variable bindings.
	Select QueryForm = iota
	// Ask returns a boolean.
	Ask
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Distinct bool
	// Vars are the projected variable names (without '?'); empty with
	// Star=true means SELECT *.
	Vars  []string
	Star  bool
	Where *Group
	Order []OrderKey
	// Limit < 0 means unlimited; Offset 0 means from the start.
	Limit  int
	Offset int
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Group is a group graph pattern: a sequence of elements evaluated
// left-to-right with bindings flowing through.
type Group struct {
	Elems []Element
}

// Element is one member of a group graph pattern.
type Element interface{ element() }

// TriplePattern is a triple with variables allowed in any position, and a
// property path in predicate position.
type TriplePattern struct {
	S, O NodePattern
	P    Path
}

// Filter wraps a boolean expression constraining the bindings so far.
type Filter struct {
	Expr Expr
}

// Optional is an OPTIONAL { ... } left-join block.
type Optional struct {
	Group *Group
}

// Union is a { A } UNION { B } block.
type Union struct {
	Left, Right *Group
}

func (TriplePattern) element() {}
func (Filter) element()        {}
func (Optional) element()      {}
func (Union) element()         {}

// NodePattern is either a concrete term or a variable.
type NodePattern struct {
	// Var is the variable name (without '?'); empty means Term is set.
	Var  string
	Term rdf.Term
}

// IsVar reports whether the pattern is a variable.
func (n NodePattern) IsVar() bool { return n.Var != "" }

// Variable builds a variable node pattern.
func Variable(name string) NodePattern { return NodePattern{Var: name} }

// Node builds a concrete-term node pattern.
func Node(t rdf.Term) NodePattern { return NodePattern{Term: t} }

// String renders the node pattern in SPARQL syntax.
func (n NodePattern) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Path is a SPARQL property path.
type Path interface {
	path()
	String() string
}

// PathIRI is a single predicate step.
type PathIRI struct{ IRI rdf.Term }

// PathSeq is p1/p2.
type PathSeq struct{ Left, Right Path }

// PathAlt is p1|p2.
type PathAlt struct{ Left, Right Path }

// PathInverse is ^p.
type PathInverse struct{ P Path }

// PathClosure is p+, p* or p? depending on Min/Max:
// (1,-1)=+, (0,-1)=*, (0,1)=?.
type PathClosure struct {
	P        Path
	Min, Max int // Max < 0 means unbounded
}

// PathVar is a variable in predicate position (plain SPARQL ?p).
type PathVar struct{ Name string }

func (PathIRI) path()     {}
func (PathSeq) path()     {}
func (PathAlt) path()     {}
func (PathInverse) path() {}
func (PathClosure) path() {}
func (PathVar) path()     {}

func (p PathIRI) String() string     { return p.IRI.String() }
func (p PathSeq) String() string     { return "(" + p.Left.String() + "/" + p.Right.String() + ")" }
func (p PathAlt) String() string     { return "(" + p.Left.String() + "|" + p.Right.String() + ")" }
func (p PathInverse) String() string { return "^" + p.P.String() }
func (p PathVar) String() string     { return "?" + p.Name }

func (p PathClosure) String() string {
	switch {
	case p.Min == 1 && p.Max < 0:
		return p.P.String() + "+"
	case p.Min == 0 && p.Max < 0:
		return p.P.String() + "*"
	default:
		return p.P.String() + "?"
	}
}

// Expr is a FILTER expression.
type Expr interface {
	expr()
	String() string
}

// BinOp enumerates binary operators in FILTER expressions.
type BinOp int

// FILTER binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

func (o BinOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	default:
		return "?"
	}
}

// Binary is a binary FILTER expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ E Expr }

// VarRef references a variable's bound term.
type VarRef struct{ Name string }

// Lit is a constant term.
type Lit struct{ Term rdf.Term }

// Call is a builtin function call: BOUND, REGEX, STR, ISIRI, ISLITERAL.
type Call struct {
	Name string
	Args []Expr
}

func (Binary) expr() {}
func (Not) expr()    {}
func (VarRef) expr() {}
func (Lit) expr()    {}
func (Call) expr()   {}

func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}
func (e Not) String() string    { return "!(" + e.E.String() + ")" }
func (e VarRef) String() string { return "?" + e.Name }
func (e Lit) String() string    { return e.Term.String() }
func (e Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return strings.ToUpper(e.Name) + "(" + strings.Join(args, ", ") + ")"
}

// String reassembles a parseable SPARQL text for the query. Used in tests
// (parse∘print∘parse fixpoint) and logging.
func (q *Query) String() string {
	var b strings.Builder
	switch q.Form {
	case Ask:
		b.WriteString("ASK ")
	default:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if q.Star {
			b.WriteString("* ")
		} else {
			for _, v := range q.Vars {
				b.WriteString("?" + v + " ")
			}
		}
	}
	b.WriteString("WHERE ")
	writeGroup(&b, q.Where)
	for i, k := range q.Order {
		if i == 0 {
			b.WriteString(" ORDER BY")
		}
		if k.Desc {
			b.WriteString(" DESC(?" + k.Var + ")")
		} else {
			b.WriteString(" ASC(?" + k.Var + ")")
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

func writeGroup(b *strings.Builder, g *Group) {
	b.WriteString("{ ")
	for _, e := range g.Elems {
		switch el := e.(type) {
		case TriplePattern:
			b.WriteString(el.S.String() + " " + el.P.String() + " " + el.O.String() + " . ")
		case Filter:
			b.WriteString("FILTER (" + el.Expr.String() + ") ")
		case Optional:
			b.WriteString("OPTIONAL ")
			writeGroup(b, el.Group)
			b.WriteString(" ")
		case Union:
			writeGroup(b, el.Left)
			b.WriteString(" UNION ")
			writeGroup(b, el.Right)
			b.WriteString(" ")
		}
	}
	b.WriteString("}")
}
