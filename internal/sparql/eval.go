package sparql

// eval.go — the public result model and the term-level helpers shared by
// the compiled executor (exec.go). Evaluation itself is ID-native: Eval and
// EvalQuery compile the query into a Plan (plan.go) and run it as a
// streaming pipeline over dictionary-ID rows; the map-based Binding form
// below is materialised only at projection, for API compatibility.

import (
	"fmt"
	"strconv"

	"crosse/internal/rdf"
)

// Binding maps variable names to the RDF terms they are bound to in one
// solution.
type Binding map[string]rdf.Term

func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Result is the outcome of query evaluation.
type Result struct {
	// Vars is the projected variable list in order.
	Vars []string
	// Bindings holds one Binding per solution (SELECT).
	Bindings []Binding
	// Bool is the ASK outcome.
	Bool bool
	// ParallelFallback is empty when evaluation ran on the morsel-driven
	// parallel path (parallel.go) and otherwise names why it fell back to
	// the serial pipeline — "parallelism=1", "ask query", "driving pattern
	// below parallel threshold", and so on.
	ParallelFallback string
}

// collectVars gathers the variables a SELECT * projects: every variable
// appearing in a triple pattern position, in first-appearance order.
func collectVars(g *Group, out *[]string, seen map[string]struct{}) {
	addVar := func(name string) {
		if name == "" {
			return
		}
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			*out = append(*out, name)
		}
	}
	for _, e := range g.Elems {
		switch el := e.(type) {
		case TriplePattern:
			addVar(el.S.Var)
			if pv, ok := el.P.(PathVar); ok {
				addVar(pv.Name)
			}
			addVar(el.O.Var)
		case Optional:
			collectVars(el.Group, out, seen)
		case Union:
			collectVars(el.Left, out, seen)
			collectVars(el.Right, out, seen)
		}
	}
}

// errUnbound marks evaluation over an unbound variable; SPARQL semantics
// make the enclosing filter an error → solution dropped.
var errUnbound = fmt.Errorf("sparql: unbound variable in expression")

func boolTerm(b bool) rdf.Term {
	if b {
		return rdf.NewTypedLiteral("true", rdf.XSDBoolean)
	}
	return rdf.NewTypedLiteral("false", rdf.XSDBoolean)
}

func isTrue(t rdf.Term) bool {
	return t.IsLiteral() && t.Datatype == rdf.XSDBoolean && t.Value == "true"
}

// compareTerms orders two terms: numeric literals numerically when both
// parse, otherwise lexically by kind/value. Unbound (zero) terms sort first.
func compareTerms(a, b rdf.Term) int {
	if a.IsZero() || b.IsZero() {
		switch {
		case a.IsZero() && b.IsZero():
			return 0
		case a.IsZero():
			return -1
		default:
			return 1
		}
	}
	if a.IsLiteral() && b.IsLiteral() {
		af, aok := parseNum(a)
		bf, bok := parseNum(b)
		if aok && bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

func parseNum(t rdf.Term) (float64, bool) {
	if t.Datatype == rdf.XSDInteger || t.Datatype == rdf.XSDDouble {
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}
