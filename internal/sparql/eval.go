package sparql

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"crosse/internal/rdf"
)

// DisableReorder turns off greedy selectivity-first BGP join ordering and
// evaluates triple patterns in source order. Ablation knob (EXPERIMENTS.md);
// not for production use.
var DisableReorder = false

// Binding maps variable names to the RDF terms they are bound to in one
// solution.
type Binding map[string]rdf.Term

func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Result is the outcome of query evaluation.
type Result struct {
	// Vars is the projected variable list in order.
	Vars []string
	// Bindings holds one Binding per solution (SELECT).
	Bindings []Binding
	// Bool is the ASK outcome.
	Bool bool
}

// Eval parses and evaluates src against g.
func Eval(g rdf.Graph, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return EvalQuery(g, q)
}

// EvalQuery evaluates a parsed query against g.
func EvalQuery(g rdf.Graph, q *Query) (*Result, error) {
	sols, err := evalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == Ask {
		return &Result{Bool: len(sols) > 0}, nil
	}

	vars := q.Vars
	if q.Star {
		seen := map[string]struct{}{}
		collectVars(q.Where, &vars, seen)
	}

	// ORDER BY.
	if len(q.Order) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.Order {
				c := compareTerms(sols[i][k.Var], sols[j][k.Var])
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// Projection (+ DISTINCT).
	out := make([]Binding, 0, len(sols))
	var dedup map[string]struct{}
	if q.Distinct {
		dedup = map[string]struct{}{}
	}
	for _, s := range sols {
		proj := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := s[v]; ok {
				proj[v] = t
			}
		}
		if q.Distinct {
			key := bindingKey(proj, vars)
			if _, dup := dedup[key]; dup {
				continue
			}
			dedup[key] = struct{}{}
		}
		out = append(out, proj)
	}

	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(out) {
		out = out[:q.Limit]
	}
	return &Result{Vars: vars, Bindings: out}, nil
}

func bindingKey(b Binding, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func collectVars(g *Group, out *[]string, seen map[string]struct{}) {
	addVar := func(name string) {
		if name == "" {
			return
		}
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			*out = append(*out, name)
		}
	}
	for _, e := range g.Elems {
		switch el := e.(type) {
		case TriplePattern:
			addVar(el.S.Var)
			if pv, ok := el.P.(PathVar); ok {
				addVar(pv.Name)
			}
			addVar(el.O.Var)
		case Optional:
			collectVars(el.Group, out, seen)
		case Union:
			collectVars(el.Left, out, seen)
			collectVars(el.Right, out, seen)
		}
	}
}

// evalGroup evaluates the group's elements in an order that runs triple
// patterns before filters that reference still-unbound variables would fail;
// we keep the simple left-to-right order of the source (standard SPARQL
// group semantics evaluate filters over the whole group, so we defer filters
// to the end) while joining triple patterns greedily by selectivity.
func evalGroup(g rdf.Graph, grp *Group, input []Binding) ([]Binding, error) {
	var triples []TriplePattern
	var others []Element
	var filters []Filter
	for _, e := range grp.Elems {
		switch el := e.(type) {
		case TriplePattern:
			triples = append(triples, el)
		case Filter:
			filters = append(filters, el)
		default:
			others = append(others, e)
		}
	}

	sols := input
	// Join triple patterns greedily: repeatedly pick the pattern with the
	// lowest estimated cardinality given current bound variables.
	remaining := append([]TriplePattern(nil), triples...)
	for len(remaining) > 0 {
		best := 0
		if !DisableReorder {
			bound := map[string]struct{}{}
			for _, s := range sols {
				for v := range s {
					bound[v] = struct{}{}
				}
				break // all solutions share the same variable set here
			}
			bestCost := int(^uint(0) >> 1)
			for i, tp := range remaining {
				c := estimate(g, tp, bound)
				if c < bestCost {
					best, bestCost = i, c
				}
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		var err error
		sols, err = joinPattern(g, tp, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}

	// OPTIONAL and UNION blocks, in source order.
	for _, e := range others {
		switch el := e.(type) {
		case Optional:
			var out []Binding
			for _, s := range sols {
				sub, err := evalGroup(g, el.Group, []Binding{s})
				if err != nil {
					return nil, err
				}
				if len(sub) == 0 {
					out = append(out, s)
				} else {
					out = append(out, sub...)
				}
			}
			sols = out
		case Union:
			var out []Binding
			for _, s := range sols {
				l, err := evalGroup(g, el.Left, []Binding{s})
				if err != nil {
					return nil, err
				}
				r, err := evalGroup(g, el.Right, []Binding{s})
				if err != nil {
					return nil, err
				}
				out = append(out, l...)
				out = append(out, r...)
			}
			sols = out
		}
	}

	// Filters last (group scope). Per the SPARQL spec, an expression error
	// (e.g. an unbound variable) makes the filter false for that solution —
	// the solution is dropped, not the whole query.
	for _, f := range filters {
		var out []Binding
		for _, s := range sols {
			v, err := evalExpr(f.Expr, s)
			if err == nil && isTrue(v) {
				out = append(out, s)
			}
		}
		sols = out
	}
	return sols, nil
}

// estimate guesses the cardinality of a pattern given bound variables, so
// the BGP join starts with the most selective pattern.
func estimate(g rdf.Graph, tp TriplePattern, bound map[string]struct{}) int {
	pat := rdf.Pattern{}
	if !tp.S.IsVar() {
		pat.S = tp.S.Term
	} else if _, ok := bound[tp.S.Var]; ok {
		// A bound variable behaves like a constant, but we don't know its
		// value here; approximate by pretending it is bound with a small
		// discount applied below.
	}
	if pi, ok := tp.P.(PathIRI); ok {
		pat.P = pi.IRI
	}
	if !tp.O.IsVar() {
		pat.O = tp.O.Term
	}
	c := g.Count(pat)
	if tp.S.IsVar() {
		if _, ok := bound[tp.S.Var]; ok && c > 1 {
			c = c/2 + 1
		}
	}
	if tp.O.IsVar() {
		if _, ok := bound[tp.O.Var]; ok && c > 1 {
			c = c/2 + 1
		}
	}
	return c
}

// joinPattern extends each input binding with all matches of the pattern.
func joinPattern(g rdf.Graph, tp TriplePattern, input []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range input {
		sTerm, sBound := resolveNode(tp.S, b)
		oTerm, oBound := resolveNode(tp.O, b)

		switch p := tp.P.(type) {
		case PathVar:
			// Variable predicate: enumerate.
			pTerm, pBound := rdf.Term{}, false
			if t, ok := b[p.Name]; ok {
				pTerm, pBound = t, true
			}
			pat := rdf.Pattern{}
			if sBound {
				pat.S = sTerm
			}
			if pBound {
				pat.P = pTerm
			}
			if oBound {
				pat.O = oTerm
			}
			g.ForEach(pat, func(t rdf.Triple) bool {
				nb, ok := extend(b, tp.S, t.S)
				if !ok {
					return true
				}
				if !pBound {
					nb = nb.clone()
					nb[p.Name] = t.P
				} else if pTerm != t.P {
					return true
				}
				nb2, ok := extendB(nb, tp.O, t.O)
				if !ok {
					return true
				}
				out = append(out, nb2)
				return true
			})
		default:
			// Path evaluation: enumerate (s, o) pairs reachable via path.
			pairs := evalPath(g, tp.P, sTerm, sBound, oTerm, oBound)
			for _, pr := range pairs {
				nb, ok := extend(b, tp.S, pr[0])
				if !ok {
					continue
				}
				nb2, ok := extendB(nb, tp.O, pr[1])
				if !ok {
					continue
				}
				out = append(out, nb2)
			}
		}
	}
	return out, nil
}

func resolveNode(n NodePattern, b Binding) (rdf.Term, bool) {
	if !n.IsVar() {
		return n.Term, true
	}
	t, ok := b[n.Var]
	return t, ok
}

// extend binds n to t on a fresh copy of b (or checks consistency).
func extend(b Binding, n NodePattern, t rdf.Term) (Binding, bool) {
	if !n.IsVar() {
		if n.Term == t {
			return b, true
		}
		return nil, false
	}
	if old, ok := b[n.Var]; ok {
		if old == t {
			return b, true
		}
		return nil, false
	}
	nb := b.clone()
	nb[n.Var] = t
	return nb, true
}

// extendB is extend for the second position, avoiding double-cloning when
// the first extend already cloned.
func extendB(b Binding, n NodePattern, t rdf.Term) (Binding, bool) {
	if !n.IsVar() {
		if n.Term == t {
			return b, true
		}
		return nil, false
	}
	if old, ok := b[n.Var]; ok {
		if old == t {
			return b, true
		}
		return nil, false
	}
	nb := b.clone()
	nb[n.Var] = t
	return nb, true
}

// evalPath returns (subject, object) pairs connected by the path. When one
// side is bound the search is directed from that side.
func evalPath(g rdf.Graph, p Path, s rdf.Term, sBound bool, o rdf.Term, oBound bool) [][2]rdf.Term {
	switch pp := p.(type) {
	case PathIRI:
		var out [][2]rdf.Term
		pat := rdf.Pattern{P: pp.IRI}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		g.ForEach(pat, func(t rdf.Triple) bool {
			out = append(out, [2]rdf.Term{t.S, t.O})
			return true
		})
		return out
	case PathInverse:
		inv := evalPath(g, pp.P, o, oBound, s, sBound)
		out := make([][2]rdf.Term, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.Term{pr[1], pr[0]}
		}
		return out
	case PathSeq:
		var out [][2]rdf.Term
		seen := map[[2]rdf.Term]struct{}{}
		left := evalPath(g, pp.Left, s, sBound, rdf.Term{}, false)
		for _, lp := range left {
			rights := evalPath(g, pp.Right, lp[1], true, o, oBound)
			for _, rp := range rights {
				pair := [2]rdf.Term{lp[0], rp[1]}
				if _, dup := seen[pair]; !dup {
					seen[pair] = struct{}{}
					out = append(out, pair)
				}
			}
		}
		return out
	case PathAlt:
		out := evalPath(g, pp.Left, s, sBound, o, oBound)
		seen := map[[2]rdf.Term]struct{}{}
		for _, pr := range out {
			seen[pr] = struct{}{}
		}
		for _, pr := range evalPath(g, pp.Right, s, sBound, o, oBound) {
			if _, dup := seen[pr]; !dup {
				out = append(out, pr)
			}
		}
		return out
	case PathClosure:
		return evalClosure(g, pp, s, sBound, o, oBound)
	case PathVar:
		// Handled in joinPattern; treat as single wildcard step here.
		var out [][2]rdf.Term
		pat := rdf.Pattern{}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		g.ForEach(pat, func(t rdf.Triple) bool {
			out = append(out, [2]rdf.Term{t.S, t.O})
			return true
		})
		return out
	default:
		return nil
	}
}

// evalClosure evaluates p+, p*, p? by BFS.
func evalClosure(g rdf.Graph, pc PathClosure, s rdf.Term, sBound bool, o rdf.Term, oBound bool) [][2]rdf.Term {
	reach := func(start rdf.Term) []rdf.Term {
		visited := map[rdf.Term]int{start: 0}
		frontier := []rdf.Term{start}
		depth := 0
		for len(frontier) > 0 {
			depth++
			if pc.Max >= 0 && depth > pc.Max {
				break
			}
			var next []rdf.Term
			for _, node := range frontier {
				for _, pr := range evalPath(g, pc.P, node, true, rdf.Term{}, false) {
					if _, ok := visited[pr[1]]; !ok {
						visited[pr[1]] = depth
						next = append(next, pr[1])
					}
				}
			}
			frontier = next
		}
		var out []rdf.Term
		for node, d := range visited {
			if d >= pc.Min {
				out = append(out, node)
			}
		}
		return out
	}

	switch {
	case sBound:
		var out [][2]rdf.Term
		for _, t := range reach(s) {
			if oBound && t != o {
				continue
			}
			out = append(out, [2]rdf.Term{s, t})
		}
		return out
	case oBound:
		// Reverse search: invert the inner path.
		inv := evalClosure(g, PathClosure{P: PathInverse{P: pc.P}, Min: pc.Min, Max: pc.Max}, o, true, rdf.Term{}, false)
		out := make([][2]rdf.Term, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.Term{pr[1], pr[0]}
		}
		return out
	default:
		// Neither side bound: enumerate all subjects appearing in the
		// graph and expand each. Potentially expensive; acceptable for
		// the KB sizes CroSSE handles per user.
		subjects := map[rdf.Term]struct{}{}
		g.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
			subjects[t.S] = struct{}{}
			return true
		})
		var out [][2]rdf.Term
		for sub := range subjects {
			for _, t := range reach(sub) {
				out = append(out, [2]rdf.Term{sub, t})
			}
		}
		return out
	}
}

// --- FILTER expression evaluation ---

// errUnbound marks evaluation over an unbound variable; SPARQL semantics
// make the enclosing filter an error → solution dropped.
var errUnbound = fmt.Errorf("sparql: unbound variable in expression")

func evalExpr(e Expr, b Binding) (rdf.Term, error) {
	switch ex := e.(type) {
	case Lit:
		return ex.Term, nil
	case VarRef:
		t, ok := b[ex.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		return t, nil
	case Not:
		v, err := evalExpr(ex.E, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!isTrue(v)), nil
	case Binary:
		return evalBinary(ex, b)
	case Call:
		return evalCall(ex, b)
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown expression %T", e)
	}
}

func evalBinary(ex Binary, b Binding) (rdf.Term, error) {
	switch ex.Op {
	case OpAnd, OpOr:
		l, lerr := evalExpr(ex.L, b)
		r, rerr := evalExpr(ex.R, b)
		// Simple (non-3VL) semantics: errors propagate unless the other
		// side decides the outcome.
		if ex.Op == OpAnd {
			if lerr == nil && !isTrue(l) || rerr == nil && !isTrue(r) {
				return boolTerm(false), nil
			}
			if lerr != nil {
				return rdf.Term{}, lerr
			}
			if rerr != nil {
				return rdf.Term{}, rerr
			}
			return boolTerm(true), nil
		}
		if lerr == nil && isTrue(l) || rerr == nil && isTrue(r) {
			return boolTerm(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return boolTerm(false), nil
	}
	l, err := evalExpr(ex.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := evalExpr(ex.R, b)
	if err != nil {
		return rdf.Term{}, err
	}
	c := compareTerms(l, r)
	switch ex.Op {
	case OpEq:
		return boolTerm(c == 0), nil
	case OpNe:
		return boolTerm(c != 0), nil
	case OpLt:
		return boolTerm(c < 0), nil
	case OpLe:
		return boolTerm(c <= 0), nil
	case OpGt:
		return boolTerm(c > 0), nil
	case OpGe:
		return boolTerm(c >= 0), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %v", ex.Op)
}

func evalCall(ex Call, b Binding) (rdf.Term, error) {
	switch ex.Name {
	case "BOUND":
		if len(ex.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND takes 1 argument")
		}
		v, ok := ex.Args[0].(VarRef)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND argument must be a variable")
		}
		_, bound := b[v.Name]
		return boolTerm(bound), nil
	case "STR":
		if len(ex.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: STR takes 1 argument")
		}
		t, err := evalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(t.Value), nil
	case "ISIRI":
		if len(ex.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: ISIRI takes 1 argument")
		}
		t, err := evalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(t.IsIRI()), nil
	case "ISLITERAL":
		if len(ex.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: ISLITERAL takes 1 argument")
		}
		t, err := evalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(t.IsLiteral()), nil
	case "REGEX":
		if len(ex.Args) != 2 && len(ex.Args) != 3 {
			return rdf.Term{}, fmt.Errorf("sparql: REGEX takes 2 or 3 arguments")
		}
		t, err := evalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := evalExpr(ex.Args[1], b)
		if err != nil {
			return rdf.Term{}, err
		}
		pat := p.Value
		if len(ex.Args) == 3 {
			f, err := evalExpr(ex.Args[2], b)
			if err != nil {
				return rdf.Term{}, err
			}
			if strings.Contains(f.Value, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return boolTerm(re.MatchString(t.Value)), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", ex.Name)
	}
}

func boolTerm(b bool) rdf.Term {
	if b {
		return rdf.NewTypedLiteral("true", rdf.XSDBoolean)
	}
	return rdf.NewTypedLiteral("false", rdf.XSDBoolean)
}

func isTrue(t rdf.Term) bool {
	return t.IsLiteral() && t.Datatype == rdf.XSDBoolean && t.Value == "true"
}

// compareTerms orders two terms: numeric literals numerically when both
// parse, otherwise lexically by kind/value. Unbound (zero) terms sort first.
func compareTerms(a, b rdf.Term) int {
	if a.IsZero() || b.IsZero() {
		switch {
		case a.IsZero() && b.IsZero():
			return 0
		case a.IsZero():
			return -1
		default:
			return 1
		}
	}
	if a.IsLiteral() && b.IsLiteral() {
		af, aok := parseNum(a)
		bf, bok := parseNum(b)
		if aok && bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

func parseNum(t rdf.Term) (float64, bool) {
	if t.Datatype == rdf.XSDInteger || t.Datatype == rdf.XSDDouble {
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}
