package sparql

// parity_test.go — semantic parity between the ID-native slot executor and
// the seed engine's term-level evaluation. refEvalQuery below is a faithful
// port of the pre-compilation evaluator (string-keyed Binding maps, full
// inter-stage materialisation); the suite asserts the compiled executor
// returns identical solution sets across OPTIONAL / UNION / FILTER /
// ORDER BY / DISTINCT / OFFSET+LIMIT and property paths, and a property
// test round-trips random BGPs through both the slot path and plain
// rdf.Graph term-level matching.

import (
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

// --- reference evaluator (port of the seed engine) ---

func refEvalQuery(g rdf.Graph, q *Query) (*Result, error) {
	sols, err := refEvalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == Ask {
		return &Result{Bool: len(sols) > 0}, nil
	}

	vars := q.Vars
	if q.Star {
		seen := map[string]struct{}{}
		collectVars(q.Where, &vars, seen)
	}

	if len(q.Order) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.Order {
				c := compareTerms(sols[i][k.Var], sols[j][k.Var])
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	out := make([]Binding, 0, len(sols))
	var dedup map[string]struct{}
	if q.Distinct {
		dedup = map[string]struct{}{}
	}
	for _, s := range sols {
		proj := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := s[v]; ok {
				proj[v] = t
			}
		}
		if q.Distinct {
			key := refBindingKey(proj, vars)
			if _, dup := dedup[key]; dup {
				continue
			}
			dedup[key] = struct{}{}
		}
		out = append(out, proj)
	}

	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(out) {
		out = out[:q.Limit]
	}
	return &Result{Vars: vars, Bindings: out}, nil
}

func refBindingKey(b Binding, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func refEvalGroup(g rdf.Graph, grp *Group, input []Binding) ([]Binding, error) {
	var triples []TriplePattern
	var others []Element
	var filters []Filter
	for _, e := range grp.Elems {
		switch el := e.(type) {
		case TriplePattern:
			triples = append(triples, el)
		case Filter:
			filters = append(filters, el)
		default:
			others = append(others, e)
		}
	}

	sols := input
	for _, tp := range triples {
		var err error
		sols, err = refJoinPattern(g, tp, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}

	for _, e := range others {
		switch el := e.(type) {
		case Optional:
			var out []Binding
			for _, s := range sols {
				sub, err := refEvalGroup(g, el.Group, []Binding{s})
				if err != nil {
					return nil, err
				}
				if len(sub) == 0 {
					out = append(out, s)
				} else {
					out = append(out, sub...)
				}
			}
			sols = out
		case Union:
			var out []Binding
			for _, s := range sols {
				l, err := refEvalGroup(g, el.Left, []Binding{s})
				if err != nil {
					return nil, err
				}
				r, err := refEvalGroup(g, el.Right, []Binding{s})
				if err != nil {
					return nil, err
				}
				out = append(out, l...)
				out = append(out, r...)
			}
			sols = out
		}
	}

	for _, f := range filters {
		var out []Binding
		for _, s := range sols {
			v, err := refEvalExpr(f.Expr, s)
			if err == nil && isTrue(v) {
				out = append(out, s)
			}
		}
		sols = out
	}
	return sols, nil
}

func refJoinPattern(g rdf.Graph, tp TriplePattern, input []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range input {
		sTerm, sBound := refResolveNode(tp.S, b)
		oTerm, oBound := refResolveNode(tp.O, b)

		switch p := tp.P.(type) {
		case PathVar:
			pTerm, pBound := rdf.Term{}, false
			if t, ok := b[p.Name]; ok {
				pTerm, pBound = t, true
			}
			pat := rdf.Pattern{}
			if sBound {
				pat.S = sTerm
			}
			if pBound {
				pat.P = pTerm
			}
			if oBound {
				pat.O = oTerm
			}
			g.ForEach(pat, func(t rdf.Triple) bool {
				nb, ok := refExtend(b, tp.S, t.S)
				if !ok {
					return true
				}
				if !pBound {
					nb = nb.clone()
					nb[p.Name] = t.P
				} else if pTerm != t.P {
					return true
				}
				nb2, ok := refExtend(nb, tp.O, t.O)
				if !ok {
					return true
				}
				out = append(out, nb2)
				return true
			})
		default:
			for _, pr := range refEvalPath(g, tp.P, sTerm, sBound, oTerm, oBound) {
				nb, ok := refExtend(b, tp.S, pr[0])
				if !ok {
					continue
				}
				nb2, ok := refExtend(nb, tp.O, pr[1])
				if !ok {
					continue
				}
				out = append(out, nb2)
			}
		}
	}
	return out, nil
}

func refResolveNode(n NodePattern, b Binding) (rdf.Term, bool) {
	if !n.IsVar() {
		return n.Term, true
	}
	t, ok := b[n.Var]
	return t, ok
}

func refExtend(b Binding, n NodePattern, t rdf.Term) (Binding, bool) {
	if !n.IsVar() {
		if n.Term == t {
			return b, true
		}
		return nil, false
	}
	if old, ok := b[n.Var]; ok {
		if old == t {
			return b, true
		}
		return nil, false
	}
	nb := b.clone()
	nb[n.Var] = t
	return nb, true
}

func refEvalPath(g rdf.Graph, p Path, s rdf.Term, sBound bool, o rdf.Term, oBound bool) [][2]rdf.Term {
	switch pp := p.(type) {
	case PathIRI:
		var out [][2]rdf.Term
		pat := rdf.Pattern{P: pp.IRI}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		g.ForEach(pat, func(t rdf.Triple) bool {
			out = append(out, [2]rdf.Term{t.S, t.O})
			return true
		})
		return out
	case PathInverse:
		inv := refEvalPath(g, pp.P, o, oBound, s, sBound)
		out := make([][2]rdf.Term, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.Term{pr[1], pr[0]}
		}
		return out
	case PathSeq:
		var out [][2]rdf.Term
		seen := map[[2]rdf.Term]struct{}{}
		for _, lp := range refEvalPath(g, pp.Left, s, sBound, rdf.Term{}, false) {
			for _, rp := range refEvalPath(g, pp.Right, lp[1], true, o, oBound) {
				pair := [2]rdf.Term{lp[0], rp[1]}
				if _, dup := seen[pair]; !dup {
					seen[pair] = struct{}{}
					out = append(out, pair)
				}
			}
		}
		return out
	case PathAlt:
		out := refEvalPath(g, pp.Left, s, sBound, o, oBound)
		seen := map[[2]rdf.Term]struct{}{}
		for _, pr := range out {
			seen[pr] = struct{}{}
		}
		for _, pr := range refEvalPath(g, pp.Right, s, sBound, o, oBound) {
			if _, dup := seen[pr]; !dup {
				out = append(out, pr)
			}
		}
		return out
	case PathClosure:
		return refEvalClosure(g, pp, s, sBound, o, oBound)
	case PathVar:
		var out [][2]rdf.Term
		pat := rdf.Pattern{}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		g.ForEach(pat, func(t rdf.Triple) bool {
			out = append(out, [2]rdf.Term{t.S, t.O})
			return true
		})
		return out
	default:
		return nil
	}
}

func refEvalClosure(g rdf.Graph, pc PathClosure, s rdf.Term, sBound bool, o rdf.Term, oBound bool) [][2]rdf.Term {
	reach := func(start rdf.Term) []rdf.Term {
		visited := map[rdf.Term]int{start: 0}
		frontier := []rdf.Term{start}
		depth := 0
		for len(frontier) > 0 {
			depth++
			if pc.Max >= 0 && depth > pc.Max {
				break
			}
			var next []rdf.Term
			for _, node := range frontier {
				for _, pr := range refEvalPath(g, pc.P, node, true, rdf.Term{}, false) {
					if _, ok := visited[pr[1]]; !ok {
						visited[pr[1]] = depth
						next = append(next, pr[1])
					}
				}
			}
			frontier = next
		}
		var out []rdf.Term
		for node, d := range visited {
			if d >= pc.Min {
				out = append(out, node)
			}
		}
		return out
	}

	switch {
	case sBound:
		var out [][2]rdf.Term
		for _, t := range reach(s) {
			if oBound && t != o {
				continue
			}
			out = append(out, [2]rdf.Term{s, t})
		}
		return out
	case oBound:
		inv := refEvalClosure(g, PathClosure{P: PathInverse{P: pc.P}, Min: pc.Min, Max: pc.Max}, o, true, rdf.Term{}, false)
		out := make([][2]rdf.Term, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.Term{pr[1], pr[0]}
		}
		return out
	default:
		subjects := map[rdf.Term]struct{}{}
		g.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
			subjects[t.S] = struct{}{}
			return true
		})
		var out [][2]rdf.Term
		for sub := range subjects {
			for _, t := range reach(sub) {
				out = append(out, [2]rdf.Term{sub, t})
			}
		}
		return out
	}
}

func refEvalExpr(e Expr, b Binding) (rdf.Term, error) {
	switch ex := e.(type) {
	case Lit:
		return ex.Term, nil
	case VarRef:
		t, ok := b[ex.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		return t, nil
	case Not:
		v, err := refEvalExpr(ex.E, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!isTrue(v)), nil
	case Binary:
		return refEvalBinary(ex, b)
	case Call:
		return refEvalCall(ex, b)
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown expression %T", e)
	}
}

func refEvalBinary(ex Binary, b Binding) (rdf.Term, error) {
	switch ex.Op {
	case OpAnd, OpOr:
		l, lerr := refEvalExpr(ex.L, b)
		r, rerr := refEvalExpr(ex.R, b)
		if ex.Op == OpAnd {
			if lerr == nil && !isTrue(l) || rerr == nil && !isTrue(r) {
				return boolTerm(false), nil
			}
			if lerr != nil {
				return rdf.Term{}, lerr
			}
			if rerr != nil {
				return rdf.Term{}, rerr
			}
			return boolTerm(true), nil
		}
		if lerr == nil && isTrue(l) || rerr == nil && isTrue(r) {
			return boolTerm(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return boolTerm(false), nil
	}
	l, err := refEvalExpr(ex.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := refEvalExpr(ex.R, b)
	if err != nil {
		return rdf.Term{}, err
	}
	c := compareTerms(l, r)
	switch ex.Op {
	case OpEq:
		return boolTerm(c == 0), nil
	case OpNe:
		return boolTerm(c != 0), nil
	case OpLt:
		return boolTerm(c < 0), nil
	case OpLe:
		return boolTerm(c <= 0), nil
	case OpGt:
		return boolTerm(c > 0), nil
	case OpGe:
		return boolTerm(c >= 0), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %v", ex.Op)
}

func refEvalCall(ex Call, b Binding) (rdf.Term, error) {
	switch ex.Name {
	case "BOUND":
		if len(ex.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND takes 1 argument")
		}
		v, ok := ex.Args[0].(VarRef)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND argument must be a variable")
		}
		_, bound := b[v.Name]
		return boolTerm(bound), nil
	case "STR":
		t, err := refEvalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(t.Value), nil
	case "ISIRI":
		t, err := refEvalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(t.IsIRI()), nil
	case "ISLITERAL":
		t, err := refEvalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(t.IsLiteral()), nil
	case "REGEX":
		t, err := refEvalExpr(ex.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := refEvalExpr(ex.Args[1], b)
		if err != nil {
			return rdf.Term{}, err
		}
		pat := p.Value
		if len(ex.Args) == 3 {
			f, err := refEvalExpr(ex.Args[2], b)
			if err != nil {
				return rdf.Term{}, err
			}
			if strings.Contains(f.Value, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return boolTerm(re.MatchString(t.Value)), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", ex.Name)
	}
}

// --- the parity suite ---

// parityStore extends sampleStore with numeric data, multi-valued
// properties and deeper structure so every solution-modifier path has work
// to do.
func parityStore() *rdf.Store {
	st := sampleStore()
	for i := 0; i < 12; i++ {
		s := iri(fmt.Sprintf("site%d", i))
		st.Add(rdf.Triple{S: s, P: iri("rank"),
			O: rdf.NewTypedLiteral(fmt.Sprint(i), rdf.XSDInteger)})
		st.Add(rdf.Triple{S: s, P: iri("zone"), O: iri(fmt.Sprintf("zone%d", i%3))})
		if i%2 == 0 {
			st.Add(rdf.Triple{S: s, P: iri("audited"), O: rdf.NewLiteral("yes")})
		}
		if i%4 == 0 {
			st.Add(rdf.Triple{S: s, P: iri("contains"), O: iri("Mercury")})
			st.Add(rdf.Triple{S: s, P: iri("contains"), O: iri("Gold")})
		}
	}
	return st
}

// renderSeq renders bindings in result order (no sorting) for exact
// order-sensitive comparison.
func renderSeq(bs []Binding, vars []string) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		s := ""
		for _, v := range vars {
			if t, ok := b[v]; ok {
				s += t.String() + ";"
			} else {
				s += "_;"
			}
		}
		out = append(out, s)
	}
	return out
}

// forceParallel drops the parallel-path thresholds so the small parity
// fixtures split into many morsels and exercise the scheduler, restoring
// the production values on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	minM, morsel := parMinMatches, parMorselMatches
	parMinMatches, parMorselMatches = 1, 5
	t.Cleanup(func() { parMinMatches, parMorselMatches = minM, morsel })
}

// parityEvalOptions covers the executor's knobs: reorder ablation, the
// forced-serial setting, and parallel evaluation at several widths.
var parityEvalOptions = []Options{
	{},
	{DisableReorder: true},
	{Parallelism: 1},
	{Parallelism: 2},
	{Parallelism: 4},
	{Parallelism: 4, DisableReorder: true},
}

func TestExecutorParityWithSeedSemantics(t *testing.T) {
	forceParallel(t)
	st := parityStore()
	pre := `PREFIX s: <` + onto + `> `
	cases := []struct {
		name  string
		query string
		// ordered: compare exact result sequences (ORDER BY with unique
		// keys). count: solution order is implementation-defined across the
		// cut, compare sizes and subset-ness (OFFSET/LIMIT without ORDER
		// BY). Default: compare solution multisets.
		ordered bool
		count   bool
	}{
		{name: "optional", query: pre + `SELECT ?x ?d WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } }`},
		{name: "optional nested", query: pre + `SELECT ?x ?d ?w WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d . OPTIONAL { ?x s:weight ?w } } }`},
		{name: "union", query: pre + `SELECT ?x WHERE { { ?x s:isA s:PreciousMetal } UNION { ?x s:dangerLevel "high" } }`},
		{name: "union constrained", query: pre + `SELECT ?x ?y WHERE { ?x s:dangerLevel "high" . { ?x s:isA s:HazardousWaste } UNION { ?x s:foundWith ?y } }`},
		{name: "filter comparison", query: pre + `SELECT ?x WHERE { ?x s:weight ?w . FILTER (?w > 200) }`},
		{name: "filter pushdown multi", query: pre + `SELECT ?site ?r WHERE { ?site s:rank ?r . ?site s:zone ?z . FILTER (?r >= 4) . FILTER (?z != s:zone1) }`},
		{name: "filter bound optional", query: pre + `SELECT ?site WHERE { ?site s:rank ?r . OPTIONAL { ?site s:audited ?a } FILTER (!BOUND(?a)) }`},
		{name: "filter regex", query: pre + `SELECT ?x WHERE { ?x s:isA ?c . FILTER REGEX(STR(?x), "e") }`},
		{name: "filter logic", query: pre + `SELECT ?x WHERE { ?x s:dangerLevel ?d . FILTER (?d = "high" || ISIRI(?x) && ?d != "low") }`},
		{name: "order by", query: pre + `SELECT ?site ?r WHERE { ?site s:rank ?r } ORDER BY DESC(?r)`, ordered: true},
		{name: "order by unbound first", query: pre + `SELECT ?x ?d WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } } ORDER BY ?d ?x`, ordered: true},
		{name: "distinct", query: pre + `SELECT DISTINCT ?z WHERE { ?site s:zone ?z }`},
		{name: "distinct multi-var", query: pre + `SELECT DISTINCT ?z ?a WHERE { ?site s:zone ?z . OPTIONAL { ?site s:audited ?a } }`},
		{name: "order offset limit", query: pre + `SELECT ?site ?r WHERE { ?site s:rank ?r } ORDER BY ?r OFFSET 3 LIMIT 4`, ordered: true},
		{name: "offset limit unordered", query: pre + `SELECT ?site WHERE { ?site s:rank ?r } OFFSET 2 LIMIT 5`, count: true},
		{name: "distinct order limit", query: pre + `SELECT DISTINCT ?r WHERE { ?site s:rank ?r } ORDER BY DESC(?r) LIMIT 3`, ordered: true},
		{name: "path seq", query: pre + `SELECT ?c WHERE { s:Mercury s:isA/s:subClassOf* ?c }`},
		{name: "path alt inverse", query: pre + `SELECT ?x WHERE { s:Lead ^s:foundWith|s:isA ?x }`},
		{name: "path closure join", query: pre + `SELECT ?x ?c WHERE { ?x s:isA s:HazardousWaste . ?x s:isA/s:subClassOf+ ?c }`},
		{name: "var predicate", query: pre + `SELECT ?p ?o WHERE { s:Mercury ?p ?o }`},
		{name: "ask true", query: pre + `ASK { ?x s:contains s:Gold }`},
		{name: "ask false", query: pre + `ASK { s:Gold s:contains ?x }`},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refEvalQuery(st, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range parityEvalOptions {
				got, err := EvalQueryOpts(st, q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if q.Form == Ask {
					if got.Bool != want.Bool {
						t.Fatalf("ASK: got %v, want %v", got.Bool, want.Bool)
					}
					continue
				}
				if !reflect.DeepEqual(got.Vars, want.Vars) {
					t.Fatalf("vars: got %v, want %v", got.Vars, want.Vars)
				}
				switch {
				case tc.ordered:
					g := renderSeq(got.Bindings, got.Vars)
					w := renderSeq(want.Bindings, want.Vars)
					if !reflect.DeepEqual(g, w) {
						t.Fatalf("ordered results differ (opts=%+v):\n got %v\nwant %v", opts, g, w)
					}
				case tc.count:
					if len(got.Bindings) != len(want.Bindings) {
						t.Fatalf("result size: got %d, want %d", len(got.Bindings), len(want.Bindings))
					}
					// Every returned solution must be a solution of the
					// unmodified query.
					full := *q
					full.Offset, full.Limit = 0, -1
					all, err := refEvalQuery(st, &full)
					if err != nil {
						t.Fatal(err)
					}
					allSet := map[string]struct{}{}
					for _, s := range renderBindings(all.Bindings, got.Vars) {
						allSet[s] = struct{}{}
					}
					for _, s := range renderBindings(got.Bindings, got.Vars) {
						if _, ok := allSet[s]; !ok {
							t.Fatalf("solution %q not produced by the unmodified query", s)
						}
					}
				default:
					g := renderBindings(got.Bindings, got.Vars)
					w := renderBindings(want.Bindings, want.Vars)
					if !reflect.DeepEqual(g, w) {
						t.Fatalf("solution sets differ (opts=%+v):\n got %v\nwant %v", opts, g, w)
					}
				}
			}
		})
	}
}

// TestExecutorParityUnknownConstants pins the zero-length-path corner: a
// closure with Min 0 from a constant the store has never interned still
// yields the reflexive solution, exactly like term-level evaluation.
func TestExecutorParityUnknownConstants(t *testing.T) {
	st := parityStore()
	pre := `PREFIX s: <` + onto + `> `
	for _, src := range []string{
		pre + `SELECT ?c WHERE { s:NeverSeen s:subClassOf* ?c }`,
		pre + `SELECT ?x WHERE { ?x s:isA s:NeverSeen }`,
		pre + `ASK { s:NeverSeen s:isA s:AlsoNeverSeen }`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refEvalQuery(st, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalQuery(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if q.Form == Ask {
			if got.Bool != want.Bool {
				t.Fatalf("%s: ASK got %v want %v", src, got.Bool, want.Bool)
			}
			continue
		}
		g := renderBindings(got.Bindings, got.Vars)
		w := renderBindings(want.Bindings, want.Vars)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s:\n got %v\nwant %v", src, g, w)
		}
	}
}

// --- property test: random BGPs, slot path vs term-level matching ---

// naiveBGPJoin evaluates a BGP by brute-force term-level matching over
// rdf.Graph: enumerate all triples per pattern with Pattern.Matches-style
// consistency checks on string-keyed bindings.
func naiveBGPJoin(g rdf.Graph, patterns []TriplePattern) []Binding {
	sols := []Binding{{}}
	for _, tp := range patterns {
		var next []Binding
		for _, b := range sols {
			g.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
				nb := b.clone()
				bind := func(n NodePattern, term rdf.Term) bool {
					if !n.IsVar() {
						return n.Term == term
					}
					if old, ok := nb[n.Var]; ok {
						return old == term
					}
					nb[n.Var] = term
					return true
				}
				if !bind(tp.S, t.S) {
					return true
				}
				switch p := tp.P.(type) {
				case PathIRI:
					if p.IRI != t.P {
						return true
					}
				case PathVar:
					if old, ok := nb[p.Name]; ok {
						if old != t.P {
							return true
						}
					} else {
						nb[p.Name] = t.P
					}
				}
				if !bind(tp.O, t.O) {
					return true
				}
				next = append(next, nb)
				return true
			})
		}
		sols = next
	}
	return sols
}

func TestRandomBGPsSlotPathVsTermLevel(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(97))
	const ns = "http://x/"
	varNames := []string{"x", "y", "z", "w"}
	for trial := 0; trial < 80; trial++ {
		st := rdf.NewStore()
		var triples []rdf.Triple
		for i := 0; i < 50; i++ {
			tr := rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%ss%d", ns, rng.Intn(7))),
				P: rdf.NewIRI(fmt.Sprintf("%sp%d", ns, rng.Intn(4))),
				O: rdf.NewIRI(fmt.Sprintf("%so%d", ns, rng.Intn(7))),
			}
			st.Add(tr)
			triples = append(triples, tr)
		}

		node := func() NodePattern {
			if rng.Intn(2) == 0 {
				return Variable(varNames[rng.Intn(len(varNames))])
			}
			// A constant sampled from the data (mostly) or a miss.
			if rng.Intn(8) == 0 {
				return Node(rdf.NewIRI(ns + "missing"))
			}
			tr := triples[rng.Intn(len(triples))]
			if rng.Intn(2) == 0 {
				return Node(tr.S)
			}
			return Node(tr.O)
		}
		pred := func() Path {
			if rng.Intn(4) == 0 {
				return PathVar{Name: varNames[rng.Intn(len(varNames))]}
			}
			return PathIRI{IRI: rdf.NewIRI(fmt.Sprintf("%sp%d", ns, rng.Intn(4)))}
		}

		n := 1 + rng.Intn(3)
		patterns := make([]TriplePattern, n)
		elems := make([]Element, n)
		for i := range patterns {
			patterns[i] = TriplePattern{S: node(), P: pred(), O: node()}
			elems[i] = patterns[i]
		}

		vars := []string{}
		seen := map[string]struct{}{}
		grp := &Group{Elems: elems}
		collectVars(grp, &vars, seen)
		q := &Query{Limit: -1, Vars: vars, Where: grp}

		want := renderBindings(naiveBGPJoin(st, patterns), vars)
		for _, opts := range []Options{{}, {DisableReorder: true}, {Parallelism: 2}, {Parallelism: 4}} {
			res, err := EvalQueryOpts(st, q, opts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got := renderBindings(res.Bindings, vars)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (opts=%+v): slot path %d solutions, term-level %d\npatterns: %v",
					trial, opts, len(got), len(want), patterns)
			}
		}
	}
}
