package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tEOF tokenKind = iota
	tIdent
	tVar      // ?name
	tIRI      // <...>
	tPrefixed // pfx:local
	tString   // "..."
	tNumber   // 12 or 3.4
	tLBrace
	tRBrace
	tLParen
	tRParen
	tDot
	tComma
	tSemicolon
	tStar
	tSlash
	tPipe
	tPlus
	tQuestion
	tCaret
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tAndAnd
	tOrOr
	tBang
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenises SPARQL text.
type lexer struct {
	in  string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sparql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.in) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := l.in[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{tLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tRBrace, "}", start}, nil
	case '(':
		l.pos++
		return token{tLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tRParen, ")", start}, nil
	case '.':
		l.pos++
		return token{tDot, ".", start}, nil
	case ',':
		l.pos++
		return token{tComma, ",", start}, nil
	case ';':
		l.pos++
		return token{tSemicolon, ";", start}, nil
	case '*':
		l.pos++
		return token{tStar, "*", start}, nil
	case '/':
		l.pos++
		return token{tSlash, "/", start}, nil
	case '^':
		l.pos++
		return token{tCaret, "^", start}, nil
	case '+':
		l.pos++
		return token{tPlus, "+", start}, nil
	case '?':
		// Either a variable or the ? path modifier; variable if followed
		// by an identifier start.
		if l.pos+1 < len(l.in) {
			r, _ := utf8.DecodeRuneInString(l.in[l.pos+1:])
			if isIdentStart(r) || unicode.IsDigit(r) {
				l.pos++
				s := l.pos
				for l.pos < len(l.in) {
					r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
					if !isIdentPart(r) {
						break
					}
					l.pos += sz
				}
				return token{tVar, l.in[s:l.pos], start}, nil
			}
		}
		l.pos++
		return token{tQuestion, "?", start}, nil
	case '|':
		if strings.HasPrefix(l.in[l.pos:], "||") {
			l.pos += 2
			return token{tOrOr, "||", start}, nil
		}
		l.pos++
		return token{tPipe, "|", start}, nil
	case '&':
		if strings.HasPrefix(l.in[l.pos:], "&&") {
			l.pos += 2
			return token{tAndAnd, "&&", start}, nil
		}
		return token{}, l.errf(start, "unexpected '&'")
	case '=':
		l.pos++
		return token{tEq, "=", start}, nil
	case '!':
		if strings.HasPrefix(l.in[l.pos:], "!=") {
			l.pos += 2
			return token{tNe, "!=", start}, nil
		}
		l.pos++
		return token{tBang, "!", start}, nil
	case '<':
		// IRI or comparison: IRI if it looks like <non-space...>.
		if end := strings.IndexByte(l.in[l.pos:], '>'); end > 0 {
			body := l.in[l.pos+1 : l.pos+end]
			if !strings.ContainsAny(body, " \t\n<") {
				l.pos += end + 1
				return token{tIRI, body, start}, nil
			}
		}
		if strings.HasPrefix(l.in[l.pos:], "<=") {
			l.pos += 2
			return token{tLe, "<=", start}, nil
		}
		l.pos++
		return token{tLt, "<", start}, nil
	case '>':
		if strings.HasPrefix(l.in[l.pos:], ">=") {
			l.pos += 2
			return token{tGe, ">=", start}, nil
		}
		l.pos++
		return token{tGt, ">", start}, nil
	case '"':
		i := l.pos + 1
		var b strings.Builder
		for i < len(l.in) {
			switch l.in[i] {
			case '\\':
				if i+1 >= len(l.in) {
					return token{}, l.errf(start, "dangling escape in string")
				}
				switch l.in[i+1] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return token{}, l.errf(start, "unknown escape \\%c", l.in[i+1])
				}
				i += 2
			case '"':
				l.pos = i + 1
				return token{tString, b.String(), start}, nil
			default:
				b.WriteByte(l.in[i])
				i++
			}
		}
		return token{}, l.errf(start, "unterminated string literal")
	}
	if c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
		s := l.pos
		l.pos++
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.') {
			l.pos++
		}
		return token{tNumber, l.in[s:l.pos], start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.in[l.pos:])
	if isIdentStart(r) {
		s := l.pos
		for l.pos < len(l.in) {
			r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.pos += sz
		}
		// Prefixed name pfx:local?
		if l.pos < len(l.in) && l.in[l.pos] == ':' {
			colon := l.pos
			l.pos++
			ls := l.pos
			for l.pos < len(l.in) {
				r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
				if !isIdentPart(r) {
					break
				}
				l.pos += sz
			}
			if l.pos > ls || colon == s { // allow :local and pfx:local
				return token{tPrefixed, l.in[s:l.pos], start}, nil
			}
			return token{tPrefixed, l.in[s:l.pos], start}, nil
		}
		return token{tIdent, l.in[s:l.pos], start}, nil
	}
	if c == ':' {
		// default-prefix name :local
		s := l.pos
		l.pos++
		for l.pos < len(l.in) {
			r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.pos += sz
		}
		return token{tPrefixed, l.in[s:l.pos], start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}
