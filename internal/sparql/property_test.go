package sparql

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"crosse/internal/rdf"
)

// naiveBGP evaluates a two-pattern BGP by brute force over all triples.
func naiveBGP(st *rdf.Store, p1, p2 TriplePattern) []Binding {
	var all []rdf.Triple
	st.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
		all = append(all, t)
		return true
	})
	match := func(tp TriplePattern, t rdf.Triple, b Binding) (Binding, bool) {
		nb := b.clone()
		bind := func(n NodePattern, term rdf.Term) bool {
			if !n.IsVar() {
				return n.Term == term
			}
			if old, ok := nb[n.Var]; ok {
				return old == term
			}
			nb[n.Var] = term
			return true
		}
		pi := tp.P.(PathIRI)
		if !bind(tp.S, t.S) || pi.IRI != t.P || !bind(tp.O, t.O) {
			return nil, false
		}
		return nb, true
	}
	var out []Binding
	for _, t1 := range all {
		b1, ok := match(p1, t1, Binding{})
		if !ok {
			continue
		}
		for _, t2 := range all {
			if b2, ok := match(p2, t2, b1); ok {
				out = append(out, b2)
			}
		}
	}
	return out
}

func renderBindings(bs []Binding, vars []string) []string {
	var out []string
	for _, b := range bs {
		s := ""
		for _, v := range vars {
			if t, ok := b[v]; ok {
				s += t.String() + ";"
			} else {
				s += "_;"
			}
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Property: the engine's BGP join equals brute-force evaluation on random
// stores, with and without greedy reordering.
func TestBGPJoinEqualsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const ns = "http://x/"
	for trial := 0; trial < 60; trial++ {
		st := rdf.NewStore()
		for i := 0; i < 40; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%ss%d", ns, rng.Intn(6))),
				P: rdf.NewIRI(fmt.Sprintf("%sp%d", ns, rng.Intn(3))),
				O: rdf.NewIRI(fmt.Sprintf("%so%d", ns, rng.Intn(6))),
			})
		}
		p1 := TriplePattern{
			S: Variable("x"),
			P: PathIRI{IRI: rdf.NewIRI(fmt.Sprintf("%sp%d", ns, rng.Intn(3)))},
			O: Variable("y"),
		}
		p2 := TriplePattern{
			S: Variable("y"),
			P: PathIRI{IRI: rdf.NewIRI(fmt.Sprintf("%sp%d", ns, rng.Intn(3)))},
			O: Variable("z"),
		}
		want := renderBindings(naiveBGP(st, p1, p2), []string{"x", "y", "z"})

		q := &Query{
			Limit: -1,
			Vars:  []string{"x", "y", "z"},
			Where: &Group{Elems: []Element{p1, p2}},
		}
		for _, disable := range []bool{false, true} {
			res, err := EvalQueryOpts(st, q, Options{DisableReorder: disable})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got := renderBindings(res.Bindings, []string{"x", "y", "z"})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (reorder disabled=%v): engine %d, naive %d bindings",
					trial, disable, len(got), len(want))
			}
		}
	}
}

// Property: DISTINCT never increases and LIMIT truncates exactly.
func TestSolutionModifierProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const ns = "http://x/"
	for trial := 0; trial < 30; trial++ {
		st := rdf.NewStore()
		for i := 0; i < 50; i++ {
			st.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("%ss%d", ns, rng.Intn(8))),
				P: rdf.NewIRI(ns + "p"),
				O: rdf.NewIRI(fmt.Sprintf("%so%d", ns, rng.Intn(4))),
			})
		}
		all, err := Eval(st, `SELECT ?o WHERE { ?s <`+ns+`p> ?o }`)
		if err != nil {
			t.Fatal(err)
		}
		distinct, err := Eval(st, `SELECT DISTINCT ?o WHERE { ?s <`+ns+`p> ?o }`)
		if err != nil {
			t.Fatal(err)
		}
		if len(distinct.Bindings) > len(all.Bindings) || len(distinct.Bindings) > 4 {
			t.Fatalf("trial %d: distinct %d > all %d", trial, len(distinct.Bindings), len(all.Bindings))
		}
		k := 1 + rng.Intn(5)
		limited, err := Eval(st, fmt.Sprintf(`SELECT ?o WHERE { ?s <`+ns+`p> ?o } LIMIT %d`, k))
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if len(all.Bindings) < k {
			want = len(all.Bindings)
		}
		if len(limited.Bindings) != want {
			t.Fatalf("trial %d: LIMIT %d returned %d", trial, k, len(limited.Bindings))
		}
	}
}

// Property: inverse path is the converse relation: (x ^p y) ≡ (y p x).
func TestInversePathConverse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const ns = "http://x/"
	st := rdf.NewStore()
	for i := 0; i < 40; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%ss%d", ns, rng.Intn(6))),
			P: rdf.NewIRI(ns + "p"),
			O: rdf.NewIRI(fmt.Sprintf("%so%d", ns, rng.Intn(6))),
		})
	}
	fwd, err := Eval(st, `SELECT ?a ?b WHERE { ?a <`+ns+`p> ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Eval(st, `SELECT ?a ?b WHERE { ?b ^<`+ns+`p> ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	f := renderBindings(fwd.Bindings, []string{"a", "b"})
	g := renderBindings(inv.Bindings, []string{"a", "b"})
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("inverse mismatch: %d vs %d", len(f), len(g))
	}
}
