package sparql

// parallel.go — morsel-driven parallel evaluation of compiled plans. The
// head pattern of the root group (the first step of the activation's join
// order) is materialised once — an index probe streaming its (s, p, o) ID
// matches into a slice — and partitioned into fixed-size morsels; a
// bounded worker pool (see internal/exec) claims morsels from an atomic
// counter, and each worker drives its own backtracking pipeline (private
// row, private group contexts) over its matches under the one shared read
// transaction. Workers buffer solution rows per morsel; the coordinator
// merges the buffers in morsel order and replays them through the
// unchanged DISTINCT / ORDER BY / OFFSET / LIMIT tail, so the parallel
// result is exactly what the serial executor would produce given the same
// head enumeration.
//
// Property-path heads fan out too: the path step's (subject, object)
// frontier is materialised once on the coordinator — exactly the pair list
// the serial step would walk — and the pairs are distributed as (s, 0, o)
// matches through the same worker pipeline. Under ORDER BY the per-morsel
// buffers become sorted runs (sorted in parallel with the serial
// comparator) merged by a loser tree, with ties resolving to the earlier
// morsel, so the merged sequence is exactly the serial stable sort.
//
// The path requires an rdf.ConcurrentReader — a reader whose methods are
// pure reads under the transaction lock. Graphs that fall back to the
// interning adapter, ASK queries (first match wins; nothing to fan out),
// and small posting lists stay serial; every decline records its reason in
// exec.fallback, surfaced as Result.ParallelFallback / StreamInfo.

import (
	"sort"

	sched "crosse/internal/exec"
	"crosse/internal/rdf"
)

// Tuning knobs. Variables rather than constants so the parity suite can
// force the parallel path on small fixtures.
var (
	// parMinMatches is the head-pattern cardinality below which the serial
	// pipeline runs instead.
	parMinMatches = 2048
	// parMorselMatches is the number of head matches per morsel.
	parMorselMatches = 512
)

// tryParallel evaluates the plan on the parallel path when it is
// eligible, reporting done=false to let the serial pipeline take over.
// The caller has already dispatched ASK and LIMIT-0 queries.
func (e *exec) tryParallel() (*Result, bool) {
	p := e.p
	workers := sched.Workers(e.opts.Parallelism)
	if workers <= 1 {
		e.fallback = "parallelism=1"
		return nil, false
	}
	if len(e.row) == 0 {
		e.fallback = "query binds no variables"
		return nil, false
	}
	if len(p.root.patterns) == 0 {
		e.fallback = "no triple patterns"
		return nil, false
	}
	if _, ok := e.r.(rdf.ConcurrentReader); !ok {
		e.fallback = "graph reader is not concurrency-safe"
		return nil, false
	}

	// Activate the root group on the coordinator to learn the join order's
	// head pattern. Activation is deterministic given the empty row and the
	// frozen reader, so every worker reproduces it exactly; if we decline
	// below, the serial path simply re-activates.
	gs := &e.groups[p.root.id]
	e.activate(gs)
	for _, f := range gs.preFilters {
		if !e.filterPasses(f) {
			// A failed constant filter: the group emits nothing.
			return &Result{Vars: p.vars}, true
		}
	}
	head := gs.head
	if head == nil {
		e.fallback = "no driving pattern"
		return nil, false
	}

	// Materialise the head step's matches. This fixes the enumeration
	// order the morsel merge then reproduces.
	var matches []rdf.TermID
	if pp := head.pp; pp.path != nil {
		// Property-path head: materialise the path step's frontier — the
		// exact (subject, object) pair list the serial step walks — and fan
		// the pairs out as (s, 0, o) matches, mirroring the serial
		// sc.match(pr[0], 0, pr[1]) calls.
		pat := headPattern(e, pp)
		pairs := e.pathPairs(pp.path, pat.S, pat.S != 0, pat.O, pat.O != 0)
		if len(pairs) < parMinMatches {
			e.fallback = "driving path frontier below parallel threshold"
			return nil, false
		}
		matches = make([]rdf.TermID, 0, 3*len(pairs))
		for _, pr := range pairs {
			matches = append(matches, pr[0], 0, pr[1])
		}
	} else {
		pat := headPattern(e, pp)
		if e.r.CountIDs(pat) < parMinMatches {
			e.fallback = "driving pattern below parallel threshold"
			return nil, false
		}
		e.r.ForEachIDs(pat, func(s, pr, o rdf.TermID) bool {
			matches = append(matches, s, pr, o)
			return true
		})
	}
	n := len(matches) / 3

	nm := sched.Morsels(n, parMorselMatches)
	pool := sched.NewPool(workers, nm)
	res := make([][]rdf.TermID, nm)
	wks := make([]*parExec, pool.Workers())
	for i := range wks {
		wks[i] = newParExec(e, pool)
	}

	// A completed prefix of morsels can prove a LIMIT satisfied — but only
	// when buffered rows map 1:1 to emitted solutions (no cross-worker
	// DISTINCT collapsing, no sort reordering).
	var limiter *sched.Limiter
	if !e.distinct && len(p.order) == 0 && e.limit >= 0 {
		limiter = sched.NewLimiter(nm, e.limit+e.skip)
	}

	pool.Run(func(w, m int) {
		wks[w].runMorsel(m, matches, res, limiter)
	})

	// Merge in morsel order through the serial tail.
	if len(p.order) > 0 {
		e.mergeSortedRuns(res, workers)
		return &Result{Vars: p.vars, Bindings: e.out}, true
	}
	ns := len(e.row)
	for _, rows := range res {
		for off := 0; off+ns <= len(rows); off += ns {
			if !e.emitFinal(rows[off : off+ns]) {
				return &Result{Vars: p.vars, Bindings: e.out}, true
			}
		}
	}
	return &Result{Vars: p.vars, Bindings: e.out}, true
}

// headPattern builds the head step's probe pattern against the empty row,
// mirroring stepCtx.run.
func headPattern(e *exec, pp *patternPlan) rdf.PatternIDs {
	var pat rdf.PatternIDs
	if pp.s.slot < 0 {
		pat.S = e.ids[pp.s.konst]
	}
	if pp.o.slot < 0 {
		pat.O = e.ids[pp.o.konst]
	}
	if pp.pred >= 0 {
		pat.P = e.ids[pp.pred]
	}
	return pat
}

// parExec is one worker's private executor: its own row, group contexts
// and scratch marks, sharing only the reader and the resolved constant
// table with the coordinator.
type parExec struct {
	e      *exec
	head   *stepCtx
	pool   *sched.Pool
	morsel int
	buf    []rdf.TermID
	seen   map[string]struct{} // worker-local DISTINCT pre-filter
}

func newParExec(parent *exec, pool *sched.Pool) *parExec {
	p := parent.p
	we := &exec{
		p:       p,
		r:       parent.r,
		opts:    parent.opts,
		ids:     parent.ids,
		extra:   parent.extra,
		row:     make([]rdf.TermID, len(p.slotNames)),
		boundEp: make([]uint32, len(p.slotNames)),
		groups:  make([]groupState, p.ngroups),
	}
	we.initGroup(p.root)
	w := &parExec{e: we, pool: pool}
	gs := &we.groups[p.root.id]
	gs.emit = w.collect
	we.activate(gs)
	w.head = gs.head
	if parent.distinct && len(p.order) == 0 {
		// Pre-sort deduplication is arrival-order-safe: a worker's morsel
		// sequence is strictly increasing, so a locally seen key was seen
		// at an earlier global position too. The coordinator's emitFinal
		// re-deduplicates across workers. Under ORDER BY the serial tail
		// deduplicates after sorting, so every row must survive to it.
		w.seen = map[string]struct{}{}
	}
	return w
}

// collect is the worker's emit hook: buffer a copy of the solution row.
func (w *parExec) collect() bool {
	row := w.e.row
	if w.seen != nil {
		key := w.e.projKey(row)
		if _, dup := w.seen[key]; dup {
			return true
		}
		w.seen[key] = struct{}{}
	}
	w.buf = append(w.buf, row...)
	return !w.pool.Cancelled(w.morsel)
}

// runMorsel feeds one morsel of head matches through the worker's
// pipeline, exactly as the head step's index enumeration would have.
func (w *parExec) runMorsel(m int, matches []rdf.TermID, res [][]rdf.TermID, limiter *sched.Limiter) {
	w.morsel = m
	w.buf = nil
	lo, hi := sched.Bounds(m, parMorselMatches, len(matches)/3)
	for i := lo; i < hi; i++ {
		if w.pool.Cancelled(m) {
			break
		}
		if !w.head.match(matches[3*i], matches[3*i+1], matches[3*i+2]) {
			break
		}
	}
	res[m] = w.buf
	if limiter != nil {
		if cut, ok := limiter.Done(m, len(w.buf)/len(w.e.row)); ok {
			w.pool.Cut(cut)
		}
	}
}

// mergeSortedRuns is the parallel ORDER BY tail: each non-empty morsel
// buffer becomes a run, the runs are index-sorted concurrently with the
// serial comparator (rowLess), and a loser-tree k-way merge replays the
// globally ordered sequence through the unchanged DISTINCT / OFFSET /
// LIMIT tail. rowLess is a total order up to byte-identical rows, each
// run's sort is stable, and merge ties resolve to the lower run index
// (= earlier morsel), so the merged sequence is exactly the stable sort
// over the morsel-order concatenation that emitSorted would produce.
func (e *exec) mergeSortedRuns(res [][]rdf.TermID, workers int) {
	ns := len(e.row)
	var runs [][]rdf.TermID
	for _, rows := range res {
		if len(rows) > 0 {
			runs = append(runs, rows)
		}
	}
	idx := make([][]int, len(runs))
	lens := make([]int, len(runs))
	for r, rows := range runs {
		n := len(rows) / ns
		ix := make([]int, n)
		for i := range ix {
			ix[i] = i
		}
		idx[r], lens[r] = ix, n
	}
	rowAt := func(r, i int) []rdf.TermID {
		off := idx[r][i] * ns
		return runs[r][off : off+ns]
	}
	pp := sched.NewPhasedPool(workers)
	// Sorting cannot fail and the comparator only reads frozen state, so
	// the single phase always completes.
	_ = pp.Run(sched.Phase{Morsels: len(runs), Fn: func(_, r int) error {
		ix, rows := idx[r], runs[r]
		sort.SliceStable(ix, func(a, b int) bool {
			return e.rowLess(rows[ix[a]*ns:(ix[a]+1)*ns], rows[ix[b]*ns:(ix[b]+1)*ns])
		})
		return nil
	}})
	lt := sched.NewLoserTree(lens, func(ra, ia, rb, ib int) bool {
		return e.rowLess(rowAt(ra, ia), rowAt(rb, ib))
	})
	for {
		r, i := lt.Next()
		if r < 0 || !e.emitFinal(rowAt(r, i)) {
			return
		}
	}
}
