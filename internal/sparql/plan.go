package sparql

// plan.go — query compilation. Compile lowers a parsed *Query into an
// immutable physical Plan: every variable in the query is assigned a dense
// slot index at compile time, triple patterns and property paths reference
// slots and a shared constant table instead of names and terms, FILTER
// expressions are lowered to slot-resolved evaluator trees with constant
// regex() patterns precompiled, and the projection / ORDER BY / DISTINCT
// machinery is resolved to slot lists. A solution during evaluation is then
// a []rdf.TermID row indexed by slot, not a string-keyed map; see exec.go
// for the streaming executor that runs the plan.
//
// Plans hold structure only — never data and never per-evaluation state —
// so one Plan is safe for concurrent evaluation against many graphs, which
// is what lets internal/core's QueryCache memoise Plans across users and KB
// mutations.

import (
	"fmt"
	"regexp"
	"strings"

	"crosse/internal/rdf"
)

// Options tunes query evaluation. The zero value is the production default.
type Options struct {
	// DisableReorder evaluates BGP triple patterns in source order instead
	// of greedy selectivity-first order. Ablation knob (see the ablation
	// benchmarks); not for production use.
	DisableReorder bool

	// Parallelism caps the worker count of the morsel-driven parallel
	// evaluation path: 0 (the default) means GOMAXPROCS, 1 forces the
	// serial path, larger values bound the fan-out. Evaluation falls back
	// to serial when the graph's reader is not concurrency-safe, the head
	// pattern's posting list is small, or the query shape cannot be
	// partitioned (see parallel.go).
	Parallelism int
}

// Plan is a compiled, immutable physical form of a Query. It is safe for
// concurrent evaluation: all per-evaluation state lives in the executor.
type Plan struct {
	q *Query

	// vars is the projected variable list (SELECT * resolved at compile
	// time); projSlots aligns slot indexes with it.
	vars      []string
	projSlots []int
	varIndex  map[string]int // projected var name → index into vars

	slotNames []string // slot → variable name (diagnostics)

	// consts is the distinct constant-term table. Constants are resolved to
	// IDs once per evaluation (they depend on the target graph's dictionary,
	// not on the query).
	consts []rdf.Term

	root    *groupPlan
	order   []orderKeyPlan
	ngroups int
}

// Query returns the parsed query the plan was compiled from. Shared, not a
// copy: treat it as immutable.
func (p *Plan) Query() *Query { return p.q }

// Vars returns a copy of the projected variable list.
func (p *Plan) Vars() []string { return append([]string(nil), p.vars...) }

// NumVars returns the number of projected variables.
func (p *Plan) NumVars() int { return len(p.vars) }

type orderKeyPlan struct {
	slot int
	desc bool
}

// groupPlan is a compiled group graph pattern: triple patterns (joined in a
// runtime-chosen order), OPTIONAL/UNION blocks in source order, and the
// group's filters (attached to join steps at activation time, see exec.go).
type groupPlan struct {
	id       int
	patterns []*patternPlan
	others   []otherPlan
	filters  []*filterPlan
}

type otherPlan interface{ otherPlan() }

type optionalPlan struct{ group *groupPlan }
type unionPlan struct{ left, right *groupPlan }

func (*optionalPlan) otherPlan() {}
func (*unionPlan) otherPlan()    {}

// nodeRef is a compiled subject/object position: a variable slot, or an
// index into the plan's constant table.
type nodeRef struct {
	slot  int // ≥ 0: variable slot; < 0: constant
	konst int // constant-table index, meaningful when slot < 0
}

// patternPlan is a compiled triple pattern. Exactly one of pred ≥ 0,
// pvar ≥ 0, or path != nil describes the predicate position.
type patternPlan struct {
	s, o nodeRef
	pred int      // constant-table index of a plain IRI predicate, else -1
	pvar int      // slot of a variable predicate, else -1
	path pathPlan // non-nil for a complex property path

	// varSlots lists the distinct variable slots this pattern binds
	// (subject, predicate, object — deduplicated), for join ordering and
	// filter placement.
	varSlots []int
}

// pathPlan mirrors the Path AST with constants lowered to the plan's
// constant table.
type pathPlan interface{ pathPlan() }

type pIRI struct{ konst int }
type pVarStep struct{}
type pSeq struct{ l, r pathPlan }
type pAlt struct{ l, r pathPlan }
type pInv struct{ p pathPlan }
type pClosure struct {
	p        pathPlan
	min, max int
}

func (pIRI) pathPlan()     {}
func (pVarStep) pathPlan() {}
func (pSeq) pathPlan()     {}
func (pAlt) pathPlan()     {}
func (pInv) pathPlan()     {}
func (pClosure) pathPlan() {}

// filterPlan is a compiled FILTER: a slot-resolved expression tree plus the
// distinct variable slots it references (for pushdown placement).
type filterPlan struct {
	e     fexpr
	slots []int
}

// Compile lowers a parsed query into a physical plan. It fails on
// structural errors a parse cannot catch, most importantly invalid constant
// regex() patterns in FILTER expressions (precompiled here, once per plan,
// instead of once per solution).
func Compile(q *Query) (*Plan, error) {
	c := &compiler{
		slots:    map[string]int{},
		constIdx: map[rdf.Term]int{},
	}
	root, err := c.group(q.Where)
	if err != nil {
		return nil, err
	}

	vars := q.Vars
	if q.Star {
		vars = nil
		seen := map[string]struct{}{}
		collectVars(q.Where, &vars, seen)
	}
	projSlots := make([]int, len(vars))
	varIndex := make(map[string]int, len(vars))
	for i, v := range vars {
		projSlots[i] = c.slot(v)
		if _, dup := varIndex[v]; !dup {
			varIndex[v] = i
		}
	}

	order := make([]orderKeyPlan, len(q.Order))
	for i, k := range q.Order {
		order[i] = orderKeyPlan{slot: c.slot(k.Var), desc: k.Desc}
	}

	return &Plan{
		q:         q,
		vars:      vars,
		projSlots: projSlots,
		varIndex:  varIndex,
		slotNames: c.names,
		consts:    c.consts,
		root:      root,
		order:     order,
		ngroups:   c.ngroups,
	}, nil
}

type compiler struct {
	slots    map[string]int
	names    []string
	consts   []rdf.Term
	constIdx map[rdf.Term]int
	ngroups  int
}

func (c *compiler) slot(name string) int {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := len(c.names)
	c.slots[name] = s
	c.names = append(c.names, name)
	return s
}

func (c *compiler) konst(t rdf.Term) int {
	if i, ok := c.constIdx[t]; ok {
		return i
	}
	i := len(c.consts)
	c.constIdx[t] = i
	c.consts = append(c.consts, t)
	return i
}

func (c *compiler) node(n NodePattern) nodeRef {
	if n.IsVar() {
		return nodeRef{slot: c.slot(n.Var)}
	}
	return nodeRef{slot: -1, konst: c.konst(n.Term)}
}

func (c *compiler) group(g *Group) (*groupPlan, error) {
	gp := &groupPlan{id: c.ngroups}
	c.ngroups++
	for _, e := range g.Elems {
		switch el := e.(type) {
		case TriplePattern:
			pp, err := c.pattern(el)
			if err != nil {
				return nil, err
			}
			gp.patterns = append(gp.patterns, pp)
		case Filter:
			fe, err := c.expr(el.Expr)
			if err != nil {
				return nil, err
			}
			fp := &filterPlan{e: fe}
			set := map[int]struct{}{}
			c.exprSlots(el.Expr, set)
			for s := range set {
				fp.slots = append(fp.slots, s)
			}
			gp.filters = append(gp.filters, fp)
		case Optional:
			sub, err := c.group(el.Group)
			if err != nil {
				return nil, err
			}
			gp.others = append(gp.others, &optionalPlan{group: sub})
		case Union:
			l, err := c.group(el.Left)
			if err != nil {
				return nil, err
			}
			r, err := c.group(el.Right)
			if err != nil {
				return nil, err
			}
			gp.others = append(gp.others, &unionPlan{left: l, right: r})
		default:
			return nil, fmt.Errorf("sparql: unknown group element %T", e)
		}
	}
	return gp, nil
}

func (c *compiler) pattern(tp TriplePattern) (*patternPlan, error) {
	pp := &patternPlan{
		s:    c.node(tp.S),
		o:    c.node(tp.O),
		pred: -1,
		pvar: -1,
	}
	switch p := tp.P.(type) {
	case PathIRI:
		pp.pred = c.konst(p.IRI)
	case PathVar:
		pp.pvar = c.slot(p.Name)
	default:
		pp.path = c.path(tp.P)
	}
	add := func(s int) {
		if s < 0 {
			return
		}
		for _, have := range pp.varSlots {
			if have == s {
				return
			}
		}
		pp.varSlots = append(pp.varSlots, s)
	}
	add(pp.s.slot)
	add(pp.pvar)
	add(pp.o.slot)
	return pp, nil
}

func (c *compiler) path(p Path) pathPlan {
	switch pp := p.(type) {
	case PathIRI:
		return pIRI{konst: c.konst(pp.IRI)}
	case PathVar:
		// A variable nested inside a path expression is a wildcard step
		// (its binding is not observable), matching the term-level
		// evaluator's semantics.
		return pVarStep{}
	case PathSeq:
		return pSeq{l: c.path(pp.Left), r: c.path(pp.Right)}
	case PathAlt:
		return pAlt{l: c.path(pp.Left), r: c.path(pp.Right)}
	case PathInverse:
		return pInv{p: c.path(pp.P)}
	case PathClosure:
		return pClosure{p: c.path(pp.P), min: pp.Min, max: pp.Max}
	default:
		// Unknown path types match nothing.
		return pAlt{l: pVarStep{}, r: pVarStep{}}
	}
}

// exprSlots collects the variable slots an expression references.
func (c *compiler) exprSlots(e Expr, set map[int]struct{}) {
	switch ex := e.(type) {
	case VarRef:
		set[c.slot(ex.Name)] = struct{}{}
	case Not:
		c.exprSlots(ex.E, set)
	case Binary:
		c.exprSlots(ex.L, set)
		c.exprSlots(ex.R, set)
	case Call:
		for _, a := range ex.Args {
			c.exprSlots(a, set)
		}
	}
}

// --- FILTER expression lowering ---

// fexpr is a compiled FILTER expression node. eval follows the original
// engine's semantics: an error (unbound variable, arity mistake, unknown
// function) makes the enclosing filter drop the solution, it never fails
// the query. The one exception is an invalid constant regex() pattern,
// which Compile rejects up front.
type fexpr interface {
	eval(ev *exec) (rdf.Term, error)
}

type fLit struct{ t rdf.Term }
type fSlot struct {
	slot int
	name string
}
type fNot struct{ e fexpr }
type fBinary struct {
	op   BinOp
	l, r fexpr
}
type fBound struct{ slot int }
type fStr struct{ e fexpr }
type fIsIRI struct{ e fexpr }
type fIsLit struct{ e fexpr }

// fRegex is regex() with a constant pattern, compiled once per plan.
type fRegex struct {
	arg fexpr
	re  *regexp.Regexp
}

// fDynRegex is regex() whose pattern (or flags) is itself computed per
// solution; it compiles at evaluation time like the original engine did.
type fDynRegex struct {
	arg, pat fexpr
	flags    fexpr // nil when absent
}

// fErr defers a structural error (arity, unknown function) to evaluation
// time, where it drops solutions instead of failing the query — preserving
// the original engine's behaviour.
type fErr struct{ err error }

func (c *compiler) expr(e Expr) (fexpr, error) {
	switch ex := e.(type) {
	case Lit:
		return fLit{t: ex.Term}, nil
	case VarRef:
		return fSlot{slot: c.slot(ex.Name), name: ex.Name}, nil
	case Not:
		sub, err := c.expr(ex.E)
		if err != nil {
			return nil, err
		}
		return fNot{e: sub}, nil
	case Binary:
		l, err := c.expr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(ex.R)
		if err != nil {
			return nil, err
		}
		return fBinary{op: ex.Op, l: l, r: r}, nil
	case Call:
		return c.call(ex)
	default:
		return fErr{err: fmt.Errorf("sparql: unknown expression %T", e)}, nil
	}
}

func (c *compiler) call(ex Call) (fexpr, error) {
	switch ex.Name {
	case "BOUND":
		if len(ex.Args) != 1 {
			return fErr{err: fmt.Errorf("sparql: BOUND takes 1 argument")}, nil
		}
		v, ok := ex.Args[0].(VarRef)
		if !ok {
			return fErr{err: fmt.Errorf("sparql: BOUND argument must be a variable")}, nil
		}
		return fBound{slot: c.slot(v.Name)}, nil
	case "STR", "ISIRI", "ISLITERAL":
		if len(ex.Args) != 1 {
			return fErr{err: fmt.Errorf("sparql: %s takes 1 argument", ex.Name)}, nil
		}
		arg, err := c.expr(ex.Args[0])
		if err != nil {
			return nil, err
		}
		switch ex.Name {
		case "STR":
			return fStr{e: arg}, nil
		case "ISIRI":
			return fIsIRI{e: arg}, nil
		default:
			return fIsLit{e: arg}, nil
		}
	case "REGEX":
		if len(ex.Args) != 2 && len(ex.Args) != 3 {
			return fErr{err: fmt.Errorf("sparql: REGEX takes 2 or 3 arguments")}, nil
		}
		arg, err := c.expr(ex.Args[0])
		if err != nil {
			return nil, err
		}
		patLit, patConst := ex.Args[1].(Lit)
		flagsConst := true
		var flagsLit Lit
		if len(ex.Args) == 3 {
			flagsLit, flagsConst = ex.Args[2].(Lit)
		}
		if patConst && flagsConst {
			pat := patLit.Term.Value
			if len(ex.Args) == 3 && strings.Contains(flagsLit.Term.Value, "i") {
				pat = "(?i)" + pat
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
			}
			return fRegex{arg: arg, re: re}, nil
		}
		pat, err := c.expr(ex.Args[1])
		if err != nil {
			return nil, err
		}
		var flags fexpr
		if len(ex.Args) == 3 {
			if flags, err = c.expr(ex.Args[2]); err != nil {
				return nil, err
			}
		}
		return fDynRegex{arg: arg, pat: pat, flags: flags}, nil
	default:
		return fErr{err: fmt.Errorf("sparql: unknown function %s", ex.Name)}, nil
	}
}
