package sparql

import (
	"reflect"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

func TestOptionalClosureAndNestedGroups(t *testing.T) {
	st := sampleStore()
	// p? optional step: zero or one hop.
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?c WHERE { s:HazardousWaste s:subClassOf? ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "c")
	want := []string{"HazardousWaste", "Waste"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("p? closure: %v", got)
	}
}

func TestPathSeqWithClosure(t *testing.T) {
	st := sampleStore()
	// isA then any number of subClassOf.
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?c WHERE { s:Mercury s:isA/s:subClassOf* ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "c")
	want := []string{"HazardousWaste", "Material", "Waste"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("seq+closure: %v", got)
	}
}

func TestClosureBothSidesUnbound(t *testing.T) {
	st := rdf.NewStore()
	a, b, c := iri("a"), iri("b"), iri("c")
	next := iri("next")
	st.Add(rdf.Triple{S: a, P: next, O: b})
	st.Add(rdf.Triple{S: b, P: next, O: c})
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT ?x ?y WHERE { ?x s:next+ ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	// pairs: a→b, a→c, b→c (c has no outgoing, it is not a subject).
	if len(r.Bindings) != 3 {
		t.Errorf("unbound closure pairs = %d: %v", len(r.Bindings), r.Bindings)
	}
}

func TestFilterStringFunctionsDeep(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA s:HazardousWaste . FILTER (ISIRI(?x) && STR(?x) != "") }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 3 {
		t.Errorf("isiri+str: %d", len(r.Bindings))
	}
	// ISLITERAL on an IRI is false.
	r2, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA s:HazardousWaste . FILTER ISLITERAL(?x) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Bindings) != 0 {
		t.Errorf("ISLITERAL(IRI): %d", len(r2.Bindings))
	}
}

func TestBadConstantRegexIsCompileError(t *testing.T) {
	st := sampleStore()
	// Constant regex patterns are precompiled into the plan, so an invalid
	// one is rejected before evaluation instead of silently dropping every
	// solution per-row.
	if _, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA ?c . FILTER REGEX(STR(?x), "[unclosed") }`); err == nil {
		t.Fatal("invalid constant REGEX pattern must fail at compile time")
	}
	q, err := Parse(`PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:isA ?c . FILTER REGEX(STR(?x), "[unclosed") }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q); err == nil {
		t.Fatal("Compile must reject the invalid pattern")
	}
}

func TestBadDynamicRegexDropsSolutions(t *testing.T) {
	st := sampleStore()
	// A pattern computed per solution can only fail at evaluation time;
	// there the original semantics hold: filter errors drop the solution,
	// they never fail the query.
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:dangerLevel ?d . FILTER REGEX(STR(?x), STR(?d)) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 0 {
		t.Errorf("dynamic regex matching nothing: %d", len(r.Bindings))
	}
}

func TestFilterArityErrors(t *testing.T) {
	st := sampleStore()
	// Arity errors are evaluation errors → solutions dropped, not parse
	// errors (BOUND arity is checked at eval time).
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA ?c . FILTER BOUND(?x, ?c) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 0 {
		t.Errorf("arity error should drop solutions: %d", len(r.Bindings))
	}
}

func TestOrderByUnboundSortsFirst(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x ?d WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } } ORDER BY ?d`)
	if err != nil {
		t.Fatal(err)
	}
	if _, bound := r.Bindings[0]["d"]; bound {
		t.Errorf("unbound must sort first: %v", r.Bindings[0])
	}
}

func TestUnionWithSharedVariableConstraint(t *testing.T) {
	st := sampleStore()
	// The variable bound before the UNION constrains both branches.
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:dangerLevel "high" . { ?x s:isA s:HazardousWaste } UNION { ?x s:foundWith ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	// Mercury: hazard + foundWith(Lead) → 2 solutions; Lead: hazard +
	// foundWith(Zinc) → 2 solutions.
	if len(got) != 4 {
		t.Errorf("union solutions: %v", got)
	}
}

func TestNumericComparisonAcrossIntAndDouble(t *testing.T) {
	st := rdf.NewStore()
	st.Add(rdf.Triple{S: iri("x"), P: iri("v"), O: rdf.NewTypedLiteral("5", rdf.XSDInteger)})
	st.Add(rdf.Triple{S: iri("y"), P: iri("v"), O: rdf.NewTypedLiteral("5.5", rdf.XSDDouble)})
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT ?a WHERE { ?a s:v ?n . FILTER (?n > 5.2) }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "a"); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("cross-type numeric compare: %v", got)
	}
}

func TestBooleanLiteralsInFilters(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA s:PreciousMetal . FILTER (true) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 1 {
		t.Errorf("FILTER(true): %d", len(r.Bindings))
	}
	r, err = Eval(st, `PREFIX s: <`+onto+`>
SELECT ?x WHERE { ?x s:isA s:PreciousMetal . FILTER (false || !false) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 1 {
		t.Errorf("FILTER logic: %d", len(r.Bindings))
	}
}

func TestAskNoMatchAndEmptyGroup(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `ASK { }`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bool {
		t.Error("empty group matches the empty solution → true")
	}
}

func TestQueryStringRendering(t *testing.T) {
	q, err := Parse(`PREFIX s: <` + onto + `>
SELECT DISTINCT ?x WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } FILTER (BOUND(?d)) } ORDER BY ?x LIMIT 3 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT DISTINCT", "OPTIONAL", "FILTER", "ORDER BY", "LIMIT 3", "OFFSET 1", "BOUND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %s", want, s)
		}
	}
}

func TestVariablePredicateBoundByEarlierPattern(t *testing.T) {
	st := sampleStore()
	// ?p gets bound by the first pattern, constrains the second.
	r, err := Eval(st, `PREFIX s: <`+onto+`>
SELECT ?p WHERE { s:Mercury ?p s:Lead . s:Lead ?p s:Zinc }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "p"); !reflect.DeepEqual(got, []string{"foundWith"}) {
		t.Errorf("shared variable predicate: %v", got)
	}
}
