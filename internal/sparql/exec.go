package sparql

// exec.go — the ID-native streaming executor. A compiled Plan evaluates as
// a push-based pipeline over []rdf.TermID rows: each BGP pattern step binds
// variable slots from an index probe and pushes the row to the next step
// (backtracking in place, so intermediate solutions are never materialised),
// OPTIONAL/UNION blocks transform the stream recursively, filters run at
// the first step where all their variables are bound, and terms are decoded
// only at projection. Early termination (ASK, LIMIT without ORDER BY)
// propagates as a stop signal back up the pipeline.
//
// Against *rdf.Store (and every KB view) the whole query runs under a
// single Store.ReadIDs read transaction, so no per-probe locking happens on
// the join path. Other rdf.Graph implementations fall back to an adapter
// that interns terms into a private dictionary on the fly; such graphs must
// tolerate nested ForEach calls.

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"crosse/internal/rdf"
)

// Eval parses, compiles and evaluates src against g.
func Eval(g rdf.Graph, src string) (*Result, error) {
	return EvalOpts(g, src, Options{})
}

// EvalOpts is Eval with evaluation options.
func EvalOpts(g rdf.Graph, src string, o Options) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return EvalQueryOpts(g, q, o)
}

// EvalQuery compiles and evaluates a parsed query against g. Callers that
// re-evaluate the same query should Compile once and use Plan.Eval.
func EvalQuery(g rdf.Graph, q *Query) (*Result, error) {
	return EvalQueryOpts(g, q, Options{})
}

// EvalQueryOpts is EvalQuery with evaluation options.
func EvalQueryOpts(g rdf.Graph, q *Query, o Options) (*Result, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.EvalOpts(g, o)
}

// Eval evaluates the compiled plan against g.
func (p *Plan) Eval(g rdf.Graph) (*Result, error) {
	return p.EvalOpts(g, Options{})
}

// EvalOpts evaluates the compiled plan against g with options.
func (p *Plan) EvalOpts(g rdf.Graph, o Options) (*Result, error) {
	var res *Result
	if ig, ok := g.(rdf.IDGraph); ok {
		ig.ReadIDs(func(r rdf.IDReader) { res = p.run(r, o, nil) })
	} else {
		res = p.run(newGraphAdapter(g), o, nil)
	}
	return res, nil
}

// Solution is one projected solution surfaced by Plan.Stream. It is valid
// only inside the streaming callback; the terms it decodes are plain values
// and safe to retain.
type Solution struct {
	e   *exec
	row []rdf.TermID
}

// Len returns the number of projected variables.
func (s Solution) Len() int { return len(s.e.p.vars) }

// Term returns the value of the i-th projected variable (the order of
// Plan.Vars), reporting false when it is unbound in this solution.
func (s Solution) Term(i int) (rdf.Term, bool) {
	id := s.row[s.e.p.projSlots[i]]
	if id == 0 {
		return rdf.Term{}, false
	}
	return s.e.termOf(id)
}

// Var returns the value of a projected variable by name, reporting false
// when the variable is not projected or unbound.
func (s Solution) Var(name string) (rdf.Term, bool) {
	i, ok := s.e.p.varIndex[name]
	if !ok {
		return rdf.Term{}, false
	}
	return s.Term(i)
}

// Stream evaluates a SELECT plan and pushes each solution to fn without
// materialising Binding maps — the allocation-free path internal/core's
// enrichment pipeline consumes. DISTINCT, ORDER BY, OFFSET and LIMIT are
// honoured exactly as in Eval; fn returning false stops evaluation early.
func (p *Plan) Stream(g rdf.Graph, fn func(Solution) bool) error {
	return p.StreamOpts(g, Options{}, fn)
}

// StreamOpts is Stream with evaluation options.
func (p *Plan) StreamOpts(g rdf.Graph, o Options, fn func(Solution) bool) error {
	_, err := p.StreamInfoOpts(g, o, fn)
	return err
}

// StreamInfo reports per-evaluation facts of a streaming run that are not
// part of the solution stream itself.
type StreamInfo struct {
	// ParallelFallback is empty when the query ran on the morsel-driven
	// parallel path and otherwise names why evaluation fell back to the
	// serial pipeline (see Result.ParallelFallback).
	ParallelFallback string
}

// StreamInfoOpts is StreamOpts returning evaluation metadata alongside the
// stream.
func (p *Plan) StreamInfoOpts(g rdf.Graph, o Options, fn func(Solution) bool) (StreamInfo, error) {
	if p.q.Form == Ask {
		return StreamInfo{}, fmt.Errorf("sparql: Stream requires a SELECT query")
	}
	var res *Result
	if ig, ok := g.(rdf.IDGraph); ok {
		ig.ReadIDs(func(r rdf.IDReader) { res = p.run(r, o, fn) })
	} else {
		res = p.run(newGraphAdapter(g), o, fn)
	}
	return StreamInfo{ParallelFallback: res.ParallelFallback}, nil
}

// --- executor state ---

type exec struct {
	p    *Plan
	r    rdf.IDReader
	opts Options

	// ids resolves the plan's constant table against the target graph's
	// dictionary. Constants the graph has never interned get synthetic IDs
	// (allocated downward from the top of the ID space, far above any dense
	// dictionary ID) recorded in extra: index probes on them naturally match
	// nothing, while decoding and zero-length path semantics still work.
	ids   []rdf.TermID
	extra map[rdf.TermID]rdf.Term

	row    []rdf.TermID
	groups []groupState

	// boundEp/epoch implement clear-free "is this slot bound" scratch marks
	// for the per-activation join ordering and filter placement.
	boundEp []uint32
	epoch   uint32

	// result collection
	sinkFn   func() bool
	streamFn func(Solution) bool
	distinct bool
	seen     map[string]struct{}
	keyBuf   []byte
	skip     int
	limit    int
	count    int
	out      []Binding
	found    bool
	arena    []rdf.TermID // materialised rows for the ORDER BY path
	fallback string       // why the parallel path declined (see tryParallel)
}

type groupState struct {
	e          *exec
	gp         *groupPlan
	steps      []stepCtx
	otherCtxs  []otherCtx
	order      []*stepCtx
	head       *stepCtx
	chosen     []bool
	fdone      []bool
	preFilters []*filterPlan
	endFilters []*filterPlan
	emit       func() bool
}

// stepCtx is the per-pattern execution context. Its match callback and
// chain links are prepared once per exec (and relinked per activation), so
// the hot join loop allocates nothing.
type stepCtx struct {
	e                   *exec
	gs                  *groupState
	pp                  *patternPlan
	next                *stepCtx
	filters             []*filterPlan
	fn                  func(a, b, c rdf.TermID) bool
	sSlot, pSlot, oSlot int
	stopped             bool
}

type otherCtx struct {
	e       *exec
	gs      *groupState
	opt     *optionalPlan
	uni     *unionPlan
	next    *otherCtx
	matched bool
	onOptFn func() bool
	nextFn  func() bool
}

func (p *Plan) run(r rdf.IDReader, o Options, streamFn func(Solution) bool) *Result {
	e := &exec{
		p:       p,
		r:       r,
		opts:    o,
		row:     make([]rdf.TermID, len(p.slotNames)),
		boundEp: make([]uint32, len(p.slotNames)),
		groups:  make([]groupState, p.ngroups),
	}
	e.resolveConsts()
	e.initGroup(p.root)

	if p.q.Form == Ask {
		e.sinkFn = e.collectAsk
		e.runGroup(p.root, e.sinkFn)
		// ASK stays serial by design: the first match wins, so there is
		// nothing to fan out.
		return &Result{Bool: e.found, ParallelFallback: "ask query"}
	}

	e.distinct = p.q.Distinct
	if e.distinct {
		e.seen = map[string]struct{}{}
	}
	e.skip = p.q.Offset
	e.limit = p.q.Limit
	e.streamFn = streamFn
	if p.q.Limit == 0 {
		return &Result{Vars: p.vars, ParallelFallback: "limit 0"}
	}

	// Large head-pattern posting lists take the morsel-driven parallel
	// path (see parallel.go); everything below is the serial pipeline.
	if res, done := e.tryParallel(); done {
		return res
	}

	if len(p.order) == 0 {
		e.sinkFn = e.collect
		e.runGroup(p.root, e.sinkFn)
	} else {
		e.sinkFn = e.collectRow
		e.runGroup(p.root, e.sinkFn)
		e.emitSorted()
	}
	return &Result{Vars: p.vars, Bindings: e.out, ParallelFallback: e.fallback}
}

// resolveConsts translates the plan's constant table to the target graph's
// IDs, assigning synthetic IDs to terms the graph has never seen.
func (e *exec) resolveConsts() {
	if len(e.p.consts) == 0 {
		return
	}
	e.ids = make([]rdf.TermID, len(e.p.consts))
	next := rdf.TermID(^uint32(0))
	for i, t := range e.p.consts {
		if id, ok := e.r.IDOf(t); ok {
			e.ids[i] = id
			continue
		}
		if e.extra == nil {
			e.extra = map[rdf.TermID]rdf.Term{}
		}
		e.ids[i] = next
		e.extra[next] = t
		next--
	}
}

func (e *exec) termOf(id rdf.TermID) (rdf.Term, bool) {
	if t, ok := e.r.TermOf(id); ok {
		return t, true
	}
	if e.extra != nil {
		t, ok := e.extra[id]
		return t, ok
	}
	return rdf.Term{}, false
}

// initGroup wires the static per-group execution contexts (one-time per
// evaluation; activations only relink them).
func (e *exec) initGroup(gp *groupPlan) {
	gs := &e.groups[gp.id]
	gs.e = e
	gs.gp = gp
	gs.steps = make([]stepCtx, len(gp.patterns))
	for i, pp := range gp.patterns {
		sc := &gs.steps[i]
		sc.e = e
		sc.gs = gs
		sc.pp = pp
		sc.sSlot = pp.s.slot
		sc.pSlot = pp.pvar
		sc.oSlot = pp.o.slot
		sc.fn = sc.match
	}
	gs.order = make([]*stepCtx, 0, len(gp.patterns))
	gs.chosen = make([]bool, len(gp.patterns))
	gs.fdone = make([]bool, len(gp.filters))
	gs.otherCtxs = make([]otherCtx, len(gp.others))
	for i, op := range gp.others {
		oc := &gs.otherCtxs[i]
		oc.e = e
		oc.gs = gs
		if i+1 < len(gp.others) {
			oc.next = &gs.otherCtxs[i+1]
		}
		oc.nextFn = oc.runNext
		switch o := op.(type) {
		case *optionalPlan:
			oc.opt = o
			oc.onOptFn = oc.optMatch
			e.initGroup(o.group)
		case *unionPlan:
			oc.uni = o
			e.initGroup(o.left)
			e.initGroup(o.right)
		}
	}
}

// runGroup activates the group for the current row and streams extended
// rows to emit. It reports false when a downstream sink stopped evaluation.
func (e *exec) runGroup(gp *groupPlan, emit func() bool) bool {
	gs := &e.groups[gp.id]
	gs.emit = emit
	e.activate(gs)
	for _, f := range gs.preFilters {
		if !e.filterPasses(f) {
			return true
		}
	}
	if gs.head != nil {
		return gs.head.run()
	}
	return gs.afterPatterns()
}

// activate picks the join order for the group's patterns given what the
// current row already binds (greedy selectivity-first, mirroring the
// engine's pre-compilation behaviour), links the step chain, and places
// each filter at the earliest point where all its variables are guaranteed
// bound: before any pattern (preFilters), after a join step, or — when some
// variable is only ever bound by OPTIONAL/UNION blocks, or never — after
// those blocks (endFilters), preserving group-scope FILTER semantics.
func (e *exec) activate(gs *groupState) {
	gp := gs.gp
	n := len(gp.patterns)
	gs.order = gs.order[:0]
	if e.opts.DisableReorder || n <= 1 {
		for i := 0; i < n; i++ {
			gs.order = append(gs.order, &gs.steps[i])
		}
	} else {
		e.epoch++
		ep := e.epoch
		for i := range gs.chosen {
			gs.chosen[i] = false
		}
		for len(gs.order) < n {
			best, bestCost := -1, int(^uint(0)>>1)
			for i := 0; i < n; i++ {
				if gs.chosen[i] {
					continue
				}
				if cost := e.estimate(gp.patterns[i], ep); cost < bestCost {
					best, bestCost = i, cost
				}
			}
			gs.chosen[best] = true
			gs.order = append(gs.order, &gs.steps[best])
			for _, s := range gp.patterns[best].varSlots {
				e.boundEp[s] = ep
			}
		}
	}
	for i, sc := range gs.order {
		if i+1 < len(gs.order) {
			sc.next = gs.order[i+1]
		} else {
			sc.next = nil
		}
		sc.filters = sc.filters[:0]
	}
	gs.head = nil
	if len(gs.order) > 0 {
		gs.head = gs.order[0]
	}

	gs.preFilters = gs.preFilters[:0]
	gs.endFilters = gs.endFilters[:0]
	if len(gp.filters) == 0 {
		return
	}
	e.epoch++
	ep := e.epoch
	for i := range gs.fdone {
		gs.fdone[i] = false
	}
	for fi, f := range gp.filters {
		if e.allBound(f.slots, ep) {
			gs.preFilters = append(gs.preFilters, f)
			gs.fdone[fi] = true
		}
	}
	for _, sc := range gs.order {
		for _, s := range sc.pp.varSlots {
			e.boundEp[s] = ep
		}
		for fi, f := range gp.filters {
			if !gs.fdone[fi] && e.allBound(f.slots, ep) {
				sc.filters = append(sc.filters, f)
				gs.fdone[fi] = true
			}
		}
	}
	for fi, f := range gp.filters {
		if !gs.fdone[fi] {
			gs.endFilters = append(gs.endFilters, f)
		}
	}
}

func (e *exec) allBound(slots []int, ep uint32) bool {
	for _, s := range slots {
		if e.row[s] == 0 && e.boundEp[s] != ep {
			return false
		}
	}
	return true
}

// estimate guesses a pattern's cardinality for join ordering: constants and
// row-bound variables probe the store's O(1) counters; variables bound by
// already-ordered patterns get the seed engine's /2+1 discount.
func (e *exec) estimate(pp *patternPlan, ep uint32) int {
	var pat rdf.PatternIDs
	sVar, oVar := false, false
	if pp.s.slot >= 0 {
		if id := e.row[pp.s.slot]; id != 0 {
			pat.S = id
		} else if e.boundEp[pp.s.slot] == ep {
			sVar = true
		}
	} else {
		pat.S = e.ids[pp.s.konst]
	}
	if pp.o.slot >= 0 {
		if id := e.row[pp.o.slot]; id != 0 {
			pat.O = id
		} else if e.boundEp[pp.o.slot] == ep {
			oVar = true
		}
	} else {
		pat.O = e.ids[pp.o.konst]
	}
	if pp.pred >= 0 {
		pat.P = e.ids[pp.pred]
	} else if pp.pvar >= 0 {
		pat.P = e.row[pp.pvar]
	}
	c := e.r.CountIDs(pat)
	if sVar && c > 1 {
		c = c/2 + 1
	}
	if oVar && c > 1 {
		c = c/2 + 1
	}
	return c
}

func (gs *groupState) afterPatterns() bool {
	if len(gs.otherCtxs) > 0 {
		return gs.otherCtxs[0].run()
	}
	return gs.finish()
}

func (gs *groupState) finish() bool {
	for _, f := range gs.endFilters {
		if !gs.e.filterPasses(f) {
			return true
		}
	}
	return gs.emit()
}

// run streams the pattern's matches for the current row. Plain (IRI or
// variable) predicates stream directly from an index probe; complex
// property paths materialise their (subject, object) ID pairs first.
func (sc *stepCtx) run() bool {
	e := sc.e
	pp := sc.pp
	var pat rdf.PatternIDs
	if pp.s.slot >= 0 {
		pat.S = e.row[pp.s.slot]
	} else {
		pat.S = e.ids[pp.s.konst]
	}
	if pp.o.slot >= 0 {
		pat.O = e.row[pp.o.slot]
	} else {
		pat.O = e.ids[pp.o.konst]
	}
	if pp.path != nil {
		for _, pr := range e.pathPairs(pp.path, pat.S, pat.S != 0, pat.O, pat.O != 0) {
			if !sc.match(pr[0], 0, pr[1]) {
				return false
			}
		}
		return true
	}
	if pp.pred >= 0 {
		pat.P = e.ids[pp.pred]
	} else {
		pat.P = e.row[pp.pvar]
	}
	sc.stopped = false
	e.r.ForEachIDs(pat, sc.fn)
	return !sc.stopped
}

// match binds the matched IDs into the row (checking consistency for slots
// bound earlier, including duplicate variables within one pattern), pushes
// the row downstream, and backtracks. Returning false stops the enclosing
// index enumeration — that happens only when a sink stopped evaluation, and
// sc.stopped records the distinction from simply filtering the row out.
func (sc *stepCtx) match(ms, mp, mo rdf.TermID) bool {
	row := sc.e.row
	u0, u1, u2 := -1, -1, -1
	if s := sc.sSlot; s >= 0 {
		if row[s] == 0 {
			row[s] = ms
			u0 = s
		} else if row[s] != ms {
			return true
		}
	}
	if s := sc.pSlot; s >= 0 {
		if row[s] == 0 {
			row[s] = mp
			u1 = s
		} else if row[s] != mp {
			if u0 >= 0 {
				row[u0] = 0
			}
			return true
		}
	}
	if s := sc.oSlot; s >= 0 {
		if row[s] == 0 {
			row[s] = mo
			u2 = s
		} else if row[s] != mo {
			if u1 >= 0 {
				row[u1] = 0
			}
			if u0 >= 0 {
				row[u0] = 0
			}
			return true
		}
	}
	ok := sc.advance()
	if u2 >= 0 {
		row[u2] = 0
	}
	if u1 >= 0 {
		row[u1] = 0
	}
	if u0 >= 0 {
		row[u0] = 0
	}
	if !ok {
		sc.stopped = true
	}
	return ok
}

func (sc *stepCtx) advance() bool {
	for _, f := range sc.filters {
		if !sc.e.filterPasses(f) {
			return true
		}
	}
	if sc.next != nil {
		return sc.next.run()
	}
	return sc.gs.afterPatterns()
}

func (oc *otherCtx) run() bool {
	if oc.opt != nil {
		oc.matched = false
		if !oc.e.runGroup(oc.opt.group, oc.onOptFn) {
			return false
		}
		if !oc.matched {
			return oc.runNext()
		}
		return true
	}
	if !oc.e.runGroup(oc.uni.left, oc.nextFn) {
		return false
	}
	return oc.e.runGroup(oc.uni.right, oc.nextFn)
}

func (oc *otherCtx) optMatch() bool {
	oc.matched = true
	return oc.runNext()
}

func (oc *otherCtx) runNext() bool {
	if oc.next != nil {
		return oc.next.run()
	}
	return oc.gs.finish()
}

// --- result collection ---

func (e *exec) collectAsk() bool {
	e.found = true
	return false
}

func (e *exec) collect() bool { return e.emitFinal(e.row) }

func (e *exec) collectRow() bool {
	e.arena = append(e.arena, e.row...)
	return true
}

// emitFinal applies DISTINCT / OFFSET / LIMIT to one solution row and hands
// it to the stream callback or materialises a Binding. It reports false
// when evaluation should stop (LIMIT reached or the stream consumer quit).
func (e *exec) emitFinal(row []rdf.TermID) bool {
	if e.distinct {
		key := e.projKey(row)
		if _, dup := e.seen[key]; dup {
			return true
		}
		e.seen[key] = struct{}{}
	}
	if e.skip > 0 {
		e.skip--
		return true
	}
	if e.streamFn != nil {
		if !e.streamFn(Solution{e: e, row: row}) {
			return false
		}
		e.count++
		return e.limit < 0 || e.count < e.limit
	}
	e.out = append(e.out, e.projectBinding(row))
	return e.limit < 0 || len(e.out) < e.limit
}

// emitSorted orders the materialised rows by the plan's ORDER BY keys
// (stable, unbound-first, numeric-aware) and replays them through emitFinal.
func (e *exec) emitSorted() {
	ns := len(e.row)
	if ns == 0 {
		return
	}
	n := len(e.arena) / ns
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return e.rowLess(e.arena[idx[a]*ns:(idx[a]+1)*ns], e.arena[idx[b]*ns:(idx[b]+1)*ns])
	})
	for _, i := range idx {
		if !e.emitFinal(e.arena[i*ns : (i+1)*ns]) {
			return
		}
	}
}

// rowLess is the ORDER BY comparator shared by the serial sort and the
// parallel run merge: the plan's order keys (unbound-first, numeric-aware)
// followed by a full-row ID comparison as the final tiebreak. The tiebreak
// makes the sort a total order, so ORDER BY output — and any OFFSET/LIMIT
// window over it — is deterministic, independent of index map iteration
// order and identical between the serial and parallel paths.
func (e *exec) rowLess(ra, rb []rdf.TermID) bool {
	for _, k := range e.p.order {
		ta, _ := e.termOfZero(ra[k.slot])
		tb, _ := e.termOfZero(rb[k.slot])
		c := compareTerms(ta, tb)
		if c != 0 {
			if k.desc {
				return c > 0
			}
			return c < 0
		}
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return ra[i] < rb[i]
		}
	}
	return false
}

// termOfZero decodes an ID, mapping the unbound marker to the zero term
// (which compareTerms sorts first).
func (e *exec) termOfZero(id rdf.TermID) (rdf.Term, bool) {
	if id == 0 {
		return rdf.Term{}, false
	}
	return e.termOf(id)
}

// projKey builds the DISTINCT deduplication key from the projected slots'
// IDs — fixed-width ID tuples, no term rendering.
func (e *exec) projKey(row []rdf.TermID) string {
	buf := e.keyBuf[:0]
	for _, s := range e.p.projSlots {
		id := row[s]
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	e.keyBuf = buf
	return string(buf)
}

// projectBinding decodes the projected slots of a row into the public
// map-based Binding form.
func (e *exec) projectBinding(row []rdf.TermID) Binding {
	b := make(Binding, len(e.p.vars))
	for i, v := range e.p.vars {
		if id := row[e.p.projSlots[i]]; id != 0 {
			if t, ok := e.termOf(id); ok {
				b[v] = t
			}
		}
	}
	return b
}

// --- FILTER evaluation over rows ---

func (e *exec) filterPasses(f *filterPlan) bool {
	v, err := f.e.eval(e)
	return err == nil && isTrue(v)
}

func (x fLit) eval(e *exec) (rdf.Term, error) { return x.t, nil }

func (x fSlot) eval(e *exec) (rdf.Term, error) {
	id := e.row[x.slot]
	if id == 0 {
		return rdf.Term{}, errUnbound
	}
	t, ok := e.termOf(id)
	if !ok {
		return rdf.Term{}, errUnbound
	}
	return t, nil
}

func (x fNot) eval(e *exec) (rdf.Term, error) {
	v, err := x.e.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	return boolTerm(!isTrue(v)), nil
}

func (x fBound) eval(e *exec) (rdf.Term, error) {
	return boolTerm(e.row[x.slot] != 0), nil
}

func (x fStr) eval(e *exec) (rdf.Term, error) {
	t, err := x.e.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.NewLiteral(t.Value), nil
}

func (x fIsIRI) eval(e *exec) (rdf.Term, error) {
	t, err := x.e.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	return boolTerm(t.IsIRI()), nil
}

func (x fIsLit) eval(e *exec) (rdf.Term, error) {
	t, err := x.e.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	return boolTerm(t.IsLiteral()), nil
}

func (x fRegex) eval(e *exec) (rdf.Term, error) {
	t, err := x.arg.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	return boolTerm(x.re.MatchString(t.Value)), nil
}

func (x fDynRegex) eval(e *exec) (rdf.Term, error) {
	t, err := x.arg.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	p, err := x.pat.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	pat := p.Value
	if x.flags != nil {
		f, err := x.flags.eval(e)
		if err != nil {
			return rdf.Term{}, err
		}
		if strings.Contains(f.Value, "i") {
			pat = "(?i)" + pat
		}
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return rdf.Term{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
	}
	return boolTerm(re.MatchString(t.Value)), nil
}

func (x fErr) eval(e *exec) (rdf.Term, error) { return rdf.Term{}, x.err }

// eval implements the seed engine's non-3VL AND/OR semantics: an error on
// one side propagates unless the other side decides the outcome.
func (x fBinary) eval(e *exec) (rdf.Term, error) {
	switch x.op {
	case OpAnd, OpOr:
		l, lerr := x.l.eval(e)
		r, rerr := x.r.eval(e)
		if x.op == OpAnd {
			if lerr == nil && !isTrue(l) || rerr == nil && !isTrue(r) {
				return boolTerm(false), nil
			}
			if lerr != nil {
				return rdf.Term{}, lerr
			}
			if rerr != nil {
				return rdf.Term{}, rerr
			}
			return boolTerm(true), nil
		}
		if lerr == nil && isTrue(l) || rerr == nil && isTrue(r) {
			return boolTerm(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return boolTerm(false), nil
	}
	l, err := x.l.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := x.r.eval(e)
	if err != nil {
		return rdf.Term{}, err
	}
	c := compareTerms(l, r)
	switch x.op {
	case OpEq:
		return boolTerm(c == 0), nil
	case OpNe:
		return boolTerm(c != 0), nil
	case OpLt:
		return boolTerm(c < 0), nil
	case OpLe:
		return boolTerm(c <= 0), nil
	case OpGt:
		return boolTerm(c > 0), nil
	case OpGe:
		return boolTerm(c >= 0), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %v", x.op)
}

// --- property paths over IDs ---

// pathPairs materialises the (subject, object) ID pairs connected by a
// complex property path, mirroring the term-level evaluator's semantics
// (including per-operator pair deduplication and zero-length closure
// matches) on dictionary IDs.
func (e *exec) pathPairs(p pathPlan, s rdf.TermID, sBound bool, o rdf.TermID, oBound bool) [][2]rdf.TermID {
	switch pp := p.(type) {
	case pIRI:
		var out [][2]rdf.TermID
		pat := rdf.PatternIDs{P: e.ids[pp.konst]}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		e.r.ForEachIDs(pat, func(ms, _, mo rdf.TermID) bool {
			out = append(out, [2]rdf.TermID{ms, mo})
			return true
		})
		return out
	case pVarStep:
		var out [][2]rdf.TermID
		pat := rdf.PatternIDs{}
		if sBound {
			pat.S = s
		}
		if oBound {
			pat.O = o
		}
		e.r.ForEachIDs(pat, func(ms, _, mo rdf.TermID) bool {
			out = append(out, [2]rdf.TermID{ms, mo})
			return true
		})
		return out
	case pInv:
		inv := e.pathPairs(pp.p, o, oBound, s, sBound)
		out := make([][2]rdf.TermID, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.TermID{pr[1], pr[0]}
		}
		return out
	case pSeq:
		var out [][2]rdf.TermID
		seen := map[[2]rdf.TermID]struct{}{}
		for _, lp := range e.pathPairs(pp.l, s, sBound, 0, false) {
			for _, rp := range e.pathPairs(pp.r, lp[1], true, o, oBound) {
				pair := [2]rdf.TermID{lp[0], rp[1]}
				if _, dup := seen[pair]; !dup {
					seen[pair] = struct{}{}
					out = append(out, pair)
				}
			}
		}
		return out
	case pAlt:
		out := e.pathPairs(pp.l, s, sBound, o, oBound)
		seen := map[[2]rdf.TermID]struct{}{}
		for _, pr := range out {
			seen[pr] = struct{}{}
		}
		for _, pr := range e.pathPairs(pp.r, s, sBound, o, oBound) {
			if _, dup := seen[pr]; !dup {
				out = append(out, pr)
			}
		}
		return out
	case pClosure:
		return e.closurePairs(pp, s, sBound, o, oBound)
	default:
		return nil
	}
}

// closurePairs evaluates p+, p*, p? by BFS over IDs.
func (e *exec) closurePairs(pc pClosure, s rdf.TermID, sBound bool, o rdf.TermID, oBound bool) [][2]rdf.TermID {
	reach := func(start rdf.TermID) []rdf.TermID {
		visited := map[rdf.TermID]int{start: 0}
		frontier := []rdf.TermID{start}
		depth := 0
		for len(frontier) > 0 {
			depth++
			if pc.max >= 0 && depth > pc.max {
				break
			}
			var next []rdf.TermID
			for _, node := range frontier {
				for _, pr := range e.pathPairs(pc.p, node, true, 0, false) {
					if _, ok := visited[pr[1]]; !ok {
						visited[pr[1]] = depth
						next = append(next, pr[1])
					}
				}
			}
			frontier = next
		}
		var out []rdf.TermID
		for node, d := range visited {
			if d >= pc.min {
				out = append(out, node)
			}
		}
		return out
	}

	switch {
	case sBound:
		var out [][2]rdf.TermID
		for _, t := range reach(s) {
			if oBound && t != o {
				continue
			}
			out = append(out, [2]rdf.TermID{s, t})
		}
		return out
	case oBound:
		inv := e.closurePairs(pClosure{p: pInv{p: pc.p}, min: pc.min, max: pc.max}, o, true, 0, false)
		out := make([][2]rdf.TermID, len(inv))
		for i, pr := range inv {
			out[i] = [2]rdf.TermID{pr[1], pr[0]}
		}
		return out
	default:
		subjects := map[rdf.TermID]struct{}{}
		e.r.ForEachIDs(rdf.PatternIDs{}, func(ms, _, _ rdf.TermID) bool {
			subjects[ms] = struct{}{}
			return true
		})
		var out [][2]rdf.TermID
		for sub := range subjects {
			for _, t := range reach(sub) {
				out = append(out, [2]rdf.TermID{sub, t})
			}
		}
		return out
	}
}

// --- fallback adapter for plain rdf.Graph implementations ---

// graphAdapter lets the ID-native executor run against any rdf.Graph by
// interning the terms it streams into a private dictionary. It exists for
// API completeness — every graph the system evaluates against (*rdf.Store
// and the KB views) implements rdf.IDGraph and takes the native path. The
// underlying graph must tolerate nested ForEach calls.
type graphAdapter struct {
	g    rdf.Graph
	dict *rdf.Dict
}

func newGraphAdapter(g rdf.Graph) *graphAdapter {
	return &graphAdapter{g: g, dict: rdf.NewDict()}
}

func (a *graphAdapter) decode(p rdf.PatternIDs) (rdf.Pattern, bool) {
	var pat rdf.Pattern
	if p.S != 0 {
		t, ok := a.dict.TermOf(p.S)
		if !ok {
			return pat, false
		}
		pat.S = t
	}
	if p.P != 0 {
		t, ok := a.dict.TermOf(p.P)
		if !ok {
			return pat, false
		}
		pat.P = t
	}
	if p.O != 0 {
		t, ok := a.dict.TermOf(p.O)
		if !ok {
			return pat, false
		}
		pat.O = t
	}
	return pat, true
}

func (a *graphAdapter) ForEachIDs(p rdf.PatternIDs, fn func(s, pr, o rdf.TermID) bool) {
	pat, ok := a.decode(p)
	if !ok {
		return
	}
	a.g.ForEach(pat, func(t rdf.Triple) bool {
		return fn(a.dict.Encode(t.S), a.dict.Encode(t.P), a.dict.Encode(t.O))
	})
}

func (a *graphAdapter) CountIDs(p rdf.PatternIDs) int {
	pat, ok := a.decode(p)
	if !ok {
		return 0
	}
	return a.g.Count(pat)
}

func (a *graphAdapter) TermOf(id rdf.TermID) (rdf.Term, bool) { return a.dict.TermOf(id) }

func (a *graphAdapter) IDOf(t rdf.Term) (rdf.TermID, bool) { return a.dict.Encode(t), true }
