package sparql

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

const onto = "http://smartground.eu/onto#"

func iri(local string) rdf.Term { return rdf.NewIRI(onto + local) }

func sampleStore() *rdf.Store {
	st := rdf.NewStore()
	add := func(s, p, o string) { st.Add(rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}) }
	add("Mercury", "isA", "HazardousWaste")
	add("Lead", "isA", "HazardousWaste")
	add("Asbestos", "isA", "HazardousWaste")
	add("Gold", "isA", "PreciousMetal")
	add("HazardousWaste", "subClassOf", "Waste")
	add("PreciousMetal", "subClassOf", "Metal")
	add("Metal", "subClassOf", "Material")
	add("Waste", "subClassOf", "Material")
	add("Mercury", "foundWith", "Lead")
	add("Lead", "foundWith", "Zinc")
	st.Add(rdf.Triple{S: iri("Mercury"), P: iri("dangerLevel"), O: rdf.NewLiteral("high")})
	st.Add(rdf.Triple{S: iri("Lead"), P: iri("dangerLevel"), O: rdf.NewLiteral("high")})
	st.Add(rdf.Triple{S: iri("Gold"), P: iri("dangerLevel"), O: rdf.NewLiteral("low")})
	st.Add(rdf.Triple{S: iri("Mercury"), P: iri("weight"), O: rdf.NewTypedLiteral("200.59", rdf.XSDDouble)})
	st.Add(rdf.Triple{S: iri("Lead"), P: iri("weight"), O: rdf.NewTypedLiteral("207.2", rdf.XSDDouble)})
	st.Add(rdf.Triple{S: iri("Gold"), P: iri("weight"), O: rdf.NewTypedLiteral("196.97", rdf.XSDDouble)})
	return st
}

func bindingsOf(t *testing.T, r *Result, v string) []string {
	t.Helper()
	var out []string
	for _, b := range r.Bindings {
		if term, ok := b[v]; ok {
			out = append(out, strings.TrimPrefix(term.Value, onto))
		} else {
			out = append(out, "<unbound>")
		}
	}
	sort.Strings(out)
	return out
}

func TestBasicSelect(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `SELECT ?x WHERE { ?x <`+onto+`isA> <`+onto+`HazardousWaste> }`)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Asbestos", "Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPrefixedNames(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT ?x WHERE { ?x s:isA s:PreciousMetal }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "x"); !reflect.DeepEqual(got, []string{"Gold"}) {
		t.Errorf("got %v", got)
	}
}

func TestBuiltinSmgPrefix(t *testing.T) {
	st := rdf.NewStore()
	st.Add(rdf.Triple{S: rdf.NewIRI(onto + "a"), P: rdf.NewIRI(onto + "p"), O: rdf.NewIRI(onto + "b")})
	r, err := Eval(st, `SELECT ?x WHERE { smg:a smg:p ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 1 {
		t.Errorf("smg: builtin prefix should resolve, got %d bindings", len(r.Bindings))
	}
}

func TestBGPJoin(t *testing.T) {
	st := sampleStore()
	// Elements that are hazardous AND have dangerLevel high.
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:isA s:HazardousWaste . ?x s:dangerLevel "high" }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSelectStar(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT * WHERE { ?s s:foundWith ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Vars, []string{"s", "o"}) {
		t.Errorf("Vars = %v", r.Vars)
	}
	if len(r.Bindings) != 2 {
		t.Errorf("bindings = %d, want 2", len(r.Bindings))
	}
}

func TestFilterComparison(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:weight ?w . FILTER (?w > 200) }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFilterLogicAndRegex(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:dangerLevel ?d . FILTER (?d = "high" && REGEX(STR(?x), "Merc")) }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "x"); !reflect.DeepEqual(got, []string{"Mercury"}) {
		t.Errorf("got %v", got)
	}
	// Case-insensitive flag.
	q2 := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:dangerLevel "low" . FILTER REGEX(STR(?x), "gold", "i") }`
	r2, err := Eval(st, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Bindings) != 1 {
		t.Errorf("case-insensitive regex failed")
	}
}

func TestFilterNotAndNe(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:dangerLevel ?d . FILTER (!(?d = "high")) }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "x"); !reflect.DeepEqual(got, []string{"Gold"}) {
		t.Errorf("got %v", got)
	}
}

func TestOptional(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x ?d WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	// Asbestos has no dangerLevel: must still appear, unbound d.
	foundAsbestosUnbound := false
	for _, b := range r.Bindings {
		if strings.HasSuffix(b["x"].Value, "Asbestos") {
			if _, ok := b["d"]; !ok {
				foundAsbestosUnbound = true
			}
		}
	}
	if !foundAsbestosUnbound {
		t.Error("OPTIONAL must keep Asbestos with unbound ?d")
	}
	if len(r.Bindings) != 4 {
		t.Errorf("got %d solutions, want 4", len(r.Bindings))
	}
}

func TestUnion(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { { ?x s:isA s:PreciousMetal } UNION { ?x s:dangerLevel "high" } }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Gold", "Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDistinctOrderLimitOffset(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT DISTINCT ?d WHERE { ?x s:dangerLevel ?d } ORDER BY ?d`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 2 {
		t.Fatalf("DISTINCT: got %d, want 2", len(r.Bindings))
	}
	if r.Bindings[0]["d"].Value != "high" || r.Bindings[1]["d"].Value != "low" {
		t.Errorf("ORDER BY wrong: %v", r.Bindings)
	}

	q2 := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:weight ?w } ORDER BY DESC(?w) LIMIT 1`
	r2, err := Eval(st, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Bindings) != 1 || !strings.HasSuffix(r2.Bindings[0]["x"].Value, "Lead") {
		t.Errorf("heaviest should be Lead: %v", r2.Bindings)
	}

	q3 := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:weight ?w } ORDER BY ASC(?w) OFFSET 1 LIMIT 1`
	r3, err := Eval(st, q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Bindings) != 1 || !strings.HasSuffix(r3.Bindings[0]["x"].Value, "Mercury") {
		t.Errorf("OFFSET/LIMIT wrong: %v", r3.Bindings)
	}
}

func TestAsk(t *testing.T) {
	st := sampleStore()
	r, err := Eval(st, `PREFIX s: <`+onto+`> ASK { s:Mercury s:isA s:HazardousWaste }`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bool {
		t.Error("ASK should be true")
	}
	r2, err := Eval(st, `PREFIX s: <`+onto+`> ASK { s:Gold s:isA s:HazardousWaste }`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Bool {
		t.Error("ASK should be false")
	}
}

func TestPathSequence(t *testing.T) {
	st := sampleStore()
	// isA/subClassOf: Mercury → HazardousWaste → Waste.
	q := `PREFIX s: <` + onto + `>
SELECT ?c WHERE { s:Mercury s:isA/s:subClassOf ?c }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "c"); !reflect.DeepEqual(got, []string{"Waste"}) {
		t.Errorf("got %v", got)
	}
}

func TestPathAlternative(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { s:Mercury s:foundWith|s:isA ?x }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"HazardousWaste", "Lead"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPathPlusTransitive(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?c WHERE { s:HazardousWaste s:subClassOf+ ?c }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "c")
	want := []string{"Material", "Waste"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPathStarIncludesSelf(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?c WHERE { s:Waste s:subClassOf* ?c }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "c")
	want := []string{"Material", "Waste"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPathInverse(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { s:HazardousWaste ^s:isA ?x }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Asbestos", "Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPathClosureObjectBound(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:subClassOf+ s:Material }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"HazardousWaste", "Metal", "PreciousMetal", "Waste"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestVariablePredicate(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `> SELECT ?p ?o WHERE { s:Gold ?p ?o }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 3 {
		t.Errorf("Gold has 3 facts, got %d", len(r.Bindings))
	}
}

func TestPredicateObjectLists(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:isA s:HazardousWaste ; s:dangerLevel "high" }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := bindingsOf(t, r, "x")
	want := []string{"Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBoundAndIsFunctions(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } FILTER (!BOUND(?d)) }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := bindingsOf(t, r, "x"); !reflect.DeepEqual(got, []string{"Asbestos"}) {
		t.Errorf("got %v", got)
	}
	q2 := `PREFIX s: <` + onto + `>
SELECT ?o WHERE { s:Mercury ?p ?o . FILTER (ISLITERAL(?o)) }`
	r2, err := Eval(st, q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r2.Bindings {
		if !b["o"].IsLiteral() {
			t.Errorf("ISLITERAL let through %v", b["o"])
		}
	}
}

func TestRdfTypeKeywordA(t *testing.T) {
	st := rdf.NewStore()
	st.Add(rdf.Triple{S: iri("Mercury"), P: rdf.NewIRI(rdf.RDFType), O: iri("Element")})
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT ?x WHERE { ?x a s:Element }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 1 {
		t.Errorf("keyword 'a' failed: %v", r.Bindings)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB ?x WHERE { ?x ?p ?o }",
		"SELECT WHERE { ?x ?p ?o }",
		"SELECT ?x { ?x ?p ?o ",
		"SELECT ?x WHERE { ?x ?p ?o } LIMIT x",
		"SELECT ?x WHERE { ?x ?p ?o } ORDER BY",
		`SELECT ?x WHERE { ?x "litpred" ?o }`,
		"SELECT ?x WHERE { ?x unknown:p ?o }",
		"SELECT ?x WHERE { FILTER (?x =) }",
		"SELECT ?x WHERE { { ?x ?p ?o } NOTUNION { ?x ?p ?o } }",
		"SELECT ?x WHERE { ?x ?p ?o } trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsePrintParseFixpoint(t *testing.T) {
	queries := []string{
		`SELECT ?x WHERE { ?x <` + onto + `isA> <` + onto + `HazardousWaste> . }`,
		`SELECT DISTINCT ?x ?y WHERE { ?x <` + onto + `p> ?y . FILTER ((?y > 3)) } ORDER BY DESC(?y) LIMIT 5`,
		`ASK WHERE { <` + onto + `a> <` + onto + `b> "lit" . }`,
		`SELECT ?x WHERE { { ?x <` + onto + `p> ?y . } UNION { ?x <` + onto + `q> ?y . } }`,
		`SELECT ?x WHERE { ?x (<` + onto + `p>/<` + onto + `q>)+ ?y . OPTIONAL { ?y <` + onto + `r> ?z . } }`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if q2.String() != printed {
			t.Errorf("fixpoint failed:\n first: %s\nsecond: %s", printed, q2.String())
		}
	}
}

func TestEvalAgainstLargerGraphChain(t *testing.T) {
	// A chain a0→a1→…→a50; transitive closure from a0 must find all.
	st := rdf.NewStore()
	for i := 0; i < 50; i++ {
		st.Add(rdf.Triple{
			S: iri(fmt.Sprintf("a%d", i)),
			P: iri("next"),
			O: iri(fmt.Sprintf("a%d", i+1)),
		})
	}
	r, err := Eval(st, `PREFIX s: <`+onto+`> SELECT ?x WHERE { s:a0 s:next+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 50 {
		t.Errorf("closure found %d nodes, want 50", len(r.Bindings))
	}
}

func TestFilterOnUnboundDropsSolution(t *testing.T) {
	st := sampleStore()
	q := `PREFIX s: <` + onto + `>
SELECT ?x WHERE { ?x s:isA ?c . OPTIONAL { ?x s:dangerLevel ?d } FILTER (?d = "high") }`
	r, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	// Asbestos (unbound ?d) must be dropped, not error out the query.
	got := bindingsOf(t, r, "x")
	want := []string{"Lead", "Mercury"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
