package fdw

// faultconn.go — the network seam of the fault-injection suite, mirroring
// wal.FaultFS on the durability side: a net.Conn wrapper that injects one
// scripted fault at the Nth read-or-write. Deterministic (the trigger is
// an operation index, not a timer race), honours deadlines while blocking
// (so FaultBlackhole models a peer that stops responding without breaking
// the client's deadline machinery), and sticky where the real failure
// would be (a reset connection stays reset).

import (
	"net"
	"os"
	"sync"
	"time"
)

// FaultMode selects the failure injected at the trigger operation.
type FaultMode int

const (
	// FaultNone passes everything through.
	FaultNone FaultMode = iota
	// FaultLatency stalls the trigger operation for Latency, then lets it
	// proceed. With a stall longer than the request deadline this models
	// a slow peer tripping the timeout.
	FaultLatency
	// FaultError fails the trigger operation with a connection-reset
	// error; the connection is broken from then on.
	FaultError
	// FaultShortWrite writes half of the trigger write's bytes to the
	// peer, then fails; the connection is broken from then on. The peer
	// is left holding a torn frame.
	FaultShortWrite
	// FaultHangup closes the underlying connection at the trigger
	// operation — both directions die mid-stream.
	FaultHangup
	// FaultBlackhole blocks the trigger operation (and every later one)
	// until the deadline expires or the connection is closed: the peer
	// has silently stopped responding.
	FaultBlackhole
)

// errInjectedReset mimics a peer reset without depending on syscall
// errno values.
type injectedError struct{ msg string }

func (e *injectedError) Error() string { return e.msg }

// FaultConn wraps a net.Conn and injects Mode at operation index At
// (0-based, counting reads and writes on this wrapper). FaultShortWrite
// waits for the first write at or after the trigger index; other modes
// fire on whichever operation reaches the index first.
type FaultConn struct {
	inner   net.Conn
	mode    FaultMode
	at      int
	latency time.Duration

	mu     sync.Mutex
	ops    int
	fired  bool
	broken error         // sticky post-fault failure
	dlCh   chan struct{} // closed+replaced whenever a deadline changes
	rdl    time.Time
	wdl    time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// NewFaultConn wraps inner with one scripted fault. latency is only used
// by FaultLatency.
func NewFaultConn(inner net.Conn, mode FaultMode, at int, latency time.Duration) *FaultConn {
	return &FaultConn{
		inner:   inner,
		mode:    mode,
		at:      at,
		latency: latency,
		dlCh:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

type faultAction int

const (
	actPass faultAction = iota
	actLatency
	actError
	actShortWrite
	actHangup
	actBlackhole
	actBroken
)

// step counts one operation and decides what happens to it.
func (c *FaultConn) step(isWrite bool) faultAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return actBroken
	}
	if c.fired && c.mode == FaultBlackhole {
		return actBlackhole
	}
	op := c.ops
	c.ops++
	if c.fired || c.mode == FaultNone || op < c.at {
		return actPass
	}
	// Trigger index reached.
	switch c.mode {
	case FaultLatency:
		c.fired = true
		return actLatency
	case FaultError:
		c.fired = true
		c.broken = &injectedError{"fdw: injected connection reset"}
		return actError
	case FaultShortWrite:
		if !isWrite {
			return actPass // stay armed for the next write
		}
		c.fired = true
		c.broken = &injectedError{"fdw: injected short write"}
		return actShortWrite
	case FaultHangup:
		c.fired = true
		return actHangup
	case FaultBlackhole:
		c.fired = true
		return actBlackhole
	}
	return actPass
}

// wait blocks until the relevant deadline passes, the conn is closed, or
// (bounded wait) d elapses. d <= 0 means wait indefinitely. It returns the
// error to surface, or nil when the bounded wait simply completed.
func (c *FaultConn) wait(d time.Duration, read bool) error {
	var boundCh <-chan time.Time
	if d > 0 {
		bt := time.NewTimer(d)
		defer bt.Stop()
		boundCh = bt.C
	}
	for {
		c.mu.Lock()
		dl := c.wdl
		if read {
			dl = c.rdl
		}
		ch := c.dlCh
		c.mu.Unlock()
		var dlCh <-chan time.Time
		if !dl.IsZero() {
			remain := time.Until(dl)
			if remain <= 0 {
				return os.ErrDeadlineExceeded
			}
			dt := time.NewTimer(remain)
			defer dt.Stop()
			dlCh = dt.C
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-boundCh:
			return nil
		case <-dlCh:
			return os.ErrDeadlineExceeded
		case <-ch:
			// deadline changed: reevaluate
		}
	}
}

func (c *FaultConn) Read(p []byte) (int, error) {
	switch c.step(false) {
	case actLatency:
		if err := c.wait(c.latency, true); err != nil {
			return 0, err
		}
	case actError:
		return 0, &injectedError{"fdw: injected connection reset"}
	case actHangup:
		c.inner.Close()
	case actBlackhole:
		err := c.wait(0, true)
		if err == nil {
			err = os.ErrDeadlineExceeded
		}
		return 0, err
	case actBroken:
		c.mu.Lock()
		err := c.broken
		c.mu.Unlock()
		return 0, err
	}
	return c.inner.Read(p)
}

func (c *FaultConn) Write(p []byte) (int, error) {
	switch c.step(true) {
	case actLatency:
		if err := c.wait(c.latency, false); err != nil {
			return 0, err
		}
	case actError:
		return 0, &injectedError{"fdw: injected connection reset"}
	case actShortWrite:
		n, _ := c.inner.Write(p[:len(p)/2])
		return n, &injectedError{"fdw: injected short write"}
	case actHangup:
		c.inner.Close()
	case actBlackhole:
		err := c.wait(0, false)
		if err == nil {
			err = os.ErrDeadlineExceeded
		}
		return 0, err
	case actBroken:
		c.mu.Lock()
		err := c.broken
		c.mu.Unlock()
		return 0, err
	}
	return c.inner.Write(p)
}

func (c *FaultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

func (c *FaultConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *FaultConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *FaultConn) SetDeadline(t time.Time) error {
	c.setDeadlines(t, t)
	return c.inner.SetDeadline(t)
}

func (c *FaultConn) SetReadDeadline(t time.Time) error {
	c.setDeadlines(t, c.peekWriteDeadline())
	return c.inner.SetReadDeadline(t)
}

func (c *FaultConn) SetWriteDeadline(t time.Time) error {
	c.setDeadlines(c.peekReadDeadline(), t)
	return c.inner.SetWriteDeadline(t)
}

func (c *FaultConn) setDeadlines(r, w time.Time) {
	c.mu.Lock()
	c.rdl, c.wdl = r, w
	close(c.dlCh) // wake blocked ops to reevaluate
	c.dlCh = make(chan struct{})
	c.mu.Unlock()
}

func (c *FaultConn) peekReadDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rdl
}

func (c *FaultConn) peekWriteDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wdl
}

var _ net.Conn = (*FaultConn)(nil)
