package fdw

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

// newRemote builds a "remote" database with a registry table.
func newRemote(t *testing.T, rows int) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	if _, err := sqlexec.Exec(db, `CREATE TABLE eu_registry (landfill TEXT, country TEXT, tons DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("eu_registry")
	countries := []string{"IT", "FR", "DE", "ES"}
	for i := 0; i < rows; i++ {
		err := tab.Insert([]sqlval.Value{
			sqlval.NewString(fmt.Sprintf("lf%03d", i)),
			sqlval.NewString(countries[i%len(countries)]),
			sqlval.NewFloat(float64(i) * 1.5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// pipePair wires a client to a server over an in-process connection.
func pipePair(t *testing.T, remote *sqldb.Database) *Client {
	t.Helper()
	srv := NewServer(remote)
	a, b := net.Pipe()
	go srv.ServeConn(a)
	c := NewClient(b)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTablesAndSchema(t *testing.T) {
	c := pipePair(t, newRemote(t, 4))
	tables, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "eu_registry" {
		t.Errorf("tables = %v", tables)
	}
	ft, err := c.ForeignTable("eu_registry", "")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Name() != "eu_registry" || len(ft.Schema()) != 3 {
		t.Errorf("schema = %v", ft.Schema())
	}
	if ft.Schema()[2].Type != sqlval.TypeFloat {
		t.Errorf("type roundtrip: %v", ft.Schema()[2].Type)
	}
}

func TestForeignScanMatchesLocal(t *testing.T) {
	remote := newRemote(t, 20)
	c := pipePair(t, remote)
	ft, err := c.ForeignTable("eu_registry", "remote_registry")
	if err != nil {
		t.Fatal(err)
	}
	var got, want []string
	ft.Scan(func(row []sqlval.Value) bool {
		got = append(got, row[0].Str()+"|"+row[1].Str()+"|"+row[2].String())
		return true
	})
	local, _ := remote.Table("eu_registry")
	local.Scan(func(row []sqlval.Value) bool {
		want = append(want, row[0].Str()+"|"+row[1].Str()+"|"+row[2].String())
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestPushdownTransfersOnlyMatches(t *testing.T) {
	remote := newRemote(t, 100)
	c := pipePair(t, remote)
	ft, err := c.ForeignTable("eu_registry", "")
	if err != nil {
		t.Fatal(err)
	}
	_, rows0 := c.Stats()
	n := 0
	if err := ft.ScanEq("country", sqlval.NewString("IT"), func([]sqlval.Value) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	_, rows1 := c.Stats()
	if n != 25 {
		t.Errorf("matches = %d, want 25", n)
	}
	if transferred := rows1 - rows0; transferred != 25 {
		t.Errorf("pushdown transferred %d rows, want 25", transferred)
	}
}

func TestEarlyStopStillUsableAfter(t *testing.T) {
	remote := newRemote(t, 50)
	c := pipePair(t, remote)
	ft, _ := c.ForeignTable("eu_registry", "")
	n := 0
	ft.Scan(func([]sqlval.Value) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop at %d", n)
	}
	// Connection must still be usable: protocol drains to the Done marker.
	m := 0
	if err := ft.Scan(func([]sqlval.Value) bool { m++; return true }); err != nil {
		t.Fatal(err)
	}
	if m != 50 {
		t.Errorf("second scan rows = %d", m)
	}
}

func TestQueryThroughEngine(t *testing.T) {
	remote := newRemote(t, 40)
	c := pipePair(t, remote)
	local := engine.Open()
	if _, err := local.ExecScript(`
		CREATE TABLE my_landfills (name TEXT, eu_id TEXT);
		INSERT INTO my_landfills VALUES ('a', 'lf001'), ('b', 'lf002'), ('c', 'lf999')`); err != nil {
		t.Fatal(err)
	}
	ft, err := c.ForeignTable("eu_registry", "eu_registry")
	if err != nil {
		t.Fatal(err)
	}
	if err := local.RegisterForeign(ft); err != nil {
		t.Fatal(err)
	}
	// Join a local table against the remote registry.
	r, err := local.Query(`SELECT m.name, r.country
		FROM my_landfills m JOIN eu_registry r ON m.eu_id = r.landfill
		ORDER BY m.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2", len(r.Rows))
	}
	if r.Rows[0][1].Str() != "FR" { // lf001 → index 1 → FR
		t.Errorf("country = %v", r.Rows[0][1])
	}
}

// An equality predicate on a foreign table ships to the remote node: the
// compiled executor pushes `col = const` into ForeignTable.ScanEq, and the
// result must match the pushdown-disabled plan (full fetch + local filter).
func TestCompiledPushdownToRemote(t *testing.T) {
	remote := newRemote(t, 40)
	c := pipePair(t, remote)
	local := engine.Open()
	ft, err := c.ForeignTable("eu_registry", "eu_registry")
	if err != nil {
		t.Fatal(err)
	}
	if err := local.RegisterForeign(ft); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT landfill, country FROM eu_registry WHERE landfill = 'lf003'`
	pushed, err := local.QueryOpts(q, sqlexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fetched, err := local.QueryOpts(q, sqlexec.Options{DisableIndexSeek: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pushed.Rows) != 1 || len(fetched.Rows) != 1 {
		t.Fatalf("rows: pushed=%d fetched=%d, want 1", len(pushed.Rows), len(fetched.Rows))
	}
	if pushed.Rows[0][1].Str() != fetched.Rows[0][1].Str() {
		t.Errorf("pushdown changed the result: %v vs %v", pushed.Rows[0], fetched.Rows[0])
	}
}

func TestAttachImportsAllTables(t *testing.T) {
	remote := newRemote(t, 5)
	if _, err := sqlexec.Exec(remote, `CREATE TABLE other (x INT)`); err != nil {
		t.Fatal(err)
	}
	c := pipePair(t, remote)
	local := engine.Open()
	n, err := c.Attach(local.Catalog(), "rm_")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("attached %d", n)
	}
	if _, err := local.Query(`SELECT COUNT(*) FROM rm_eu_registry`); err != nil {
		t.Error(err)
	}
	if _, err := local.Query(`SELECT COUNT(*) FROM rm_other`); err != nil {
		t.Error(err)
	}
}

func TestRemoteErrors(t *testing.T) {
	c := pipePair(t, newRemote(t, 1))
	if _, err := c.ForeignTable("nope", ""); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Errorf("want remote error, got %v", err)
	}
	ft, _ := c.ForeignTable("eu_registry", "")
	err := ft.ScanEq("nocol", sqlval.NewInt(1), func([]sqlval.Value) bool { return true })
	if err == nil {
		t.Error("remote scan error must propagate")
	}
	// Client still usable after remote error.
	if _, err := c.Tables(); err != nil {
		t.Errorf("client wedged after error: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	remote := newRemote(t, 10)
	srv := NewServer(remote)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ft, err := c.ForeignTable("eu_registry", "")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ft.Scan(func([]sqlval.Value) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("rows = %d", n)
	}
	// Two clients concurrently.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Tables(); err != nil {
		t.Error(err)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []sqlval.Value{
		sqlval.Null,
		sqlval.NewInt(-42),
		sqlval.NewFloat(3.25),
		sqlval.NewString("it's \"quoted\"\nwith newline"),
		sqlval.NewBool(true),
		sqlval.NewBool(false),
	}
	for _, v := range vals {
		w, err := encodeVal(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := decodeVal(w)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsNull() {
			if !back.IsNull() {
				t.Errorf("null round trip: %v", back)
			}
			continue
		}
		if !v.Equal(back) {
			t.Errorf("round trip %v != %v", v, back)
		}
	}
	if _, err := decodeVal(wireVal{T: "z"}); err == nil {
		t.Error("unknown tag must fail")
	}
}
