// Package fdw implements the foreign-data-wrapper substrate: the role
// postgres_fdw plays in the paper's SmartGround deployment ("communication
// between data sources relies on the postgres_fdw extension", Sec. I-A).
// A Server exposes the tables of a sqldb.Database over a line-oriented JSON
// protocol; a Client registers them as foreign tables in another engine,
// with equality-predicate pushdown so filters run remotely.
package fdw

import (
	"encoding/json"
	"fmt"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// request is one client→server message.
type request struct {
	Op    string   `json:"op"`              // "tables" | "schema" | "scan"
	Table string   `json:"table,omitempty"` // for schema/scan
	EqCol string   `json:"eq_col,omitempty"`
	EqVal *wireVal `json:"eq_val,omitempty"`
	Limit int      `json:"limit,omitempty"` // 0 = unlimited
}

// response is one server→client message. For scans the server sends a
// sequence of row responses terminated by one with Done=true.
type response struct {
	Err     string    `json:"err,omitempty"`
	Tables  []string  `json:"tables,omitempty"`
	Columns []wireCol `json:"columns,omitempty"`
	Row     []wireVal `json:"row,omitempty"`
	Done    bool      `json:"done,omitempty"`
}

// wireCol serialises a schema column.
type wireCol struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NotNull bool   `json:"not_null,omitempty"`
}

// wireVal serialises a sqlval.Value.
type wireVal struct {
	T string          `json:"t"` // "n" null, "i" int, "f" float, "s" string, "b" bool
	V json.RawMessage `json:"v,omitempty"`
}

func encodeVal(v sqlval.Value) (wireVal, error) {
	switch v.Type() {
	case sqlval.TypeNull:
		return wireVal{T: "n"}, nil
	case sqlval.TypeInt:
		raw, err := json.Marshal(v.Int())
		return wireVal{T: "i", V: raw}, err
	case sqlval.TypeFloat:
		raw, err := json.Marshal(v.Float())
		return wireVal{T: "f", V: raw}, err
	case sqlval.TypeString:
		raw, err := json.Marshal(v.Str())
		return wireVal{T: "s", V: raw}, err
	case sqlval.TypeBool:
		raw, err := json.Marshal(v.Bool())
		return wireVal{T: "b", V: raw}, err
	default:
		return wireVal{}, fmt.Errorf("fdw: cannot encode value of type %v", v.Type())
	}
}

func decodeVal(w wireVal) (sqlval.Value, error) {
	switch w.T {
	case "n":
		return sqlval.Null, nil
	case "i":
		var i int64
		if err := json.Unmarshal(w.V, &i); err != nil {
			return sqlval.Null, fmt.Errorf("fdw: bad int payload: %w", err)
		}
		return sqlval.NewInt(i), nil
	case "f":
		var f float64
		if err := json.Unmarshal(w.V, &f); err != nil {
			return sqlval.Null, fmt.Errorf("fdw: bad float payload: %w", err)
		}
		return sqlval.NewFloat(f), nil
	case "s":
		var s string
		if err := json.Unmarshal(w.V, &s); err != nil {
			return sqlval.Null, fmt.Errorf("fdw: bad string payload: %w", err)
		}
		return sqlval.NewString(s), nil
	case "b":
		var b bool
		if err := json.Unmarshal(w.V, &b); err != nil {
			return sqlval.Null, fmt.Errorf("fdw: bad bool payload: %w", err)
		}
		return sqlval.NewBool(b), nil
	default:
		return sqlval.Null, fmt.Errorf("fdw: unknown value tag %q", w.T)
	}
}

func encodeSchema(s sqldb.Schema) []wireCol {
	out := make([]wireCol, len(s))
	for i, c := range s {
		out[i] = wireCol{Name: c.Name, Type: c.Type.String(), NotNull: c.NotNull}
	}
	return out
}

func decodeSchema(cols []wireCol) (sqldb.Schema, error) {
	out := make(sqldb.Schema, len(cols))
	for i, c := range cols {
		t, err := sqlval.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		out[i] = sqldb.Column{Name: c.Name, Type: t, NotNull: c.NotNull}
	}
	return out, nil
}
