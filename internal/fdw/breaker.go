package fdw

// breaker.go — a per-source circuit breaker. Every remote operation asks
// Allow before touching the network and reports its outcome afterwards;
// once the peer has failed FailureThreshold consecutive times the circuit
// opens and requests fail fast with ErrSourceDown (no connection attempt)
// until a probe interval elapses. The first request after the interval is
// the half-open probe: its success closes the circuit, its failure re-opens
// it for another interval. This is the txn2 pkg/health discipline applied
// to FDW peers: a down registry costs one deadline per probe interval, not
// one per query.

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the probe interval elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; everything else
	// fails fast until it reports.
	BreakerHalfOpen
)

// String renders the state for health endpoints and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes a circuit breaker. The zero value picks defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the circuit
	// (default 3). Every success resets the count, so the effective
	// failure rate needed to trip is 100% over the window — transient
	// blips retried successfully never accumulate.
	FailureThreshold int
	// Probe is how long an open circuit waits before letting one request
	// through as a half-open probe (default 2s).
	Probe time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Probe <= 0 {
		c.Probe = 2 * time.Second
	}
	return c
}

// Breaker is one source's circuit. Methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
	lastErr  error     // the failure that opened (or is keeping open) the circuit

	// cumulative counters for the health registry
	trips     int // times the circuit opened
	rejected  int // requests failed fast while open
	succeeded int
	failed    int
}

// NewBreaker builds a breaker with the given config (zero value = defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a request may proceed. When the circuit is open and
// the probe interval has not elapsed it returns a *SourceDownError (wrapping
// ErrSourceDown) carrying the failure that opened the circuit; the caller
// must not touch the network. A nil return from Allow obliges the caller to
// report the outcome via Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Probe {
			b.state = BreakerHalfOpen
			b.probing = true
			return nil // this request is the probe
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	b.rejected++
	return &SourceDownError{State: b.state, Reason: b.lastErr}
}

// Success reports a completed request: the circuit closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.succeeded++
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.lastErr = nil
}

// Failure reports a failed request. A failed half-open probe re-opens the
// circuit immediately; while closed, reaching FailureThreshold consecutive
// failures opens it.
func (b *Breaker) Failure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failed++
	b.lastErr = err
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerOpen:
		// A request admitted before the circuit opened finished late;
		// nothing changes.
	}
}

// open transitions to BreakerOpen. Caller holds b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.failures = 0
	b.trips++
}

// State returns the current circuit position and the failure keeping it
// open (nil when closed).
func (b *Breaker) State() (BreakerState, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.lastErr
}

// breakerCounters is the registry-facing snapshot of cumulative outcomes.
type breakerCounters struct {
	trips, rejected, succeeded, failed int
}

func (b *Breaker) counters() breakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerCounters{trips: b.trips, rejected: b.rejected, succeeded: b.succeeded, failed: b.failed}
}
