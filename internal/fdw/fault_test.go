package fdw

// fault_test.go — the resilience suite. A randomized property test drives
// the client through scripted connection faults (FaultConn) and asserts the
// federation contract: every operation ends within its deadline with either
// the complete correct result or a typed error — never a hang, never a
// silent partial. Deterministic tests cover the breaker state machine, the
// Close race, the server-side error drain paths, graceful degradation
// under PartialResults, and circuit recovery.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crosse/internal/engine"
	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

// faultDialer hands the client one connection per dial, wrapping the first
// nFaulted of them with the scripted fault; later dials get clean pipes.
// Each connection is served by its own server goroutine.
type faultDialer struct {
	srv      *Server
	mode     FaultMode
	at       int
	latency  time.Duration
	nFaulted int32

	dials atomic.Int32
}

func (d *faultDialer) dial() (net.Conn, error) {
	a, b := net.Pipe()
	go d.srv.ServeConn(a)
	if d.dials.Add(1) <= d.nFaulted {
		return NewFaultConn(b, d.mode, d.at, d.latency), nil
	}
	return b, nil
}

// scanAll collects every eu_registry row as strings via a raw scan round
// trip (no schema fetch, so the trial's op budget is spent on the scan).
func scanAll(c *Client, ctx context.Context) ([]string, error) {
	var got []string
	err := c.roundTrip(ctx, &request{Op: "scan", Table: "eu_registry"}, func(row []sqlval.Value) bool {
		got = append(got, row[0].Str()+"|"+row[1].Str()+"|"+row[2].String())
		return true
	})
	return got, err
}

// TestFaultProperty is the randomized property suite: 48 trials, each with
// a random fault mode injected at a random operation of the first
// connection. Invariant per trial: the scan returns within a bounded time,
// and a nil error implies the complete, correct result. Afterwards the
// client must recover: a follow-up scan over a clean connection succeeds.
func TestFaultProperty(t *testing.T) {
	remote := newRemote(t, 20)
	var want []string
	tab, _ := remote.Table("eu_registry")
	tab.Scan(func(row []sqlval.Value) bool {
		want = append(want, row[0].Str()+"|"+row[1].Str()+"|"+row[2].String())
		return true
	})

	modes := []FaultMode{FaultNone, FaultLatency, FaultError, FaultShortWrite, FaultHangup, FaultBlackhole}
	rng := rand.New(rand.NewSource(7))
	const trials = 48
	const reqTimeout = 200 * time.Millisecond

	for trial := 0; trial < trials; trial++ {
		mode := modes[rng.Intn(len(modes))]
		at := rng.Intn(16)
		latency := time.Duration(rng.Intn(400)) * time.Millisecond
		t.Run(fmt.Sprintf("trial%02d_mode%d_at%d", trial, mode, at), func(t *testing.T) {
			t.Parallel()
			d := &faultDialer{srv: NewServer(remote), mode: mode, at: at, latency: latency, nFaulted: 1}
			c := NewClientDialer(Config{
				RequestTimeout: reqTimeout,
				Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
				Breaker:        BreakerConfig{FailureThreshold: 100, Probe: time.Millisecond},
			}, d.dial)
			defer c.Close()

			start := time.Now()
			got, err := scanAll(c, context.Background())
			elapsed := time.Since(start)

			// Bounded: one deadline plus retries' backoff plus slack. A
			// hang fails here (and -timeout catches a total wedge).
			if limit := 4*reqTimeout + time.Second; elapsed > limit {
				t.Fatalf("scan took %v (limit %v): not deadline-bounded", elapsed, limit)
			}
			if err == nil {
				if len(got) != len(want) {
					t.Fatalf("nil error with %d/%d rows: silent partial result", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
					}
				}
			} else {
				t.Logf("typed error after %v: %v", elapsed, err)
			}

			// Recovery: the next scan runs over a clean connection.
			got, err = scanAll(c, context.Background())
			if err != nil {
				t.Fatalf("post-fault scan failed: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("post-fault scan rows = %d, want %d", len(got), len(want))
			}
		})
	}
}

// TestBreakerStateMachine walks closed → open → half-open → closed with an
// injected clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Probe: time.Second})
	b.now = func() time.Time { return now }
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.Failure(boom)
	}
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	// A success resets the consecutive-failure count.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("failure %d rejected early: %v", i, err)
		}
		b.Failure(boom)
	}
	if st, _ := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	// Open: fail fast with the typed error.
	err := b.Allow()
	if err == nil || !errors.Is(err, ErrSourceDown) {
		t.Fatalf("open breaker Allow = %v, want ErrSourceDown", err)
	}
	var sd *SourceDownError
	if !errors.As(err, &sd) || sd.Reason != boom {
		t.Fatalf("rejection must carry the opening failure, got %v", err)
	}

	// After the probe interval one request goes through as the probe.
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if st, _ := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", st)
	}
	// Concurrent requests are rejected while the probe is pending.
	if err := b.Allow(); err == nil {
		t.Fatal("second request during probe must fail fast")
	}
	// Probe failure re-opens for another interval.
	b.Failure(boom)
	if st, _ := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if st, lastErr := b.State(); st != BreakerClosed || lastErr != nil {
		t.Fatalf("state after successful probe = %v (lastErr %v), want closed/nil", st, lastErr)
	}
}

// TestRetryRedialsTransparently: a connection that dies mid-stream costs
// one retry, not the result — the client re-dials and re-runs the request.
func TestRetryRedialsTransparently(t *testing.T) {
	remote := newRemote(t, 10)
	// Hangup on the very first server response: the request is sent, the
	// stream dies before any row arrives, so the retry is duplicate-free.
	d := &faultDialer{srv: NewServer(remote), mode: FaultHangup, at: 1, nFaulted: 1}
	c := NewClientDialer(Config{
		RequestTimeout: time.Second,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}, d.dial)
	defer c.Close()

	got, err := scanAll(c, context.Background())
	if err != nil {
		t.Fatalf("scan with one hangup: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("rows = %d, want 10", len(got))
	}
	if c.Retries() == 0 {
		t.Error("expected at least one transparent retry")
	}
	if d.dials.Load() < 2 {
		t.Errorf("dials = %d, want a re-dial", d.dials.Load())
	}
}

// TestNoRetryAfterRowsDelivered: a fault after rows reached the consumer
// must surface ErrInterrupted, not a transparent retry that would
// duplicate rows.
func TestNoRetryAfterRowsDelivered(t *testing.T) {
	remote := newRemote(t, 10)
	// Op 0 is the request write; ops 1.. are reads. Kill the conn at the
	// 4th read, after some rows were decoded and delivered.
	d := &faultDialer{srv: NewServer(remote), mode: FaultHangup, at: 4, nFaulted: 1}
	c := NewClientDialer(Config{
		RequestTimeout: time.Second,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}, d.dial)
	defer c.Close()

	got, err := scanAll(c, context.Background())
	if err == nil {
		t.Fatalf("expected mid-stream interruption, got %d clean rows", len(got))
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error = %v, want ErrInterrupted", err)
	}
	if len(got) == 0 {
		t.Fatal("test needs delivered rows before the fault; got none")
	}
	if len(got) >= 10 {
		t.Fatalf("got %d rows, fault never fired", len(got))
	}
}

// TestRequestDeadline: a blackholed peer costs one request deadline, not a
// hang.
func TestRequestDeadline(t *testing.T) {
	remote := newRemote(t, 10)
	d := &faultDialer{srv: NewServer(remote), mode: FaultBlackhole, at: 1, nFaulted: 99}
	c := NewClientDialer(Config{
		RequestTimeout: 100 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}, d.dial)
	defer c.Close()

	start := time.Now()
	_, err := scanAll(c, context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("blackholed peer must fail the request")
	}
	if !isDeadline(err) && !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("note: error is not a deadline error: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline took %v, want ~100ms", elapsed)
	}
}

// TestContextCancellation: cancelling the caller's context aborts a
// blocked round trip promptly.
func TestContextCancellation(t *testing.T) {
	remote := newRemote(t, 10)
	d := &faultDialer{srv: NewServer(remote), mode: FaultBlackhole, at: 1, nFaulted: 99}
	c := NewClientDialer(Config{
		RequestTimeout: -1, // no request deadline: only the context bounds it
		Retry:          RetryPolicy{MaxAttempts: 1},
	}, d.dial)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := scanAll(c, ctx)
	if err == nil {
		t.Fatal("cancelled scan must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
}

// TestCloseDuringScan: Close racing an in-flight round trip surfaces
// ErrClientClosed (not a decoder panic or a garbage read).
func TestCloseDuringScan(t *testing.T) {
	remote := sqldb.NewDatabase()
	if err := remote.RegisterForeign(&slowRel{name: "slow", rows: 200, delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(remote)
	a, b := net.Pipe()
	go srv.ServeConn(a)
	c := NewClientConfig(b, Config{Retry: RetryPolicy{MaxAttempts: 1}})

	errc := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		n := 0
		errc <- c.roundTrip(context.Background(), &request{Op: "scan", Table: "slow"}, func([]sqlval.Value) bool {
			n++
			if n == 3 {
				close(started)
			}
			return true
		})
	}()
	<-started
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("scan closed mid-flight must error")
		}
		if !errors.Is(err, ErrClientClosed) && !errors.Is(err, ErrInterrupted) {
			t.Fatalf("error = %v, want ErrClientClosed (or ErrInterrupted wrapping it)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scan did not return after Close")
	}
	// Every operation on a closed client fails with the typed error.
	if _, err := c.Tables(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Tables on closed client = %v, want ErrClientClosed", err)
	}
}

// slowRel is a relation whose scan sleeps between rows — enough time for a
// concurrent Close to land mid-stream.
type slowRel struct {
	name  string
	rows  int
	delay time.Duration
}

func (s *slowRel) Name() string { return s.name }
func (s *slowRel) Schema() sqldb.Schema {
	return sqldb.Schema{{Name: "n", Type: sqlval.TypeInt}}
}
func (s *slowRel) Scan(fn func([]sqlval.Value) bool) error {
	for i := 0; i < s.rows; i++ {
		time.Sleep(s.delay)
		if !fn([]sqlval.Value{sqlval.NewInt(int64(i))}) {
			return nil
		}
	}
	return nil
}

// errRel streams emit rows and then fails — the server-side error paths.
type errRel struct {
	name string
	emit int
}

func (e *errRel) Name() string { return e.name }
func (e *errRel) Schema() sqldb.Schema {
	return sqldb.Schema{{Name: "n", Type: sqlval.TypeInt}}
}
func (e *errRel) Scan(fn func([]sqlval.Value) bool) error {
	for i := 0; i < e.emit; i++ {
		if !fn([]sqlval.Value{sqlval.NewInt(int64(i))}) {
			return nil
		}
	}
	return fmt.Errorf("storage exploded after %d rows", e.emit)
}

// TestServerErrorDrain covers the server-side error paths of roundTrip:
// the remote scan fails before any row, mid-stream after rows were
// delivered, and on the final row. In every case the client sees a typed
// remote error, stays protocol-synced, and remains usable.
func TestServerErrorDrain(t *testing.T) {
	for _, emit := range []int{0, 3, 9} {
		t.Run(fmt.Sprintf("afterRows%d", emit), func(t *testing.T) {
			remote := newRemote(t, 1)
			if err := remote.RegisterForeign(&errRel{name: "flaky", emit: emit}); err != nil {
				t.Fatal(err)
			}
			c := pipePair(t, remote)

			delivered := 0
			err := c.roundTrip(context.Background(), &request{Op: "scan", Table: "flaky"},
				func([]sqlval.Value) bool { delivered++; return true })
			if err == nil {
				t.Fatal("remote scan error must propagate")
			}
			if !strings.Contains(err.Error(), "storage exploded") {
				t.Fatalf("error = %v, want the remote failure text", err)
			}
			var re *remoteError
			if !errors.As(err, &re) {
				t.Fatalf("error = %T, want *remoteError (protocol stayed in sync)", err)
			}
			if errors.Is(err, ErrInterrupted) {
				t.Fatal("remote errors are not stream interruptions: no retry ambiguity")
			}
			if delivered != emit {
				t.Fatalf("delivered %d rows before the error, want %d", delivered, emit)
			}

			// A remote error neither drops the connection nor trips the
			// breaker: the peer is alive.
			if st, _ := c.Breaker().State(); st != BreakerClosed {
				t.Fatalf("breaker = %v after remote error, want closed", st)
			}
			if _, err := c.Tables(); err != nil {
				t.Fatalf("client unusable after remote error: %v", err)
			}
			got, err := scanAll(c, context.Background())
			if err != nil || len(got) != 1 {
				t.Fatalf("follow-up scan = %d rows, %v", len(got), err)
			}
		})
	}
}

// TestEarlyStopThenError: the consumer stops mid-scan and the remote then
// errors during the drain — the consumer already has everything it asked
// for, so the round trip reports success.
func TestEarlyStopThenError(t *testing.T) {
	remote := newRemote(t, 1)
	if err := remote.RegisterForeign(&errRel{name: "flaky", emit: 6}); err != nil {
		t.Fatal(err)
	}
	c := pipePair(t, remote)
	n := 0
	err := c.roundTrip(context.Background(), &request{Op: "scan", Table: "flaky"},
		func([]sqlval.Value) bool { n++; return n < 2 })
	if err != nil {
		t.Fatalf("early-stopped scan = %v, want nil (consumer got all it asked for)", err)
	}
	if n != 2 {
		t.Fatalf("consumed %d rows, want 2", n)
	}
	// Client still usable afterwards (over the same or a fresh conn).
	if _, err := c.Tables(); err != nil {
		t.Fatalf("client unusable after early stop: %v", err)
	}
}

// twoSourceEngine attaches two remote registries, healthy + faultable,
// and returns the local engine plus source B's dialer swap control.
type flipDialer struct {
	srv     *Server
	blocked atomic.Bool
}

func (d *flipDialer) dial() (net.Conn, error) {
	a, b := net.Pipe()
	go d.srv.ServeConn(a)
	if d.blocked.Load() {
		return NewFaultConn(b, FaultBlackhole, 0, 0), nil
	}
	return b, nil
}

// TestGracefulDegradationTwoSources is the tentpole acceptance test: two
// remote sources; source B becomes a blackhole. Default mode fails fast
// with ErrSourceDown once the breaker opens; PartialResults returns the
// healthy source's rows with B named in SkippedSources; after B recovers,
// the half-open probe closes the circuit and full results resume.
func TestGracefulDegradationTwoSources(t *testing.T) {
	remoteA := sqldb.NewDatabase()
	if _, err := sqlexec.Exec(remoteA, `CREATE TABLE reg_a (id INT, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tabA, _ := remoteA.Table("reg_a")
	for i := 0; i < 4; i++ {
		tabA.Insert([]sqlval.Value{sqlval.NewInt(int64(i)), sqlval.NewString(fmt.Sprintf("a%d", i))})
	}
	remoteB := sqldb.NewDatabase()
	if _, err := sqlexec.Exec(remoteB, `CREATE TABLE reg_b (id INT, grade TEXT)`); err != nil {
		t.Fatal(err)
	}
	tabB, _ := remoteB.Table("reg_b")
	for i := 0; i < 4; i++ {
		tabB.Insert([]sqlval.Value{sqlval.NewInt(int64(i)), sqlval.NewString(fmt.Sprintf("g%d", i))})
	}

	dA := &flipDialer{srv: NewServer(remoteA)}
	dB := &flipDialer{srv: NewServer(remoteB)}
	cfg := Config{
		RequestTimeout: 100 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 1},
		Breaker:        BreakerConfig{FailureThreshold: 1, Probe: 150 * time.Millisecond},
	}
	cfgA := cfg
	cfgA.Name = "source-a"
	cfgB := cfg
	cfgB.Name = "source-b"
	cA := NewClientDialer(cfgA, dA.dial)
	cB := NewClientDialer(cfgB, dB.dial)
	defer cA.Close()
	defer cB.Close()

	local := engine.Open()
	if _, err := cA.Attach(local.Catalog(), "ra_"); err != nil {
		t.Fatal(err)
	}
	if _, err := cB.Attach(local.Catalog(), "rb_"); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT a.name, b.grade FROM ra_reg_a a LEFT JOIN rb_reg_b b ON a.id = b.id ORDER BY a.name`

	// Baseline: both sources healthy, grades joined in.
	res, err := local.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][1].IsNull() {
		t.Fatalf("baseline = %d rows (first grade %v)", len(res.Rows), res.Rows[0][1])
	}

	// Source B goes dark: current connection dies, re-dials blackhole.
	dB.blocked.Store(true)
	cB.dropConn(mustConn(t, cB))

	// First query eats one deadline on B and trips its breaker.
	if _, err := local.Query(q); err == nil {
		t.Fatal("query with blackholed source must fail in default mode")
	}
	if st, _ := cB.Breaker().State(); st != BreakerOpen {
		t.Fatalf("breaker B = %v after deadline, want open", st)
	}

	// Now the circuit is open: fail fast with the typed error, no deadline.
	start := time.Now()
	_, err = local.Query(q)
	if err == nil || !errors.Is(err, ErrSourceDown) {
		t.Fatalf("open-circuit query error = %v, want ErrSourceDown", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("fail-fast took %v, want instant (no network touch)", elapsed)
	}

	// Degraded mode: healthy source's rows survive, B's side is NULL,
	// and the skipped source is named.
	res, err = local.QueryOpts(q, sqlexec.Options{PartialResults: true})
	if err != nil {
		t.Fatalf("partial-results query: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("degraded rows = %d, want 4 (healthy source intact)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].IsNull() || !row[1].IsNull() {
			t.Fatalf("degraded row %d = %v, want (name, NULL)", i, row)
		}
	}
	if len(res.SkippedSources) != 1 || res.SkippedSources[0] != "source-b" {
		t.Fatalf("SkippedSources = %v, want [source-b]", res.SkippedSources)
	}

	// B recovers. After the probe interval the next query is the half-open
	// probe: it succeeds, closes the circuit, and full results resume.
	dB.blocked.Store(false)
	time.Sleep(cfg.Breaker.Probe + 20*time.Millisecond)
	res, err = local.Query(q)
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if len(res.Rows) != 4 || res.Rows[0][1].IsNull() {
		t.Fatalf("post-recovery rows = %d (first grade %v), want full join", len(res.Rows), res.Rows[0][1])
	}
	if st, _ := cB.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker B = %v after recovery, want closed", st)
	}
}

// mustConn digs out the client's current connection (test-only).
func mustConn(t *testing.T, c *Client) net.Conn {
	t.Helper()
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn == nil {
		t.Fatal("client has no live connection")
	}
	return c.conn
}

// TestHealthRegistry: snapshots reflect breaker state and PollOnce's pings
// both probe and timestamp each source.
func TestHealthRegistry(t *testing.T) {
	remote := newRemote(t, 3)
	d := &flipDialer{srv: NewServer(remote)}
	c := NewClientDialer(Config{
		Name:           "registry-x",
		RequestTimeout: 100 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 1},
		Breaker:        BreakerConfig{FailureThreshold: 1, Probe: 100 * time.Millisecond},
	}, d.dial)
	defer c.Close()

	h := NewHealth()
	h.Register(c)
	h.PollOnce(context.Background())
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Name != "registry-x" || !snap[0].Healthy() {
		t.Fatalf("snapshot = %+v, want healthy registry-x", snap)
	}
	if snap[0].LastProbe.IsZero() {
		t.Error("PollOnce must record the probe time")
	}
	if !h.AllHealthy() {
		t.Error("AllHealthy with a closed circuit")
	}

	// Source dies: the next poll trips the breaker and reports it.
	d.blocked.Store(true)
	c.dropConn(mustConn(t, c))
	h.PollOnce(context.Background())
	snap = h.Snapshot()
	if snap[0].Healthy() || snap[0].State != "open" {
		t.Fatalf("snapshot after death = %+v, want open", snap[0])
	}
	if snap[0].LastErr == "" {
		t.Error("open circuit must report its reason")
	}
	if h.AllHealthy() {
		t.Error("AllHealthy with an open circuit")
	}

	// Recovery via polling alone: after the probe interval the ping closes
	// the circuit.
	d.blocked.Store(false)
	time.Sleep(120 * time.Millisecond)
	h.PollOnce(context.Background())
	if snap = h.Snapshot(); !snap[0].Healthy() {
		t.Fatalf("snapshot after recovery = %+v, want closed", snap[0])
	}
}

var _ sqldb.Relation = (*slowRel)(nil)
var _ sqldb.Relation = (*errRel)(nil)
