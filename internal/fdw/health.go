package fdw

// health.go — the per-source health registry. Every attached remote source
// registers its Client; the registry pings each one on an interval (the
// probe that closes a half-open circuit once the peer returns) and exposes
// a snapshot that crosse-server serves via GET /api/admin/sources and
// folds into GET /healthz.

import (
	"context"
	"sort"
	"sync"
	"time"
)

// SourceStatus is one source's externally visible health.
type SourceStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"` // closed | open | half-open
	LastErr  string `json:"last_error,omitempty"`
	Requests int    `json:"requests"`
	Rows     int    `json:"rows"`
	Retries  int    `json:"retries"`
	Trips    int    `json:"circuit_trips"`
	Rejected int    `json:"rejected_fast"`
	Failed   int    `json:"failed"`
	// LastProbe is when the registry last pinged the source (zero before
	// the first poll).
	LastProbe time.Time `json:"last_probe,omitempty"`
}

// Healthy reports whether the circuit is closed.
func (s SourceStatus) Healthy() bool { return s.State == BreakerClosed.String() }

// Health is a registry of remote sources. Safe for concurrent use.
type Health struct {
	mu      sync.Mutex
	sources map[string]*Client
	probed  map[string]time.Time
}

// NewHealth builds an empty registry.
func NewHealth() *Health {
	return &Health{sources: map[string]*Client{}, probed: map[string]time.Time{}}
}

// Register adds (or replaces) a source under its client name.
func (h *Health) Register(c *Client) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sources[c.Name()] = c
}

// Snapshot reports every registered source's health, sorted by name. It
// never blocks behind in-flight requests.
func (h *Health) Snapshot() []SourceStatus {
	h.mu.Lock()
	clients := make([]*Client, 0, len(h.sources))
	for _, c := range h.sources {
		clients = append(clients, c)
	}
	probed := make(map[string]time.Time, len(h.probed))
	for k, v := range h.probed {
		probed[k] = v
	}
	h.mu.Unlock()

	out := make([]SourceStatus, 0, len(clients))
	for _, c := range clients {
		state, lastErr := c.breaker.State()
		cnt := c.breaker.counters()
		reqs, rows := c.Stats()
		st := SourceStatus{
			Name:      c.Name(),
			State:     state.String(),
			Requests:  reqs,
			Rows:      rows,
			Retries:   c.Retries(),
			Trips:     cnt.trips,
			Rejected:  cnt.rejected,
			Failed:    cnt.failed,
			LastProbe: probed[c.Name()],
		}
		if lastErr != nil {
			st.LastErr = lastErr.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllHealthy reports whether every registered source's circuit is closed
// (vacuously true with no sources).
func (h *Health) AllHealthy() bool {
	for _, s := range h.Snapshot() {
		if !s.Healthy() {
			return false
		}
	}
	return true
}

// Poll pings every registered source once per interval until ctx is done.
// A ping through an open circuit waits out the breaker's probe interval
// and then becomes the half-open probe, so a recovered peer is readmitted
// within one breaker-probe + one poll interval without any query traffic.
func (h *Health) Poll(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.PollOnce(ctx)
		}
	}
}

// PollOnce pings every registered source once (exported for tests and for
// readiness checks that want an immediate probe).
func (h *Health) PollOnce(ctx context.Context) {
	h.mu.Lock()
	clients := make([]*Client, 0, len(h.sources))
	for _, c := range h.sources {
		clients = append(clients, c)
	}
	h.mu.Unlock()
	for _, c := range clients {
		_ = c.Ping(ctx) // outcome lands in the breaker either way
		h.mu.Lock()
		h.probed[c.Name()] = time.Now()
		h.mu.Unlock()
	}
}
