package fdw

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// Config tunes a Client's resilience envelope. The zero value picks
// defaults.
type Config struct {
	// Name identifies the source in errors, health reports and partial
	// results. Defaults to the dialled address (or "fdw" for raw conns).
	Name string
	// DialTimeout bounds each (re)connect attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one whole round trip — send, stream, drain —
	// enforced through net.Conn.SetDeadline so a stalled peer cannot hang
	// the query (default 30s). A caller context with an earlier deadline
	// tightens it per call; RequestTimeout < 0 disables the deadline.
	RequestTimeout time.Duration
	// Retry bounds the transparent retry loop for transient transport
	// failures (see RetryPolicy).
	Retry RetryPolicy
	// Breaker tunes the per-source circuit breaker (see BreakerConfig).
	Breaker BreakerConfig
}

const (
	defaultDialTimeout    = 5 * time.Second
	defaultRequestTimeout = 30 * time.Second
)

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = defaultRequestTimeout
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// errNoRedial marks a lost connection on a client built over a raw conn
// (NewClient): there is no address to re-dial, so the loss is permanent.
var errNoRedial = errors.New("fdw: connection lost and client cannot redial")

// Client talks to one remote FDW server and manufactures foreign tables
// that the local engine scans as if they were local (the postgres_fdw
// client role). A Client serialises requests: one in flight at a time.
//
// The client is resilient by default: every round trip runs under a
// deadline, transient transport failures retry with capped exponential
// backoff on a fresh connection (the protocol is stateless per request,
// so re-dialling re-attaches the session transparently — foreign tables
// keep working across peer restarts), and a per-source circuit breaker
// fails fast with ErrSourceDown once the peer is known down. A dropped
// connection therefore never permanently poisons the foreign tables
// attached through it.
type Client struct {
	name string
	cfg  Config
	// dial opens a fresh connection, bounded by timeout. Nil for clients
	// over a raw conn (net.Pipe): no re-dial is possible.
	dial    func(timeout time.Duration) (net.Conn, error)
	breaker *Breaker

	mu sync.Mutex // serialises round trips

	// Connection lifecycle, guarded separately from mu so Close and the
	// health registry never wait behind an in-flight round trip.
	connMu sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	closed bool

	// stats for the experiment harness and the health registry (atomic:
	// read while requests are in flight)
	requests atomic.Int64
	rowsIn   atomic.Int64
	retries  atomic.Int64

	// terminal payloads of the most recent round trip (guarded by mu)
	lastTables []string
	lastSchema []wireCol
}

// Dial connects to a server address with default resilience settings.
func Dial(addr string) (*Client, error) { return DialConfig(addr, Config{}) }

// DialConfig connects to a server address. The initial connection is
// established eagerly (so a bad address fails at attach time); later
// connection losses re-dial transparently under cfg.
func DialConfig(addr string, cfg Config) (*Client, error) {
	if cfg.Name == "" {
		cfg.Name = addr
	}
	c := newClient(cfg, func(timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	conn, err := c.dial(c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.setConn(conn)
	return c, nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe)
// with default resilience settings. Without an address there is no
// re-dial: a lost connection is permanent.
func NewClient(conn net.Conn) *Client { return NewClientConfig(conn, Config{}) }

// NewClientConfig wraps an established connection with explicit settings.
func NewClientConfig(conn net.Conn, cfg Config) *Client {
	if cfg.Name == "" {
		cfg.Name = "fdw"
	}
	c := newClient(cfg, nil)
	c.setConn(conn)
	return c
}

// NewClientDialer builds a client around a connection factory — the
// network seam the fault-injection suite uses to hand out FaultConn-wrapped
// connections. The first connection is established lazily.
func NewClientDialer(cfg Config, dial func() (net.Conn, error)) *Client {
	if cfg.Name == "" {
		cfg.Name = "fdw"
	}
	return newClient(cfg, func(time.Duration) (net.Conn, error) { return dial() })
}

func newClient(cfg Config, dial func(time.Duration) (net.Conn, error)) *Client {
	cfg = cfg.withDefaults()
	return &Client{name: cfg.Name, cfg: cfg, dial: dial, breaker: NewBreaker(cfg.Breaker)}
}

// Name returns the source name used in errors and health reports.
func (c *Client) Name() string { return c.name }

// Breaker exposes the client's circuit breaker (health registry, tests).
func (c *Client) Breaker() *Breaker { return c.breaker }

// setConn installs a fresh connection and its codec pair.
func (c *Client) setConn(conn net.Conn) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.conn = conn
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
}

// Close closes the connection and marks the client closed. An in-flight
// round trip fails promptly with ErrClientClosed — Close never waits for
// it and never leaves the decoder reading a yanked connection.
func (c *Client) Close() error {
	c.connMu.Lock()
	c.closed = true
	conn := c.conn
	c.conn, c.dec, c.enc = nil, nil, nil
	c.connMu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

func (c *Client) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// dropConn discards conn after a transport error (the stream may be
// desynchronised; the next attempt starts clean). Only the connection it
// was handed is dropped — a concurrent Close/re-dial is left alone.
func (c *Client) dropConn(conn net.Conn) {
	c.connMu.Lock()
	if c.conn == conn {
		c.conn, c.dec, c.enc = nil, nil, nil
	}
	c.connMu.Unlock()
	conn.Close()
}

// ensureConn returns the live connection, re-dialling if the previous one
// was dropped. remain bounds the dial when a request deadline is pending.
func (c *Client) ensureConn(remain time.Duration) (net.Conn, *json.Decoder, *json.Encoder, error) {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, nil, nil, ErrClientClosed
	}
	if c.conn != nil {
		conn, dec, enc := c.conn, c.dec, c.enc
		c.connMu.Unlock()
		return conn, dec, enc, nil
	}
	dial := c.dial
	c.connMu.Unlock()
	if dial == nil {
		return nil, nil, nil, errNoRedial
	}
	timeout := c.cfg.DialTimeout
	if remain > 0 && remain < timeout {
		timeout = remain
	}
	conn, err := dial(timeout)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fdw: dial: %w", err)
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return nil, nil, nil, ErrClientClosed
	}
	c.conn = conn
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
	dec, enc := c.dec, c.enc
	c.connMu.Unlock()
	return conn, dec, enc, nil
}

// Stats reports how many requests were issued and rows received — used by
// experiment E7 to demonstrate pushdown savings. Safe to call while a
// request is in flight.
func (c *Client) Stats() (requests, rows int) {
	return int(c.requests.Load()), int(c.rowsIn.Load())
}

// Retries reports how many transparent retry attempts the client has made.
func (c *Client) Retries() int { return int(c.retries.Load()) }

// roundTrip sends a request and consumes responses, invoking onRow per
// row, until the Done message. It enforces the request deadline, consults
// the circuit breaker, and retries transient transport failures on a
// fresh connection as long as no row has been delivered to onRow (the
// operations are idempotent reads, but a mid-stream retry would duplicate
// rows — those surface as ErrInterrupted instead).
func (c *Client) roundTrip(ctx context.Context, req *request, onRow func([]sqlval.Value) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests.Add(1)

	var deadline time.Time
	if c.cfg.RequestTimeout > 0 {
		deadline = time.Now().Add(c.cfg.RequestTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	for attempt := 1; ; attempt++ {
		if err := c.breaker.Allow(); err != nil {
			var sd *SourceDownError
			if errors.As(err, &sd) {
				sd.Source = c.name
			}
			return err
		}
		delivered, err := c.attempt(ctx, deadline, req, onRow)
		if err == nil {
			c.breaker.Success()
			return nil
		}
		var re *remoteError
		if errors.As(err, &re) {
			// The peer answered in-protocol: it is alive and the stream
			// is in sync. Application errors never retry.
			c.breaker.Success()
			return err
		}
		if errors.Is(err, ErrClientClosed) {
			c.breaker.Failure(err) // releases a pending half-open probe
			return err
		}
		c.breaker.Failure(err)
		if delivered > 0 {
			return fmt.Errorf("%w (source %q, %d row(s) delivered): %v", ErrInterrupted, c.name, delivered, err)
		}
		if !isTransient(err) {
			return err
		}
		if attempt >= c.cfg.Retry.MaxAttempts {
			return fmt.Errorf("fdw: source %q: %d attempt(s) failed: %w", c.name, attempt, err)
		}
		// Back off, bounded by the request deadline and the context.
		d := c.cfg.Retry.delay(attempt)
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				return fmt.Errorf("fdw: source %q: deadline exhausted after %d attempt(s): %w", c.name, attempt, err)
			}
			if d > remain {
				d = remain
			}
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("fdw: source %q: %w (last transport error: %v)", c.name, ctx.Err(), err)
		case <-t.C:
		}
		c.retries.Add(1)
	}
}

// attempt runs one try of a round trip on the current (or a fresh)
// connection. It reports how many rows reached onRow; on any transport
// error the connection is dropped so the next attempt starts clean.
func (c *Client) attempt(ctx context.Context, deadline time.Time, req *request, onRow func([]sqlval.Value) bool) (delivered int, err error) {
	var remain time.Duration
	if !deadline.IsZero() {
		remain = time.Until(deadline)
		if remain <= 0 {
			return 0, fmt.Errorf("fdw: request deadline expired: %w", context.DeadlineExceeded)
		}
	}
	conn, dec, enc, err := c.ensureConn(remain)
	if err != nil {
		return 0, err
	}
	if !deadline.IsZero() {
		_ = conn.SetDeadline(deadline)
	}
	// Context cancellation fires the connection deadline immediately, so a
	// blocked read/write aborts promptly even without a timeout.
	stopWatch := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stopWatch()

	if err := enc.Encode(req); err != nil {
		c.dropConn(conn)
		return 0, c.transportErr(err)
	}
	stopped := false
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			c.dropConn(conn)
			if stopped {
				// The consumer already stopped; it received everything it
				// asked for. The torn drain only costs the connection.
				return delivered, nil
			}
			return delivered, c.transportErr(err)
		}
		if resp.Err != "" {
			// Drain until Done if not already.
			if !resp.Done {
				continue
			}
			if stopped {
				// The consumer stopped before the remote failed; it received
				// everything it asked for and the stream is at the protocol
				// boundary, so the late error is as free as a drain tear.
				return delivered, nil
			}
			return delivered, &remoteError{resp.Err}
		}
		if resp.Row != nil && onRow != nil && !stopped {
			row := make([]sqlval.Value, len(resp.Row))
			for i, wv := range resp.Row {
				v, err := decodeVal(wv)
				if err != nil {
					c.dropConn(conn)
					return delivered, err
				}
				row[i] = v
			}
			c.rowsIn.Add(1)
			delivered++
			if !onRow(row) {
				// Consumer is done; keep draining to protocol boundary.
				stopped = true
			}
			continue
		}
		if resp.Done {
			c.lastTables = resp.Tables
			c.lastSchema = resp.Columns
			if !deadline.IsZero() {
				_ = conn.SetDeadline(time.Time{})
			}
			return delivered, nil
		}
	}
}

// transportErr maps low-level failures: errors caused by Close surface as
// ErrClientClosed instead of a garbage "closed pipe" read.
func (c *Client) transportErr(err error) error {
	if c.isClosed() {
		return fmt.Errorf("%w: %v", ErrClientClosed, err)
	}
	return fmt.Errorf("fdw: transport: %w", err)
}

// Ping performs a minimal round trip — the health registry's probe. It
// goes through the same breaker/retry path as queries, so a successful
// probe on a half-open circuit closes it.
func (c *Client) Ping(ctx context.Context) error {
	return c.roundTrip(ctx, &request{Op: "ping"}, nil)
}

// Tables lists the relations the remote exposes.
func (c *Client) Tables() ([]string, error) { return c.TablesContext(context.Background()) }

// TablesContext lists the remote relations under a caller deadline.
func (c *Client) TablesContext(ctx context.Context) ([]string, error) {
	if err := c.roundTrip(ctx, &request{Op: "tables"}, nil); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lastTables...), nil
}

// ForeignTable returns a Relation backed by the remote table. The optional
// localName renames it in the local catalog (empty keeps the remote name).
func (c *Client) ForeignTable(remoteName, localName string) (*ForeignTable, error) {
	if err := c.roundTrip(context.Background(), &request{Op: "schema", Table: remoteName}, nil); err != nil {
		return nil, err
	}
	c.mu.Lock()
	cols := c.lastSchema
	c.mu.Unlock()
	schema, err := decodeSchema(cols)
	if err != nil {
		return nil, err
	}
	name := localName
	if name == "" {
		name = remoteName
	}
	return &ForeignTable{client: c, remote: remoteName, name: name, schema: schema}, nil
}

// Attach registers every remote table as a foreign table in the catalog,
// optionally prefixing names (e.g. "eu_"), and returns how many were
// attached. This mirrors `IMPORT FOREIGN SCHEMA` in postgres_fdw.
func (c *Client) Attach(db *sqldb.Database, prefix string) (int, error) {
	tables, err := c.Tables()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range tables {
		ft, err := c.ForeignTable(t, prefix+t)
		if err != nil {
			return n, err
		}
		if err := db.RegisterForeign(ft); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ForeignTable is a sqldb.Relation whose rows live on a remote server.
type ForeignTable struct {
	client *Client
	remote string
	name   string
	schema sqldb.Schema
}

// Name returns the local name of the foreign table.
func (f *ForeignTable) Name() string { return f.name }

// Source returns the name of the remote source serving this table.
func (f *ForeignTable) Source() string { return f.client.name }

// Schema returns the (remotely fetched) schema.
func (f *ForeignTable) Schema() sqldb.Schema { return f.schema }

// Scan streams every remote row.
func (f *ForeignTable) Scan(fn func([]sqlval.Value) bool) error {
	return f.ScanContext(context.Background(), fn)
}

// ScanContext streams every remote row under a caller deadline.
func (f *ForeignTable) ScanContext(ctx context.Context, fn func([]sqlval.Value) bool) error {
	return f.client.roundTrip(ctx, &request{Op: "scan", Table: f.remote}, fn)
}

// ScanEq pushes the equality predicate down to the remote server, so only
// matching rows cross the wire.
func (f *ForeignTable) ScanEq(col string, v sqlval.Value, fn func([]sqlval.Value) bool) error {
	return f.ScanEqContext(context.Background(), col, v, fn)
}

// ScanEqContext is ScanEq under a caller deadline.
func (f *ForeignTable) ScanEqContext(ctx context.Context, col string, v sqlval.Value, fn func([]sqlval.Value) bool) error {
	wv, err := encodeVal(v)
	if err != nil {
		return err
	}
	return f.client.roundTrip(ctx, &request{Op: "scan", Table: f.remote, EqCol: col, EqVal: &wv}, fn)
}

var (
	_ sqldb.Relation                = (*ForeignTable)(nil)
	_ sqldb.FilteredRelation        = (*ForeignTable)(nil)
	_ sqldb.ContextRelation         = (*ForeignTable)(nil)
	_ sqldb.ContextFilteredRelation = (*ForeignTable)(nil)
)
