package fdw

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// Client talks to one remote FDW server and manufactures foreign tables
// that the local engine scans as if they were local (the postgres_fdw
// client role). A Client serialises requests: one in flight at a time.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder

	// stats for the experiment harness
	requests int
	rowsIn   int

	// terminal payloads of the most recent round trip (guarded by mu)
	lastTables []string
	lastSchema []wireCol
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Stats reports how many requests were issued and rows received — used by
// experiment E7 to demonstrate pushdown savings.
func (c *Client) Stats() (requests, rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests, c.rowsIn
}

// roundTrip sends a request and consumes responses, invoking onRow per row,
// until the Done message.
func (c *Client) roundTrip(req *request, onRow func([]sqlval.Value) bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("fdw: send: %w", err)
	}
	stopped := false
	for {
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			return fmt.Errorf("fdw: receive: %w", err)
		}
		if resp.Err != "" {
			// Drain until Done if not already.
			if !resp.Done {
				continue
			}
			return fmt.Errorf("fdw: remote: %s", resp.Err)
		}
		if resp.Row != nil && onRow != nil && !stopped {
			row := make([]sqlval.Value, len(resp.Row))
			for i, wv := range resp.Row {
				v, err := decodeVal(wv)
				if err != nil {
					return err
				}
				row[i] = v
			}
			c.rowsIn++
			if !onRow(row) {
				// Consumer is done; keep draining to protocol boundary.
				stopped = true
			}
			continue
		}
		if resp.Done {
			c.lastTables = resp.Tables
			c.lastSchema = resp.Columns
			return nil
		}
	}
}

// Tables lists the relations the remote exposes.
func (c *Client) Tables() ([]string, error) {
	if err := c.roundTrip(&request{Op: "tables"}, nil); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lastTables...), nil
}

// ForeignTable returns a Relation backed by the remote table. The optional
// localName renames it in the local catalog (empty keeps the remote name).
func (c *Client) ForeignTable(remoteName, localName string) (*ForeignTable, error) {
	if err := c.roundTrip(&request{Op: "schema", Table: remoteName}, nil); err != nil {
		return nil, err
	}
	c.mu.Lock()
	cols := c.lastSchema
	c.mu.Unlock()
	schema, err := decodeSchema(cols)
	if err != nil {
		return nil, err
	}
	name := localName
	if name == "" {
		name = remoteName
	}
	return &ForeignTable{client: c, remote: remoteName, name: name, schema: schema}, nil
}

// Attach registers every remote table as a foreign table in the catalog,
// optionally prefixing names (e.g. "eu_"), and returns how many were
// attached. This mirrors `IMPORT FOREIGN SCHEMA` in postgres_fdw.
func (c *Client) Attach(db *sqldb.Database, prefix string) (int, error) {
	tables, err := c.Tables()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range tables {
		ft, err := c.ForeignTable(t, prefix+t)
		if err != nil {
			return n, err
		}
		if err := db.RegisterForeign(ft); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ForeignTable is a sqldb.Relation whose rows live on a remote server.
type ForeignTable struct {
	client *Client
	remote string
	name   string
	schema sqldb.Schema
}

// Name returns the local name of the foreign table.
func (f *ForeignTable) Name() string { return f.name }

// Schema returns the (remotely fetched) schema.
func (f *ForeignTable) Schema() sqldb.Schema { return f.schema }

// Scan streams every remote row.
func (f *ForeignTable) Scan(fn func([]sqlval.Value) bool) error {
	return f.client.roundTrip(&request{Op: "scan", Table: f.remote}, fn)
}

// ScanEq pushes the equality predicate down to the remote server, so only
// matching rows cross the wire.
func (f *ForeignTable) ScanEq(col string, v sqlval.Value, fn func([]sqlval.Value) bool) error {
	wv, err := encodeVal(v)
	if err != nil {
		return err
	}
	return f.client.roundTrip(&request{Op: "scan", Table: f.remote, EqCol: col, EqVal: &wv}, fn)
}

var (
	_ sqldb.Relation         = (*ForeignTable)(nil)
	_ sqldb.FilteredRelation = (*ForeignTable)(nil)
)
