package fdw

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// Server exposes the tables of a database to remote FDW clients. It is the
// "remote data source" side of the paper's federation: national registries
// and partner databanks run one of these.
type Server struct {
	db *sqldb.Database

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps a database for remote access.
func NewServer(db *sqldb.Database) *Server {
	return &Server{db: db, conns: map[net.Conn]struct{}{}}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = lis
	s.mu.Unlock()
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ServeConn handles one already-established connection (used with net.Pipe
// for in-process federation in tests and examples). It blocks until the
// connection closes.
func (s *Server) ServeConn(conn net.Conn) {
	s.serveConn(conn)
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: try to report it, then drop the conn.
				_ = enc.Encode(response{Err: fmt.Sprintf("fdw: bad request: %v", err), Done: true})
			}
			return
		}
		if err := s.handle(enc, &req); err != nil {
			return // write error: connection is gone
		}
	}
}

func (s *Server) handle(enc *json.Encoder, req *request) error {
	switch req.Op {
	case "ping":
		return enc.Encode(response{Done: true})
	case "tables":
		return enc.Encode(response{Tables: s.db.Names(), Done: true})
	case "schema":
		rel, err := s.db.Resolve(req.Table)
		if err != nil {
			return enc.Encode(response{Err: err.Error(), Done: true})
		}
		return enc.Encode(response{Columns: encodeSchema(rel.Schema()), Done: true})
	case "scan":
		return s.handleScan(enc, req)
	default:
		return enc.Encode(response{Err: fmt.Sprintf("fdw: unknown op %q", req.Op), Done: true})
	}
}

func (s *Server) handleScan(enc *json.Encoder, req *request) error {
	rel, err := s.db.Resolve(req.Table)
	if err != nil {
		return enc.Encode(response{Err: err.Error(), Done: true})
	}
	var writeErr error
	sent := 0
	emit := func(row []sqlval.Value) bool {
		if req.Limit > 0 && sent >= req.Limit {
			return false
		}
		wire := make([]wireVal, len(row))
		for i, v := range row {
			wv, err := encodeVal(v)
			if err != nil {
				writeErr = err
				return false
			}
			wire[i] = wv
		}
		if err := enc.Encode(response{Row: wire}); err != nil {
			writeErr = err
			return false
		}
		sent++
		return true
	}

	var scanErr error
	if req.EqCol != "" && req.EqVal != nil {
		v, derr := decodeVal(*req.EqVal)
		if derr != nil {
			return enc.Encode(response{Err: derr.Error(), Done: true})
		}
		fr, ok := rel.(sqldb.FilteredRelation)
		if !ok {
			return enc.Encode(response{Err: "fdw: relation does not support filtered scans", Done: true})
		}
		scanErr = fr.ScanEq(req.EqCol, v, emit)
	} else {
		scanErr = rel.Scan(emit)
	}
	if writeErr != nil {
		return writeErr
	}
	if scanErr != nil {
		return enc.Encode(response{Err: scanErr.Error(), Done: true})
	}
	return enc.Encode(response{Done: true})
}

// Close stops the listener and drops open connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}
