package fdw

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"testing"

	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

// Property: for random tables and random equality filters, a remote scan
// returns exactly what a local scan returns — the FDW layer must be
// transparent.
func TestRemoteEqualsLocalOnRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		remote := sqldb.NewDatabase()
		if _, err := sqlexec.Exec(remote, `CREATE TABLE t (k TEXT, n INT, f DOUBLE, b BOOLEAN)`); err != nil {
			t.Fatal(err)
		}
		tab, _ := remote.Table("t")
		nRows := 20 + rng.Intn(80)
		for i := 0; i < nRows; i++ {
			row := []sqlval.Value{
				sqlval.NewString(fmt.Sprintf("k%d", rng.Intn(7))),
				sqlval.NewInt(int64(rng.Intn(100))),
				sqlval.NewFloat(rng.Float64() * 10),
				sqlval.NewBool(rng.Intn(2) == 0),
			}
			if rng.Intn(8) == 0 {
				row[2] = sqlval.Null
			}
			if err := tab.Insert(row); err != nil {
				t.Fatal(err)
			}
		}

		srv := NewServer(remote)
		a, b := net.Pipe()
		go srv.ServeConn(a)
		client := NewClient(b)

		ft, err := client.ForeignTable("t", "")
		if err != nil {
			t.Fatal(err)
		}

		render := func(rows [][]sqlval.Value) []string {
			var out []string
			for _, r := range rows {
				s := ""
				for _, v := range r {
					s += fmt.Sprintf("%d|%s;", v.Type(), v.String())
				}
				out = append(out, s)
			}
			sort.Strings(out)
			return out
		}

		var localRows, remoteRows [][]sqlval.Value
		tab.Scan(func(r []sqlval.Value) bool {
			localRows = append(localRows, append([]sqlval.Value(nil), r...))
			return true
		})
		if err := ft.Scan(func(r []sqlval.Value) bool {
			remoteRows = append(remoteRows, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(render(localRows), render(remoteRows)) {
			t.Fatalf("trial %d: full scan differs", trial)
		}

		// Random equality probes on each column.
		probes := []struct {
			col string
			v   sqlval.Value
		}{
			{"k", sqlval.NewString(fmt.Sprintf("k%d", rng.Intn(7)))},
			{"n", sqlval.NewInt(int64(rng.Intn(100)))},
			{"b", sqlval.NewBool(true)},
		}
		for _, p := range probes {
			var localHit, remoteHit [][]sqlval.Value
			if err := tab.ScanEq(p.col, p.v, func(r []sqlval.Value) bool {
				localHit = append(localHit, append([]sqlval.Value(nil), r...))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if err := ft.ScanEq(p.col, p.v, func(r []sqlval.Value) bool {
				remoteHit = append(remoteHit, r)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(render(localHit), render(remoteHit)) {
				t.Fatalf("trial %d: ScanEq(%s=%v) differs: local %d, remote %d",
					trial, p.col, p.v, len(localHit), len(remoteHit))
			}
		}
		client.Close()
	}
}
