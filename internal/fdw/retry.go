package fdw

// retry.go — typed errors and the retry/backoff policy of the resilient
// FDW client. Transient transport failures (dial refused, connection
// reset, torn stream) on idempotent operations retry with capped
// exponential backoff plus jitter; remote application errors and local
// lifecycle errors never retry.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"crosse/internal/sqldb"
)

// ErrSourceDown marks operations rejected because the source's circuit
// breaker is open (the peer is known to be down). It aliases
// sqldb.ErrSourceDown so the executor can classify it without importing
// the network stack. Match with errors.Is.
var ErrSourceDown = sqldb.ErrSourceDown

// ErrClientClosed marks operations attempted on (or interrupted by) a
// closed Client. Close during an in-flight round trip surfaces this, not a
// decoder panic or a garbage read.
var ErrClientClosed = errors.New("fdw: client closed")

// ErrInterrupted marks a result stream that failed after rows were already
// delivered to the consumer. The client cannot transparently retry without
// duplicating rows, so the caller gets a typed error instead of a silently
// truncated result.
var ErrInterrupted = errors.New("fdw: result stream interrupted mid-scan")

// SourceDownError is the concrete error behind ErrSourceDown: which source,
// the circuit state, and the failure that opened the circuit.
type SourceDownError struct {
	Source string       // source name; filled by the Client
	State  BreakerState // circuit position at rejection time
	Reason error        // the failure that opened the circuit (may be nil)
}

func (e *SourceDownError) Error() string {
	msg := fmt.Sprintf("fdw: source %q down (circuit %s)", e.Source, e.State)
	if e.Reason != nil {
		msg += ": " + e.Reason.Error()
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrSourceDown) match.
func (e *SourceDownError) Unwrap() error { return ErrSourceDown }

// SourceName implements sqldb.SourceNamer for partial-results reporting.
func (e *SourceDownError) SourceName() string { return e.Source }

// remoteError is an application-level error reported by the peer (bad
// table, scan failure, …). The peer is alive and the protocol stayed in
// sync, so remote errors never retry and never trip the breaker.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "fdw: remote: " + e.msg }

// RetryPolicy bounds the client's retry loop. The zero value picks
// defaults; MaxAttempts 1 disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, first
	// included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms);
	// each further retry doubles it, capped at MaxDelay (default 1s).
	// The actual sleep is jittered uniformly over [delay/2, delay] so
	// clients recovering together do not re-dial in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// delay returns the jittered backoff before retry number n (1-based).
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// isTransient reports whether a transport-layer failure may succeed on a
// fresh connection: dial refused/reset, deadline expiry, and any torn or
// desynchronised stream (the client drops the connection on every
// transport error, so a retry always starts clean). Remote application
// errors, breaker rejections and client-lifecycle errors are permanent.
func isTransient(err error) bool {
	var re *remoteError
	switch {
	case err == nil,
		errors.Is(err, ErrClientClosed),
		errors.Is(err, ErrSourceDown),
		errors.Is(err, ErrInterrupted),
		errors.Is(err, errNoRedial),
		errors.As(err, &re):
		return false
	}
	return true
}

// isDeadline reports whether err is a deadline/cancellation expiry.
func isDeadline(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
