// Package engine is the embedded-database facade over the relational
// substrate: it owns a catalog and executes SQL text. In the paper's
// architecture this is the "main platform" database that SESQL's cleaned
// SQL queries and the Fig. 6 temp-table/final-query steps run against.
package engine

import (
	"fmt"
	"strings"

	"crosse/internal/sqldb"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

// DB is an embedded relational database.
type DB struct {
	cat *sqldb.Database
}

// Open returns a new empty database.
func Open() *DB {
	return &DB{cat: sqldb.NewDatabase()}
}

// Catalog exposes the underlying catalog (used by the FDW layer and tests).
func (d *DB) Catalog() *sqldb.Database { return d.cat }

// Exec executes one SQL statement and returns its result. SELECTs compile
// to a streaming physical plan (see internal/sqlexec) before running.
func (d *DB) Exec(sql string) (*sqlexec.Result, error) {
	return sqlexec.Exec(d.cat, sql)
}

// ExecOpts executes one SQL statement with execution options (planner
// ablation knobs — hash joins, index seeks, top-K).
func (d *DB) ExecOpts(sql string, opts sqlexec.Options) (*sqlexec.Result, error) {
	return sqlexec.ExecOpts(d.cat, sql, opts)
}

// QueryOpts executes a row-producing statement with execution options.
func (d *DB) QueryOpts(sql string, opts sqlexec.Options) (*sqlexec.Result, error) {
	r, err := d.ExecOpts(sql, opts)
	if err != nil {
		return nil, err
	}
	if r.Columns == nil {
		return nil, fmt.Errorf("engine: statement returned no result set")
	}
	return r, nil
}

// ExecScript executes a semicolon-separated sequence of statements,
// returning the result of the last one. Statements inside string literals
// are split correctly.
func (d *DB) ExecScript(script string) (*sqlexec.Result, error) {
	var last *sqlexec.Result
	for _, stmt := range SplitStatements(script) {
		r, err := d.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("engine: in %q: %w", abbreviate(stmt), err)
		}
		last = r
	}
	if last == nil {
		last = &sqlexec.Result{}
	}
	return last, nil
}

func abbreviate(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// Query executes a statement that must produce rows.
func (d *DB) Query(sql string) (*sqlexec.Result, error) {
	return d.QueryOpts(sql, sqlexec.Options{})
}

// RegisterForeign exposes an external relation in this database's
// namespace (the postgres_fdw integration point of the paper).
func (d *DB) RegisterForeign(r sqldb.Relation) error {
	return d.cat.RegisterForeign(r)
}

// SplitStatements splits a script on semicolons that are outside string
// literals and comments.
func SplitStatements(script string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case inStr:
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(script) && script[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					inStr = false
				}
			}
		case c == '\'':
			inStr = true
			b.WriteByte(c)
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			for i < len(script) && script[i] != '\n' {
				i++
			}
			b.WriteByte('\n')
		case c == ';':
			out = appendStmt(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	return appendStmt(out, b.String())
}

func appendStmt(out []string, s string) []string {
	s = strings.TrimSpace(s)
	if s != "" {
		out = append(out, s)
	}
	return out
}

// FormatTable renders a result as an aligned text table (CLI and the
// experiment harness use this).
func FormatTable(r *sqlexec.Result) string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("(%d row(s) affected)\n", r.Affected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// Row is a convenience builder for programmatic inserts.
func Row(vals ...any) ([]sqlval.Value, error) {
	out := make([]sqlval.Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = sqlval.Null
		case int:
			out[i] = sqlval.NewInt(int64(x))
		case int64:
			out[i] = sqlval.NewInt(x)
		case float64:
			out[i] = sqlval.NewFloat(x)
		case string:
			out[i] = sqlval.NewString(x)
		case bool:
			out[i] = sqlval.NewBool(x)
		case sqlval.Value:
			out[i] = x
		default:
			return nil, fmt.Errorf("engine: unsupported Go value %T", v)
		}
	}
	return out, nil
}
