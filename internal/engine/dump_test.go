package engine

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT NOT NULL, area DOUBLE, active BOOLEAN);
		INSERT INTO landfill VALUES
			('a', 'Torino', 120.5, TRUE),
			('it''s', 'Quote''City', NULL, FALSE);
		CREATE TABLE empty_t (x INT);
	`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{`CREATE TABLE "landfill"`, `PRIMARY KEY`, `NOT NULL`, `'it''s'`, `NULL, FALSE`, `CREATE TABLE "empty_t"`} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	db2 := Open()
	if err := db2.Restore(strings.NewReader(dump)); err != nil {
		t.Fatal(err)
	}
	r, err := db2.Query(`SELECT city FROM landfill WHERE name = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "Quote'City" {
		t.Errorf("restored row: %v", r.Rows)
	}
	// Constraints survive: duplicate PK rejected after restore.
	if _, err := db2.Exec(`INSERT INTO landfill VALUES ('a', 'x', 1, TRUE)`); err == nil {
		t.Error("PK constraint lost in round trip")
	}
	// NULL survives.
	r, _ = db2.Query(`SELECT COUNT(*) FROM landfill WHERE area IS NULL`)
	if r.Rows[0][0].Int() != 1 {
		t.Error("NULL lost in round trip")
	}
}

// TestDumpRestoreHostileStrings pins the cases that break naive script
// splitting: statement separators, comment markers and newlines embedded in
// string values must survive Dump → SplitStatements → Restore.
func TestDumpRestoreHostileStrings(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}
	hostile := []string{
		"plain",
		"semi; colon; INSERT INTO notes VALUES (99, 'fake');",
		"-- looks like a comment",
		"quote ' and double '' quote",
		"line\nbreak\nand\ttab",
		"trailing backslash \\",
		"mixed: '; -- DROP TABLE notes; '",
		"",
	}
	for i, body := range hostile {
		lit := strings.ReplaceAll(body, "'", "''")
		if _, err := db.Exec("INSERT INTO notes VALUES (" + strconv.Itoa(i) + ", '" + lit + "')"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v\ndump:\n%s", err, buf.String())
	}
	r, err := db2.Query(`SELECT id, body FROM notes ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(hostile) {
		t.Fatalf("restored %d rows, want %d (hostile string smuggled in a statement?)", len(r.Rows), len(hostile))
	}
	for i, body := range hostile {
		if got := r.Rows[i][1].Str(); got != body {
			t.Errorf("row %d body = %q, want %q", i, got, body)
		}
	}
}

// TestDumpRestoreNullsAndPKOrder pins NULL round-tripping across types and
// the row-order contract: Dump emits rows in table scan order, so a restore
// replays inserts in that order and ORDER BY over the primary key is
// unaffected by the order rows were originally inserted in.
func TestDumpRestoreNullsAndPKOrder(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE m (id TEXT PRIMARY KEY, n INT, f DOUBLE, s TEXT, b BOOLEAN);
		INSERT INTO m VALUES ('z-last', NULL, NULL, NULL, NULL);
		INSERT INTO m VALUES ('a-first', 1, 1.5, 'x', TRUE);
		INSERT INTO m VALUES ('m-mid', NULL, 2.5, NULL, FALSE);
	`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	r, err := db2.Query(`SELECT id, n, f, s, b FROM m ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("restored %d rows, want 3", len(r.Rows))
	}
	wantIDs := []string{"a-first", "m-mid", "z-last"}
	for i, id := range wantIDs {
		if r.Rows[i][0].Str() != id {
			t.Errorf("ORDER BY id row %d = %q, want %q", i, r.Rows[i][0].Str(), id)
		}
	}
	// All-NULL row keeps every NULL; partial row keeps the mix.
	for col := 1; col <= 4; col++ {
		if !r.Rows[2][col].IsNull() {
			t.Errorf("z-last col %d = %v, want NULL", col, r.Rows[2][col])
		}
	}
	if r.Rows[1][1].IsNull() != true || r.Rows[1][2].Float() != 2.5 {
		t.Errorf("m-mid = %v", r.Rows[1])
	}
	// PK constraint survives with NULL-bearing rows present.
	if _, err := db2.Exec(`INSERT INTO m VALUES ('a-first', NULL, NULL, NULL, NULL)`); err == nil {
		t.Error("duplicate PK accepted after restore")
	}
	// A second dump of the restored DB is identical: dump is deterministic
	// and restore preserves scan order.
	var buf2 bytes.Buffer
	if err := db2.Dump(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("dump not stable across a round trip:\n--- first\n%s\n--- second\n%s", buf.String(), buf2.String())
	}
}

func TestInsertSelect(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE src (a INT, b TEXT);
		INSERT INTO src VALUES (1, 'x'), (2, 'y'), (3, 'z');
		CREATE TABLE dst (a INT, b TEXT);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`INSERT INTO dst SELECT a * 10, UPPER(b) FROM src WHERE a >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Errorf("affected = %d", r.Affected)
	}
	got, _ := db.Query(`SELECT a, b FROM dst ORDER BY a`)
	if len(got.Rows) != 2 || got.Rows[0][0].Int() != 20 || got.Rows[0][1].Str() != "Y" {
		t.Errorf("rows: %v", got.Rows)
	}
	// With a column list.
	if _, err := db.Exec(`INSERT INTO dst (b, a) SELECT b, a FROM src WHERE a = 1`); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Query(`SELECT COUNT(*) FROM dst`)
	if got.Rows[0][0].Int() != 3 {
		t.Errorf("count = %v", got.Rows[0][0])
	}
	// Arity mismatch.
	if _, err := db.Exec(`INSERT INTO dst SELECT a FROM src`); err == nil {
		t.Error("column count mismatch must fail")
	}
}
