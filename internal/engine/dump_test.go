package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT NOT NULL, area DOUBLE, active BOOLEAN);
		INSERT INTO landfill VALUES
			('a', 'Torino', 120.5, TRUE),
			('it''s', 'Quote''City', NULL, FALSE);
		CREATE TABLE empty_t (x INT);
	`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{`CREATE TABLE "landfill"`, `PRIMARY KEY`, `NOT NULL`, `'it''s'`, `NULL, FALSE`, `CREATE TABLE "empty_t"`} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	db2 := Open()
	if err := db2.Restore(strings.NewReader(dump)); err != nil {
		t.Fatal(err)
	}
	r, err := db2.Query(`SELECT city FROM landfill WHERE name = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "Quote'City" {
		t.Errorf("restored row: %v", r.Rows)
	}
	// Constraints survive: duplicate PK rejected after restore.
	if _, err := db2.Exec(`INSERT INTO landfill VALUES ('a', 'x', 1, TRUE)`); err == nil {
		t.Error("PK constraint lost in round trip")
	}
	// NULL survives.
	r, _ = db2.Query(`SELECT COUNT(*) FROM landfill WHERE area IS NULL`)
	if r.Rows[0][0].Int() != 1 {
		t.Error("NULL lost in round trip")
	}
}

func TestInsertSelect(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE src (a INT, b TEXT);
		INSERT INTO src VALUES (1, 'x'), (2, 'y'), (3, 'z');
		CREATE TABLE dst (a INT, b TEXT);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`INSERT INTO dst SELECT a * 10, UPPER(b) FROM src WHERE a >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Errorf("affected = %d", r.Affected)
	}
	got, _ := db.Query(`SELECT a, b FROM dst ORDER BY a`)
	if len(got.Rows) != 2 || got.Rows[0][0].Int() != 20 || got.Rows[0][1].Str() != "Y" {
		t.Errorf("rows: %v", got.Rows)
	}
	// With a column list.
	if _, err := db.Exec(`INSERT INTO dst (b, a) SELECT b, a FROM src WHERE a = 1`); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Query(`SELECT COUNT(*) FROM dst`)
	if got.Rows[0][0].Int() != 3 {
		t.Errorf("count = %v", got.Rows[0][0])
	}
	// Arity mismatch.
	if _, err := db.Exec(`INSERT INTO dst SELECT a FROM src`); err == nil {
		t.Error("column count mismatch must fail")
	}
}
