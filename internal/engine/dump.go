package engine

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"crosse/internal/sqlval"
)

// Dump writes the database as a SQL script (CREATE TABLE + INSERT
// statements) that Restore re-executes — the databank's durability story.
// Local tables only; foreign registrations are connection state, not data.
func (d *DB) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range d.cat.Names() {
		rel, err := d.cat.Resolve(name)
		if err != nil {
			return err
		}
		// Skip foreign tables: Resolve returns them too, but only local
		// *sqldb.Table values round-trip as data.
		tab, err := d.cat.Table(name)
		if err != nil {
			continue
		}
		schema := rel.Schema()
		cols := make([]string, len(schema))
		for i, c := range schema {
			col := fmt.Sprintf("%q %s", c.Name, c.Type)
			if c.PrimaryKey {
				col += " PRIMARY KEY"
			} else if c.NotNull {
				col += " NOT NULL"
			}
			cols[i] = col
		}
		fmt.Fprintf(bw, "CREATE TABLE %q (%s);\n", name, strings.Join(cols, ", "))

		var writeErr error
		tab.Scan(func(row []sqlval.Value) bool {
			vals := make([]string, len(row))
			for i, v := range row {
				vals[i] = v.SQLLiteral()
			}
			_, writeErr = fmt.Fprintf(bw, "INSERT INTO %q VALUES (%s);\n", name, strings.Join(vals, ", "))
			return writeErr == nil
		})
		if writeErr != nil {
			return writeErr
		}
	}
	return bw.Flush()
}

// Restore executes a script produced by Dump into this database.
func (d *DB) Restore(r io.Reader) error {
	var b strings.Builder
	if _, err := io.Copy(&b, r); err != nil {
		return err
	}
	_, err := d.ExecScript(b.String())
	return err
}
