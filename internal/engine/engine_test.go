package engine

import (
	"strings"
	"testing"

	"crosse/internal/sqlval"
)

func TestExecScriptAndQuery(t *testing.T) {
	db := Open()
	_, err := db.ExecScript(`
		CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'it''s; tricky'), (2, 'b');
		-- a comment with ; inside
		INSERT INTO t VALUES (3, 'c');
	`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	// Semicolon inside the string literal must not split.
	r, err = db.Query(`SELECT name FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Str() != "it's; tricky" {
		t.Errorf("got %q", r.Rows[0][0].Str())
	}
}

func TestExecScriptErrorMentionsStatement(t *testing.T) {
	db := Open()
	_, err := db.ExecScript(`CREATE TABLE t (a INT); INSERT INTO nope VALUES (1)`)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should mention failing statement: %v", err)
	}
}

func TestQueryRejectsNonResult(t *testing.T) {
	db := Open()
	if _, err := db.Query(`CREATE TABLE t (a INT)`); err == nil {
		t.Error("Query on DDL must fail")
	}
}

func TestSplitStatements(t *testing.T) {
	got := SplitStatements(`a; b 'x;y'; -- c;
d;`)
	if len(got) != 3 || got[1] != "b 'x;y'" || got[2] != "d" {
		t.Errorf("split = %#v", got)
	}
	if len(SplitStatements("   ")) != 0 {
		t.Error("blank script")
	}
}

func TestFormatTable(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(`CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1, 'xyz')`); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Query(`SELECT * FROM t`)
	out := FormatTable(r)
	for _, want := range []string{"a", "b", "1", "xyz", "(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable missing %q:\n%s", want, out)
		}
	}
	ddl, _ := db.Exec(`CREATE TABLE u (x INT)`)
	if !strings.Contains(FormatTable(ddl), "affected") {
		t.Error("DDL format")
	}
}

func TestRowBuilder(t *testing.T) {
	row, err := Row(1, int64(2), 3.5, "s", true, nil, sqlval.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 1 || row[1].Int() != 2 || row[2].Float() != 3.5 ||
		row[3].Str() != "s" || !row[4].Bool() || !row[5].IsNull() || row[6].Int() != 9 {
		t.Errorf("row = %v", row)
	}
	if _, err := Row(struct{}{}); err == nil {
		t.Error("unsupported type must fail")
	}
}
