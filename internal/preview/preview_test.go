package preview

import (
	"testing"

	"crosse/internal/core"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

func iri(l string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + l) }

func testView(t *testing.T) rdf.Graph {
	t.Helper()
	p := kb.NewPlatform()
	if err := p.RegisterUser("u"); err != nil {
		t.Fatal(err)
	}
	triples := []rdf.Triple{
		{S: iri("Mercury"), P: iri("isA"), O: iri("HazardousWaste")},
		{S: iri("Mercury"), P: iri("dangerLevel"), O: rdf.NewLiteral("high")},
		{S: iri("Mercury"), P: iri("foundWith"), O: iri("Lead")},
		{S: iri("Lead"), P: iri("isA"), O: iri("HazardousWaste")},
	}
	for _, tr := range triples {
		if _, err := p.Insert("u", tr); err != nil {
			t.Fatal(err)
		}
	}
	g, err := p.View("u")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mkResult(vals ...string) *sqlexec.Result {
	res := &sqlexec.Result{Columns: []string{"elem_name"}}
	for _, v := range vals {
		res.Rows = append(res.Rows, []sqlval.Value{sqlval.NewString(v)})
	}
	return res
}

func TestRankOrdersByContext(t *testing.T) {
	view := testView(t)
	res := mkResult("Gold", "Lead", "Mercury")
	ranked := Rank(res, view, nil)

	// Mercury has 3 mentions (all as subject), Lead 2 (subject + object),
	// Gold 0.
	if ranked.Result.Rows[0][0].Str() != "Mercury" {
		t.Errorf("first = %v", ranked.Result.Rows[0][0])
	}
	if ranked.Result.Rows[1][0].Str() != "Lead" {
		t.Errorf("second = %v", ranked.Result.Rows[1][0])
	}
	if ranked.Result.Rows[2][0].Str() != "Gold" {
		t.Errorf("third = %v", ranked.Result.Rows[2][0])
	}
	if ranked.Scores[0] <= ranked.Scores[1] || ranked.Scores[1] <= ranked.Scores[2] {
		t.Errorf("scores not descending: %v", ranked.Scores)
	}
	if ranked.Scores[2] != 0 {
		t.Errorf("unknown concept must score 0: %v", ranked.Scores[2])
	}
	// Input result untouched.
	if res.Rows[0][0].Str() != "Gold" {
		t.Error("Rank must not mutate its input")
	}
}

func TestRankIsStableOnTies(t *testing.T) {
	view := testView(t)
	res := mkResult("Unknown1", "Unknown2", "Unknown3")
	ranked := Rank(res, view, nil)
	for i, want := range []string{"Unknown1", "Unknown2", "Unknown3"} {
		if ranked.Result.Rows[i][0].Str() != want {
			t.Errorf("tie order broken at %d: %v", i, ranked.Result.Rows[i][0])
		}
	}
}

func TestHighlights(t *testing.T) {
	view := testView(t)
	res := mkResult("Gold", "Mercury")
	ranked := Rank(res, view, nil)
	// Only the Mercury cell (now row 0) is highlighted.
	if len(ranked.Highlights) != 1 {
		t.Fatalf("highlights = %+v", ranked.Highlights)
	}
	h := ranked.Highlights[0]
	if h.Row != 0 || h.Col != 0 || h.Facts != 3 {
		t.Errorf("highlight = %+v", h)
	}
}

func TestRankHandlesNullsAndMultiColumn(t *testing.T) {
	view := testView(t)
	res := &sqlexec.Result{
		Columns: []string{"a", "b"},
		Rows: [][]sqlval.Value{
			{sqlval.Null, sqlval.NewString("Lead")},
			{sqlval.NewString("Mercury"), sqlval.Null},
		},
	}
	ranked := Rank(res, view, nil)
	if ranked.Result.Rows[0][0].IsNull() != false && ranked.Scores[0] < ranked.Scores[1] {
		t.Errorf("scores: %v", ranked.Scores)
	}
	// Mercury row must outrank Lead row (3 vs 2 facts).
	if ranked.Result.Rows[0][0].IsNull() {
		t.Errorf("Mercury row should rank first: %v", ranked.Result.Rows)
	}
}

func TestSnippet(t *testing.T) {
	view := testView(t)
	facts := Snippet(view, nil, "Mercury", 0)
	if len(facts) != 3 {
		t.Fatalf("facts = %+v", facts)
	}
	// Outgoing facts sorted by property.
	if !facts[0].Outgoing || facts[0].Property != "dangerLevel" || facts[0].Value != "high" {
		t.Errorf("first fact = %+v", facts[0])
	}
	// Lead has an incoming foundWith fact.
	leadFacts := Snippet(view, nil, "Lead", 0)
	foundIncoming := false
	for _, f := range leadFacts {
		if !f.Outgoing && f.Property == "foundWith" && f.Value == "Mercury" {
			foundIncoming = true
		}
	}
	if !foundIncoming {
		t.Errorf("incoming fact missing: %+v", leadFacts)
	}
	// Cap respected.
	if got := Snippet(view, nil, "Mercury", 2); len(got) != 2 {
		t.Errorf("cap: %+v", got)
	}
	// Unknown concept → empty, not error.
	if got := Snippet(view, nil, "Unobtainium", 0); len(got) != 0 {
		t.Errorf("unknown concept: %+v", got)
	}
}

func TestKnownConcepts(t *testing.T) {
	view := testView(t)
	vals := []sqlval.Value{
		sqlval.NewString("Mercury"),
		sqlval.NewString("Gold"),
		sqlval.NewString("Lead"),
		sqlval.Null,
	}
	known := KnownConcepts(view, nil, vals, 1)
	if len(known) != 2 {
		t.Fatalf("known = %v", known)
	}
	// Raising the threshold drops Lead (2 facts) but keeps Mercury (4).
	known = KnownConcepts(view, nil, vals, 3)
	if len(known) != 1 || known[0].Str() != "Mercury" {
		t.Errorf("threshold: %v", known)
	}
}

func TestLiteralValuesHighlight(t *testing.T) {
	view := testView(t)
	// "high" appears only as a literal object.
	res := mkResult("high")
	ranked := Rank(res, view, nil)
	if ranked.Scores[0] == 0 {
		t.Error("literal-valued concept should score > 0")
	}
}
