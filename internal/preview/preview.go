// Package preview implements the content-preview and context-aware
// presentation services of the paper's vision (Sec. I-B.c): when a query
// returns a long result list, the system should provide (a) context-aware
// ranking, (b) snippet extraction, and (c) key-concept highlighting, all
// driven by the user's personal knowledge base.
package preview

import (
	"sort"

	"crosse/internal/core"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
	"crosse/internal/sqlval"
)

// CellHighlight marks one result cell as a concept the user has knowledge
// about.
type CellHighlight struct {
	Row, Col int
	// Facts is how many KB statements mention the concept (as subject or
	// object) — the "how much do I know about this" signal.
	Facts int
}

// RankedResult is a query result re-ordered by contextual relevance.
type RankedResult struct {
	Result *sqlexec.Result
	// Scores holds the per-row relevance, parallel to Result.Rows.
	Scores []float64
	// Highlights are the key concepts found in the (re-ordered) rows.
	Highlights []CellHighlight
}

// conceptFacts counts the KB statements mentioning each term the row's
// values map to. A small memo keeps repeated values cheap.
type scorer struct {
	view    rdf.Graph
	mapping *core.Mapping
	memo    map[sqlval.Value]int
}

func newScorer(view rdf.Graph, mapping *core.Mapping) *scorer {
	if mapping == nil {
		mapping = core.NewMapping("")
	}
	return &scorer{view: view, mapping: mapping, memo: map[sqlval.Value]int{}}
}

// facts returns the number of KB triples that mention the value (mapped to
// its ontology term) as subject or object.
func (s *scorer) facts(v sqlval.Value) int {
	if v.IsNull() {
		return 0
	}
	if n, ok := s.memo[v]; ok {
		return n
	}
	// Probe both renderings: the minted IRI and the bare literal.
	n := 0
	term := s.mapping.ToTerm("", "", v)
	n += s.view.Count(rdf.Pattern{S: term})
	n += s.view.Count(rdf.Pattern{O: term})
	lit := rdf.NewLiteral(v.String())
	n += s.view.Count(rdf.Pattern{O: lit})
	s.memo[v] = n
	return n
}

// Rank orders the result rows by how much the user's knowledge base says
// about the values they contain (ties keep the original order, so ranking
// is stable), and highlights every cell holding a known concept. The input
// result is not modified.
func Rank(res *sqlexec.Result, view rdf.Graph, mapping *core.Mapping) *RankedResult {
	sc := newScorer(view, mapping)

	type rowScore struct {
		row   []sqlval.Value
		score float64
	}
	scored := make([]rowScore, len(res.Rows))
	for i, row := range res.Rows {
		total := 0
		for _, v := range row {
			total += sc.facts(v)
		}
		scored[i] = rowScore{row: row, score: float64(total)}
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })

	out := &RankedResult{
		Result: &sqlexec.Result{Columns: res.Columns, Rows: make([][]sqlval.Value, len(scored))},
		Scores: make([]float64, len(scored)),
	}
	for i, rs := range scored {
		out.Result.Rows[i] = rs.row
		out.Scores[i] = rs.score
		for c, v := range rs.row {
			if n := sc.facts(v); n > 0 {
				out.Highlights = append(out.Highlights, CellHighlight{Row: i, Col: c, Facts: n})
			}
		}
	}
	return out
}

// Fact is one KB statement about a concept, in snippet form.
type Fact struct {
	Property string
	Value    string
	// Outgoing is true for (concept, property, value), false for
	// (value, property, concept).
	Outgoing bool
}

// Snippet extracts what the user's KB says about a concept — the preview
// shown next to a search result so the user can judge relevance without
// opening it. Facts are returned deterministically (outgoing first, then
// property/value order), capped at maxFacts (0 = no cap).
func Snippet(view rdf.Graph, mapping *core.Mapping, concept string, maxFacts int) []Fact {
	if mapping == nil {
		mapping = core.NewMapping("")
	}
	var facts []Fact
	for _, term := range mapping.ConceptTerms(concept) {
		view.ForEach(rdf.Pattern{S: term}, func(t rdf.Triple) bool {
			facts = append(facts, Fact{
				Property: mapping.FromTerm(t.P).String(),
				Value:    mapping.FromTerm(t.O).String(),
				Outgoing: true,
			})
			return true
		})
	}
	for _, term := range mapping.ConceptTerms(concept) {
		view.ForEach(rdf.Pattern{O: term}, func(t rdf.Triple) bool {
			facts = append(facts, Fact{
				Property: mapping.FromTerm(t.P).String(),
				Value:    mapping.FromTerm(t.S).String(),
				Outgoing: false,
			})
			return true
		})
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Outgoing != facts[j].Outgoing {
			return facts[i].Outgoing
		}
		if facts[i].Property != facts[j].Property {
			return facts[i].Property < facts[j].Property
		}
		return facts[i].Value < facts[j].Value
	})
	if maxFacts > 0 && len(facts) > maxFacts {
		facts = facts[:maxFacts]
	}
	return facts
}

// KnownConcepts filters a list of candidate values down to those the KB
// has at least minFacts statements about — the "context-aware knowledge
// extension" hook: the UI offers these for further exploration.
func KnownConcepts(view rdf.Graph, mapping *core.Mapping, values []sqlval.Value, minFacts int) []sqlval.Value {
	sc := newScorer(view, mapping)
	if minFacts < 1 {
		minFacts = 1
	}
	var out []sqlval.Value
	for _, v := range values {
		if sc.facts(v) >= minFacts {
			out = append(out, v)
		}
	}
	return out
}
