package sqlexec

// parallel_test.go — regression tests for the morsel-driven parallel path
// (parallel.go). The contract under test is byte-identical output: for any
// plan, any Parallelism setting must produce exactly the rows the serial
// pipeline produces, in the same order — including ties under ORDER BY on
// non-unique keys, DISTINCT survivor choice, and group first-seen order.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"crosse/internal/sqlparser"
)

// genOrderedSelect produces ORDER BY queries over deliberately low-
// cardinality keys (x.a spans 10 values, x.b six), so nearly every sort
// has ties and the stable-order contract is what distinguishes a correct
// merge from a lucky one. No unique-key tiebreak is appended on purpose.
func genOrderedSelect(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if rng.Intn(3) == 0 {
		b.WriteString("DISTINCT ")
	}
	cols := []string{"x.id", "x.a", "x.b", "x.c", "UPPER(x.b)", "x.a + 1"}
	join := rng.Intn(3) == 0
	if join {
		cols = append(cols, "y.k", "y.v")
	}
	k := rng.Intn(3) + 1
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(cols[rng.Intn(len(cols))])
	}
	b.WriteString(" FROM t1 x")
	if join {
		b.WriteString(" JOIN t2 y ON x.b = y.k")
	}
	switch rng.Intn(3) {
	case 0:
		b.WriteString(" WHERE x.a > 0")
	case 1:
		b.WriteString(" WHERE x.c BETWEEN 2 AND 15")
	}
	orders := []string{
		" ORDER BY x.a",
		" ORDER BY x.b DESC",
		" ORDER BY x.a DESC, x.b",
		" ORDER BY x.b, x.a",
	}
	b.WriteString(orders[rng.Intn(len(orders))])
	if rng.Intn(2) == 0 {
		b.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(12)+1))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" OFFSET %d", rng.Intn(6)))
		}
	}
	return b.String()
}

// TestParallelOrderedDeterminism runs 100 randomised ORDER BY (+ OFFSET /
// LIMIT) queries and requires the parallel results at 2 and 4 workers to
// be byte-identical to Parallelism 1 — ties included.
func TestParallelOrderedDeterminism(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(47))
	db := parityDB(t, rng, 160, 90)
	for q := 0; q < 100; q++ {
		text := genOrderedSelect(rng)
		st, err := sqlparser.Parse(text)
		if err != nil {
			t.Fatalf("generated unparseable SQL %q: %v", text, err)
		}
		sel := st.(*sqlparser.Select)
		base, err := EvalSelectOpts(db, sel, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%q serial: %v", text, err)
		}
		want := strings.Join(renderRows(base), "\n")
		for _, par := range []int{2, 4} {
			got, err := EvalSelectOpts(db, sel, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%q parallelism %d: %v", text, par, err)
			}
			if g := strings.Join(renderRows(got), "\n"); g != want {
				t.Fatalf("%q: parallelism %d diverges from serial\nserial:\n%s\nparallel:\n%s",
					text, par, want, g)
			}
		}
	}
}

// TestParallelFallbackReasons pins the fallback contract:
// Result.ParallelFallback names exactly why a SELECT declined the
// parallel path, and is empty — the query really fanned out — for the
// shapes the morsel engine covers, including the ones parallelised after
// the initial landing (join builds, SUM/AVG groups, full final sorts).
func TestParallelFallbackReasons(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := parityDB(t, rng, 200, 60)

	eval := func(text string, par int) *Result {
		t.Helper()
		st, err := sqlparser.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvalSelectOpts(db, st.(*sqlparser.Select), Options{Parallelism: par})
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		return res
	}

	// Serial declines at default thresholds: each names its reason.
	serial := []struct {
		text string
		par  int
		want string
	}{
		{`SELECT x.id FROM t1 x`, 1, "parallelism=1"},
		{`SELECT x.id FROM t1 x LIMIT 0`, 4, "limit 0"},
		{`SELECT x.id FROM t1 x`, 4, "driving scan below parallel threshold"},
		{`SELECT 1 + 2`, 4, "fromless select"},
	}
	for _, tc := range serial {
		if got := eval(tc.text, tc.par).ParallelFallback; got != tc.want {
			t.Errorf("%q at parallelism %d: fallback %q, want %q", tc.text, tc.par, got, tc.want)
		}
	}

	// With thresholds forced down, the previously-serial shapes run
	// parallel: empty fallback end to end.
	forceParallel(t)
	parallel := []string{
		`SELECT COUNT(*) FROM t2 y JOIN t1 x ON y.id = x.id`,     // join build
		`SELECT x.b, SUM(x.c), AVG(x.c) FROM t1 x GROUP BY x.b`,  // float SUM/AVG merge
		`SELECT x.b, COUNT(DISTINCT x.a) FROM t1 x GROUP BY x.b`, // DISTINCT aggregate merge
		`SELECT x.id, x.c FROM t1 x ORDER BY x.c DESC`,           // full final sort
		`SELECT DISTINCT x.a FROM t1 x`,                          // plain morsel path
	}
	for _, text := range parallel {
		if got := eval(text, 4).ParallelFallback; got != "" {
			t.Errorf("%q: fell back to serial (%q), want parallel", text, got)
		}
	}
}

// TestParallelErrorMatchesSerial pins error semantics: a row-level
// evaluation error must surface identically at every parallelism level
// (same message, and for the unsorted streaming shape the same prefix of
// yielded rows as the serial pipeline).
func TestParallelErrorMatchesSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(53))
	db := parityDB(t, rng, 120, 40)
	// x.b + 1 errors on the first non-NULL text value.
	queries := []string{
		`SELECT x.id, x.b + 1 FROM t1 x`,
		`SELECT x.id FROM t1 x WHERE x.b + 1 > 0`,
		`SELECT x.b, COUNT(*) FROM t1 x GROUP BY x.b HAVING MIN(x.b + 1) > 0`,
		`SELECT x.id FROM t1 x ORDER BY x.b + 1`,
	}
	for _, text := range queries {
		st, err := sqlparser.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		sel := st.(*sqlparser.Select)
		_, serialErr := EvalSelectOpts(db, sel, Options{Parallelism: 1})
		if serialErr == nil {
			t.Fatalf("%q: expected a serial error", text)
		}
		for _, par := range []int{2, 4} {
			_, parErr := EvalSelectOpts(db, sel, Options{Parallelism: par})
			if parErr == nil || parErr.Error() != serialErr.Error() {
				t.Fatalf("%q parallelism %d: error %v, serial %v", text, par, parErr, serialErr)
			}
		}
	}
}
