// interp.go — the materialising reference interpreter. This is the seed
// executor, stripped of its planner fast paths (the equi-hash join moved
// into the compiled pipeline, where it is governed by Options): it resolves
// column references by name per row, materialises a full rowset at every
// stage and only ever nested-loops joins. Production execution goes through
// the compiled SelectPlan (compile.go / run.go); the interpreter remains as
// the independent oracle the parity suite pins the compiled semantics to.

package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// rowset is a materialised intermediate relation with scope metadata.
type rowset struct {
	cols []ScopeCol
	rows [][]sqlval.Value
}

func (rs *rowset) scope(row []sqlval.Value) *Scope {
	return &Scope{Cols: rs.cols, Row: row}
}

// colIndexes returns positions of a (qual, name) reference; used for
// ambiguity checks and hash-join key extraction.
func (rs *rowset) find(qual, name string) []int {
	var out []int
	for i, c := range rs.cols {
		if strings.EqualFold(c.Name, name) && (qual == "" || strings.EqualFold(c.Qualifier, qual)) {
			out = append(out, i)
		}
	}
	return out
}

// evalSelectInterp runs a SELECT through the reference interpreter.
func evalSelectInterp(db *sqldb.Database, sel *sqlparser.Select) (*Result, error) {
	// FROM-less SELECT evaluates items once against an empty scope.
	if len(sel.From) == 0 {
		return selectNoFrom(sel)
	}

	base, err := buildFrom(db, sel)
	if err != nil {
		return nil, err
	}

	// Residual WHERE conjuncts not consumed by join planning are applied
	// by buildFrom; here base is already filtered.

	grouped := len(sel.GroupBy) > 0 || sel.Having != nil || anyItemAggregate(sel)
	var out *rowset
	var headers []string
	var underlying []*Scope // per-output-row scope for ORDER BY fallback
	if grouped {
		out, headers, underlying, err = selectGrouped(sel, base)
	} else {
		out, headers, underlying, err = selectPlain(sel, base)
	}
	if err != nil {
		return nil, err
	}

	// Compute ORDER BY keys before DISTINCT so keys stay aligned with rows.
	var keys [][]sqlval.Value
	if len(sel.OrderBy) > 0 {
		keys = make([][]sqlval.Value, len(out.rows))
		for i, r := range out.rows {
			ks := make([]sqlval.Value, len(sel.OrderBy))
			for k, ob := range sel.OrderBy {
				// Projected aliases first, then underlying columns.
				v, err := Eval(ob.Expr, out.scope(r))
				if err != nil {
					v, err = Eval(ob.Expr, underlying[i])
					if err != nil {
						return nil, fmt.Errorf("sqlexec: ORDER BY: %w", err)
					}
				}
				ks[k] = v
			}
			keys[i] = ks
		}
	}

	if sel.Distinct {
		out.rows, keys = distinctRows(out.rows, keys)
	}

	if len(sel.OrderBy) > 0 {
		orderRows(sel, out, keys)
	}

	if out2, err := applyLimitOffset(sel, out.rows); err != nil {
		return nil, err
	} else {
		out.rows = out2
	}

	return &Result{Columns: headers, Rows: out.rows}, nil
}

func selectNoFrom(sel *sqlparser.Select) (*Result, error) {
	var headers []string
	var row []sqlval.Value
	empty := &Scope{}
	for i, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("sqlexec: SELECT * requires a FROM clause")
		}
		v, err := Eval(it.Expr, empty)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		headers = append(headers, itemName(it, i))
	}
	return &Result{Columns: headers, Rows: [][]sqlval.Value{row}}, nil
}

func anyItemAggregate(sel *sqlparser.Select) bool {
	for _, it := range sel.Items {
		if !it.Star && HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// --- FROM construction with join planning ---

// source is one relation instance in the FROM clause.
type source struct {
	rel   sqldb.Relation
	alias string // effective qualifier
	kind  sqlparser.JoinKind
	on    sqlparser.Expr // nil for comma/cross sources
}

func buildFrom(db *sqldb.Database, sel *sqlparser.Select) (*rowset, error) {
	var sources []source
	for _, tr := range sel.From {
		rel, err := db.Resolve(tr.Table)
		if err != nil {
			return nil, err
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Table
		}
		sources = append(sources, source{rel: rel, alias: alias, kind: sqlparser.JoinCross})
		for _, j := range tr.Joins {
			jrel, err := db.Resolve(j.Table)
			if err != nil {
				return nil, err
			}
			jalias := j.Alias
			if jalias == "" {
				jalias = j.Table
			}
			sources = append(sources, source{rel: jrel, alias: jalias, kind: j.Kind, on: j.On})
		}
	}

	// Split WHERE into conjuncts for early application / equi-join use.
	conjuncts := splitAnd(sel.Where)

	cur, err := scanSource(sources[0])
	if err != nil {
		return nil, err
	}
	cur, conjuncts, err = applyReadyFilters(cur, conjuncts)
	if err != nil {
		return nil, err
	}

	for _, src := range sources[1:] {
		right, err := scanSource(src)
		if err != nil {
			return nil, err
		}
		switch src.kind {
		case sqlparser.JoinInner:
			cur, err = joinInner(cur, right, src.on)
		case sqlparser.JoinLeft:
			cur, err = joinLeft(cur, right, src.on)
		default: // cross/comma; WHERE conjuncts apply right after
			cur = crossProduct(cur, right)
		}
		if err != nil {
			return nil, err
		}
		cur, conjuncts, err = applyReadyFilters(cur, conjuncts)
		if err != nil {
			return nil, err
		}
	}

	// Any remaining conjuncts must now be evaluable.
	for _, c := range conjuncts {
		filtered := cur.rows[:0:0]
		for _, r := range cur.rows {
			t, err := EvalBool(c, cur.scope(r))
			if err != nil {
				return nil, err
			}
			if t == sqlval.True {
				filtered = append(filtered, r)
			}
		}
		cur = &rowset{cols: cur.cols, rows: filtered}
	}
	return cur, nil
}

func scanSource(src source) (*rowset, error) {
	schema := src.rel.Schema()
	cols := make([]ScopeCol, len(schema))
	for i, c := range schema {
		cols[i] = ScopeCol{Qualifier: src.alias, Name: c.Name}
	}
	rs := &rowset{cols: cols}
	arena := sqlval.NewRowArena(len(schema))
	err := src.rel.Scan(func(row []sqlval.Value) bool {
		rs.rows = append(rs.rows, arena.Copy(row))
		return true
	})
	return rs, err
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinExpr); ok && be.Op == sqlparser.OpAnd {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []sqlparser.Expr{e}
}

// exprCols lists the column references in an expression.
func exprCols(e sqlparser.Expr, out *[]*sqlparser.ColRef) {
	switch ex := e.(type) {
	case *sqlparser.ColRef:
		*out = append(*out, ex)
	case *sqlparser.BinExpr:
		exprCols(ex.L, out)
		exprCols(ex.R, out)
	case *sqlparser.UnaryExpr:
		exprCols(ex.E, out)
	case *sqlparser.IsNull:
		exprCols(ex.E, out)
	case *sqlparser.InList:
		exprCols(ex.E, out)
		for _, le := range ex.List {
			exprCols(le, out)
		}
	case *sqlparser.Between:
		exprCols(ex.E, out)
		exprCols(ex.Lo, out)
		exprCols(ex.Hi, out)
	case *sqlparser.FuncCall:
		for _, a := range ex.Args {
			exprCols(a, out)
		}
	case *sqlparser.CaseExpr:
		if ex.Operand != nil {
			exprCols(ex.Operand, out)
		}
		for _, w := range ex.Whens {
			exprCols(w.Cond, out)
			exprCols(w.Then, out)
		}
		if ex.Else != nil {
			exprCols(ex.Else, out)
		}
	}
}

// resolvable reports whether every column the expression references is
// present (unambiguously) in the rowset.
func resolvable(e sqlparser.Expr, rs *rowset) bool {
	var refs []*sqlparser.ColRef
	exprCols(e, &refs)
	for _, r := range refs {
		if len(rs.find(r.Qualifier, r.Name)) != 1 {
			return false
		}
	}
	return true
}

// applyReadyFilters applies every conjunct that is already resolvable,
// returning the filtered rowset and the remaining conjuncts.
func applyReadyFilters(rs *rowset, conjuncts []sqlparser.Expr) (*rowset, []sqlparser.Expr, error) {
	var rest []sqlparser.Expr
	for _, c := range conjuncts {
		if !resolvable(c, rs) {
			rest = append(rest, c)
			continue
		}
		var filtered [][]sqlval.Value
		for _, r := range rs.rows {
			t, err := EvalBool(c, rs.scope(r))
			if err != nil {
				return nil, nil, err
			}
			if t == sqlval.True {
				filtered = append(filtered, r)
			}
		}
		rs = &rowset{cols: rs.cols, rows: filtered}
	}
	return rs, rest, nil
}

func concatCols(a, b []ScopeCol) []ScopeCol {
	out := make([]ScopeCol, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func concatRows(a, b []sqlval.Value) []sqlval.Value {
	out := make([]sqlval.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func crossProduct(l, r *rowset) *rowset {
	out := &rowset{cols: concatCols(l.cols, r.cols)}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			out.rows = append(out.rows, concatRows(lr, rr))
		}
	}
	return out
}

func joinInner(l, r *rowset, on sqlparser.Expr) (*rowset, error) {
	if on != nil {
		merged := &rowset{cols: concatCols(l.cols, r.cols)}
		for _, lr := range l.rows {
			for _, rr := range r.rows {
				row := concatRows(lr, rr)
				t, err := EvalBool(on, merged.scope(row))
				if err != nil {
					return nil, err
				}
				if t == sqlval.True {
					merged.rows = append(merged.rows, row)
				}
			}
		}
		return merged, nil
	}
	return crossProduct(l, r), nil
}

func joinLeft(l, r *rowset, on sqlparser.Expr) (*rowset, error) {
	if on == nil {
		return nil, fmt.Errorf("sqlexec: LEFT JOIN requires ON")
	}
	out := &rowset{cols: concatCols(l.cols, r.cols)}
	pad := make([]sqlval.Value, len(r.cols))
	for _, lr := range l.rows {
		matched := false
		for _, rr := range r.rows {
			row := concatRows(lr, rr)
			t, err := EvalBool(on, out.scope(row))
			if err != nil {
				return nil, err
			}
			if t == sqlval.True {
				out.rows = append(out.rows, row)
				matched = true
			}
		}
		if !matched {
			out.rows = append(out.rows, concatRows(lr, pad))
		}
	}
	return out, nil
}

// --- projection ---

func itemName(it sqlparser.SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlparser.ColRef); ok {
		return cr.Name
	}
	if it.Expr != nil {
		return it.Expr.SQL()
	}
	return fmt.Sprintf("col%d", pos+1)
}

// expandItems resolves stars into concrete column projections against a
// column layout (shared by the interpreter and the compile layer).
func expandItems(sel *sqlparser.Select, cols []ScopeCol) ([]sqlparser.SelectItem, error) {
	var out []sqlparser.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range cols {
			if it.Qualifier != "" && !strings.EqualFold(c.Qualifier, it.Qualifier) {
				continue
			}
			matched = true
			out = append(out, sqlparser.SelectItem{
				Expr:  &sqlparser.ColRef{Qualifier: c.Qualifier, Name: c.Name},
				Alias: c.Name,
			})
		}
		if !matched {
			return nil, fmt.Errorf("sqlexec: %s.* matches no columns", it.Qualifier)
		}
	}
	return out, nil
}

func selectPlain(sel *sqlparser.Select, base *rowset) (*rowset, []string, []*Scope, error) {
	items, err := expandItems(sel, base.cols)
	if err != nil {
		return nil, nil, nil, err
	}
	headers := make([]string, len(items))
	cols := make([]ScopeCol, len(items))
	for i, it := range items {
		headers[i] = itemName(it, i)
		cols[i] = ScopeCol{Name: headers[i]}
	}
	out := &rowset{cols: cols, rows: make([][]sqlval.Value, 0, len(base.rows))}
	scopes := make([]*Scope, 0, len(base.rows))
	// Scopes and rows are block-allocated: one backing array each instead
	// of a per-row allocation (this loop dominates SELECT materialisation).
	scopeBuf := make([]Scope, len(base.rows))
	arena := sqlval.NewRowArena(len(items))
	for bi, r := range base.rows {
		scopeBuf[bi] = Scope{Cols: base.cols, Row: r}
		s := &scopeBuf[bi]
		row := arena.Next()
		for i, it := range items {
			v, err := Eval(it.Expr, s)
			if err != nil {
				return nil, nil, nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
		scopes = append(scopes, s)
	}
	return out, headers, scopes, nil
}

func selectGrouped(sel *sqlparser.Select, base *rowset) (*rowset, []string, []*Scope, error) {
	items, err := expandItems(sel, base.cols)
	if err != nil {
		return nil, nil, nil, err
	}

	// Gather all aggregate calls from items and HAVING.
	var aggCalls []*sqlparser.FuncCall
	for _, it := range items {
		collectAggregates(it.Expr, &aggCalls)
	}
	if sel.Having != nil {
		collectAggregates(sel.Having, &aggCalls)
	}

	type group struct {
		firstRow []sqlval.Value
		aggs     []*aggState
	}
	groups := map[string]*group{}
	var order []string

	keyOf := func(s *Scope) (string, error) {
		var b strings.Builder
		for _, g := range sel.GroupBy {
			v, err := Eval(g, s)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%d|%s\x00", v.Type(), v.String())
		}
		return b.String(), nil
	}

	for _, r := range base.rows {
		s := base.scope(r)
		key, err := keyOf(s)
		if err != nil {
			return nil, nil, nil, err
		}
		grp, ok := groups[key]
		if !ok {
			grp = &group{firstRow: r}
			for _, c := range aggCalls {
				grp.aggs = append(grp.aggs, newAggState(c))
			}
			groups[key] = grp
			order = append(order, key)
		}
		for _, a := range grp.aggs {
			if err := a.add(s); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// A grand-total aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		grp := &group{firstRow: make([]sqlval.Value, len(base.cols))}
		for _, c := range aggCalls {
			grp.aggs = append(grp.aggs, newAggState(c))
		}
		groups[""] = grp
		order = append(order, "")
	}

	headers := make([]string, len(items))
	cols := make([]ScopeCol, len(items))
	for i, it := range items {
		headers[i] = itemName(it, i)
		cols[i] = ScopeCol{Name: headers[i]}
	}

	out := &rowset{cols: cols}
	var scopes []*Scope
	for _, key := range order {
		grp := groups[key]
		aggVals := map[string]sqlval.Value{}
		for _, a := range grp.aggs {
			aggVals[a.call.SQL()] = a.result()
		}
		s := &Scope{Cols: base.cols, Row: grp.firstRow, Aggs: aggVals}
		if sel.Having != nil {
			t, err := EvalBool(sel.Having, s)
			if err != nil {
				return nil, nil, nil, err
			}
			if t != sqlval.True {
				continue
			}
		}
		row := make([]sqlval.Value, len(items))
		for i, it := range items {
			v, err := Eval(it.Expr, s)
			if err != nil {
				return nil, nil, nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
		scopes = append(scopes, s)
	}
	return out, headers, scopes, nil
}

// distinctRows deduplicates rows (keeping first occurrences), carrying the
// parallel ORDER BY key slice along when present.
func distinctRows(rows [][]sqlval.Value, keys [][]sqlval.Value) ([][]sqlval.Value, [][]sqlval.Value) {
	seen := map[string]struct{}{}
	out := rows[:0:0]
	var outKeys [][]sqlval.Value
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			fmt.Fprintf(&b, "%d|%s\x00", v.Type(), v.String())
		}
		key := b.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, r)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	return out, outKeys
}

// orderRows sorts out.rows by the pre-computed keys.
func orderRows(sel *sqlparser.Select, out *rowset, keys [][]sqlval.Value) {
	type keyed struct {
		row  []sqlval.Value
		keys []sqlval.Value
	}
	items := make([]keyed, len(out.rows))
	for i, r := range out.rows {
		items[i] = keyed{row: r, keys: keys[i]}
	}
	sort.SliceStable(items, func(i, j int) bool {
		for k, ob := range sel.OrderBy {
			c := sqlval.CompareForSort(items[i].keys[k], items[j].keys[k])
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for i := range items {
		out.rows[i] = items[i].row
	}
}

func applyLimitOffset(sel *sqlparser.Select, rows [][]sqlval.Value) ([][]sqlval.Value, error) {
	empty := &Scope{}
	if sel.Offset != nil {
		v, err := Eval(sel.Offset, empty)
		if err != nil {
			return nil, err
		}
		n := int(v.Int())
		if n < 0 {
			return nil, fmt.Errorf("sqlexec: negative OFFSET")
		}
		if n >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if sel.Limit != nil {
		v, err := Eval(sel.Limit, empty)
		if err != nil {
			return nil, err
		}
		n := int(v.Int())
		if n < 0 {
			return nil, fmt.Errorf("sqlexec: negative LIMIT")
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
