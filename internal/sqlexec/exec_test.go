package sqlexec

import (
	"fmt"
	"strings"
	"testing"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// mustExec runs a statement and fails the test on error.
func mustExec(t *testing.T, db *sqldb.Database, sql string) *Result {
	t.Helper()
	return mustExecOpts(t, db, sql, Options{})
}

// mustExecOpts runs a statement with execution options.
func mustExecOpts(t *testing.T, db *sqldb.Database, sql string, opts Options) *Result {
	t.Helper()
	r, err := ExecOpts(db, sql, opts)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func sampleDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT, area DOUBLE, active BOOLEAN)`)
	mustExec(t, db, `CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount DOUBLE)`)
	mustExec(t, db, `INSERT INTO landfill VALUES
		('a', 'Torino', 120.5, TRUE),
		('b', 'Milano', 80.0, TRUE),
		('c', 'Torino', 45.2, FALSE),
		('d', 'Roma', NULL, TRUE)`)
	mustExec(t, db, `INSERT INTO elem_contained VALUES
		('Mercury', 'a', 12.1),
		('Lead',    'a', 30.0),
		('Zinc',    'a', 5.5),
		('Mercury', 'b', 7.3),
		('Gold',    'c', 0.4),
		('Lead',    'c', 11.0)`)
	return db
}

func rowsAsStrings(r *Result) []string {
	var out []string
	for _, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestSelectBasicWhere(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	if r.Columns[0] != "elem_name" || r.Columns[1] != "landfill_name" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT * FROM landfill`)
	if len(r.Columns) != 4 || len(r.Rows) != 4 {
		t.Errorf("%v x %d", r.Columns, len(r.Rows))
	}
}

func TestSelectQualifiedStar(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT l.* FROM landfill l JOIN elem_contained e ON l.name = e.landfill_name`)
	if len(r.Columns) != 4 {
		t.Errorf("columns = %v", r.Columns)
	}
	if len(r.Rows) != 6 {
		t.Errorf("rows = %d, want 6", len(r.Rows))
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name, area * 2 AS double_area, UPPER(city) FROM landfill WHERE name = 'a'`)
	if r.Columns[1] != "double_area" {
		t.Errorf("alias: %v", r.Columns)
	}
	if r.Rows[0][1].Float() != 241.0 {
		t.Errorf("expr: %v", r.Rows[0][1])
	}
	if r.Rows[0][2].Str() != "TORINO" {
		t.Errorf("func: %v", r.Rows[0][2])
	}
}

func TestNullComparisonsAre3VL(t *testing.T) {
	db := sampleDB(t)
	// d has NULL area: neither > nor <= matches.
	r1 := mustExec(t, db, `SELECT name FROM landfill WHERE area > 50`)
	r2 := mustExec(t, db, `SELECT name FROM landfill WHERE area <= 50`)
	if len(r1.Rows)+len(r2.Rows) != 3 {
		t.Errorf("NULL row leaked into comparisons: %d + %d", len(r1.Rows), len(r2.Rows))
	}
	r3 := mustExec(t, db, `SELECT name FROM landfill WHERE area IS NULL`)
	if len(r3.Rows) != 1 || r3.Rows[0][0].Str() != "d" {
		t.Errorf("IS NULL: %v", rowsAsStrings(r3))
	}
}

func TestInnerJoin(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT l.city, e.elem_name
		FROM landfill AS l JOIN elem_contained AS e ON l.name = e.landfill_name
		WHERE e.elem_name = 'Mercury'`)
	got := rowsAsStrings(r)
	if len(got) != 2 {
		t.Fatalf("rows: %v", got)
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT l.name, e.elem_name
		FROM landfill l LEFT JOIN elem_contained e ON l.name = e.landfill_name
		WHERE l.name = 'd'`)
	if len(r.Rows) != 1 || !r.Rows[0][1].IsNull() {
		t.Errorf("left join pad: %v", rowsAsStrings(r))
	}
}

func TestCommaJoinWithEquiWhereUsesHashJoin(t *testing.T) {
	db := sampleDB(t)
	// Paper Example 4.6 shape: self join via comma syntax + WHERE equality.
	r := mustExec(t, db, `SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name
		FROM elem_contained AS e1, elem_contained AS e2
		WHERE e1.elem_name = e2.elem_name AND e1.landfill_name <> e2.landfill_name`)
	got := rowsAsStrings(r)
	// Mercury in a&b (2 ordered pairs), Lead in a&c (2 ordered pairs).
	if len(got) != 4 {
		t.Fatalf("rows: %v", got)
	}
}

func TestCrossJoin(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(*) FROM landfill CROSS JOIN elem_contained`)
	if r.Rows[0][0].Int() != 24 {
		t.Errorf("cross join count = %v", r.Rows[0][0])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT landfill_name, COUNT(*) AS n, SUM(amount) AS total
		FROM elem_contained GROUP BY landfill_name HAVING COUNT(*) >= 2 ORDER BY n DESC, landfill_name`)
	got := rowsAsStrings(r)
	if len(got) != 2 {
		t.Fatalf("groups: %v", got)
	}
	if got[0] != "a|3|47.6" {
		t.Errorf("first group: %q", got[0])
	}
	if got[1] != "c|2|11.4" {
		t.Errorf("second group: %q", got[1])
	}
}

func TestAggregatesOverall(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(*), COUNT(area), AVG(area), MIN(area), MAX(area) FROM landfill`)
	row := r.Rows[0]
	if row[0].Int() != 4 || row[1].Int() != 3 {
		t.Errorf("COUNT: %v", rowsAsStrings(r))
	}
	if row[3].Float() != 45.2 || row[4].Float() != 120.5 {
		t.Errorf("MIN/MAX: %v", rowsAsStrings(r))
	}
	want := (120.5 + 80.0 + 45.2) / 3
	if diff := row[2].Float() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AVG = %v, want %v", row[2], want)
	}
}

func TestAggregateOnEmptyInput(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(*), SUM(area) FROM landfill WHERE name = 'zzz'`)
	if r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", rowsAsStrings(r))
	}
}

func TestCountDistinct(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(DISTINCT elem_name) FROM elem_contained`)
	if r.Rows[0][0].Int() != 4 {
		t.Errorf("distinct count = %v", r.Rows[0][0])
	}
}

func TestDistinctRows(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT DISTINCT landfill_name FROM elem_contained ORDER BY landfill_name`)
	got := rowsAsStrings(r)
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("distinct: %v", got)
	}
}

func TestOrderByMultipleKeysAndNulls(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name, area FROM landfill ORDER BY area DESC, name`)
	got := rowsAsStrings(r)
	// NULLs sort first ascending, so DESC puts them last.
	if got[len(got)-1] != "d|NULL" {
		t.Errorf("NULL ordering: %v", got)
	}
	if got[0] != "a|120.5" {
		t.Errorf("DESC ordering: %v", got)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name, area * 2 AS a2 FROM landfill WHERE area IS NOT NULL ORDER BY a2`)
	got := rowsAsStrings(r)
	if got[0] != "c|90.4" {
		t.Errorf("alias ordering: %v", got)
	}
}

func TestLimitOffset(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name FROM landfill ORDER BY name LIMIT 2 OFFSET 1`)
	got := rowsAsStrings(r)
	if strings.Join(got, ",") != "b,c" {
		t.Errorf("limit/offset: %v", got)
	}
}

func TestInBetweenLikeCase(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name FROM landfill WHERE city IN ('Torino', 'Roma') ORDER BY name`)
	if strings.Join(rowsAsStrings(r), ",") != "a,c,d" {
		t.Errorf("IN: %v", rowsAsStrings(r))
	}
	r = mustExec(t, db, `SELECT name FROM landfill WHERE area BETWEEN 50 AND 130 ORDER BY name`)
	if strings.Join(rowsAsStrings(r), ",") != "a,b" {
		t.Errorf("BETWEEN: %v", rowsAsStrings(r))
	}
	r = mustExec(t, db, `SELECT elem_name FROM elem_contained WHERE elem_name LIKE 'Me%' AND landfill_name = 'a'`)
	if strings.Join(rowsAsStrings(r), ",") != "Mercury" {
		t.Errorf("LIKE: %v", rowsAsStrings(r))
	}
	r = mustExec(t, db, `SELECT name, CASE WHEN active THEN 'open' ELSE 'closed' END AS st FROM landfill ORDER BY name`)
	got := rowsAsStrings(r)
	if got[2] != "c|closed" {
		t.Errorf("CASE: %v", got)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := sqldb.NewDatabase()
	r := mustExec(t, db, `SELECT 1 + 2 AS x, 'hi' || '!' AS s, UPPER('ab')`)
	if r.Rows[0][0].Int() != 3 || r.Rows[0][1].Str() != "hi!" || r.Rows[0][2].Str() != "AB" {
		t.Errorf("%v", rowsAsStrings(r))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `UPDATE landfill SET area = area + 1 WHERE city = 'Torino'`)
	if r.Affected != 2 {
		t.Errorf("update affected %d", r.Affected)
	}
	r = mustExec(t, db, `SELECT area FROM landfill WHERE name = 'a'`)
	if r.Rows[0][0].Float() != 121.5 {
		t.Errorf("update applied: %v", r.Rows[0][0])
	}
	r = mustExec(t, db, `DELETE FROM elem_contained WHERE landfill_name = 'a'`)
	if r.Affected != 3 {
		t.Errorf("delete affected %d", r.Affected)
	}
	r = mustExec(t, db, `SELECT COUNT(*) FROM elem_contained`)
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("remaining: %v", r.Rows[0][0])
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := sampleDB(t)
	mustExec(t, db, `INSERT INTO landfill (name, city) VALUES ('e', 'Napoli')`)
	r := mustExec(t, db, `SELECT area, active FROM landfill WHERE name = 'e'`)
	if !r.Rows[0][0].IsNull() || !r.Rows[0][1].IsNull() {
		t.Errorf("omitted columns default to NULL: %v", rowsAsStrings(r))
	}
}

func TestErrorCases(t *testing.T) {
	db := sampleDB(t)
	bad := []string{
		`SELECT nope FROM landfill`,
		`SELECT name FROM nonexistent`,
		`SELECT l.name FROM landfill x`,
		`SELECT name FROM landfill WHERE city > 3`,
		`SELECT name FROM landfill WHERE name`,
		`INSERT INTO landfill VALUES ('a', 'dup', 1.0, TRUE)`,
		`INSERT INTO landfill (nope) VALUES (1)`,
		`SELECT SUM(city) FROM landfill`,
		`SELECT UNKNOWN_FUNC(name) FROM landfill`,
		`SELECT 1/0`,
		`SELECT name FROM landfill LIMIT -1`,
		`SELECT name, COUNT(*) FROM landfill t, landfill u`,
	}
	for _, q := range bad {
		if _, err := Exec(db, q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := sampleDB(t)
	_, err := Exec(db, `SELECT name FROM landfill a, landfill b`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
}

func TestJoinWithNonEquiOn(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(*) FROM landfill a JOIN landfill b ON a.area > b.area`)
	// pairs with a.area > b.area among {120.5, 80, 45.2}: 3 ordered pairs.
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("non-equi join count = %v", r.Rows[0][0])
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE a (k TEXT)`)
	mustExec(t, db, `CREATE TABLE b (k TEXT)`)
	mustExec(t, db, `INSERT INTO a VALUES (NULL), ('x')`)
	mustExec(t, db, `INSERT INTO b VALUES (NULL), ('x')`)
	r := mustExec(t, db, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k`)
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("NULL keys must not join: %v", r.Rows[0][0])
	}
}

func TestGroupByExpression(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT UPPER(city) AS c, COUNT(*) FROM landfill GROUP BY UPPER(city) ORDER BY c`)
	got := rowsAsStrings(r)
	if len(got) != 3 || got[2] != "TORINO|2" {
		t.Errorf("group by expr: %v", got)
	}
}

func TestLargeEquiJoinPerformanceShape(t *testing.T) {
	// A 5k x 5k self equi-join must complete fast (hash join, not O(n²)).
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE big (id INT, k TEXT)`)
	tab, _ := db.Table("big")
	for i := 0; i < 5000; i++ {
		tab.Insert([]sqlval.Value{sqlval.NewInt(int64(i)), sqlval.NewString(fmt.Sprintf("k%d", i%100))})
	}
	r := mustExec(t, db, `SELECT COUNT(*) FROM big a, big b WHERE a.k = b.k`)
	if r.Rows[0][0].Int() != 5000*50 {
		t.Errorf("join size = %v, want %d", r.Rows[0][0], 5000*50)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Mercury", "Mer%", true},
		{"Mercury", "%cury", true},
		{"Mercury", "%erc%", true},
		{"Mercury", "M_rcury", true},
		{"Mercury", "m%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"a%b", "a%b", true}, // literal traversal via % wildcard
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}
