package sqlexec

// run.go — the streaming executor for compiled SelectPlans. Execution is a
// push-based pipeline over ONE reused joined-row buffer: the driving scan
// fills its slot segment, each join step fills the right source's segment
// per candidate, filters run at the step their slots first become bound,
// and only the sink (projection / DISTINCT / ORDER BY / grouping)
// allocates retained rows — via sqlval.RowArena, so materialising n rows
// costs O(n/block) allocations. LIMIT without ORDER BY stops the pipeline
// early; ORDER BY + LIMIT keeps a bounded stable top-K heap instead of
// sorting everything.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	sched "crosse/internal/exec"
	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// Run executes the plan and materialises the result.
func (p *SelectPlan) Run() (*Result, error) {
	return p.RunContext(nil)
}

// RunContext executes the plan bounded by ctx and materialises the result.
// Scans over context-aware relations (remote sources) honour the context's
// deadline and cancellation; local in-memory scans ignore it. Under
// Options.PartialResults the result's SkippedSources names any unavailable
// sources that were skipped. A nil ctx behaves like Run.
func (p *SelectPlan) RunContext(ctx context.Context) (*Result, error) {
	res := &Result{Columns: append([]string(nil), p.headers...)}
	arena := sqlval.NewRowArena(len(p.headers))
	info, err := p.StreamInfoContext(ctx, func(row []sqlval.Value) bool {
		res.Rows = append(res.Rows, arena.Copy(row))
		return true
	})
	if err != nil {
		return nil, err
	}
	res.SkippedSources = info.SkippedSources
	res.ParallelFallback = info.ParallelFallback
	return res, nil
}

// Stream executes the plan, pushing each output row to fn; fn returning
// false stops execution early. The row slice is reused between calls —
// callers that retain rows must copy them.
func (p *SelectPlan) Stream(fn func(row []sqlval.Value) bool) error {
	_, err := p.StreamContext(nil, fn)
	return err
}

// StreamContext is Stream bounded by ctx (see RunContext); it additionally
// returns the names of sources skipped under Options.PartialResults.
func (p *SelectPlan) StreamContext(ctx context.Context, fn func(row []sqlval.Value) bool) ([]string, error) {
	info, err := p.StreamInfoContext(ctx, fn)
	return info.SkippedSources, err
}

// StreamInfo reports per-execution metadata of one plan run.
type StreamInfo struct {
	// SkippedSources names sources that were down and skipped under
	// Options.PartialResults.
	SkippedSources []string
	// ParallelFallback is empty when the run took the morsel-driven
	// parallel path, and otherwise names why it fell back to the serial
	// pipeline (e.g. "parallelism=1", "driving scan below parallel
	// threshold").
	ParallelFallback string
}

// StreamInfoContext is StreamContext returning full per-run metadata,
// including why the run fell back to the serial pipeline (if it did).
func (p *SelectPlan) StreamInfoContext(ctx context.Context, fn func(row []sqlval.Value) bool) (StreamInfo, error) {
	sh := &runShared{ctx: ctx, partial: p.opts.PartialResults}
	r := &runner{p: p, yield: fn, shared: sh}
	err := r.run()
	return StreamInfo{SkippedSources: sh.skipped, ParallelFallback: sh.fallback}, err
}

// runShared is the per-execution state shared by the coordinator runner,
// the parallel workers and the concurrent side builds: the bounding
// context plus the partial-results skip list (mutex-guarded — side builds
// run concurrently).
type runShared struct {
	ctx     context.Context
	partial bool

	// fallback names why the run declined the parallel path ("" = ran
	// parallel). Written by the coordinator before any worker starts.
	fallback string

	mu      sync.Mutex
	skipped []string
}

func (sh *runShared) recordSkip(name string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, s := range sh.skipped {
		if s == name {
			return
		}
	}
	sh.skipped = append(sh.skipped, name)
}

// scanRelation dispatches one source scan: context-aware when the relation
// supports it and a context is set, plain otherwise. A source that is down
// before producing any row (sqldb.ErrSourceDown) is skipped — recorded,
// scan yields zero rows — under PartialResults; every other error fails
// the query, annotated with the relation name.
func (sh *runShared) scanRelation(sp scanPlan, h func([]sqlval.Value) bool) error {
	var err error
	if sp.eqCol != "" {
		if cfr, ok := sp.rel.(sqldb.ContextFilteredRelation); ok && sh.ctx != nil {
			err = cfr.ScanEqContext(sh.ctx, sp.eqCol, sp.eqVal, h)
		} else {
			err = sp.rel.(sqldb.FilteredRelation).ScanEq(sp.eqCol, sp.eqVal, h)
		}
	} else {
		if cr, ok := sp.rel.(sqldb.ContextRelation); ok && sh.ctx != nil {
			err = cr.ScanContext(sh.ctx, h)
		} else {
			err = sp.rel.Scan(h)
		}
	}
	if err == nil {
		return nil
	}
	if sh.partial && errors.Is(err, sqldb.ErrSourceDown) {
		sh.recordSkip(sqldb.SourceOf(err, sp.rel.Name()))
		return nil
	}
	return fmt.Errorf("scan %s: %w", sp.rel.Name(), err)
}

// runner holds all per-execution state of one plan run.
type runner struct {
	p      *SelectPlan
	yield  func([]sqlval.Value) bool
	shared *runShared

	row []sqlval.Value // the joined-row buffer, width p.width

	// Per-join materialised right sides (index parallel to p.joins).
	// swapped marks the first join running in build-left/stream-right
	// orientation (chosen from live cardinalities).
	rights  [][][]sqlval.Value
	hashes  []*joinTable
	swapped bool
	// In swapped mode the materialised LEFT rows and their hash by key.
	leftRows [][]sqlval.Value
	leftHash *joinTable

	// driving marks the pipeline-driving scan (as opposed to side builds);
	// drivePos counts its rows pre-filter, so sinks can derive the morsel
	// index a row would land in on the parallel path — the unit of the
	// deterministic float-aggregation reduction (see aggState).
	driving  bool
	drivePos int64

	err     error
	stopped bool // fn asked to stop (not an error)

	sink rowSink
}

// rowSink consumes completed joined rows and produces output rows.
type rowSink interface {
	// add consumes one joined row; returning false stops the pipeline.
	add(row []sqlval.Value) bool
	// finish flushes buffered output (sorting, grouping, …).
	finish() error
}

func (r *runner) run() error {
	p := r.p
	if p.fromless {
		r.shared.fallback = "fromless select"
		out := make([]sqlval.Value, len(p.items))
		for i, it := range p.items {
			v, err := it.eval(nil)
			if err != nil {
				return err
			}
			out[i] = v
		}
		r.yield(out)
		return nil
	}

	r.row = make([]sqlval.Value, p.width)

	// Decide the orientation of the first join: when both base relations
	// expose O(1) cardinalities and the left side is the smaller input,
	// build the hash over the left scan and stream the right one. A
	// pushed-down equality seek marks its side as tiny.
	if len(p.joins) > 0 && p.joins[0].kind == joinHash {
		le, lok := scanEstimate(p.scan0)
		re, rok := scanEstimate(p.joins[0].src)
		r.swapped = lok && rok && le < re
	}

	// Large driving inputs take the morsel-driven parallel path (see
	// parallel.go); everything below is the serial pipeline.
	if done, err := r.tryParallel(); done {
		return err
	}

	if p.grouped {
		r.sink = newGroupedSink(r)
	} else {
		r.sink = newPlainSink(r)
	}

	// Materialise the non-streamed sides up front (sequentially, so no
	// table locks nest).
	for i := range p.joins {
		if r.swapped && i == 0 {
			if err := r.buildSwappedLeft(); err != nil {
				return err
			}
			r.rights = append(r.rights, nil)
			r.hashes = append(r.hashes, nil)
			continue
		}
		rows, err := r.materialize(p.joins[i].src)
		if err != nil {
			return err
		}
		r.rights = append(r.rights, rows)
		switch p.joins[i].kind {
		case joinHash, joinHashLeft:
			r.hashes = append(r.hashes, buildHash(rows, p.joins[i].rightSlot-p.joins[i].src.offset))
		default:
			r.hashes = append(r.hashes, nil)
		}
	}

	// Drive the pipeline.
	r.driving = true
	if r.swapped {
		j := p.joins[0]
		src := j.src
		keyOff := j.rightSlot
		var scratch []byte
		r.scan(src, func() bool {
			v := r.row[keyOff]
			if v.IsNull() {
				return true
			}
			scratch = sqlval.AppendJoinKey(scratch[:0], v)
			for _, li := range r.leftHash.lookup(scratch) {
				if cmp, err := sqlval.Compare(v, r.leftRows[li][j.leftSlot]); err != nil || cmp != 0 {
					continue
				}
				copy(r.row[:p.scan0.width], r.leftRows[li])
				if ok, done := r.applyConjuncts(j.residual); !ok {
					if done {
						return false
					}
					continue
				}
				if ok, done := r.applyConjuncts(j.post); !ok {
					if done {
						return false
					}
					continue
				}
				if !r.step(2) {
					return false
				}
			}
			return true
		})
	} else {
		r.scan(p.scan0, func() bool {
			return r.step(1)
		})
	}
	if r.err != nil {
		return r.err
	}
	if r.stopped {
		return nil
	}
	return r.sink.finish()
}

// scanEstimate returns a cheap cardinality estimate for a source: 0 when
// an equality seek was pushed down, the relation's O(1) row count when it
// exposes one, and unknown otherwise.
func scanEstimate(sp scanPlan) (int, bool) {
	if sp.eqCol != "" {
		return 0, true
	}
	if l, ok := sp.rel.(interface{ Len() int }); ok {
		return l.Len(), true
	}
	return 0, false
}

// scan streams the source's rows into its slot segment of the joined-row
// buffer, applying the pushed-down seek and the source-local filters, then
// calls next. next returning false stops the scan.
func (r *runner) scan(sp scanPlan, next func() bool) {
	seg := r.row[sp.offset : sp.offset+sp.width]
	h := func(in []sqlval.Value) bool {
		if r.driving {
			r.drivePos++
		}
		copy(seg, in)
		if ok, done := r.applyConjuncts(sp.filters); !ok {
			return !done
		}
		return next()
	}
	if err := r.shared.scanRelation(sp, h); err != nil && r.err == nil {
		r.err = err
	}
}

// applyConjuncts evaluates the conjuncts over the row buffer. ok reports
// whether every conjunct is True; done reports a hard stop (evaluation
// error, recorded in r.err).
func (r *runner) applyConjuncts(conj []cexpr) (ok, done bool) {
	for _, c := range conj {
		t, err := cEvalBool(c, r.row)
		if err != nil {
			r.err = err
			return false, true
		}
		if t != sqlval.True {
			return false, false
		}
	}
	return true, false
}

// materialize scans a right-side source into retained rows of the
// source's width (seek and source-local filters applied).
func (r *runner) materialize(sp scanPlan) ([][]sqlval.Value, error) {
	arena := sqlval.NewRowArena(sp.width)
	var rows [][]sqlval.Value
	seg := r.row[sp.offset : sp.offset+sp.width]
	r.scan(sp, func() bool {
		rows = append(rows, arena.Copy(seg))
		return true
	})
	if r.err != nil {
		return nil, r.err
	}
	return rows, nil
}

// buildSwappedLeft materialises the driving scan and hashes it on the
// first join's left key (swapped orientation).
func (r *runner) buildSwappedLeft() error {
	p := r.p
	arena := sqlval.NewRowArena(p.scan0.width)
	keySlot := p.joins[0].leftSlot
	buckets := make(map[string][]int32)
	var scratch []byte
	seg := r.row[:p.scan0.width]
	r.scan(p.scan0, func() bool {
		v := r.row[keySlot]
		if v.IsNull() {
			return true // NULL keys never equi-join
		}
		r.leftRows = append(r.leftRows, arena.Copy(seg))
		scratch = sqlval.AppendJoinKey(scratch[:0], v)
		k := string(scratch)
		buckets[k] = append(buckets[k], int32(len(r.leftRows)-1))
		return true
	})
	r.leftHash = &joinTable{parts: []map[string][]int32{buckets}}
	return r.err
}

// joinTable is a frozen hash index over materialised build rows: buckets of
// ascending row indexes keyed by the encoded join key. The serial build
// produces a single partition; the parallel build (see parallelBuildHash)
// partitions by key hash so workers can assemble disjoint bucket maps
// without synchronisation — bucket contents are identical either way, so
// probes cannot observe which build ran.
type joinTable struct {
	parts []map[string][]int32
	mask  uint32 // len(parts)-1; 0 = single partition
}

// lookup returns the bucket for an encoded join key.
func (t *joinTable) lookup(key []byte) []int32 {
	if t.mask == 0 {
		return t.parts[0][string(key)]
	}
	return t.parts[hashJoinKey(key)&t.mask][string(key)]
}

// hashJoinKey is FNV-1a over the encoded key bytes — the partitioning hash
// of the parallel build (independent of Go's randomized map hash).
func hashJoinKey(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// buildHash indexes materialised rows by their join-key column (relative
// to the row, not the joined layout). NULL keys are skipped: they never
// equi-join.
func buildHash(rows [][]sqlval.Value, keyCol int) *joinTable {
	h := make(map[string][]int32, len(rows))
	var scratch []byte
	for i, row := range rows {
		v := row[keyCol]
		if v.IsNull() {
			continue
		}
		scratch = sqlval.AppendJoinKey(scratch[:0], v)
		k := string(scratch)
		h[k] = append(h[k], int32(i))
	}
	return &joinTable{parts: []map[string][]int32{h}}
}

// step runs join i (1-based; i > len(joins) hands the row to the sink).
// It returns false to stop the whole pipeline (error or early exit).
func (r *runner) step(i int) bool {
	p := r.p
	if i > len(p.joins) {
		if !r.sink.add(r.row) {
			if r.err == nil {
				r.stopped = true
			}
			return false
		}
		return true
	}
	j := &p.joins[i-1]
	seg := r.row[j.src.offset : j.src.offset+j.src.width]
	rows := r.rights[i-1]

	emit := func() (cont bool, passed bool) {
		// Residual ON conjuncts decide whether the pair counts as
		// matched; post WHERE conjuncts only gate descent.
		if ok, done := r.applyConjuncts(j.residual); !ok {
			return !done, false
		}
		if ok, done := r.applyConjuncts(j.post); !ok {
			return !done, true
		}
		return r.step(i + 1), true
	}

	switch j.kind {
	case joinHash, joinHashLeft:
		matched := false
		v := r.row[j.leftSlot]
		if !v.IsNull() {
			var scratch [48]byte
			keyRel := j.rightSlot - j.src.offset
			for _, ri := range r.hashes[i-1].lookup(sqlval.AppendJoinKey(scratch[:0], v)) {
				// The bucket may hold Compare-unequal values (the numeric
				// fold is lossy past 2^53): re-verify the actual equality.
				if cmp, err := sqlval.Compare(v, rows[ri][keyRel]); err != nil || cmp != 0 {
					continue
				}
				copy(seg, rows[ri])
				cont, passed := emit()
				matched = matched || passed
				if !cont {
					return false
				}
			}
		}
		if j.kind == joinHashLeft && !matched {
			return r.padAndDescend(i, j, seg)
		}
	case joinNested, joinNestedLeft:
		matched := false
		for _, rr := range rows {
			copy(seg, rr)
			cont, passed := emit()
			matched = matched || passed
			if !cont {
				return false
			}
		}
		if j.kind == joinNestedLeft && !matched {
			return r.padAndDescend(i, j, seg)
		}
	case joinCross:
		for _, rr := range rows {
			copy(seg, rr)
			if cont, _ := emit(); !cont {
				return false
			}
		}
	}
	return true
}

// padAndDescend fills the right segment with NULLs (unmatched LEFT JOIN
// row), applies the post conjuncts and descends.
func (r *runner) padAndDescend(i int, j *joinPlan, seg []sqlval.Value) bool {
	for k := range seg {
		seg[k] = sqlval.Null
	}
	if ok, done := r.applyConjuncts(j.post); !ok {
		return !done
	}
	return r.step(i + 1)
}

// --- plain (non-grouped) sink ---

type plainSink struct {
	r   *runner
	p   *SelectPlan
	out []sqlval.Value // reused projection buffer

	seen       map[string]struct{} // DISTINCT keys
	keyScratch []byte

	sorter *topKSorter

	count, skipped int
}

func newPlainSink(r *runner) *plainSink {
	s := &plainSink{r: r, p: r.p, out: make([]sqlval.Value, len(r.p.items))}
	if s.p.distinct {
		s.seen = make(map[string]struct{})
	}
	if len(s.p.order) > 0 {
		s.sorter = newTopKSorter(s.p, len(s.p.headers))
	}
	return s
}

func (s *plainSink) add(row []sqlval.Value) bool {
	for i, it := range s.p.items {
		v, err := it.eval(row)
		if err != nil {
			s.r.err = err
			return false
		}
		s.out[i] = v
	}
	return s.deliver(row)
}

// deliver runs the DISTINCT / ORDER BY / LIMIT tail over the projected
// row; under is the row order keys fall back to when they reference
// non-projected columns.
func (s *plainSink) deliver(under []sqlval.Value) bool {
	if s.seen != nil {
		s.keyScratch = s.keyScratch[:0]
		for _, v := range s.out {
			s.keyScratch = sqlval.AppendKey(s.keyScratch, v)
		}
		if _, dup := s.seen[string(s.keyScratch)]; dup {
			return true
		}
		s.seen[string(s.keyScratch)] = struct{}{}
	}
	if s.sorter != nil {
		if err := s.sorter.add(s.out, under); err != nil {
			s.r.err = err
			return false
		}
		return true
	}
	if s.p.offset > 0 && s.skipped < s.p.offset {
		s.skipped++
		return true
	}
	if s.p.limit == 0 {
		return false
	}
	if !s.r.yield(s.out) {
		return false
	}
	s.count++
	return s.p.limit < 0 || s.count < s.p.limit
}

func (s *plainSink) finish() error {
	if s.sorter != nil {
		return s.sorter.flush(s.r.yield)
	}
	return nil
}

// --- grouped sink ---

type groupState struct {
	first []sqlval.Value // retained copy of the group's first joined row
	aggs  []*aggState

	// firstAt is the arrival stamp of the group's first row — zero on the
	// serial path, (morsel, seq) composite on the parallel one, where the
	// merge orders groups by it to reproduce first-seen output order.
	firstAt int64
}

type groupedSink struct {
	r *runner
	p *SelectPlan

	groups map[string]*groupState
	order  []*groupState
	arena  *sqlval.RowArena

	keyScratch []byte
}

func newGroupedSink(r *runner) *groupedSink {
	return &groupedSink{
		r:      r,
		p:      r.p,
		groups: make(map[string]*groupState),
		arena:  sqlval.NewRowArena(r.p.width),
	}
}

func (s *groupedSink) add(row []sqlval.Value) bool {
	g := s.p.group
	s.keyScratch = s.keyScratch[:0]
	for _, ke := range g.keys {
		v, err := ke.eval(row)
		if err != nil {
			s.r.err = err
			return false
		}
		s.keyScratch = sqlval.AppendKey(s.keyScratch, v)
	}
	grp, ok := s.groups[string(s.keyScratch)]
	if !ok {
		grp = &groupState{first: s.arena.Copy(row)}
		grp.aggs = make([]*aggState, len(g.aggs))
		for i, a := range g.aggs {
			grp.aggs[i] = newAggState(a.fc)
		}
		s.groups[string(s.keyScratch)] = grp
		s.order = append(s.order, grp)
	}
	// Stamp values with the driving row's would-be parallel morsel so float
	// SUM/AVG folds per morsel — the same reduction tree the parallel merge
	// uses, which is what makes the two paths bit-identical.
	at := sched.At(int((s.r.drivePos-1)/int64(parallelMorsel)), 0)
	for i, a := range g.aggs {
		if a.arg == nil { // COUNT(*)
			grp.aggs[i].count++
			continue
		}
		v, err := a.arg.eval(row)
		if err != nil {
			s.r.err = err
			return false
		}
		grp.aggs[i].stamp = at
		if err := grp.aggs[i].addValue(v); err != nil {
			s.r.err = err
			return false
		}
	}
	return true
}

func (s *groupedSink) finish() error {
	return emitGroups(s.r, s.order)
}

// emitGroups runs the shared HAVING / projection / DISTINCT / ORDER /
// LIMIT tail over completed groups in first-seen order. Both the serial
// grouped sink and the parallel merge end here.
func emitGroups(r *runner, order []*groupState) error {
	p := r.p
	g := p.group
	// A grand-total aggregate over zero rows still yields one group.
	if len(order) == 0 && len(g.keys) == 0 {
		grp := &groupState{first: make([]sqlval.Value, p.width)}
		grp.aggs = make([]*aggState, len(g.aggs))
		for i, a := range g.aggs {
			grp.aggs[i] = newAggState(a.fc)
		}
		order = append(order, grp)
	}

	// The emit tail shares the plain sink's DISTINCT/ORDER/LIMIT logic.
	tail := newPlainSink(r)
	ext := make([]sqlval.Value, p.width+len(g.aggs))
	for _, grp := range order {
		copy(ext, grp.first)
		for i, a := range grp.aggs {
			ext[p.width+i] = a.result()
		}
		if g.having != nil {
			t, err := cEvalBool(g.having, ext)
			if err != nil {
				return err
			}
			if t != sqlval.True {
				continue
			}
		}
		for i, it := range p.items {
			v, err := it.eval(ext)
			if err != nil {
				return err
			}
			tail.out[i] = v
		}
		if !tail.deliver(ext) {
			if r.err != nil {
				return r.err
			}
			return nil
		}
	}
	return tail.finish()
}

// --- stable top-K / full sort ---

// sortedRow is one buffered output row with its evaluated order keys and
// arrival stamp (the tiebreak that makes the sort stable). On the serial
// path the stamp is a plain sequence number; on the parallel path it is
// the (morsel, within-morsel sequence) composite of exec.At, which orders
// rows exactly as the serial pipeline would have produced them.
type sortedRow struct {
	keys []sqlval.Value
	row  []sqlval.Value
	seq  int64
}

// topKSorter buffers output rows for ORDER BY. With a LIMIT (and top-K
// enabled) it keeps only the limit+offset best rows in a max-heap —
// the heap order includes the arrival sequence, so the retained set is
// exactly the stable-sort prefix, ties included.
type topKSorter struct {
	p          *SelectPlan
	rows       []sortedRow
	rowA       *sqlval.RowArena
	keyA       *sqlval.RowArena
	keyScratch []sqlval.Value // reused for rows the bounded heap rejects
	cap        int            // -1 = unbounded (full sort)
	seq        int64
}

func newTopKSorter(p *SelectPlan, width int) *topKSorter {
	s := &topKSorter{
		p:          p,
		rowA:       sqlval.NewRowArena(width),
		keyA:       sqlval.NewRowArena(len(p.order)),
		keyScratch: make([]sqlval.Value, len(p.order)),
		cap:        -1,
	}
	if p.limit >= 0 && !p.opts.DisableTopK {
		s.cap = p.limit
		if p.offset > 0 {
			s.cap += p.offset
		}
	}
	return s
}

// less orders a before b in the final output (keys, then arrival).
func (s *topKSorter) less(a, b *sortedRow) bool {
	for k, op := range s.p.order {
		c := sqlval.CompareForSort(a.keys[k], b.keys[k])
		if c != 0 {
			if op.desc {
				return c > 0
			}
			return c < 0
		}
	}
	return a.seq < b.seq
}

func (s *topKSorter) add(out, under []sqlval.Value) error {
	keys := s.keyScratch
	for k, op := range s.p.order {
		var v sqlval.Value
		var err error
		if op.outKey != nil {
			v, err = op.outKey.eval(out)
			if err != nil && op.underKey != nil {
				// Per-row fallback to the underlying columns, like the
				// interpreter.
				v, err = op.underKey.eval(under)
			}
		} else {
			v, err = op.underKey.eval(under)
		}
		if err != nil {
			return err
		}
		keys[k] = v
	}
	nr := sortedRow{keys: keys, seq: s.seq}
	s.seq++

	if s.cap == 0 {
		return nil
	}
	if s.cap > 0 && len(s.rows) == s.cap && !s.less(&nr, &s.rows[0]) {
		return nil // loses to the current worst: drop without copying
	}
	// Retained: copy the keys and the projected row out of the scratch
	// buffers.
	nr.keys = s.keyA.Copy(keys)
	nr.row = s.rowA.Copy(out)

	if s.cap < 0 || len(s.rows) < s.cap {
		s.rows = append(s.rows, nr)
		if len(s.rows) == s.cap {
			// Heapify: max-heap on final order (root = worst retained).
			for i := len(s.rows)/2 - 1; i >= 0; i-- {
				s.siftDown(i)
			}
		}
		return nil
	}
	// Replace the current worst.
	s.rows[0] = nr
	s.siftDown(0)
	return nil
}

func (s *topKSorter) siftDown(i int) {
	n := len(s.rows)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && s.less(&s.rows[worst], &s.rows[l]) {
			worst = l
		}
		if r < n && s.less(&s.rows[worst], &s.rows[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.rows[i], s.rows[worst] = s.rows[worst], s.rows[i]
		i = worst
	}
}

func (s *topKSorter) flush(yield func([]sqlval.Value) bool) error {
	// (keys, seq) is a strict total order, so a plain sort equals the
	// interpreter's stable sort; for the bounded case the heap retained
	// exactly the first cap rows of that order.
	sort.Slice(s.rows, func(i, j int) bool { return s.less(&s.rows[i], &s.rows[j]) })
	rows := s.rows
	if s.p.offset > 0 {
		if s.p.offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[s.p.offset:]
		}
	}
	if s.p.limit >= 0 && s.p.limit < len(rows) {
		rows = rows[:s.p.limit]
	}
	for i := range rows {
		if !yield(rows[i].row) {
			return nil
		}
	}
	return nil
}
