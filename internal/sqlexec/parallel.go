package sqlexec

// parallel.go — morsel-driven parallel execution of compiled SelectPlans.
// The driving scan is materialised once in serial enumeration order and
// partitioned into fixed-size morsels; a bounded worker pool (see
// internal/exec) claims morsels from an atomic counter and runs the full
// join/filter/projection pipeline per worker against the shared, frozen
// right-side rows and hash tables. All mutable execution state — the
// joined-row buffer, projection buffer, DISTINCT sets, aggregation maps,
// top-K heaps — is per worker; output is buffered per morsel (or stamped
// with its (morsel, seq) arrival position) and merged in morsel order, so
// the parallel output is byte-identical to the serial pipeline's: same
// rows, same order, same ties, same first error.
//
// Hash-join builds past the threshold are partitioned two-phase parallel
// builds (parallelBuildHash); float SUM/AVG folds per-morsel compensated
// partials in morsel order (see aggState); DISTINCT aggregates collect
// stamped first occurrences and replay them after the merge; and ORDER BY
// without LIMIT merges per-worker sorted runs through a loser tree. The
// shapes that still fall back to serial — driving relations without an
// O(1) cardinality (foreign tables), pushed-down equality seeks (tiny by
// construction), inputs below parallelMinRows, LIMIT 0 — record why in
// runShared.fallback, surfaced as StreamInfo.ParallelFallback.

import (
	"sort"
	"sync"

	sched "crosse/internal/exec"
	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// Tuning knobs. Variables rather than constants so the parity suite can
// force the parallel path on small inputs.
var (
	// parallelMinRows is the driving-scan cardinality below which the
	// serial pipeline runs instead.
	parallelMinRows = 4096
	// parallelMorsel is the number of driving rows per morsel.
	parallelMorsel = 1024
)

// tryParallel runs the plan on the parallel path when it is eligible,
// reporting done=false to let the serial pipeline take over; every decline
// records its reason in runShared.fallback for Stats visibility.
func (r *runner) tryParallel() (done bool, err error) {
	p := r.p
	workers := sched.Workers(p.opts.Parallelism)
	if workers <= 1 {
		r.shared.fallback = "parallelism=1"
		return false, nil
	}
	if p.limit == 0 {
		r.shared.fallback = "limit 0"
		return false, nil
	}
	if p.grouped {
		for _, a := range p.group.aggs {
			if !mergeableAgg(a.fc) {
				r.shared.fallback = "non-mergeable aggregate " + a.fc.Name
				return false, nil
			}
		}
	}
	driving := p.scan0
	if r.swapped {
		driving = p.joins[0].src
	}
	est, ok := scanEstimate(driving)
	if !ok {
		r.shared.fallback = "driving scan has no O(1) cardinality"
		return false, nil
	}
	if est < parallelMinRows {
		r.shared.fallback = "driving scan below parallel threshold"
		return false, nil
	}
	return true, r.runParallel(workers, driving)
}

// parMorsel is one morsel's buffered output: projected rows (plain
// unsorted mode only) and the first error the worker hit inside the
// morsel. Exactly one worker writes each element.
type parMorsel struct {
	rows [][]sqlval.Value
	err  error
}

func (r *runner) runParallel(workers int, driving scanPlan) error {
	p := r.p

	// Build every non-streamed side and materialise the driving scan
	// concurrently, each with its own scratch row; everything is frozen
	// before the first worker starts. The driving side is materialised
	// raw — its source-local filters run on the workers.
	var (
		wg        sync.WaitGroup
		drive     [][]sqlval.Value
		driveErr  error
		buildErrs = make([]error, len(p.joins))
	)
	r.rights = make([][][]sqlval.Value, len(p.joins))
	r.hashes = make([]*joinTable, len(p.joins))
	wg.Add(1)
	go func() {
		defer wg.Done()
		drive, driveErr = p.materializeSide(r.shared, driving, true)
	}()
	for i := range p.joins {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r.swapped && i == 0 {
				rows, err := p.materializeSide(r.shared, p.scan0, false)
				if err != nil {
					buildErrs[0] = err
					return
				}
				r.leftRows = rows
				r.leftHash = parallelBuildHash(workers, rows, p.joins[0].leftSlot-p.scan0.offset)
				return
			}
			rows, err := p.materializeSide(r.shared, p.joins[i].src, false)
			if err != nil {
				buildErrs[i] = err
				return
			}
			r.rights[i] = rows
			switch p.joins[i].kind {
			case joinHash, joinHashLeft:
				r.hashes[i] = parallelBuildHash(workers, rows, p.joins[i].rightSlot-p.joins[i].src.offset)
			}
		}(i)
	}
	wg.Wait()
	// Report the error the serial pipeline would have hit first: builds
	// happen in join order, the driving scan after them.
	for _, err := range buildErrs {
		if err != nil {
			return err
		}
	}
	if driveErr != nil {
		return driveErr
	}

	n := len(drive)
	nm := sched.Morsels(n, parallelMorsel)
	pool := sched.NewPool(workers, nm)
	res := make([]parMorsel, nm)
	ws := make([]*parWorker, pool.Workers())
	for i := range ws {
		ws[i] = newParWorker(r, pool, res)
	}

	// A completed prefix of morsels can prove a LIMIT satisfied — but
	// only when buffered rows map 1:1 to merged output rows (no global
	// DISTINCT collapsing, no sort reordering, no group aggregation).
	var limiter *sched.Limiter
	if !p.grouped && len(p.order) == 0 && !p.distinct && p.limit >= 0 {
		need := p.limit
		if p.offset > 0 {
			need += p.offset
		}
		limiter = sched.NewLimiter(nm, need)
	}

	pool.Run(func(worker, m int) {
		ws[worker].runMorsel(m, drive, limiter)
	})

	switch {
	case p.grouped:
		return r.mergeGroups(ws, res)
	case len(p.order) > 0:
		return r.mergeSorted(ws, res)
	default:
		return r.mergePlain(res)
	}
}

// parallelBuildHash builds the hash index over materialised build rows.
// Small sides build serially; past the threshold the build runs in two
// barrier-separated phases over a phased pool: a scatter phase walks the
// row morsels and partitions each row index by the FNV-1a hash of its
// encoded join key, then an assemble phase builds each partition's bucket
// map by visiting the scatter lists in morsel order — so every bucket
// holds globally ascending row indexes, exactly as the serial single-map
// build inserts them, with no rehashing and no cross-worker merging. The
// probe side only ever sees identical bucket contents, which keeps the
// parallel output byte-identical to serial.
func parallelBuildHash(workers int, rows [][]sqlval.Value, keyCol int) *joinTable {
	if workers <= 1 || len(rows) < parallelMinRows {
		return buildHash(rows, keyCol)
	}
	nparts := 1
	for nparts < workers {
		nparts <<= 1
	}
	mask := uint32(nparts - 1)
	nm := sched.Morsels(len(rows), parallelMorsel)
	scatter := make([][][]int32, nm) // [morsel][partition] → row indexes
	pp := sched.NewPhasedPool(workers)
	parts := make([]map[string][]int32, nparts)
	_ = pp.Run(
		sched.Phase{Morsels: nm, Fn: func(_, m int) error {
			lo, hi := sched.Bounds(m, parallelMorsel, len(rows))
			lists := make([][]int32, nparts)
			var scratch []byte
			for i := lo; i < hi; i++ {
				v := rows[i][keyCol]
				if v.IsNull() {
					continue // NULL keys never equi-join
				}
				scratch = sqlval.AppendJoinKey(scratch[:0], v)
				pt := hashJoinKey(scratch) & mask
				lists[pt] = append(lists[pt], int32(i))
			}
			scatter[m] = lists
			return nil
		}},
		sched.Phase{Morsels: nparts, Fn: func(_, pt int) error {
			buckets := make(map[string][]int32)
			var scratch []byte
			for m := 0; m < nm; m++ {
				for _, i := range scatter[m][pt] {
					scratch = sqlval.AppendJoinKey(scratch[:0], rows[i][keyCol])
					k := string(scratch)
					buckets[k] = append(buckets[k], i)
				}
			}
			parts[pt] = buckets
			return nil
		}},
	)
	return &joinTable{parts: parts, mask: mask}
}

// materializeSide scans one source into retained rows of the source's
// width, using its own full-width scratch row (so concurrent builds never
// share state). The pushed-down equality seek always applies; the
// source-local filters apply unless raw is set. Sources whose scans hand
// out immutable retained rows (sqldb.StableRowScanner — the in-memory
// heap tables) are kept by reference; anything else is deep-copied into
// an arena, since the callback rows may be reused buffers.
func (p *SelectPlan) materializeSide(sh *runShared, sp scanPlan, raw bool) ([][]sqlval.Value, error) {
	tmp := &runner{p: p, row: make([]sqlval.Value, p.width), shared: sh}
	_, stable := sp.rel.(sqldb.StableRowScanner)
	var arena *sqlval.RowArena
	if !stable {
		arena = sqlval.NewRowArena(sp.width)
	}
	var rows [][]sqlval.Value
	if n, ok := sp.rel.(interface{ Len() int }); ok && raw {
		rows = make([][]sqlval.Value, 0, n.Len())
	}
	seg := tmp.row[sp.offset : sp.offset+sp.width]
	h := func(in []sqlval.Value) bool {
		if !raw {
			copy(seg, in)
			if ok, done := tmp.applyConjuncts(sp.filters); !ok {
				return !done
			}
		}
		if stable {
			rows = append(rows, in)
		} else {
			rows = append(rows, arena.Copy(in))
		}
		return true
	}
	err := sh.scanRelation(sp, h)
	if err == nil {
		err = tmp.err
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// parWorker is one worker's private execution state: a runner over its
// own joined-row buffer (sharing the frozen sides through the coordinator
// runner's fields) plus the mode-specific output buffers it sinks into.
type parWorker struct {
	r    *runner
	p    *SelectPlan
	pool *sched.Pool
	res  []parMorsel

	morsel int   // morsel being processed
	seq    int64 // arrival sequence within the morsel

	out []sqlval.Value // reused projection buffer

	// plain unsorted mode: locally deduplicated projected rows, buffered
	// per morsel.
	seen       map[string]struct{}
	keyScratch []byte
	arena      *sqlval.RowArena
	buf        [][]sqlval.Value

	// ORDER BY mode: a per-worker heap (bounded exactly like the serial
	// one, or unbounded under DISTINCT) of (keys, row, stamp) entries.
	sorter *topKSorter

	// grouped mode: per-worker aggregation map with arrival stamps.
	groups map[string]*groupState
	gorder []*groupState
	garena *sqlval.RowArena
	gkey   []byte
}

func newParWorker(r *runner, pool *sched.Pool, res []parMorsel) *parWorker {
	p := r.p
	wr := &runner{
		p:        p,
		row:      make([]sqlval.Value, p.width),
		shared:   r.shared,
		rights:   r.rights,
		hashes:   r.hashes,
		swapped:  r.swapped,
		leftRows: r.leftRows,
		leftHash: r.leftHash,
	}
	w := &parWorker{r: wr, p: p, pool: pool, res: res}
	wr.sink = w
	if p.grouped {
		w.groups = make(map[string]*groupState)
		w.garena = sqlval.NewRowArena(p.width)
		return w
	}
	w.out = make([]sqlval.Value, len(p.items))
	if p.distinct {
		w.seen = map[string]struct{}{}
	}
	if len(p.order) > 0 {
		w.sorter = newTopKSorter(p, len(p.headers))
		if p.distinct {
			// Bounding the heap before the cross-worker DISTINCT merge
			// could evict rows that global deduplication would promote
			// into the top K; keep everything and bound at the merge.
			w.sorter.cap = -1
		}
	} else {
		w.arena = sqlval.NewRowArena(len(p.items))
	}
	return w
}

// runMorsel drives the pipeline over one morsel of the driving rows,
// mirroring the serial scan loop (including the swapped-orientation
// probe), and records the morsel's buffered output and first error.
func (w *parWorker) runMorsel(m int, drive [][]sqlval.Value, limiter *sched.Limiter) {
	w.morsel = m
	w.seq = 0
	w.buf = nil
	if w.sorter != nil {
		w.sorter.seq = sched.At(m, 0)
	}
	r := w.r
	r.stopped = false
	p := w.p
	lo, hi := sched.Bounds(m, parallelMorsel, len(drive))

	if r.swapped {
		j := &p.joins[0]
		seg := r.row[j.src.offset : j.src.offset+j.src.width]
		var scratch []byte
	swp:
		for i := lo; i < hi; i++ {
			if w.pool.Cancelled(m) {
				break
			}
			copy(seg, drive[i])
			if ok, done := r.applyConjuncts(j.src.filters); !ok {
				if done {
					break
				}
				continue
			}
			v := r.row[j.rightSlot]
			if v.IsNull() {
				continue
			}
			scratch = sqlval.AppendJoinKey(scratch[:0], v)
			for _, li := range r.leftHash.lookup(scratch) {
				if cmp, err := sqlval.Compare(v, r.leftRows[li][j.leftSlot]); err != nil || cmp != 0 {
					continue
				}
				copy(r.row[:p.scan0.width], r.leftRows[li])
				if ok, done := r.applyConjuncts(j.residual); !ok {
					if done {
						break swp
					}
					continue
				}
				if ok, done := r.applyConjuncts(j.post); !ok {
					if done {
						break swp
					}
					continue
				}
				if !r.step(2) {
					break swp
				}
			}
		}
	} else {
		seg := r.row[p.scan0.offset : p.scan0.offset+p.scan0.width]
		for i := lo; i < hi; i++ {
			if w.pool.Cancelled(m) {
				break
			}
			copy(seg, drive[i])
			if ok, done := r.applyConjuncts(p.scan0.filters); !ok {
				if done {
					break
				}
				continue
			}
			if !r.step(1) {
				break
			}
		}
	}

	if r.err != nil {
		w.res[m].err = r.err
		r.err = nil
		// Output past an error is discarded; stop fanning out beyond it.
		w.pool.Cut(m + 1)
	}
	w.res[m].rows = w.buf
	if limiter != nil {
		if cut, ok := limiter.Done(m, len(w.buf)); ok {
			w.pool.Cut(cut)
		}
	}
}

// add is the worker's rowSink: it consumes one completed joined row.
func (w *parWorker) add(row []sqlval.Value) bool {
	if w.groups != nil {
		return w.addGroup(row)
	}
	for i, it := range w.p.items {
		v, err := it.eval(row)
		if err != nil {
			w.r.err = err
			return false
		}
		w.out[i] = v
	}
	if w.seen != nil {
		// Worker-local DISTINCT pre-filter. A worker's morsel sequence is
		// strictly increasing, so a locally seen key was seen at an
		// earlier global position too — dropping here can only drop rows
		// the global merge would drop. The merge re-deduplicates across
		// workers.
		w.keyScratch = w.keyScratch[:0]
		for _, v := range w.out {
			w.keyScratch = sqlval.AppendKey(w.keyScratch, v)
		}
		if _, dup := w.seen[string(w.keyScratch)]; dup {
			return true
		}
		w.seen[string(w.keyScratch)] = struct{}{}
	}
	if w.sorter != nil {
		if err := w.sorter.add(w.out, row); err != nil {
			w.r.err = err
			return false
		}
		return !w.pool.Cancelled(w.morsel)
	}
	w.buf = append(w.buf, w.arena.Copy(w.out))
	w.seq++
	return !w.pool.Cancelled(w.morsel)
}

func (w *parWorker) addGroup(row []sqlval.Value) bool {
	g := w.p.group
	w.gkey = w.gkey[:0]
	for _, ke := range g.keys {
		v, err := ke.eval(row)
		if err != nil {
			w.r.err = err
			return false
		}
		w.gkey = sqlval.AppendKey(w.gkey, v)
	}
	at := sched.At(w.morsel, w.seq)
	w.seq++
	grp, ok := w.groups[string(w.gkey)]
	if !ok {
		grp = &groupState{first: w.garena.Copy(row), firstAt: at}
		grp.aggs = make([]*aggState, len(g.aggs))
		for i, a := range g.aggs {
			grp.aggs[i] = newCollectAggState(a.fc)
		}
		w.groups[string(w.gkey)] = grp
		w.gorder = append(w.gorder, grp)
	}
	for i, a := range g.aggs {
		if a.arg == nil { // COUNT(*)
			grp.aggs[i].count++
			continue
		}
		v, err := a.arg.eval(row)
		if err != nil {
			w.r.err = err
			return false
		}
		grp.aggs[i].stamp = at
		if err := grp.aggs[i].addValue(v); err != nil {
			w.r.err = err
			return false
		}
	}
	return !w.pool.Cancelled(w.morsel)
}

func (w *parWorker) finish() error { return nil }

// mergePlain replays the per-morsel buffers in morsel order through a
// fresh plain sink — global DISTINCT, OFFSET, LIMIT and the caller's
// yield all behave exactly as on the serial path, including rows buffered
// before a worker's error.
func (r *runner) mergePlain(res []parMorsel) error {
	tail := newPlainSink(r)
	for m := range res {
		for _, row := range res[m].rows {
			copy(tail.out, row)
			if !tail.deliver(nil) {
				return r.err
			}
		}
		if res[m].err != nil {
			return res[m].err
		}
	}
	return nil
}

// mergeSorted combines the per-worker heaps. Every globally retained row
// is in some worker's heap (a worker's heap is at least as selective as
// the global one), so sorting the union by (keys, stamp) and slicing
// OFFSET/LIMIT reproduces the serial stable sort, ties included. Under
// DISTINCT the candidates are first deduplicated in arrival-stamp order —
// the order the serial sink deduplicates in, before it sorts. A full sort
// (ORDER BY without LIMIT, no DISTINCT) takes the parallel run-merge path
// instead: see mergeSortedRuns.
func (r *runner) mergeSorted(ws []*parWorker, res []parMorsel) error {
	for m := range res {
		if res[m].err != nil {
			return res[m].err
		}
	}
	if !r.p.distinct && ws[0].sorter.cap < 0 {
		return r.mergeSortedRuns(ws)
	}
	var all []sortedRow
	for _, w := range ws {
		all = append(all, w.sorter.rows...)
	}
	if r.p.distinct {
		sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
		seen := make(map[string]struct{}, len(all))
		var key []byte
		kept := all[:0]
		for _, sr := range all {
			key = key[:0]
			for _, v := range sr.row {
				key = sqlval.AppendKey(key, v)
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			kept = append(kept, sr)
		}
		all = kept
	}
	merged := &topKSorter{p: r.p, rows: all, cap: -1}
	return merged.flush(r.yield)
}

// mergeSortedRuns is the parallel final sort for ORDER BY without LIMIT:
// each worker's buffered rows become one run, the runs are sorted
// concurrently (one phase of a phased pool), and a loser-tree k-way merge
// streams the globally sorted output — no single-threaded full sort over
// the union, and no unbounded re-buffering. (keys, stamp) is a strict
// total order, so run boundaries cannot affect the output: it is the
// serial stable sort's, byte for byte.
func (r *runner) mergeSortedRuns(ws []*parWorker) error {
	p := r.p
	sorter := ws[0].sorter // any worker's sorter: less only reads the plan
	runs := make([][]sortedRow, 0, len(ws))
	for _, w := range ws {
		if len(w.sorter.rows) > 0 {
			runs = append(runs, w.sorter.rows)
		}
	}
	pp := sched.NewPhasedPool(len(ws))
	_ = pp.Run(sched.Phase{Morsels: len(runs), Fn: func(_, m int) error {
		run := runs[m]
		sort.Slice(run, func(i, j int) bool { return sorter.less(&run[i], &run[j]) })
		return nil
	}})
	lens := make([]int, len(runs))
	for i := range runs {
		lens[i] = len(runs[i])
	}
	lt := sched.NewLoserTree(lens, func(ra, ia, rb, ib int) bool {
		return sorter.less(&runs[ra][ia], &runs[rb][ib])
	})
	skip, count := p.offset, 0
	for {
		rn, i := lt.Next()
		if rn < 0 {
			return nil
		}
		if skip > 0 {
			skip--
			continue
		}
		if p.limit >= 0 && count >= p.limit {
			return nil
		}
		if !r.yield(runs[rn][i].row) {
			return nil
		}
		count++
	}
}

// mergeGroups folds the per-worker aggregation maps into one group set.
// COUNT partials sum exactly, MIN/MAX partials compare with their arrival
// stamps breaking CompareForSort ties toward the globally first value,
// each group's representative first-row is the one with the smallest
// stamp, and the merged groups are ordered by that stamp — first-seen
// order, exactly as the serial grouped sink built it. The shared
// HAVING/projection/ORDER tail then runs unchanged.
func (r *runner) mergeGroups(ws []*parWorker, res []parMorsel) error {
	for m := range res {
		if res[m].err != nil {
			return res[m].err
		}
	}
	combined := make(map[string]*groupState)
	for _, w := range ws {
		for key, grp := range w.groups {
			have, ok := combined[key]
			if !ok {
				combined[key] = grp
				continue
			}
			if grp.firstAt < have.firstAt {
				for i := range grp.aggs {
					grp.aggs[i].merge(have.aggs[i])
				}
				combined[key] = grp
			} else {
				for i := range have.aggs {
					have.aggs[i].merge(grp.aggs[i])
				}
			}
		}
	}
	order := make([]*groupState, 0, len(combined))
	for _, g := range combined {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].firstAt < order[j].firstAt })
	// DISTINCT aggregates were collected, not accumulated: replay the
	// merged first occurrences in global arrival order now.
	for _, g := range order {
		for _, a := range g.aggs {
			if err := a.resolveDistinct(); err != nil {
				return err
			}
		}
	}
	return emitGroups(r, order)
}
