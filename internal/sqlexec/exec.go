package sqlexec

import (
	"fmt"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// Result is the outcome of executing a statement: a result table for
// SELECT, and an affected-rows count for DML/DDL.
type Result struct {
	Columns  []string
	Rows     [][]sqlval.Value
	Affected int
	// SkippedSources names sources that were down and skipped under
	// Options.PartialResults (empty on complete results).
	SkippedSources []string
	// ParallelFallback is empty when the SELECT ran on the morsel-driven
	// parallel path, and otherwise names why it fell back to the serial
	// pipeline (see StreamInfo.ParallelFallback). Always empty for DML.
	ParallelFallback string
}

// Exec parses and executes one SQL statement against db.
func Exec(db *sqldb.Database, src string) (*Result, error) {
	return ExecOpts(db, src, Options{})
}

// ExecOpts parses and executes one SQL statement with execution options.
func ExecOpts(db *sqldb.Database, src string, opts Options) (*Result, error) {
	st, err := sqlparser.Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecStatementOpts(db, st, opts)
}

// ExecStatement executes a parsed statement against db.
func ExecStatement(db *sqldb.Database, st sqlparser.Statement) (*Result, error) {
	return ExecStatementOpts(db, st, Options{})
}

// ExecStatementOpts executes a parsed statement with execution options.
func ExecStatementOpts(db *sqldb.Database, st sqlparser.Statement, opts Options) (*Result, error) {
	switch s := st.(type) {
	case *sqlparser.Select:
		return EvalSelectOpts(db, s, opts)
	case *sqlparser.CreateTable:
		return execCreateTable(db, s)
	case *sqlparser.DropTable:
		if err := db.DropTable(s.Name, s.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateIndex:
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex(s.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.Insert:
		return execInsert(db, s, opts)
	case *sqlparser.Update:
		return execUpdate(db, s)
	case *sqlparser.Delete:
		return execDelete(db, s)
	default:
		return nil, fmt.Errorf("sqlexec: unsupported statement %T", st)
	}
}

// EvalSelect runs a SELECT against the database and returns the result.
// It compiles the statement into a physical plan and executes it; callers
// evaluating the same SELECT repeatedly should Compile once (or use
// internal/core's plan cache) and Run the plan per evaluation.
func EvalSelect(db *sqldb.Database, sel *sqlparser.Select) (*Result, error) {
	return EvalSelectOpts(db, sel, Options{})
}

// EvalSelectOpts runs a SELECT with execution options.
func EvalSelectOpts(db *sqldb.Database, sel *sqlparser.Select, opts Options) (*Result, error) {
	p, err := CompileOpts(db, sel, opts)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

func execCreateTable(db *sqldb.Database, s *sqlparser.CreateTable) (*Result, error) {
	schema := make(sqldb.Schema, len(s.Columns))
	for i, c := range s.Columns {
		schema[i] = sqldb.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
	}
	if _, err := db.CreateTable(s.Name, schema, s.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func execInsert(db *sqldb.Database, s *sqlparser.Insert, opts Options) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()

	// Map statement columns to schema positions.
	positions := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			ci := schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("sqlexec: table %s has no column %q", s.Table, name)
			}
			positions = append(positions, ci)
		}
	}

	// INSERT ... SELECT: evaluate the query and insert its rows.
	if s.Query != nil {
		res, err := EvalSelectOpts(db, s.Query, opts)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, srcRow := range res.Rows {
			if len(srcRow) != len(positions) {
				return nil, fmt.Errorf("sqlexec: INSERT SELECT produces %d columns, want %d", len(srcRow), len(positions))
			}
			row := make([]sqlval.Value, len(schema))
			for i, v := range srcRow {
				row[positions[i]] = v
			}
			if err := t.Insert(row); err != nil {
				return nil, err
			}
			n++
		}
		return &Result{Affected: n}, nil
	}

	empty := &Scope{}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("sqlexec: INSERT row has %d values, want %d", len(exprRow), len(positions))
		}
		row := make([]sqlval.Value, len(schema))
		for i, e := range exprRow {
			v, err := Eval(e, empty)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// tableLayout is the column layout UPDATE/DELETE predicates compile
// against: the table's columns qualified by its name.
func tableLayout(t *sqldb.Table) []ScopeCol {
	cols := make([]ScopeCol, len(t.Schema()))
	for i, c := range t.Schema() {
		cols[i] = ScopeCol{Qualifier: t.Name(), Name: c.Name}
	}
	return cols
}

// tablePredicate compiles a WHERE clause once; the returned function
// evaluates it per row without walking the AST.
func tablePredicate(t *sqldb.Table, where sqlparser.Expr) (func(row []sqlval.Value) (bool, error), error) {
	if where == nil {
		return func([]sqlval.Value) (bool, error) { return true, nil }, nil
	}
	pred, err := CompilePredicate(tableLayout(t), where)
	if err != nil {
		return nil, err
	}
	return func(row []sqlval.Value) (bool, error) {
		tr, err := pred.EvalBool(row)
		if err != nil {
			return false, err
		}
		return tr == sqlval.True, nil
	}, nil
}

func execUpdate(db *sqldb.Database, s *sqlparser.Update) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	layout := tableLayout(t)
	// Pre-resolve SET targets and compile their value expressions.
	targets := make([]int, len(s.Set))
	values := make([]*CompiledExpr, len(s.Set))
	for i, a := range s.Set {
		ci := schema.ColIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqlexec: table %s has no column %q", s.Table, a.Column)
		}
		targets[i] = ci
		if values[i], err = CompileExpr(layout, a.Value); err != nil {
			return nil, err
		}
	}
	pred, err := tablePredicate(t, s.Where)
	if err != nil {
		return nil, err
	}
	n, err := t.UpdateWhere(pred, func(row []sqlval.Value) ([]sqlval.Value, error) {
		out := make([]sqlval.Value, len(row))
		copy(out, row)
		for i := range s.Set {
			v, err := values[i].Eval(row)
			if err != nil {
				return nil, err
			}
			out[targets[i]] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func execDelete(db *sqldb.Database, s *sqlparser.Delete) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := tablePredicate(t, s.Where)
	if err != nil {
		return nil, err
	}
	n, err := t.DeleteWhere(pred)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}
