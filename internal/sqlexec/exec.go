package sqlexec

import (
	"fmt"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// Result is the outcome of executing a statement: a result table for
// SELECT, and an affected-rows count for DML/DDL.
type Result struct {
	Columns  []string
	Rows     [][]sqlval.Value
	Affected int
}

// Exec parses and executes one SQL statement against db.
func Exec(db *sqldb.Database, src string) (*Result, error) {
	st, err := sqlparser.Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecStatement(db, st)
}

// ExecStatement executes a parsed statement against db.
func ExecStatement(db *sqldb.Database, st sqlparser.Statement) (*Result, error) {
	switch s := st.(type) {
	case *sqlparser.Select:
		return EvalSelect(db, s)
	case *sqlparser.CreateTable:
		return execCreateTable(db, s)
	case *sqlparser.DropTable:
		if err := db.DropTable(s.Name, s.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateIndex:
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex(s.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.Insert:
		return execInsert(db, s)
	case *sqlparser.Update:
		return execUpdate(db, s)
	case *sqlparser.Delete:
		return execDelete(db, s)
	default:
		return nil, fmt.Errorf("sqlexec: unsupported statement %T", st)
	}
}

func execCreateTable(db *sqldb.Database, s *sqlparser.CreateTable) (*Result, error) {
	schema := make(sqldb.Schema, len(s.Columns))
	for i, c := range s.Columns {
		schema[i] = sqldb.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
	}
	if _, err := db.CreateTable(s.Name, schema, s.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func execInsert(db *sqldb.Database, s *sqlparser.Insert) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()

	// Map statement columns to schema positions.
	positions := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			ci := schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("sqlexec: table %s has no column %q", s.Table, name)
			}
			positions = append(positions, ci)
		}
	}

	// INSERT ... SELECT: evaluate the query and insert its rows.
	if s.Query != nil {
		res, err := EvalSelect(db, s.Query)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, srcRow := range res.Rows {
			if len(srcRow) != len(positions) {
				return nil, fmt.Errorf("sqlexec: INSERT SELECT produces %d columns, want %d", len(srcRow), len(positions))
			}
			row := make([]sqlval.Value, len(schema))
			for i, v := range srcRow {
				row[positions[i]] = v
			}
			if err := t.Insert(row); err != nil {
				return nil, err
			}
			n++
		}
		return &Result{Affected: n}, nil
	}

	empty := &Scope{}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("sqlexec: INSERT row has %d values, want %d", len(exprRow), len(positions))
		}
		row := make([]sqlval.Value, len(schema))
		for i, e := range exprRow {
			v, err := Eval(e, empty)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func tablePredicate(t *sqldb.Table, where sqlparser.Expr) func(row []sqlval.Value) (bool, error) {
	cols := make([]ScopeCol, len(t.Schema()))
	for i, c := range t.Schema() {
		cols[i] = ScopeCol{Qualifier: t.Name(), Name: c.Name}
	}
	return func(row []sqlval.Value) (bool, error) {
		if where == nil {
			return true, nil
		}
		tr, err := EvalBool(where, &Scope{Cols: cols, Row: row})
		if err != nil {
			return false, err
		}
		return tr == sqlval.True, nil
	}
}

func execUpdate(db *sqldb.Database, s *sqlparser.Update) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	cols := make([]ScopeCol, len(schema))
	for i, c := range schema {
		cols[i] = ScopeCol{Qualifier: t.Name(), Name: c.Name}
	}
	// Pre-resolve SET targets.
	targets := make([]int, len(s.Set))
	for i, a := range s.Set {
		ci := schema.ColIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqlexec: table %s has no column %q", s.Table, a.Column)
		}
		targets[i] = ci
	}
	n, err := t.UpdateWhere(tablePredicate(t, s.Where), func(row []sqlval.Value) ([]sqlval.Value, error) {
		scope := &Scope{Cols: cols, Row: row}
		out := make([]sqlval.Value, len(row))
		copy(out, row)
		for i, a := range s.Set {
			v, err := Eval(a.Value, scope)
			if err != nil {
				return nil, err
			}
			out[targets[i]] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func execDelete(db *sqldb.Database, s *sqlparser.Delete) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	n, err := t.DeleteWhere(tablePredicate(t, s.Where))
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}
