package sqlexec

import (
	"strings"
	"testing"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// evalConst evaluates a constant expression through a FROM-less SELECT.
func evalConst(t *testing.T, expr string) sqlval.Value {
	t.Helper()
	db := sqldb.NewDatabase()
	r := mustExec(t, db, "SELECT "+expr)
	return r.Rows[0][0]
}

func evalConstErr(t *testing.T, expr string) error {
	t.Helper()
	db := sqldb.NewDatabase()
	_, err := Exec(db, "SELECT "+expr)
	return err
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{`UPPER('abc')`, "ABC"},
		{`LOWER('AbC')`, "abc"},
		{`LENGTH('hello')`, "5"},
		{`TRIM('  x  ')`, "x"},
		{`ABS(-7)`, "7"},
		{`ABS(-2.5)`, "2.5"},
		{`ROUND(2.6)`, "3"},
		{`ROUND(2.449, 1)`, "2.4"},
		{`COALESCE(NULL, NULL, 'z')`, "z"},
		{`COALESCE(NULL)`, "NULL"},
		{`NULLIF(3, 3)`, "NULL"},
		{`NULLIF(3, 4)`, "3"},
		{`SUBSTR('smartground', 1, 5)`, "smart"},
		{`SUBSTR('smartground', 6)`, "ground"},
		{`SUBSTR('abc', 10)`, ""},
		{`SUBSTR('abc', 2, 100)`, "bc"},
		{`SUBSTR('abc', -5, 2)`, "ab"},
		{`CONCAT('a', NULL, 'b', 1)`, "a" + "b1"},
		{`UPPER(NULL)`, "NULL"},
		{`LENGTH(NULL)`, "NULL"},
		{`ABS(NULL)`, "NULL"},
		{`ROUND(NULL)`, "NULL"},
	}
	for _, c := range cases {
		got := evalConst(t, c.expr)
		if got.String() != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got.String(), c.want)
		}
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	bad := []string{
		`UPPER()`,
		`UPPER('a', 'b')`,
		`LENGTH()`,
		`ABS('text')`,
		`SUBSTR('a')`,
		`NULLIF(1)`,
		`TRIM()`,
		`NO_SUCH_FUNC(1)`,
	}
	for _, expr := range bad {
		if err := evalConstErr(t, expr); err == nil {
			t.Errorf("%s should fail", expr)
		}
	}
}

func TestArithmeticEdgeCases(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{`7 % 3`, "1"},
		{`7.5 % 2`, "1.5"},
		{`2 * 3.5`, "7"},
		{`1 - 2`, "-1"},
		{`-(-5)`, "5"},
		{`-2.5`, "-2.5"},
		{`NULL + 1`, "NULL"},
		{`'a' || NULL`, "NULL"},
		{`1 || 2`, "12"}, // concat renders numerics
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr).String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	for _, expr := range []string{`1/0`, `1%0`, `1.0/0`, `'a' + 1`, `TRUE * 2`, `-'text'`} {
		if err := evalConstErr(t, expr); err == nil {
			t.Errorf("%s should fail", expr)
		}
	}
}

func TestCaseOperandForm(t *testing.T) {
	got := evalConst(t, `CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END`)
	if got.Str() != "two" {
		t.Errorf("got %v", got)
	}
	got = evalConst(t, `CASE 9 WHEN 1 THEN 'one' END`)
	if !got.IsNull() {
		t.Errorf("no-match CASE without ELSE must be NULL: %v", got)
	}
	// NULL operand never matches.
	got = evalConst(t, `CASE NULL WHEN 1 THEN 'x' ELSE 'e' END`)
	if got.Str() != "e" {
		t.Errorf("NULL operand: %v", got)
	}
}

func TestInListNullSemantics(t *testing.T) {
	// value NOT IN (list containing NULL) is UNKNOWN when no match.
	got := evalConst(t, `1 IN (2, NULL)`)
	if !got.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, want NULL", got)
	}
	got = evalConst(t, `1 IN (1, NULL)`)
	if !got.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want true", got)
	}
	got = evalConst(t, `NULL IN (1)`)
	if !got.IsNull() {
		t.Errorf("NULL IN (1) = %v", got)
	}
	got = evalConst(t, `1 NOT IN (1, NULL)`)
	if got.Bool() {
		t.Errorf("1 NOT IN (1, NULL) = %v, want false", got)
	}
}

func TestBetweenNullSemantics(t *testing.T) {
	if got := evalConst(t, `NULL BETWEEN 1 AND 2`); !got.IsNull() {
		t.Errorf("NULL BETWEEN = %v", got)
	}
	if got := evalConst(t, `1 BETWEEN NULL AND 2`); !got.IsNull() {
		t.Errorf("BETWEEN NULL lo = %v", got)
	}
	if got := evalConst(t, `3 NOT BETWEEN 1 AND 2`); !got.Bool() {
		t.Errorf("NOT BETWEEN = %v", got)
	}
}

func TestLikeNullAndTypeErrors(t *testing.T) {
	if got := evalConst(t, `NULL LIKE 'x'`); !got.IsNull() {
		t.Errorf("NULL LIKE = %v", got)
	}
	if err := evalConstErr(t, `1 LIKE 'x'`); err == nil {
		t.Error("numeric LIKE must fail")
	}
}

func TestMinMaxAggregateOnStrings(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE t (s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('banana'), ('apple'), ('cherry'), (NULL)`)
	r := mustExec(t, db, `SELECT MIN(s), MAX(s) FROM t`)
	if r.Rows[0][0].Str() != "apple" || r.Rows[0][1].Str() != "cherry" {
		t.Errorf("MIN/MAX text: %v", rowsAsStrings(r))
	}
}

func TestSumDistinct(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE t (n INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (1), (2), (3), (3)`)
	r := mustExec(t, db, `SELECT SUM(DISTINCT n), SUM(n) FROM t`)
	if r.Rows[0][0].Int() != 6 || r.Rows[0][1].Int() != 10 {
		t.Errorf("SUM DISTINCT: %v", rowsAsStrings(r))
	}
}

func TestAggregateArityAndTypeErrors(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE t (s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('x')`)
	for _, q := range []string{
		`SELECT SUM(s) FROM t`,
		`SELECT AVG(s) FROM t`,
		`SELECT SUM(s, s) FROM t`,
	} {
		if _, err := Exec(db, q); err == nil {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT COUNT(*) FROM landfill HAVING COUNT(*) > 2`)
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 4 {
		t.Errorf("grand-total HAVING pass: %v", rowsAsStrings(r))
	}
	r = mustExec(t, db, `SELECT COUNT(*) FROM landfill HAVING COUNT(*) > 100`)
	if len(r.Rows) != 0 {
		t.Errorf("grand-total HAVING fail: %v", rowsAsStrings(r))
	}
}

func TestOrderByOnUnderlyingQualifiedColumn(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT l.name FROM landfill l ORDER BY l.area DESC`)
	got := rowsAsStrings(r)
	// NULL area sorts first ascending ⇒ last on DESC.
	if got[len(got)-1] != "d" {
		t.Errorf("qualified order: %v", got)
	}
}

func TestAliasShadowsColumnInOrderBy(t *testing.T) {
	db := sampleDB(t)
	// Alias "area" redefines the column: projected alias wins.
	r := mustExec(t, db, `SELECT name, -1 * area AS area FROM landfill WHERE area IS NOT NULL ORDER BY area`)
	got := rowsAsStrings(r)
	if !strings.HasPrefix(got[0], "a|") {
		t.Errorf("alias precedence in ORDER BY: %v", got)
	}
}

func TestOffsetBeyondEnd(t *testing.T) {
	db := sampleDB(t)
	r := mustExec(t, db, `SELECT name FROM landfill LIMIT 10 OFFSET 100`)
	if len(r.Rows) != 0 {
		t.Errorf("offset beyond end: %v", rowsAsStrings(r))
	}
}

func TestUnknownFromAndStar(t *testing.T) {
	db := sampleDB(t)
	if _, err := Exec(db, `SELECT zz.* FROM landfill l`); err == nil {
		t.Error("star with unknown qualifier must fail")
	}
	if _, err := Exec(db, `SELECT * `); err == nil {
		t.Error("bare star without FROM must fail")
	}
}
