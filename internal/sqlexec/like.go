package sqlexec

import "strings"

// like.go — compiled LIKE patterns. The interpreter's likeMatch walks the
// pattern recursively per row; the compiled path lowers a constant pattern
// once into '%'-separated segments (each a run of literal bytes and '_'
// single-byte wildcards) and matches with the classic greedy leftmost
// algorithm: anchor the first segment, find each middle segment left to
// right, anchor the last segment at the end. Segments without '_' search
// with strings.Index. Semantics are byte-oriented, matching the
// interpreter.

// likeMatcher is an immutable compiled LIKE pattern.
type likeMatcher struct {
	segs     []likeSeg
	anyRun   bool // pattern contained at least one '%'
	minBytes int  // total bytes the literal segments consume
}

type likeSeg struct {
	text  string // '_' bytes match any single byte
	plain bool   // no '_' in text: plain substring search applies
}

// compileLike lowers a LIKE pattern. It never fails: every pattern is a
// valid LIKE pattern.
func compileLike(pattern string) *likeMatcher {
	m := &likeMatcher{}
	start := 0
	for i := 0; i <= len(pattern); i++ {
		if i == len(pattern) || pattern[i] == '%' {
			seg := pattern[start:i]
			m.segs = append(m.segs, likeSeg{text: seg, plain: !strings.ContainsRune(seg, '_')})
			m.minBytes += len(seg)
			if i < len(pattern) {
				m.anyRun = true
			}
			start = i + 1
		}
	}
	return m
}

// segMatchAt reports whether seg matches s exactly (equal lengths assumed
// by the caller: len(s) == len(seg.text)).
func segMatchAt(s, seg string) bool {
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[i] {
			return false
		}
	}
	return true
}

// segFind returns the first index ≥ 0 in s where seg matches, or -1.
func (g likeSeg) find(s string) int {
	if g.plain {
		return strings.Index(s, g.text)
	}
	for i := 0; i+len(g.text) <= len(s); i++ {
		if segMatchAt(s[i:i+len(g.text)], g.text) {
			return i
		}
	}
	return -1
}

// match reports whether s matches the compiled pattern.
func (m *likeMatcher) match(s string) bool {
	if !m.anyRun {
		seg := m.segs[0]
		return len(s) == len(seg.text) && segMatchAt(s, seg.text)
	}
	if len(s) < m.minBytes {
		return false
	}
	// Anchored prefix.
	first := m.segs[0]
	if !segMatchAt(s[:len(first.text)], first.text) {
		return false
	}
	pos := len(first.text)
	// Anchored suffix (checked up front so middle greediness cannot eat it).
	last := m.segs[len(m.segs)-1]
	tail := len(s) - len(last.text)
	if tail < pos || !segMatchAt(s[tail:], last.text) {
		return false
	}
	// Greedy leftmost placement of the middle segments within s[pos:tail].
	for _, seg := range m.segs[1 : len(m.segs)-1] {
		if len(seg.text) == 0 {
			continue
		}
		idx := seg.find(s[pos:tail])
		if idx < 0 {
			return false
		}
		pos += idx + len(seg.text)
	}
	return true
}
