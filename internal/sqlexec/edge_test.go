package sqlexec

import (
	"strings"
	"testing"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
)

// Deterministic edge cases the randomised parity suite cannot pin exactly:
// self-referential INSERT ... SELECT, LIMIT 0/OFFSET-past-end, DISTINCT
// early-stop, and grouped first-row semantics through the compiled path.
func TestCompiledEdgeCases(t *testing.T) {
	db := sampleDB(t)
	// Self INSERT ... SELECT must materialise before inserting.
	r := mustExec(t, db, `INSERT INTO elem_contained SELECT * FROM elem_contained`)
	if r.Affected != 6 {
		t.Fatalf("self insert affected %d", r.Affected)
	}
	if n := mustExec(t, db, `SELECT COUNT(*) FROM elem_contained`).Rows[0][0].Int(); n != 12 {
		t.Fatalf("rows after self insert = %d", n)
	}
	// LIMIT 0 and OFFSET past the end.
	if n := len(mustExec(t, db, `SELECT name FROM landfill LIMIT 0`).Rows); n != 0 {
		t.Fatalf("LIMIT 0 rows = %d", n)
	}
	if n := len(mustExec(t, db, `SELECT name FROM landfill ORDER BY name LIMIT 2 OFFSET 100`).Rows); n != 0 {
		t.Fatalf("big OFFSET rows = %d", n)
	}
	if n := len(mustExec(t, db, `SELECT name FROM landfill ORDER BY name OFFSET 2`).Rows); n != 2 {
		t.Fatalf("OFFSET-only rows = %d", n)
	}
	// DISTINCT with LIMIT early-stops correctly.
	if n := len(mustExec(t, db, `SELECT DISTINCT landfill_name FROM elem_contained LIMIT 2`).Rows); n != 2 {
		t.Fatalf("distinct limit rows = %d", n)
	}
	// Grouped query over a view joined twice + HAVING + ORDER + LIMIT.
	r = mustExec(t, db, `SELECT e.landfill_name, COUNT(*) AS n FROM elem_contained e, landfill l
		WHERE e.landfill_name = l.name AND l.active GROUP BY e.landfill_name ORDER BY n DESC LIMIT 1`)
	if len(r.Rows) != 1 || r.Rows[0][1].Int() != 6 {
		t.Fatalf("grouped top-1 = %v", rowsAsStrings(r))
	}
	// Aggregate + plain col over single group (first-row semantics).
	r = mustExec(t, db, `SELECT landfill_name, COUNT(*) FROM elem_contained WHERE landfill_name = 'a' GROUP BY landfill_name`)
	if r.Rows[0][0].Str() != "a" {
		t.Fatalf("group first-row = %v", rowsAsStrings(r))
	}
}

// Unqualified WHERE references resolve at the earliest join-layout prefix
// that covers them (the interpreter's applyReadyFilters rule), even when
// they are ambiguous in the full layout.
func TestWherePrefixResolution(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE r (k TEXT, n INT)`)
	mustExec(t, db, `INSERT INTO r VALUES ('a', 1), ('b', 2)`)
	for _, c := range []struct {
		q    string
		want int64
	}{
		// k resolves at prefix 0 as x.k = x.k: always true → full cross.
		{`SELECT COUNT(*) FROM r x, r y WHERE k = k`, 4},
		// k resolves at prefix 0 as x.k: filter, then cross with y.
		{`SELECT COUNT(*) FROM r x, r y WHERE k = 'a'`, 2},
		// n resolves at prefix 0 as x.n even though the ON joined y in.
		{`SELECT COUNT(*) FROM r x JOIN r y ON x.k = y.k WHERE n > 0`, 2},
	} {
		for _, opts := range []Options{{}, {DisableHashJoin: true}} {
			got := mustExecOpts(t, db, c.q, opts).Rows[0][0].Int()
			if got != c.want {
				t.Errorf("%q opts=%+v: got %d, want %d", c.q, opts, got, c.want)
			}
			ref, err := evalSelectInterp(db, mustParseSelect(t, c.q))
			if err != nil {
				t.Fatalf("%q: interp: %v", c.q, err)
			}
			if ref.Rows[0][0].Int() != c.want {
				t.Errorf("%q: interpreter disagrees: %d", c.q, ref.Rows[0][0].Int())
			}
		}
	}
}

func mustParseSelect(t *testing.T, q string) *sqlparser.Select {
	t.Helper()
	st, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlparser.Select)
}

// ORDER BY keys fall back from the projected alias to the underlying
// column per row when evaluation (not just resolution) fails — e.g. an
// alias that shadows a sortable column with text.
func TestOrderByAliasEvalFallback(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (3, 'x'), (1, 'y'), (2, 'z')`)
	// Projected alias 'a' is TEXT, so a+1 errors against the output row
	// and must fall back to the underlying INT column a, per row.
	r := mustExec(t, db, `SELECT b AS a FROM t ORDER BY a + 1`)
	got := strings.Join(rowsAsStrings(r), ",")
	if got != "y,z,x" {
		t.Fatalf("fallback order = %q, want y,z,x", got)
	}
}

// Numeric join keys must follow Compare equality across renderings:
// INTEGER 1000000 widens to DOUBLE 1e+06, and the hash join must match
// them exactly like the nested-loop path does.
func TestHashJoinNumericFolding(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE ai (x INT)`)
	mustExec(t, db, `CREATE TABLE bf (y DOUBLE)`)
	mustExec(t, db, `INSERT INTO ai VALUES (1000000), (2), (-3)`)
	mustExec(t, db, `INSERT INTO bf VALUES (1000000.0), (2.5), (-3.0), (0.0)`)
	const q = `SELECT COUNT(*) FROM ai JOIN bf ON ai.x = bf.y`
	hash := mustExecOpts(t, db, q, Options{}).Rows[0][0].Int()
	nested := mustExecOpts(t, db, q, Options{DisableHashJoin: true}).Rows[0][0].Int()
	if hash != 2 || nested != 2 {
		t.Fatalf("hash=%d nested=%d, want 2 (1e6 and -3 match)", hash, nested)
	}
}

// Negative zero: Compare-equal to +0.0, so index seeks and hash joins
// must treat them as the same key.
func TestNegativeZeroSeekAndJoin(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE nz (c DOUBLE)`)
	mustExec(t, db, `CREATE INDEX idx_nz ON nz (c)`)
	mustExec(t, db, `INSERT INTO nz VALUES (-0.0), (0.0), (1.5)`)
	const q = `SELECT COUNT(*) FROM nz WHERE c = 0.0`
	seek := mustExecOpts(t, db, q, Options{}).Rows[0][0].Int()
	scan := mustExecOpts(t, db, q, Options{DisableIndexSeek: true}).Rows[0][0].Int()
	if seek != 2 || scan != 2 {
		t.Fatalf("seek=%d scan=%d, want 2 (-0.0 = 0.0)", seek, scan)
	}
	const jq = `SELECT COUNT(*) FROM nz a JOIN nz b ON a.c = b.c`
	hash := mustExecOpts(t, db, jq, Options{}).Rows[0][0].Int()
	nested := mustExecOpts(t, db, jq, Options{DisableHashJoin: true}).Rows[0][0].Int()
	if hash != nested || hash != 5 {
		t.Fatalf("hash=%d nested=%d, want 5 (2x2 zeros + 1)", hash, nested)
	}
}

// A left-only conjunct in a LEFT JOIN's ON clause disables matching for
// the rows that fail it — they must surface padded, never dropped.
func TestLeftJoinLeftOnlyOnConjunct(t *testing.T) {
	db := sampleDB(t)
	q := `SELECT l.name, e.elem_name FROM landfill l
		LEFT JOIN elem_contained e ON l.name = e.landfill_name AND l.active
		ORDER BY l.name`
	for _, opts := range []Options{{}, {DisableHashJoin: true}} {
		r := mustExecOpts(t, db, q, opts)
		// c is inactive: its 2 elements must NOT match; c appears once, padded.
		sawC := 0
		for _, row := range r.Rows {
			if row[0].Str() == "c" {
				sawC++
				if !row[1].IsNull() {
					t.Fatalf("opts=%+v: inactive landfill matched %v", opts, row[1])
				}
			}
		}
		if sawC != 1 {
			t.Fatalf("opts=%+v: padded row count for c = %d, want 1", opts, sawC)
		}
	}
}
