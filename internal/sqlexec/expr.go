// Package sqlexec evaluates parsed SQL statements against a sqldb.Database.
//
// SELECT evaluation is compiled: CompileOpts lowers a parsed statement
// once into an immutable physical SelectPlan (compile.go) — column
// references resolved to dense row-slot offsets, expressions lowered to
// slot-resolved evaluator trees with constant LIKE patterns
// pre-compiled, WHERE conjuncts bound to the earliest pipeline step that
// covers them, equality-against-constant conjuncts pushed into
// sqldb.FilteredRelation index seeks, equi-joins planned as hash joins
// and ORDER BY+LIMIT as a bounded top-K heap — and the plan executes as
// a push-based streaming pipeline over reused rows (run.go). Options
// carries the planner ablation knobs. EvalSelect/Exec wrap
// compile-then-run; plans are cacheable across executions (see
// internal/core.QueryCache.SQLSelect).
//
// Compilation makes column-reference errors data-independent: a SELECT,
// UPDATE or DELETE naming an unknown or ambiguous column fails up front,
// where the interpreter only failed once a row reached the broken
// expression (queries over empty tables silently succeeded). Function
// names, arities and value-type errors stay evaluation-time in both
// paths.
//
// This file holds the value-level machinery both executors share —
// expression evaluation with SQL three-valued logic, scalar and
// aggregate functions — and interp.go keeps the seed's materialising
// interpreter as the reference oracle for the parity suite. DDL/DML
// statements execute in exec.go.
package sqlexec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// ScopeCol names one column visible to an expression: its source qualifier
// (table name or alias) and column name.
type ScopeCol struct {
	Qualifier string
	Name      string
}

// Scope resolves column references during expression evaluation. Cols and
// Row are parallel. Aggs carries pre-computed aggregate results in grouped
// evaluation (keyed by the rendered SQL of the call).
type Scope struct {
	Cols []ScopeCol
	Row  []sqlval.Value
	Aggs map[string]sqlval.Value
}

// Lookup finds the value of a (possibly qualified) column reference.
func (s *Scope) Lookup(qual, name string) (sqlval.Value, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qualifier, qual) {
			continue
		}
		if found >= 0 {
			return sqlval.Null, fmt.Errorf("sqlexec: ambiguous column reference %q", refName(qual, name))
		}
		found = i
	}
	if found < 0 {
		return sqlval.Null, fmt.Errorf("sqlexec: unknown column %q", refName(qual, name))
	}
	return s.Row[found], nil
}

func refName(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}

// Eval evaluates an expression in the scope, producing a value (NULL encodes
// SQL UNKNOWN for boolean expressions).
func Eval(e sqlparser.Expr, s *Scope) (sqlval.Value, error) {
	switch ex := e.(type) {
	case *sqlparser.Literal:
		return ex.Val, nil
	case *sqlparser.ColRef:
		return s.Lookup(ex.Qualifier, ex.Name)
	case *sqlparser.BinExpr:
		return evalBin(ex, s)
	case *sqlparser.UnaryExpr:
		return evalUnary(ex, s)
	case *sqlparser.IsNull:
		v, err := Eval(ex.E, s)
		if err != nil {
			return sqlval.Null, err
		}
		if ex.Not {
			return sqlval.NewBool(!v.IsNull()), nil
		}
		return sqlval.NewBool(v.IsNull()), nil
	case *sqlparser.InList:
		return evalIn(ex, s)
	case *sqlparser.Between:
		return evalBetween(ex, s)
	case *sqlparser.FuncCall:
		if IsAggregate(ex.Name) {
			if s.Aggs == nil {
				return sqlval.Null, fmt.Errorf("sqlexec: aggregate %s outside grouping context", ex.Name)
			}
			v, ok := s.Aggs[ex.SQL()]
			if !ok {
				return sqlval.Null, fmt.Errorf("sqlexec: aggregate %s not computed", ex.SQL())
			}
			return v, nil
		}
		return evalScalarFunc(ex, s)
	case *sqlparser.CaseExpr:
		return evalCase(ex, s)
	default:
		return sqlval.Null, fmt.Errorf("sqlexec: unsupported expression %T", e)
	}
}

// EvalBool evaluates e as a predicate with 3VL: NULL ⇒ Unknown.
func EvalBool(e sqlparser.Expr, s *Scope) (sqlval.Tri, error) {
	v, err := Eval(e, s)
	if err != nil {
		return sqlval.Unknown, err
	}
	if v.IsNull() {
		return sqlval.Unknown, nil
	}
	b, err := sqlval.Coerce(v, sqlval.TypeBool)
	if err != nil {
		return sqlval.Unknown, fmt.Errorf("sqlexec: predicate is not boolean: %w", err)
	}
	return sqlval.TriOf(b.Bool()), nil
}

func evalBin(ex *sqlparser.BinExpr, s *Scope) (sqlval.Value, error) {
	switch ex.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		l, err := EvalBool(ex.L, s)
		if err != nil {
			return sqlval.Null, err
		}
		r, err := EvalBool(ex.R, s)
		if err != nil {
			return sqlval.Null, err
		}
		if ex.Op == sqlparser.OpAnd {
			return l.And(r).Value(), nil
		}
		return l.Or(r).Value(), nil
	}

	l, err := Eval(ex.L, s)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := Eval(ex.R, s)
	if err != nil {
		return sqlval.Null, err
	}

	switch ex.Op {
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil // UNKNOWN
		}
		c, err := sqlval.Compare(l, r)
		if err != nil {
			return sqlval.Null, err
		}
		switch ex.Op {
		case sqlparser.OpEq:
			return sqlval.NewBool(c == 0), nil
		case sqlparser.OpNe:
			return sqlval.NewBool(c != 0), nil
		case sqlparser.OpLt:
			return sqlval.NewBool(c < 0), nil
		case sqlparser.OpLe:
			return sqlval.NewBool(c <= 0), nil
		case sqlparser.OpGt:
			return sqlval.NewBool(c > 0), nil
		default:
			return sqlval.NewBool(c >= 0), nil
		}
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		return evalArith(ex.Op, l, r)
	case sqlparser.OpConcat:
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.NewString(l.String() + r.String()), nil
	case sqlparser.OpLike:
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		if l.Type() != sqlval.TypeString || r.Type() != sqlval.TypeString {
			return sqlval.Null, fmt.Errorf("sqlexec: LIKE requires text operands")
		}
		return sqlval.NewBool(likeMatch(l.Str(), r.Str())), nil
	default:
		return sqlval.Null, fmt.Errorf("sqlexec: unsupported operator %v", ex.Op)
	}
}

func evalArith(op sqlparser.BinOpKind, l, r sqlval.Value) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null, nil
	}
	numeric := func(v sqlval.Value) bool {
		return v.Type() == sqlval.TypeInt || v.Type() == sqlval.TypeFloat
	}
	if !numeric(l) || !numeric(r) {
		return sqlval.Null, fmt.Errorf("sqlexec: arithmetic on non-numeric values %s, %s", l.Type(), r.Type())
	}
	if l.Type() == sqlval.TypeInt && r.Type() == sqlval.TypeInt {
		a, b := l.Int(), r.Int()
		switch op {
		case sqlparser.OpAdd:
			return sqlval.NewInt(a + b), nil
		case sqlparser.OpSub:
			return sqlval.NewInt(a - b), nil
		case sqlparser.OpMul:
			return sqlval.NewInt(a * b), nil
		case sqlparser.OpDiv:
			if b == 0 {
				return sqlval.Null, fmt.Errorf("sqlexec: division by zero")
			}
			return sqlval.NewInt(a / b), nil
		default:
			if b == 0 {
				return sqlval.Null, fmt.Errorf("sqlexec: division by zero")
			}
			return sqlval.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sqlparser.OpAdd:
		return sqlval.NewFloat(a + b), nil
	case sqlparser.OpSub:
		return sqlval.NewFloat(a - b), nil
	case sqlparser.OpMul:
		return sqlval.NewFloat(a * b), nil
	case sqlparser.OpDiv:
		if b == 0 {
			return sqlval.Null, fmt.Errorf("sqlexec: division by zero")
		}
		return sqlval.NewFloat(a / b), nil
	default:
		if b == 0 {
			return sqlval.Null, fmt.Errorf("sqlexec: division by zero")
		}
		return sqlval.NewFloat(math.Mod(a, b)), nil
	}
}

func evalUnary(ex *sqlparser.UnaryExpr, s *Scope) (sqlval.Value, error) {
	switch ex.Op {
	case "NOT":
		t, err := EvalBool(ex.E, s)
		if err != nil {
			return sqlval.Null, err
		}
		return t.Not().Value(), nil
	case "-":
		v, err := Eval(ex.E, s)
		if err != nil {
			return sqlval.Null, err
		}
		switch v.Type() {
		case sqlval.TypeNull:
			return sqlval.Null, nil
		case sqlval.TypeInt:
			return sqlval.NewInt(-v.Int()), nil
		case sqlval.TypeFloat:
			return sqlval.NewFloat(-v.Float()), nil
		default:
			return sqlval.Null, fmt.Errorf("sqlexec: cannot negate %s", v.Type())
		}
	default:
		return sqlval.Null, fmt.Errorf("sqlexec: unknown unary operator %q", ex.Op)
	}
}

func evalIn(ex *sqlparser.InList, s *Scope) (sqlval.Value, error) {
	v, err := Eval(ex.E, s)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() {
		return sqlval.Null, nil
	}
	sawNull := false
	for _, le := range ex.List {
		lv, err := Eval(le, s)
		if err != nil {
			return sqlval.Null, err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if c, err := sqlval.Compare(v, lv); err == nil && c == 0 {
			return sqlval.NewBool(!ex.Not), nil
		}
	}
	if sawNull {
		return sqlval.Null, nil // UNKNOWN per SQL semantics
	}
	return sqlval.NewBool(ex.Not), nil
}

func evalBetween(ex *sqlparser.Between, s *Scope) (sqlval.Value, error) {
	v, err := Eval(ex.E, s)
	if err != nil {
		return sqlval.Null, err
	}
	lo, err := Eval(ex.Lo, s)
	if err != nil {
		return sqlval.Null, err
	}
	hi, err := Eval(ex.Hi, s)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqlval.Null, nil
	}
	c1, err := sqlval.Compare(v, lo)
	if err != nil {
		return sqlval.Null, err
	}
	c2, err := sqlval.Compare(v, hi)
	if err != nil {
		return sqlval.Null, err
	}
	in := c1 >= 0 && c2 <= 0
	if ex.Not {
		in = !in
	}
	return sqlval.NewBool(in), nil
}

func evalCase(ex *sqlparser.CaseExpr, s *Scope) (sqlval.Value, error) {
	if ex.Operand != nil {
		op, err := Eval(ex.Operand, s)
		if err != nil {
			return sqlval.Null, err
		}
		for _, w := range ex.Whens {
			wv, err := Eval(w.Cond, s)
			if err != nil {
				return sqlval.Null, err
			}
			if !op.IsNull() && !wv.IsNull() {
				if c, err := sqlval.Compare(op, wv); err == nil && c == 0 {
					return Eval(w.Then, s)
				}
			}
		}
	} else {
		for _, w := range ex.Whens {
			t, err := EvalBool(w.Cond, s)
			if err != nil {
				return sqlval.Null, err
			}
			if t == sqlval.True {
				return Eval(w.Then, s)
			}
		}
	}
	if ex.Else != nil {
		return Eval(ex.Else, s)
	}
	return sqlval.Null, nil
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' one character.
func likeMatch(s, pattern string) bool {
	// Dynamic-programming-free recursive matcher with memo-less greedy
	// backtracking (patterns are short).
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		if s == "" {
			return false
		}
		return likeRec(s[1:], p[1:])
	default:
		if s == "" || s[0] != p[0] {
			return false
		}
		return likeRec(s[1:], p[1:])
	}
}

// IsAggregate reports whether the (upper-cased) function name is an
// aggregate.
func IsAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// HasAggregate reports whether the expression tree contains an aggregate
// function call.
func HasAggregate(e sqlparser.Expr) bool {
	switch ex := e.(type) {
	case *sqlparser.FuncCall:
		if IsAggregate(ex.Name) {
			return true
		}
		for _, a := range ex.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *sqlparser.BinExpr:
		return HasAggregate(ex.L) || HasAggregate(ex.R)
	case *sqlparser.UnaryExpr:
		return HasAggregate(ex.E)
	case *sqlparser.IsNull:
		return HasAggregate(ex.E)
	case *sqlparser.InList:
		if HasAggregate(ex.E) {
			return true
		}
		for _, le := range ex.List {
			if HasAggregate(le) {
				return true
			}
		}
	case *sqlparser.Between:
		return HasAggregate(ex.E) || HasAggregate(ex.Lo) || HasAggregate(ex.Hi)
	case *sqlparser.CaseExpr:
		if ex.Operand != nil && HasAggregate(ex.Operand) {
			return true
		}
		for _, w := range ex.Whens {
			if HasAggregate(w.Cond) || HasAggregate(w.Then) {
				return true
			}
		}
		if ex.Else != nil {
			return HasAggregate(ex.Else)
		}
	}
	return false
}

// collectAggregates gathers every aggregate FuncCall in the expression.
func collectAggregates(e sqlparser.Expr, out *[]*sqlparser.FuncCall) {
	switch ex := e.(type) {
	case *sqlparser.FuncCall:
		if IsAggregate(ex.Name) {
			*out = append(*out, ex)
			return
		}
		for _, a := range ex.Args {
			collectAggregates(a, out)
		}
	case *sqlparser.BinExpr:
		collectAggregates(ex.L, out)
		collectAggregates(ex.R, out)
	case *sqlparser.UnaryExpr:
		collectAggregates(ex.E, out)
	case *sqlparser.IsNull:
		collectAggregates(ex.E, out)
	case *sqlparser.InList:
		collectAggregates(ex.E, out)
		for _, le := range ex.List {
			collectAggregates(le, out)
		}
	case *sqlparser.Between:
		collectAggregates(ex.E, out)
		collectAggregates(ex.Lo, out)
		collectAggregates(ex.Hi, out)
	case *sqlparser.CaseExpr:
		if ex.Operand != nil {
			collectAggregates(ex.Operand, out)
		}
		for _, w := range ex.Whens {
			collectAggregates(w.Cond, out)
			collectAggregates(w.Then, out)
		}
		if ex.Else != nil {
			collectAggregates(ex.Else, out)
		}
	}
}

func evalScalarFunc(ex *sqlparser.FuncCall, s *Scope) (sqlval.Value, error) {
	args := make([]sqlval.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := Eval(a, s)
		if err != nil {
			return sqlval.Null, err
		}
		args[i] = v
	}
	return applyScalarFunc(ex.Name, args)
}

// applyScalarFunc applies a scalar function to already-evaluated
// arguments. Shared by the interpreter and the compiled executor; name and
// arity validation happens here, at evaluation time, in both paths.
func applyScalarFunc(name string, args []sqlval.Value) (sqlval.Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlexec: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UPPER":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.NewString(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.NewString(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.NewInt(int64(len(args[0].String()))), nil
	case "TRIM":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.NewString(strings.TrimSpace(args[0].String())), nil
	case "ABS":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		switch args[0].Type() {
		case sqlval.TypeNull:
			return sqlval.Null, nil
		case sqlval.TypeInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return sqlval.NewInt(v), nil
		case sqlval.TypeFloat:
			return sqlval.NewFloat(math.Abs(args[0].Float())), nil
		default:
			return sqlval.Null, fmt.Errorf("sqlexec: ABS on %s", args[0].Type())
		}
	case "ROUND":
		if len(args) == 1 {
			if args[0].IsNull() {
				return sqlval.Null, nil
			}
			return sqlval.NewFloat(math.Round(args[0].Float())), nil
		}
		if err := need(2); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqlval.Null, nil
		}
		scale := math.Pow(10, float64(args[1].Int()))
		return sqlval.NewFloat(math.Round(args[0].Float()*scale) / scale), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlval.Null, nil
	case "NULLIF":
		if err := need(2); err != nil {
			return sqlval.Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() {
			if c, err := sqlval.Compare(args[0], args[1]); err == nil && c == 0 {
				return sqlval.Null, nil
			}
		}
		return args[0], nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return sqlval.Null, fmt.Errorf("sqlexec: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqlval.Null, nil
		}
		str := args[0].String()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(str) {
			start = len(str)
		}
		end := len(str)
		if len(args) == 3 {
			if args[2].IsNull() {
				return sqlval.Null, nil
			}
			end = start + int(args[2].Int())
			if end > len(str) {
				end = len(str)
			}
			if end < start {
				end = start
			}
		}
		return sqlval.NewString(str[start:end]), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				b.WriteString(a.String())
			}
		}
		return sqlval.NewString(b.String()), nil
	default:
		return sqlval.Null, fmt.Errorf("sqlexec: unknown function %s", name)
	}
}

// floatPart is one morsel's compensated partial sum of a float SUM/AVG:
// the values of driving-scan morsel `morsel` Neumaier-accumulated in
// arrival order. Both the serial pipeline and the parallel workers produce
// the same set of partials (each morsel is accumulated by exactly one of
// them, in the same within-morsel order), and result() folds them in
// morsel order — a fixed reduction tree independent of worker scheduling —
// so parallel float aggregation is bit-identical to serial.
type floatPart struct {
	morsel    int64
	sum, comp float64
}

// neumaierAdd adds x into the compensated accumulator (s, c): s carries the
// running sum, c the running compensation for the low-order bits s lost.
func neumaierAdd(s, c, x float64) (float64, float64) {
	t := s + x
	if math.Abs(s) >= math.Abs(x) {
		c += (s - t) + x
	} else {
		c += (x - t) + s
	}
	return t, c
}

// distinctVal is one distinct aggregate argument collected by a parallel
// worker: the value and the arrival stamp of its first occurrence.
type distinctVal struct {
	v  sqlval.Value
	at int64
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	call   *sqlparser.FuncCall
	count  int64
	sumI   int64
	isInt  bool
	first  bool
	min    sqlval.Value
	max    sqlval.Value
	seen   map[string]struct{} // DISTINCT support
	keyBuf []byte              // scratch for DISTINCT keys

	// Float SUM/AVG accumulates per driving-scan morsel: (psum, pcomp) is
	// the open partial of morsel pmorsel (-1 = none yet), parts the closed
	// ones. See floatPart for why.
	parts       []floatPart
	pmorsel     int64
	psum, pcomp float64

	// collect switches a DISTINCT aggregate into the parallel workers'
	// collect-only mode: addValue records first occurrences into dvals
	// instead of accumulating, and resolveDistinct replays them in global
	// first-occurrence order after the cross-worker merge.
	collect bool
	dvals   map[string]distinctVal

	// stamp is the arrival position of the value being added; minAt/maxAt
	// record the stamp that last changed min/max. The interpreter leaves
	// stamps zero; the compiled paths set them so that the parallel merge
	// reproduces the serial first-among-equals MIN/MAX tie behaviour and
	// the morsel-ordered float reduction.
	stamp, minAt, maxAt int64
}

func newAggState(call *sqlparser.FuncCall) *aggState {
	st := &aggState{call: call, isInt: true, first: true, pmorsel: -1}
	if call.Distinct {
		st.seen = map[string]struct{}{}
	}
	return st
}

// newCollectAggState is newAggState for parallel workers: DISTINCT
// aggregates go into collect mode (per-worker seen-sets cannot be merged
// into an exact global accumulation; first-occurrence values with stamps
// can).
func newCollectAggState(call *sqlparser.FuncCall) *aggState {
	st := newAggState(call)
	if call.Distinct {
		st.collect = true
		st.seen = nil
		st.dvals = map[string]distinctVal{}
	}
	return st
}

func (a *aggState) add(s *Scope) error {
	if a.call.Star { // COUNT(*)
		a.count++
		return nil
	}
	if len(a.call.Args) != 1 {
		return fmt.Errorf("sqlexec: %s expects one argument", a.call.Name)
	}
	v, err := Eval(a.call.Args[0], s)
	if err != nil {
		return err
	}
	return a.addValue(v)
}

// addValue accumulates one already-evaluated argument value (the compiled
// executor's entry point; add wraps it for the interpreter).
func (a *aggState) addValue(v sqlval.Value) error {
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	if a.collect {
		// Parallel DISTINCT collect mode: record the first occurrence with
		// its stamp. Within one worker stamps are strictly increasing, so
		// the first insertion is the worker-local minimum.
		a.keyBuf = sqlval.AppendKey(a.keyBuf[:0], v)
		if _, dup := a.dvals[string(a.keyBuf)]; !dup {
			a.dvals[string(a.keyBuf)] = distinctVal{v: v, at: a.stamp}
		}
		return nil
	}
	if a.seen != nil {
		// Allocation-free probe: the string conversion in the map index
		// does not escape, and only genuinely new values are stored.
		a.keyBuf = sqlval.AppendKey(a.keyBuf[:0], v)
		if _, dup := a.seen[string(a.keyBuf)]; dup {
			return nil
		}
		a.seen[string(a.keyBuf)] = struct{}{}
	}
	a.count++
	switch a.call.Name {
	case "SUM", "AVG":
		var x float64
		switch v.Type() {
		case sqlval.TypeInt:
			a.sumI += v.Int()
			x = float64(v.Int())
		case sqlval.TypeFloat:
			a.isInt = false
			x = v.Float()
		default:
			return fmt.Errorf("sqlexec: %s on non-numeric value", a.call.Name)
		}
		if m := a.stamp >> 32; m != a.pmorsel {
			a.closePart()
			a.pmorsel = m
		}
		a.psum, a.pcomp = neumaierAdd(a.psum, a.pcomp, x)
	case "MIN":
		if a.first || sqlval.CompareForSort(v, a.min) < 0 {
			a.min = v
			a.minAt = a.stamp
		}
	case "MAX":
		if a.first || sqlval.CompareForSort(v, a.max) > 0 {
			a.max = v
			a.maxAt = a.stamp
		}
	}
	a.first = false
	return nil
}

// closePart freezes the open morsel partial into parts.
func (a *aggState) closePart() {
	if a.pmorsel >= 0 {
		a.parts = append(a.parts, floatPart{morsel: a.pmorsel, sum: a.psum, comp: a.pcomp})
		a.psum, a.pcomp = 0, 0
		a.pmorsel = -1
	}
}

// sumFloat folds the morsel partials in morsel order — the fixed reduction
// tree that makes float SUM/AVG independent of which worker accumulated
// which morsel. Each morsel index occurs at most once across workers (one
// worker claims each morsel), so the sort is a pure reordering.
func (a *aggState) sumFloat() float64 {
	a.closePart()
	sort.Slice(a.parts, func(i, j int) bool { return a.parts[i].morsel < a.parts[j].morsel })
	var s, c float64
	for _, p := range a.parts {
		s, c = neumaierAdd(s, c, p.sum)
		s, c = neumaierAdd(s, c, p.comp)
	}
	return s + c
}

// mergeableAgg reports whether an aggregate merges exactly from per-worker
// partials: COUNT is an integer sum, MIN/MAX a stamped comparison, float
// SUM/AVG a union of per-morsel compensated partials folded in morsel
// order, and DISTINCT aggregates a stamp-ordered replay of collected first
// occurrences.
func mergeableAgg(fc *sqlparser.FuncCall) bool {
	switch fc.Name {
	case "COUNT", "MIN", "MAX", "SUM", "AVG":
		return true
	}
	return false
}

// merge folds another partial into a. Only valid for mergeableAgg
// aggregates; b's values must carry arrival stamps so CompareForSort ties
// resolve to the globally first arrival, exactly as the serial
// accumulation would.
func (a *aggState) merge(b *aggState) {
	if a.collect {
		// Union the distinct first occurrences, keeping the globally
		// earliest stamp per value (every occurrence is in exactly one
		// worker's map, so the pairwise minimum is the global one).
		for k, dv := range b.dvals {
			if have, ok := a.dvals[k]; !ok || dv.at < have.at {
				a.dvals[k] = dv
			}
		}
		return
	}
	a.count += b.count
	a.sumI += b.sumI
	a.isInt = a.isInt && b.isInt
	a.closePart()
	b.closePart()
	a.parts = append(a.parts, b.parts...)
	if b.first {
		return // b never saw a non-NULL value
	}
	if a.first {
		a.min, a.minAt = b.min, b.minAt
		a.max, a.maxAt = b.max, b.maxAt
		a.first = false
		return
	}
	if c := sqlval.CompareForSort(b.min, a.min); c < 0 || (c == 0 && b.minAt < a.minAt) {
		a.min, a.minAt = b.min, b.minAt
	}
	if c := sqlval.CompareForSort(b.max, a.max); c > 0 || (c == 0 && b.maxAt < a.maxAt) {
		a.max, a.maxAt = b.max, b.maxAt
	}
}

// resolveDistinct turns a collect-mode DISTINCT aggregate into a resolved
// one after the cross-worker merge: the collected values replay through
// the serial accumulation in global first-occurrence order, each carrying
// its original stamp, so the result (including the morsel each value's sum
// contribution folds into and MIN/MAX tie arrivals) is exactly what the
// serial pipeline computed.
func (a *aggState) resolveDistinct() error {
	if !a.collect {
		return nil
	}
	vals := make([]distinctVal, 0, len(a.dvals))
	for _, dv := range a.dvals {
		vals = append(vals, dv)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].at < vals[j].at })
	a.collect = false
	a.dvals = nil
	a.seen = nil // values are already distinct
	for _, dv := range vals {
		a.stamp = dv.at
		if err := a.addValue(dv.v); err != nil {
			return err
		}
	}
	return nil
}

func (a *aggState) result() sqlval.Value {
	switch a.call.Name {
	case "COUNT":
		return sqlval.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return sqlval.Null
		}
		if a.isInt {
			return sqlval.NewInt(a.sumI)
		}
		return sqlval.NewFloat(a.sumFloat())
	case "AVG":
		if a.count == 0 {
			return sqlval.Null
		}
		return sqlval.NewFloat(a.sumFloat() / float64(a.count))
	case "MIN":
		if a.count == 0 {
			return sqlval.Null
		}
		return a.min
	case "MAX":
		if a.count == 0 {
			return sqlval.Null
		}
		return a.max
	default:
		return sqlval.Null
	}
}
