package sqlexec

// compile.go — the SQL compile layer. CompileOpts lowers a parsed SELECT
// once into an immutable physical SelectPlan, mirroring what
// internal/sparql's Compile does for SPARQL:
//
//   - every column reference resolves to a dense row-slot offset at compile
//     time (execution never matches column names per row);
//   - expressions lower to slot-resolved evaluator trees (cexpr) with
//     constant LIKE patterns pre-compiled to segment matchers;
//   - WHERE splits into conjuncts, each bound to the earliest pipeline step
//     whose sources cover its slots (source-local conjuncts run inside the
//     scan, equality-against-constant conjuncts on indexed or foreign
//     columns push into sqldb ScanEq index seeks);
//   - equi-joins become hash joins (the executor picks the build side from
//     live cardinalities), other joins nested loops over a materialised
//     right side;
//   - ORDER BY + LIMIT lowers to a bounded stable top-K heap.
//
// A SelectPlan holds structure only — relation handles, slots, compiled
// expressions — never row data, so one plan is safe for concurrent
// execution. Plans bind to the catalog's schema at compile time;
// internal/core's QueryCache keys cached plans on the query text plus
// sqldb.Database.SchemaEpoch, so any DDL invalidates them while data
// mutations never do.

import (
	"fmt"
	"strings"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// Options tunes SELECT compilation. The zero value is the production
// default; the Disable knobs exist for the ablation benchmarks and the
// parity suite, replacing the former racy DisableHashJoin package global.
type Options struct {
	// DisableHashJoin forces nested-loop evaluation for equi-joins. The
	// hash fast path is what keeps self-joins like paper Example 4.6
	// linear instead of quadratic.
	DisableHashJoin bool
	// DisableIndexSeek keeps equality-against-constant conjuncts as
	// pipeline filters instead of pushing them into sqldb ScanEq index
	// seeks (and FDW remote-predicate pushdown).
	DisableIndexSeek bool
	// DisableTopK makes ORDER BY + LIMIT fully sort instead of keeping a
	// bounded top-K heap.
	DisableTopK bool
	// Parallelism bounds the worker count of morsel-driven parallel
	// execution: 0 (the default) means GOMAXPROCS, 1 forces the serial
	// path, anything higher caps the workers of one query. Output is
	// identical to the serial path at every setting; plans fall back to
	// serial when the input is small or the shape cannot merge exactly
	// (see run.go).
	Parallelism int
	// PartialResults degrades instead of failing when a scanned source is
	// down before producing any row (sqldb.ErrSourceDown — an open FDW
	// circuit breaker): the source contributes zero rows and is named in
	// Result.SkippedSources / StreamContext's skip list. Off by default:
	// a down source fails the query fast with a typed error.
	PartialResults bool
}

// SelectPlan is a compiled, immutable physical form of a SELECT. It is
// safe for concurrent execution: all per-execution state lives in the
// runner (see run.go).
type SelectPlan struct {
	opts    Options
	headers []string

	fromless bool

	width int // joined-row width (sum of source widths)
	scan0 scanPlan
	joins []joinPlan

	// Projection (plain mode) or group machinery (grouped mode).
	grouped bool
	items   []cexpr // plain/fromless: over joined row; grouped: over ext row
	group   *groupSink

	distinct bool
	order    []orderPlan
	limit    int // -1 = absent
	offset   int // -1 = absent
}

// Columns returns the output column headers.
func (p *SelectPlan) Columns() []string {
	return append([]string(nil), p.headers...)
}

// scanPlan is one base relation instance in the pipeline.
type scanPlan struct {
	rel    sqldb.Relation
	offset int // slot offset of this source's first column
	width  int

	// Equality pushdown: scan only rows where eqCol = eqVal, via
	// sqldb.FilteredRelation (hash-index seek locally, remote predicate
	// pushdown over FDW).
	eqCol string
	eqVal sqlval.Value

	// filters are WHERE/ON conjuncts referencing only this source's
	// slots, evaluated inside the scan before the row enters the
	// pipeline. Never populated for the right side of a LEFT JOIN from
	// WHERE conjuncts (those stay post-join to preserve padding
	// semantics); ON conjuncts are safe there.
	filters []cexpr
}

type joinKind int

const (
	joinHash joinKind = iota
	joinHashLeft
	joinNested
	joinNestedLeft
	joinCross
)

// joinPlan joins the accumulated left pipeline with one right source.
type joinPlan struct {
	src  scanPlan
	kind joinKind

	leftSlot, rightSlot int // hash-join key slots (absolute), hash kinds only

	// residual: remaining ON conjuncts, evaluated per candidate pair
	// before the pair counts as matched (LEFT padding decided after).
	residual []cexpr
	// post: WHERE conjuncts that first become evaluable after this join,
	// applied to joined (and padded) rows.
	post []cexpr
}

// orderPlan is one compiled ORDER BY key. The interpreter evaluates each
// key against the projected row first and falls back to the underlying
// row per row on ANY evaluation error (not just unresolved names), so the
// plan keeps both compilations when both resolve; at least one is
// non-nil.
type orderPlan struct {
	outKey   cexpr // against the projected row; nil if it doesn't resolve
	underKey cexpr // against the underlying row; nil if it doesn't resolve
	desc     bool
}

// groupSink is the compiled GROUP BY / aggregate machinery. Items and
// HAVING evaluate over an "ext row": the group's first joined row extended
// with one slot per distinct aggregate call.
type groupSink struct {
	keys   []cexpr   // GROUP BY expressions over the joined row
	aggs   []aggSpec // distinct aggregate calls (by rendered SQL)
	having cexpr     // over ext row; nil when absent
}

type aggSpec struct {
	fc  *sqlparser.FuncCall
	arg cexpr // nil for COUNT(*)
}

// Compile lowers a parsed SELECT into a physical plan with default
// options.
func Compile(db *sqldb.Database, sel *sqlparser.Select) (*SelectPlan, error) {
	return CompileOpts(db, sel, Options{})
}

// CompileOpts lowers a parsed SELECT into a physical plan.
func CompileOpts(db *sqldb.Database, sel *sqlparser.Select, opts Options) (*SelectPlan, error) {
	c := &selCompiler{db: db, sel: sel, opts: opts}
	return c.compile()
}

// --- SELECT compilation ---

type selCompiler struct {
	db   *sqldb.Database
	sel  *sqlparser.Select
	opts Options

	sources []scanPlan
	kinds   []sqlparser.JoinKind
	ons     []sqlparser.Expr
	isOuter []bool // source i is the right side of a LEFT JOIN

	layout []ScopeCol // full joined layout; slot = index
}

// conjInfo is one WHERE conjunct with its placement analysis. Resolution
// follows the interpreter's earliest-prefix rule: the conjunct binds to
// the first pipeline step whose accumulated layout resolves every
// reference uniquely — so an unqualified name that is ambiguous in the
// full join layout but unique over the first k sources resolves there,
// exactly as applyReadyFilters would have applied it.
type conjInfo struct {
	e        sqlparser.Expr
	step     int   // earliest step whose prefix layout resolves it; -1 = never
	ce       cexpr // compiled against that prefix
	srcOnly  int   // -1, or the single source region containing every ref
	consumed bool  // pushed into a seek or claimed as a hash-join key
	// badRef records the full-layout resolution error of a conjunct no
	// prefix resolves. It can still be claimed as a region-resolved
	// hash-join key at a cross join (mirroring the interpreter's
	// equiKeys, which resolved each side within its own rowset); if
	// nothing claims it, compilation fails with this error.
	badRef error
}

func (c *selCompiler) compile() (*SelectPlan, error) {
	sel := c.sel
	p := &SelectPlan{opts: c.opts, limit: -1, offset: -1}

	// FROM-less SELECT: items evaluate once against an empty scope;
	// DISTINCT/ORDER/LIMIT do not apply (mirroring the interpreter).
	if len(sel.From) == 0 {
		p.fromless = true
		env := &compileEnv{}
		for i, it := range sel.Items {
			if it.Star {
				return nil, fmt.Errorf("sqlexec: SELECT * requires a FROM clause")
			}
			ce, err := compileExpr(it.Expr, env)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, ce)
			p.headers = append(p.headers, itemName(it, i))
		}
		return p, nil
	}

	if err := c.resolveSources(); err != nil {
		return nil, err
	}
	p.width = len(c.layout)

	conjs, err := c.analyzeConjuncts(splitAnd(sel.Where))
	if err != nil {
		return nil, err
	}

	// Source 0: pushdown and source-local filters.
	if err := c.placeSourceConjuncts(conjs, 0, &c.sources[0], nil); err != nil {
		return nil, err
	}
	p.scan0 = c.sources[0]

	// Join steps.
	for i := 1; i < len(c.sources); i++ {
		jp, err := c.compileJoin(i, conjs)
		if err != nil {
			return nil, err
		}
		p.joins = append(p.joins, *jp)
	}

	// Anything unresolved and unconsumed is a genuine reference error.
	for _, cj := range conjs {
		if !cj.consumed && cj.badRef != nil {
			return nil, cj.badRef
		}
	}

	// Projection / grouping.
	p.grouped = len(sel.GroupBy) > 0 || sel.Having != nil || anyItemAggregate(sel)
	var underEnv *compileEnv
	if p.grouped {
		underEnv, err = c.compileGrouped(p)
	} else {
		underEnv, err = c.compilePlain(p)
	}
	if err != nil {
		return nil, err
	}

	p.distinct = sel.Distinct

	// ORDER BY: projected aliases first, then underlying columns. Both
	// resolutions are kept when both compile — evaluation retries the
	// underlying key per row when the projected one errors, mirroring the
	// interpreter's row-level fallback.
	if len(sel.OrderBy) > 0 {
		outCols := make([]ScopeCol, len(p.headers))
		for i, h := range p.headers {
			outCols[i] = ScopeCol{Name: h}
		}
		outEnv := &compileEnv{cols: outCols}
		for _, ob := range sel.OrderBy {
			op := orderPlan{desc: ob.Desc}
			outCE, outErr := compileExpr(ob.Expr, outEnv)
			underCE, underErr := compileExpr(ob.Expr, underEnv)
			if outErr == nil {
				op.outKey = outCE
			}
			if underErr == nil {
				op.underKey = underCE
			}
			if op.outKey == nil && op.underKey == nil {
				return nil, fmt.Errorf("sqlexec: ORDER BY: %w", underErr)
			}
			p.order = append(p.order, op)
		}
	}

	// LIMIT/OFFSET are constant expressions: evaluate once.
	if sel.Offset != nil {
		n, err := constInt(sel.Offset)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sqlexec: negative OFFSET")
		}
		p.offset = n
	}
	if sel.Limit != nil {
		n, err := constInt(sel.Limit)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sqlexec: negative LIMIT")
		}
		p.limit = n
	}
	return p, nil
}

func constInt(e sqlparser.Expr) (int, error) {
	ce, err := compileExpr(e, &compileEnv{})
	if err != nil {
		return 0, err
	}
	v, err := ce.eval(nil)
	if err != nil {
		return 0, err
	}
	return int(v.Int()), nil
}

func (c *selCompiler) resolveSources() error {
	add := func(table, alias string, kind sqlparser.JoinKind, on sqlparser.Expr) error {
		rel, err := c.db.Resolve(table)
		if err != nil {
			return err
		}
		if alias == "" {
			alias = table
		}
		schema := rel.Schema()
		sp := scanPlan{rel: rel, offset: len(c.layout), width: len(schema)}
		for _, col := range schema {
			c.layout = append(c.layout, ScopeCol{Qualifier: alias, Name: col.Name})
		}
		c.sources = append(c.sources, sp)
		c.kinds = append(c.kinds, kind)
		c.ons = append(c.ons, on)
		c.isOuter = append(c.isOuter, kind == sqlparser.JoinLeft)
		return nil
	}
	for _, tr := range c.sel.From {
		if err := add(tr.Table, tr.Alias, sqlparser.JoinCross, nil); err != nil {
			return err
		}
		for _, j := range tr.Joins {
			if err := add(j.Table, j.Alias, j.Kind, j.On); err != nil {
				return err
			}
		}
	}
	return nil
}

// srcOf maps a slot to its source index.
func (c *selCompiler) srcOf(slot int) int {
	for i := len(c.sources) - 1; i > 0; i-- {
		if slot >= c.sources[i].offset {
			return i
		}
	}
	return 0
}

// lookupIn resolves a column reference within a slot range [lo, hi),
// requiring uniqueness inside that range (the region-scoped resolution
// hash-join key detection uses).
func (c *selCompiler) lookupIn(cr *sqlparser.ColRef, lo, hi int) (int, bool) {
	found := -1
	for i := lo; i < hi; i++ {
		col := c.layout[i]
		if !strings.EqualFold(col.Name, cr.Name) {
			continue
		}
		if cr.Qualifier != "" && !strings.EqualFold(col.Qualifier, cr.Qualifier) {
			continue
		}
		if found >= 0 {
			return -1, false
		}
		found = i
	}
	return found, found >= 0
}

// analyzeConjuncts binds every WHERE conjunct to the earliest pipeline
// step whose prefix layout resolves it, compiling it against that prefix.
func (c *selCompiler) analyzeConjuncts(list []sqlparser.Expr) ([]*conjInfo, error) {
	out := make([]*conjInfo, 0, len(list))
	for _, e := range list {
		ci := &conjInfo{e: e, step: -1, srcOnly: -1}
		for s := range c.sources {
			end := c.sources[s].offset + c.sources[s].width
			env := &compileEnv{cols: c.layout[:end]}
			ce, err := compileExpr(e, env)
			if err != nil {
				if s == len(c.sources)-1 {
					ci.badRef = err
				}
				continue
			}
			ci.step, ci.ce = s, ce
			// srcOnly: the single source region holding every reference.
			var refs []*sqlparser.ColRef
			exprCols(e, &refs)
			ci.srcOnly = s
			if len(refs) == 0 {
				ci.srcOnly = 0
			}
			for _, cr := range refs {
				slot, lerr := env.lookup(cr.Qualifier, cr.Name)
				if lerr != nil { // unreachable: the compile above resolved it
					return nil, lerr
				}
				if src := c.srcOf(slot); src != ci.srcOnly {
					ci.srcOnly = -1
					break
				}
			}
			break
		}
		out = append(out, ci)
	}
	return out, nil
}

// placeSourceConjuncts attaches the conjuncts owned by source s: an
// equality-against-constant conjunct becomes a ScanEq pushdown when the
// relation supports it, the rest become in-scan filters. For the right
// side of a LEFT JOIN (isOuter) WHERE conjuncts must stay post-join, so
// they are appended to post instead.
func (c *selCompiler) placeSourceConjuncts(conjs []*conjInfo, s int, sp *scanPlan, post *[]cexpr) error {
	for _, cj := range conjs {
		if cj.consumed || cj.srcOnly != s {
			continue
		}
		if c.isOuter[s] {
			if post != nil {
				*post = append(*post, cj.ce)
				cj.consumed = true
			}
			continue
		}
		if c.tryPushEq(cj, s, sp) {
			cj.consumed = true
			continue
		}
		sp.filters = append(sp.filters, cj.ce)
		cj.consumed = true
	}
	return nil
}

// tryPushEq pushes a `col = constant` conjunct into the source's scan as
// a ScanEq seek. The constant is pre-coerced to the column type and must
// survive the round trip unchanged (Compare-equal), so the encoded-key
// seek selects exactly the rows the predicate would.
func (c *selCompiler) tryPushEq(cj *conjInfo, s int, sp *scanPlan) bool {
	if c.opts.DisableIndexSeek || sp.eqCol != "" {
		return false
	}
	be, ok := cj.e.(*sqlparser.BinExpr)
	if !ok || be.Op != sqlparser.OpEq {
		return false
	}
	var cr *sqlparser.ColRef
	var lit *sqlparser.Literal
	if l, ok1 := be.L.(*sqlparser.ColRef); ok1 {
		cr = l
		lit, _ = be.R.(*sqlparser.Literal)
	} else if r, ok2 := be.R.(*sqlparser.ColRef); ok2 {
		cr = r
		lit, _ = be.L.(*sqlparser.Literal)
	}
	if cr == nil || lit == nil || lit.Val.IsNull() {
		return false
	}
	slot, ok := c.lookupIn(cr, sp.offset, sp.offset+sp.width)
	if !ok {
		return false
	}
	col := sp.rel.Schema()[slot-sp.offset]
	cv, err := sqlval.Coerce(lit.Val, col.Type)
	if err != nil || cv.IsNull() {
		return false
	}
	if cmp, err := sqlval.Compare(cv, lit.Val); err != nil || cmp != 0 {
		return false
	}
	fr, ok := sp.rel.(sqldb.FilteredRelation)
	if !ok {
		return false
	}
	// Local tables seek only through a hash index (an unindexed ScanEq is
	// just a filtered scan); foreign tables always benefit — the
	// predicate ships to the remote node instead of the whole table.
	if t, local := fr.(*sqldb.Table); local && !t.HasIndex(col.Name) {
		return false
	}
	sp.eqCol = col.Name
	sp.eqVal = cv
	return true
}

// equiSides recognises `a.x = b.y` shapes where one side resolves
// (uniquely) in the left region and the other in the right region,
// returning the absolute slots.
func (c *selCompiler) equiSides(e sqlparser.Expr, rightLo, rightHi int) (int, int, bool) {
	be, ok := e.(*sqlparser.BinExpr)
	if !ok || be.Op != sqlparser.OpEq {
		return 0, 0, false
	}
	lc, ok1 := be.L.(*sqlparser.ColRef)
	rc, ok2 := be.R.(*sqlparser.ColRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if ls, ok := c.lookupIn(lc, 0, rightLo); ok {
		if rs, ok := c.lookupIn(rc, rightLo, rightHi); ok {
			return ls, rs, true
		}
	}
	// Swapped orientation.
	if ls, ok := c.lookupIn(rc, 0, rightLo); ok {
		if rs, ok := c.lookupIn(lc, rightLo, rightHi); ok {
			return ls, rs, true
		}
	}
	return 0, 0, false
}

func (c *selCompiler) compileJoin(i int, conjs []*conjInfo) (*joinPlan, error) {
	src := c.sources[i]
	jp := &joinPlan{src: src}
	rightLo, rightHi := src.offset, src.offset+src.width
	prefixEnv := &compileEnv{cols: c.layout[:rightHi]}

	switch c.kinds[i] {
	case sqlparser.JoinInner, sqlparser.JoinLeft:
		left := c.kinds[i] == sqlparser.JoinLeft
		if c.ons[i] == nil {
			if left {
				return nil, fmt.Errorf("sqlexec: LEFT JOIN requires ON")
			}
			jp.kind = joinCross
			break
		}
		onConjs := splitAnd(c.ons[i])
		haveKey := false
		for _, oc := range onConjs {
			// First equi conjunct becomes the hash key.
			if !haveKey && !c.opts.DisableHashJoin {
				if ls, rs, ok := c.equiSides(oc, rightLo, rightHi); ok {
					jp.leftSlot, jp.rightSlot = ls, rs
					haveKey = true
					continue
				}
			}
			// Conjuncts over the right source alone filter its scan —
			// safe for LEFT JOIN too: ON conditions only shape the match
			// set, padding happens after.
			if c.onRightOnly(oc, rightLo, rightHi) {
				ce, err := compileExpr(oc, prefixEnv)
				if err != nil {
					return nil, err
				}
				jp.src.filters = append(jp.src.filters, ce)
				continue
			}
			ce, err := compileExpr(oc, prefixEnv)
			if err != nil {
				return nil, err
			}
			jp.residual = append(jp.residual, ce)
		}
		switch {
		case haveKey && left:
			jp.kind = joinHashLeft
		case haveKey:
			jp.kind = joinHash
		case left:
			jp.kind = joinNestedLeft
		default:
			jp.kind = joinNested
		}

	default: // comma/cross: a WHERE equi conjunct can drive a hash join
		jp.kind = joinCross
		if !c.opts.DisableHashJoin {
			// Candidates are the conjuncts the interpreter would still be
			// carrying at this join step: first evaluable here, or never
			// resolvable as a whole yet region-resolvable (one side per
			// rowset, the seed's equiKeys rule).
			for _, cj := range conjs {
				if cj.consumed || (cj.step != i && cj.badRef == nil) {
					continue
				}
				if ls, rs, ok := c.equiSides(cj.e, rightLo, rightHi); ok {
					jp.leftSlot, jp.rightSlot = ls, rs
					jp.kind = joinHash
					cj.consumed = true
					break
				}
			}
		}
	}

	// WHERE conjuncts owned by this source go into its scan (or post for
	// the right side of a LEFT JOIN).
	if err := c.placeSourceConjuncts(conjs, i, &jp.src, &jp.post); err != nil {
		return nil, err
	}
	// WHERE conjuncts that first become evaluable here run post-join.
	for _, cj := range conjs {
		if cj.consumed || cj.step != i {
			continue
		}
		jp.post = append(jp.post, cj.ce)
		cj.consumed = true
	}
	return jp, nil
}

// onRightOnly reports whether every column reference in e resolves within
// the right region.
func (c *selCompiler) onRightOnly(e sqlparser.Expr, rightLo, rightHi int) bool {
	var refs []*sqlparser.ColRef
	exprCols(e, &refs)
	if len(refs) == 0 {
		return false // constant ON conjuncts keep interpreter placement
	}
	for _, cr := range refs {
		if _, ok := c.lookupIn(cr, rightLo, rightHi); !ok {
			return false
		}
		// Must not ALSO resolve on the left: an unqualified name present
		// on both sides is ambiguous and belongs in the residual, where
		// evaluation reports it.
		if _, also := c.lookupIn(cr, 0, rightLo); also {
			return false
		}
	}
	return true
}

func (c *selCompiler) compilePlain(p *SelectPlan) (*compileEnv, error) {
	items, err := expandItems(c.sel, c.layout)
	if err != nil {
		return nil, err
	}
	env := &compileEnv{cols: c.layout}
	for i, it := range items {
		ce, err := compileExpr(it.Expr, env)
		if err != nil {
			return nil, err
		}
		p.items = append(p.items, ce)
		p.headers = append(p.headers, itemName(it, i))
	}
	return env, nil
}

func (c *selCompiler) compileGrouped(p *SelectPlan) (*compileEnv, error) {
	sel := c.sel
	items, err := expandItems(sel, c.layout)
	if err != nil {
		return nil, err
	}

	// Gather the distinct aggregate calls from items and HAVING; each gets
	// one ext-row slot past the joined-row width.
	var aggCalls []*sqlparser.FuncCall
	for _, it := range items {
		collectAggregates(it.Expr, &aggCalls)
	}
	if sel.Having != nil {
		collectAggregates(sel.Having, &aggCalls)
	}

	g := &groupSink{}
	baseEnv := &compileEnv{cols: c.layout}
	aggSlots := map[string]int{}
	for _, fc := range aggCalls {
		key := fc.SQL()
		if _, dup := aggSlots[key]; dup {
			continue
		}
		spec := aggSpec{fc: fc}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("sqlexec: %s expects one argument", fc.Name)
			}
			arg, err := compileExpr(fc.Args[0], baseEnv)
			if err != nil {
				return nil, err
			}
			spec.arg = arg
		}
		aggSlots[key] = p.width + len(g.aggs)
		g.aggs = append(g.aggs, spec)
	}

	for _, ge := range sel.GroupBy {
		ke, err := compileExpr(ge, baseEnv)
		if err != nil {
			return nil, err
		}
		g.keys = append(g.keys, ke)
	}

	aggEnv := &compileEnv{cols: c.layout, aggs: aggSlots}
	if sel.Having != nil {
		if g.having, err = compileExpr(sel.Having, aggEnv); err != nil {
			return nil, err
		}
	}
	for i, it := range items {
		ce, err := compileExpr(it.Expr, aggEnv)
		if err != nil {
			return nil, err
		}
		p.items = append(p.items, ce)
		p.headers = append(p.headers, itemName(it, i))
	}
	p.group = g
	return aggEnv, nil
}

// --- expression compilation ---

// compileEnv resolves column references (and, in grouped evaluation,
// aggregate calls) to row slots during expression compilation.
type compileEnv struct {
	cols []ScopeCol
	// aggs maps a rendered aggregate call (FuncCall.SQL()) to its ext-row
	// slot. Nil outside grouped evaluation: aggregate calls then fail to
	// compile, mirroring the interpreter's "aggregate outside grouping
	// context" error.
	aggs map[string]int
}

func (env *compileEnv) lookup(qual, name string) (int, error) {
	found := -1
	for i, c := range env.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qualifier, qual) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqlexec: ambiguous column reference %q", refName(qual, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("sqlexec: unknown column %q", refName(qual, name))
	}
	return found, nil
}

// compileExpr lowers an expression to a slot-resolved evaluator tree.
func compileExpr(e sqlparser.Expr, env *compileEnv) (cexpr, error) {
	switch ex := e.(type) {
	case *sqlparser.Literal:
		return cConst{v: ex.Val}, nil
	case *sqlparser.ColRef:
		slot, err := env.lookup(ex.Qualifier, ex.Name)
		if err != nil {
			return nil, err
		}
		return cSlot{slot: slot}, nil
	case *sqlparser.BinExpr:
		return compileBin(ex, env)
	case *sqlparser.UnaryExpr:
		sub, err := compileExpr(ex.E, env)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "NOT":
			return cNot{e: sub}, nil
		case "-":
			return cNeg{e: sub}, nil
		default:
			return nil, fmt.Errorf("sqlexec: unknown unary operator %q", ex.Op)
		}
	case *sqlparser.IsNull:
		sub, err := compileExpr(ex.E, env)
		if err != nil {
			return nil, err
		}
		return cIsNull{e: sub, not: ex.Not}, nil
	case *sqlparser.InList:
		sub, err := compileExpr(ex.E, env)
		if err != nil {
			return nil, err
		}
		list := make([]cexpr, len(ex.List))
		for i, le := range ex.List {
			if list[i], err = compileExpr(le, env); err != nil {
				return nil, err
			}
		}
		return cIn{e: sub, list: list, not: ex.Not}, nil
	case *sqlparser.Between:
		sub, err := compileExpr(ex.E, env)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(ex.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(ex.Hi, env)
		if err != nil {
			return nil, err
		}
		return cBetween{e: sub, lo: lo, hi: hi, not: ex.Not}, nil
	case *sqlparser.FuncCall:
		if IsAggregate(ex.Name) {
			if env.aggs == nil {
				return nil, fmt.Errorf("sqlexec: aggregate %s outside grouping context", ex.Name)
			}
			slot, ok := env.aggs[ex.SQL()]
			if !ok {
				return nil, fmt.Errorf("sqlexec: aggregate %s not computed", ex.SQL())
			}
			return cSlot{slot: slot}, nil
		}
		args := make([]cexpr, len(ex.Args))
		var err error
		for i, a := range ex.Args {
			if args[i], err = compileExpr(a, env); err != nil {
				return nil, err
			}
		}
		// Name and arity validation stays at evaluation time (see
		// applyScalarFunc), mirroring the interpreter.
		return cFunc{name: ex.Name, args: args}, nil
	case *sqlparser.CaseExpr:
		return compileCase(ex, env)
	default:
		return nil, fmt.Errorf("sqlexec: unsupported expression %T", e)
	}
}

func compileBin(ex *sqlparser.BinExpr, env *compileEnv) (cexpr, error) {
	l, err := compileExpr(ex.L, env)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(ex.R, env)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case sqlparser.OpAnd:
		return cAnd{l: l, r: r}, nil
	case sqlparser.OpOr:
		return cOr{l: l, r: r}, nil
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		return cCmp{op: ex.Op, l: l, r: r}, nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		return cArith{op: ex.Op, l: l, r: r}, nil
	case sqlparser.OpConcat:
		return cConcat{l: l, r: r}, nil
	case sqlparser.OpLike:
		if lit, ok := ex.R.(*sqlparser.Literal); ok && lit.Val.Type() == sqlval.TypeString {
			return cLikeConst{arg: l, m: compileLike(lit.Val.Str())}, nil
		}
		return cLikeDyn{l: l, r: r}, nil
	default:
		return nil, fmt.Errorf("sqlexec: unsupported operator %v", ex.Op)
	}
}

func compileCase(ex *sqlparser.CaseExpr, env *compileEnv) (cexpr, error) {
	out := cCase{}
	var err error
	if ex.Operand != nil {
		if out.operand, err = compileExpr(ex.Operand, env); err != nil {
			return nil, err
		}
	}
	out.whens = make([]cWhen, len(ex.Whens))
	for i, w := range ex.Whens {
		if out.whens[i].cond, err = compileExpr(w.Cond, env); err != nil {
			return nil, err
		}
		if out.whens[i].then, err = compileExpr(w.Then, env); err != nil {
			return nil, err
		}
	}
	if ex.Else != nil {
		if out.els, err = compileExpr(ex.Else, env); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- compiled expression nodes (evaluation mirrors expr.go exactly) ---

// cexpr is a compiled expression evaluated against a row slice.
type cexpr interface {
	eval(row []sqlval.Value) (sqlval.Value, error)
}

// cEvalBool evaluates a compiled predicate with SQL 3VL, mirroring
// EvalBool.
func cEvalBool(e cexpr, row []sqlval.Value) (sqlval.Tri, error) {
	v, err := e.eval(row)
	if err != nil {
		return sqlval.Unknown, err
	}
	if v.IsNull() {
		return sqlval.Unknown, nil
	}
	b, err := sqlval.Coerce(v, sqlval.TypeBool)
	if err != nil {
		return sqlval.Unknown, fmt.Errorf("sqlexec: predicate is not boolean: %w", err)
	}
	return sqlval.TriOf(b.Bool()), nil
}

type cConst struct{ v sqlval.Value }

func (c cConst) eval([]sqlval.Value) (sqlval.Value, error) { return c.v, nil }

type cSlot struct{ slot int }

func (c cSlot) eval(row []sqlval.Value) (sqlval.Value, error) { return row[c.slot], nil }

type cAnd struct{ l, r cexpr }

func (c cAnd) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := cEvalBool(c.l, row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := cEvalBool(c.r, row)
	if err != nil {
		return sqlval.Null, err
	}
	return l.And(r).Value(), nil
}

type cOr struct{ l, r cexpr }

func (c cOr) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := cEvalBool(c.l, row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := cEvalBool(c.r, row)
	if err != nil {
		return sqlval.Null, err
	}
	return l.Or(r).Value(), nil
}

type cCmp struct {
	op   sqlparser.BinOpKind
	l, r cexpr
}

func (c cCmp) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := c.l.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := c.r.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqlval.Null, nil // UNKNOWN
	}
	cmp, err := sqlval.Compare(l, r)
	if err != nil {
		return sqlval.Null, err
	}
	switch c.op {
	case sqlparser.OpEq:
		return sqlval.NewBool(cmp == 0), nil
	case sqlparser.OpNe:
		return sqlval.NewBool(cmp != 0), nil
	case sqlparser.OpLt:
		return sqlval.NewBool(cmp < 0), nil
	case sqlparser.OpLe:
		return sqlval.NewBool(cmp <= 0), nil
	case sqlparser.OpGt:
		return sqlval.NewBool(cmp > 0), nil
	default:
		return sqlval.NewBool(cmp >= 0), nil
	}
}

type cArith struct {
	op   sqlparser.BinOpKind
	l, r cexpr
}

func (c cArith) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := c.l.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := c.r.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	return evalArith(c.op, l, r)
}

type cConcat struct{ l, r cexpr }

func (c cConcat) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := c.l.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := c.r.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqlval.Null, nil
	}
	return sqlval.NewString(l.String() + r.String()), nil
}

type cLikeConst struct {
	arg cexpr
	m   *likeMatcher
}

func (c cLikeConst) eval(row []sqlval.Value) (sqlval.Value, error) {
	v, err := c.arg.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() {
		return sqlval.Null, nil
	}
	if v.Type() != sqlval.TypeString {
		return sqlval.Null, fmt.Errorf("sqlexec: LIKE requires text operands")
	}
	return sqlval.NewBool(c.m.match(v.Str())), nil
}

type cLikeDyn struct{ l, r cexpr }

func (c cLikeDyn) eval(row []sqlval.Value) (sqlval.Value, error) {
	l, err := c.l.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := c.r.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqlval.Null, nil
	}
	if l.Type() != sqlval.TypeString || r.Type() != sqlval.TypeString {
		return sqlval.Null, fmt.Errorf("sqlexec: LIKE requires text operands")
	}
	return sqlval.NewBool(likeMatch(l.Str(), r.Str())), nil
}

type cNot struct{ e cexpr }

func (c cNot) eval(row []sqlval.Value) (sqlval.Value, error) {
	t, err := cEvalBool(c.e, row)
	if err != nil {
		return sqlval.Null, err
	}
	return t.Not().Value(), nil
}

type cNeg struct{ e cexpr }

func (c cNeg) eval(row []sqlval.Value) (sqlval.Value, error) {
	v, err := c.e.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	switch v.Type() {
	case sqlval.TypeNull:
		return sqlval.Null, nil
	case sqlval.TypeInt:
		return sqlval.NewInt(-v.Int()), nil
	case sqlval.TypeFloat:
		return sqlval.NewFloat(-v.Float()), nil
	default:
		return sqlval.Null, fmt.Errorf("sqlexec: cannot negate %s", v.Type())
	}
}

type cIsNull struct {
	e   cexpr
	not bool
}

func (c cIsNull) eval(row []sqlval.Value) (sqlval.Value, error) {
	v, err := c.e.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if c.not {
		return sqlval.NewBool(!v.IsNull()), nil
	}
	return sqlval.NewBool(v.IsNull()), nil
}

type cIn struct {
	e    cexpr
	list []cexpr
	not  bool
}

func (c cIn) eval(row []sqlval.Value) (sqlval.Value, error) {
	v, err := c.e.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() {
		return sqlval.Null, nil
	}
	sawNull := false
	for _, le := range c.list {
		lv, err := le.eval(row)
		if err != nil {
			return sqlval.Null, err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if cmp, err := sqlval.Compare(v, lv); err == nil && cmp == 0 {
			return sqlval.NewBool(!c.not), nil
		}
	}
	if sawNull {
		return sqlval.Null, nil // UNKNOWN per SQL semantics
	}
	return sqlval.NewBool(c.not), nil
}

type cBetween struct {
	e, lo, hi cexpr
	not       bool
}

func (c cBetween) eval(row []sqlval.Value) (sqlval.Value, error) {
	v, err := c.e.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	lo, err := c.lo.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	hi, err := c.hi.eval(row)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqlval.Null, nil
	}
	c1, err := sqlval.Compare(v, lo)
	if err != nil {
		return sqlval.Null, err
	}
	c2, err := sqlval.Compare(v, hi)
	if err != nil {
		return sqlval.Null, err
	}
	in := c1 >= 0 && c2 <= 0
	if c.not {
		in = !in
	}
	return sqlval.NewBool(in), nil
}

type cFunc struct {
	name string
	args []cexpr
}

func (c cFunc) eval(row []sqlval.Value) (sqlval.Value, error) {
	args := make([]sqlval.Value, len(c.args))
	for i, a := range c.args {
		v, err := a.eval(row)
		if err != nil {
			return sqlval.Null, err
		}
		args[i] = v
	}
	return applyScalarFunc(c.name, args)
}

type cWhen struct{ cond, then cexpr }

type cCase struct {
	operand cexpr // nil for searched CASE
	whens   []cWhen
	els     cexpr // nil when absent
}

func (c cCase) eval(row []sqlval.Value) (sqlval.Value, error) {
	if c.operand != nil {
		op, err := c.operand.eval(row)
		if err != nil {
			return sqlval.Null, err
		}
		for _, w := range c.whens {
			wv, err := w.cond.eval(row)
			if err != nil {
				return sqlval.Null, err
			}
			if !op.IsNull() && !wv.IsNull() {
				if cmp, err := sqlval.Compare(op, wv); err == nil && cmp == 0 {
					return w.then.eval(row)
				}
			}
		}
	} else {
		for _, w := range c.whens {
			t, err := cEvalBool(w.cond, row)
			if err != nil {
				return sqlval.Null, err
			}
			if t == sqlval.True {
				return w.then.eval(row)
			}
		}
	}
	if c.els != nil {
		return c.els.eval(row)
	}
	return sqlval.Null, nil
}

// --- Predicate: compiled boolean expression over a fixed layout ---

// Predicate is a compiled boolean expression over a fixed column layout.
// The enrichment pipeline and the UPDATE/DELETE paths use it to evaluate
// one parsed predicate against many rows without walking the AST per row.
type Predicate struct{ e cexpr }

// CompilePredicate lowers e against the column layout. Column references
// resolve to row offsets once, at compile time.
func CompilePredicate(cols []ScopeCol, e sqlparser.Expr) (*Predicate, error) {
	ce, err := compileExpr(e, &compileEnv{cols: cols})
	if err != nil {
		return nil, err
	}
	return &Predicate{e: ce}, nil
}

// EvalBool evaluates the predicate over a row (parallel to the layout it
// was compiled against) with SQL three-valued logic.
func (p *Predicate) EvalBool(row []sqlval.Value) (sqlval.Tri, error) {
	return cEvalBool(p.e, row)
}

// CompiledExpr is a compiled scalar expression over a fixed column layout.
type CompiledExpr struct{ e cexpr }

// CompileExpr lowers a scalar expression against the column layout.
func CompileExpr(cols []ScopeCol, e sqlparser.Expr) (*CompiledExpr, error) {
	ce, err := compileExpr(e, &compileEnv{cols: cols})
	if err != nil {
		return nil, err
	}
	return &CompiledExpr{e: ce}, nil
}

// Eval evaluates the expression over a row parallel to the layout.
func (x *CompiledExpr) Eval(row []sqlval.Value) (sqlval.Value, error) {
	return x.e.eval(row)
}
