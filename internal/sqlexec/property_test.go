package sqlexec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// randDB builds a randomized table r(a INT, b TEXT, c DOUBLE) and returns
// the rows for Go-side cross-checking.
func randDB(t *testing.T, rng *rand.Rand, n int) (*sqldb.Database, [][]sqlval.Value) {
	t.Helper()
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE r (a INT, b TEXT, c DOUBLE)`)
	tab, _ := db.Table("r")
	var rows [][]sqlval.Value
	for i := 0; i < n; i++ {
		row := []sqlval.Value{
			sqlval.NewInt(int64(rng.Intn(20) - 10)),
			sqlval.NewString(fmt.Sprintf("s%d", rng.Intn(5))),
			sqlval.NewFloat(float64(rng.Intn(100)) / 4),
		}
		if rng.Intn(10) == 0 {
			row[2] = sqlval.Null
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	return db, rows
}

// Property: SQL WHERE filtering equals Go-side evaluation of the same
// predicate over the same rows.
func TestWhereMatchesGoFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	preds := []struct {
		sql string
		fn  func(r []sqlval.Value) bool
	}{
		{`a > 0`, func(r []sqlval.Value) bool { return r[0].Int() > 0 }},
		{`b = 's1'`, func(r []sqlval.Value) bool { return r[1].Str() == "s1" }},
		{`c IS NULL`, func(r []sqlval.Value) bool { return r[2].IsNull() }},
		{`a > 0 AND b <> 's0'`, func(r []sqlval.Value) bool { return r[0].Int() > 0 && r[1].Str() != "s0" }},
		{`a BETWEEN -2 AND 3`, func(r []sqlval.Value) bool { return r[0].Int() >= -2 && r[0].Int() <= 3 }},
		{`b IN ('s0', 's3')`, func(r []sqlval.Value) bool { return r[1].Str() == "s0" || r[1].Str() == "s3" }},
		// 3VL: NULL c never satisfies c > 10.
		{`c > 10`, func(r []sqlval.Value) bool { return !r[2].IsNull() && r[2].Float() > 10 }},
		{`NOT (a = 0)`, func(r []sqlval.Value) bool { return r[0].Int() != 0 }},
	}
	for trial := 0; trial < 10; trial++ {
		db, rows := randDB(t, rng, 100)
		for _, p := range preds {
			res := mustExec(t, db, `SELECT COUNT(*) FROM r WHERE `+p.sql)
			want := 0
			for _, r := range rows {
				if p.fn(r) {
					want++
				}
			}
			if got := int(res.Rows[0][0].Int()); got != want {
				t.Errorf("trial %d, %q: sql=%d go=%d", trial, p.sql, got, want)
			}
		}
	}
}

// Property: hash-join and nested-loop evaluation agree on random data.
func TestHashJoinEqualsNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		db, _ := randDB(t, rng, 60)
		const q = `SELECT COUNT(*) FROM r x, r y WHERE x.b = y.b AND x.a < y.a`

		fast := mustExecOpts(t, db, q, Options{}).Rows[0][0].Int()
		slow := mustExecOpts(t, db, q, Options{DisableHashJoin: true}).Rows[0][0].Int()

		if fast != slow {
			t.Fatalf("trial %d: hash=%d nested=%d", trial, fast, slow)
		}
	}
}

// Property: DISTINCT is idempotent and never increases cardinality.
func TestDistinctProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		db, _ := randDB(t, rng, 80)
		all := mustExec(t, db, `SELECT b FROM r`)
		d1 := mustExec(t, db, `SELECT DISTINCT b FROM r`)
		if len(d1.Rows) > len(all.Rows) {
			t.Fatal("DISTINCT grew the result")
		}
		seen := map[string]bool{}
		for _, r := range d1.Rows {
			key := r[0].String()
			if seen[key] {
				t.Fatalf("DISTINCT produced duplicate %q", key)
			}
			seen[key] = true
		}
		for _, r := range all.Rows {
			if !seen[r[0].String()] {
				t.Fatalf("DISTINCT lost value %q", r[0].String())
			}
		}
	}
}

// Property: ORDER BY produces a non-decreasing key sequence, and LIMIT n
// returns the prefix of the ordered result.
func TestOrderLimitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		db, _ := randDB(t, rng, 70)
		full := mustExec(t, db, `SELECT a FROM r ORDER BY a`)
		for i := 1; i < len(full.Rows); i++ {
			if full.Rows[i-1][0].Int() > full.Rows[i][0].Int() {
				t.Fatal("ORDER BY not sorted")
			}
		}
		k := rng.Intn(len(full.Rows)) + 1
		lim := mustExec(t, db, fmt.Sprintf(`SELECT a FROM r ORDER BY a LIMIT %d`, k))
		if len(lim.Rows) != k {
			t.Fatalf("LIMIT %d returned %d", k, len(lim.Rows))
		}
		for i := range lim.Rows {
			if lim.Rows[i][0].Int() != full.Rows[i][0].Int() {
				t.Fatal("LIMIT is not a prefix of the ordered result")
			}
		}
	}
}

// Property: COUNT(*) equals the sum of per-group COUNT(*).
func TestGroupCountsSumToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		db, rows := randDB(t, rng, 90)
		grouped := mustExec(t, db, `SELECT b, COUNT(*) FROM r GROUP BY b`)
		sum := int64(0)
		for _, r := range grouped.Rows {
			sum += r[1].Int()
		}
		if sum != int64(len(rows)) {
			t.Fatalf("group counts sum %d != %d", sum, len(rows))
		}
	}
}

// Property (testing/quick): INSERT then SELECT round-trips arbitrary
// strings, including quotes and unicode.
func TestInsertSelectRoundTripsStrings(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE s (v TEXT)`)
	tab, _ := db.Table("s")
	f := func(s string) bool {
		if err := tab.Insert([]sqlval.Value{sqlval.NewString(s)}); err != nil {
			return false
		}
		found := false
		tab.ScanEq("v", sqlval.NewString(s), func(row []sqlval.Value) bool {
			if row[0].Str() == s {
				found = true
			}
			return true
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UPDATE of every row followed by the inverse UPDATE restores
// the aggregate sum.
func TestUpdateInverseRestoresState(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db, _ := randDB(t, rng, 50)
	before := mustExec(t, db, `SELECT SUM(a) FROM r`).Rows[0][0].Int()
	mustExec(t, db, `UPDATE r SET a = a + 7`)
	mustExec(t, db, `UPDATE r SET a = a - 7`)
	after := mustExec(t, db, `SELECT SUM(a) FROM r`).Rows[0][0].Int()
	if before != after {
		t.Errorf("sum changed: %d → %d", before, after)
	}
}
