package sqlexec

// parity_test.go — pins the compiled streaming pipeline (compile.go /
// run.go) to the reference interpreter's semantics (interp.go). Randomised
// SELECTs — joins (inner/left/comma), NULLs, LIKE, DISTINCT, ORDER
// BY/LIMIT/OFFSET, grouping and aggregates — are evaluated both ways,
// under every planner-option combination (hash joins and index pushdown on
// and off), and the results must agree.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"crosse/internal/sqldb"
	"crosse/internal/sqlparser"
	"crosse/internal/sqlval"
)

// parityDB builds two tables with NULLs sprinkled through every nullable
// column; t1.id is an indexed PRIMARY KEY and t2.k carries a secondary
// index, so equality pushdown has something to seek.
func parityDB(t *testing.T, rng *rand.Rand, n1, n2 int) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE t1 (id INT PRIMARY KEY, a INT, b TEXT, c DOUBLE, d BOOL)`)
	mustExec(t, db, `CREATE TABLE t2 (id INT, k TEXT, v DOUBLE)`)
	mustExec(t, db, `CREATE INDEX idx_k ON t2 (k)`)
	t1, _ := db.Table("t1")
	t2, _ := db.Table("t2")
	for i := 0; i < n1; i++ {
		row := []sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewInt(int64(rng.Intn(10) - 5)),
			sqlval.NewString(fmt.Sprintf("s%d", rng.Intn(6))),
			sqlval.NewFloat(float64(rng.Intn(80)) / 4),
			sqlval.NewBool(rng.Intn(2) == 0),
		}
		if rng.Intn(8) == 0 {
			row[1] = sqlval.Null
		}
		if rng.Intn(8) == 0 {
			row[2] = sqlval.Null
		}
		if rng.Intn(8) == 0 {
			row[3] = sqlval.Null
		}
		if rng.Intn(8) == 0 {
			row[4] = sqlval.Null
		}
		if err := t1.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n2; i++ {
		// t2.id is unique (though not declared so): ORDER BY chains ending
		// in x.id, y.id are then total orders over join results, making
		// ordered comparisons against the interpreter exact.
		row := []sqlval.Value{
			sqlval.NewInt(int64(i)),
			sqlval.NewString(fmt.Sprintf("s%d", rng.Intn(6))),
			sqlval.NewFloat(float64(rng.Intn(40)) / 2),
		}
		if rng.Intn(8) == 0 {
			row[1] = sqlval.Null
		}
		if rng.Intn(8) == 0 {
			row[2] = sqlval.Null
		}
		if err := t2.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// genSelect produces a random SELECT over t1 (alias x) and optionally t2
// (alias y). Predicates are type-safe (errors would otherwise diverge
// between the lazy interpreter and the early-stopping pipeline), and
// ORDER BY always ends with the unique x.id when a LIMIT rides along, so
// the expected prefix is deterministic.
func genSelect(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if rng.Intn(4) == 0 {
		b.WriteString("DISTINCT ")
	}

	twoTables := rng.Intn(3) > 0
	joinStyle := rng.Intn(4) // 0 inner equi, 1 left equi, 2 comma+where, 3 non-equi inner
	grouped := rng.Intn(4) == 0

	items := []string{"x.id", "x.a", "x.b", "UPPER(x.b)", "x.a + 1",
		"COALESCE(x.b, 'zz')", "CASE WHEN x.a > 0 THEN 'pos' ELSE 'neg' END"}
	if twoTables {
		items = append(items, "y.k", "y.v", "y.id")
	}
	if grouped {
		aggs := []string{"COUNT(*)", "SUM(x.a)", "AVG(x.c)", "MIN(x.b)", "MAX(x.c)", "COUNT(DISTINCT x.b)"}
		b.WriteString("x.b AS g, ")
		k := rng.Intn(3) + 1
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(aggs[rng.Intn(len(aggs))])
		}
	} else {
		k := rng.Intn(3) + 1
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(items[rng.Intn(len(items))])
		}
		if rng.Intn(6) == 0 {
			b.WriteString(", *")
		}
	}

	b.WriteString(" FROM t1 x")
	var conj []string
	if twoTables {
		switch joinStyle {
		case 0:
			b.WriteString(" JOIN t2 y ON x.b = y.k")
			if rng.Intn(3) == 0 {
				b.WriteString(" AND y.v > 4")
			}
		case 1:
			b.WriteString(" LEFT JOIN t2 y ON x.id = y.id")
			switch rng.Intn(4) {
			case 0: // right-only ON conjunct: pushable into the right scan
				b.WriteString(" AND y.v > 4")
			case 1: // left-only ON conjunct: must stay residual (pads!)
				b.WriteString(" AND x.a > 0")
			}
		case 2:
			b.WriteString(", t2 y")
			conj = append(conj, "x.b = y.k")
		default:
			b.WriteString(" JOIN t2 y ON x.id >= y.id")
		}
	}

	preds := []string{
		"x.a > 0", "x.b LIKE 's%'", "x.b LIKE '%1'", "x.b LIKE 's_'", "x.b LIKE '%s%'",
		"x.b IS NOT NULL", "x.c BETWEEN 2 AND 15", "x.b IN ('s1', 's3')",
		"NOT (x.a = 2)", "x.d", "x.c IS NULL OR x.c > 3",
		fmt.Sprintf("x.id = %d", rng.Intn(40)),
		// Unqualified references: `id` is ambiguous in a joined layout but
		// resolves at prefix 0 as x.id (earliest-prefix rule); a, c, d
		// exist only in t1.
		"a > 0", fmt.Sprintf("id = %d", rng.Intn(40)), "c BETWEEN 2 AND 15", "d",
	}
	if twoTables && joinStyle != 1 {
		// WHERE predicates over the LEFT JOIN's right side stay out so
		// padded rows remain observable.
		preds = append(preds, "y.k = 's2'", "y.v >= 3")
	}
	for i := rng.Intn(3); i > 0; i-- {
		conj = append(conj, preds[rng.Intn(len(preds))])
	}
	if len(conj) > 0 {
		b.WriteString(" WHERE " + strings.Join(conj, " AND "))
	}

	limit := rng.Intn(3) == 0
	if grouped {
		b.WriteString(" GROUP BY x.b")
		if rng.Intn(2) == 0 {
			b.WriteString(" HAVING COUNT(*) >= 2")
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY g")
			if limit {
				b.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(5)+1))
			}
		}
		return b.String()
	}

	tiebreak := ""
	if twoTables {
		tiebreak = ", y.id"
	}
	switch rng.Intn(3) {
	case 0:
		b.WriteString(" ORDER BY x.a DESC, x.id" + tiebreak)
	case 1:
		b.WriteString(" ORDER BY x.b, x.id DESC" + tiebreak)
	default:
		if limit {
			b.WriteString(" ORDER BY x.id" + tiebreak)
		}
	}
	if limit {
		b.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(8)+1))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(" OFFSET %d", rng.Intn(4)))
		}
	}
	return b.String()
}

func renderRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%d:%s", v.Type(), v.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func sortedCopy(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

var parityOptions = []Options{
	{},
	{DisableHashJoin: true},
	{DisableIndexSeek: true},
	{DisableHashJoin: true, DisableIndexSeek: true},
	{DisableTopK: true},
	{Parallelism: 1},
	{Parallelism: 2},
	{Parallelism: 4},
	{Parallelism: 4, DisableHashJoin: true},
	{Parallelism: 2, DisableTopK: true},
}

// forceParallel drops the parallel-path thresholds so the small parity
// fixtures split into many morsels and actually exercise the scheduler,
// restoring the production values on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	minRows, morsel := parallelMinRows, parallelMorsel
	parallelMinRows, parallelMorsel = 1, 7
	t.Cleanup(func() { parallelMinRows, parallelMorsel = minRows, morsel })
}

// TestCompiledMatchesInterpreter is the parity property: for every
// generated query, the compiled pipeline agrees with the interpreter under
// every option combination — exact row sequence when the query orders by a
// unique key chain, multiset equality otherwise (SQL leaves that order
// unspecified, and the executor's build-side choice may legitimately
// differ from the interpreter's nesting).
func TestCompiledMatchesInterpreter(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		db := parityDB(t, rng, 30+rng.Intn(30), 20+rng.Intn(25))
		for q := 0; q < 40; q++ {
			text := genSelect(rng)
			st, err := sqlparser.Parse(text)
			if err != nil {
				t.Fatalf("generated unparseable SQL %q: %v", text, err)
			}
			sel := st.(*sqlparser.Select)

			want, wantErr := evalSelectInterp(db, sel)
			ordered := len(sel.OrderBy) > 0

			for _, opts := range parityOptions {
				got, gotErr := EvalSelectOpts(db, sel, opts)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("%q opts=%+v: interp err=%v compiled err=%v", text, opts, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if strings.Join(got.Columns, ",") != strings.Join(want.Columns, ",") {
					t.Fatalf("%q opts=%+v: headers %v != %v", text, opts, got.Columns, want.Columns)
				}
				wr, gr := renderRows(want), renderRows(got)
				if sel.Limit == nil && sel.Offset == nil {
					if strings.Join(sortedCopy(wr), "\n") != strings.Join(sortedCopy(gr), "\n") {
						t.Fatalf("%q opts=%+v:\ninterp:\n%s\ncompiled:\n%s",
							text, opts, strings.Join(wr, "\n"), strings.Join(gr, "\n"))
					}
					if ordered && strings.Join(wr, "\n") != strings.Join(gr, "\n") {
						t.Fatalf("%q opts=%+v: ordered sequences differ\ninterp:\n%s\ncompiled:\n%s",
							text, opts, strings.Join(wr, "\n"), strings.Join(gr, "\n"))
					}
					continue
				}
				// LIMIT/OFFSET present.
				if ordered {
					// The generator guarantees a deterministic total order
					// (unique-key tiebreak) whenever LIMIT rides on ORDER
					// BY, so the prefix must match exactly.
					if strings.Join(wr, "\n") != strings.Join(gr, "\n") {
						t.Fatalf("%q opts=%+v: limited sequences differ\ninterp:\n%s\ncompiled:\n%s",
							text, opts, strings.Join(wr, "\n"), strings.Join(gr, "\n"))
					}
					continue
				}
				// LIMIT without ORDER BY: any |limit| rows of the full
				// result are acceptable — check count and containment
				// against the unlimited query.
				noLim := *sel
				noLim.Limit, noLim.Offset = nil, nil
				full, err := evalSelectInterp(db, &noLim)
				if err != nil {
					t.Fatalf("%q: unlimited reference failed: %v", text, err)
				}
				if len(gr) != len(wr) {
					t.Fatalf("%q opts=%+v: LIMIT row count %d != %d", text, opts, len(gr), len(wr))
				}
				pool := map[string]int{}
				for _, r := range renderRows(full) {
					pool[r]++
				}
				for _, r := range gr {
					if pool[r] == 0 {
						t.Fatalf("%q opts=%+v: limited row %q not in full result", text, opts, r)
					}
					pool[r]--
				}
			}
		}
	}
}

// TestCompiledOrderStability pins tie handling: ORDER BY on a non-unique
// key must keep equal-key rows in arrival order (stable sort), and the
// bounded top-K heap must retain exactly the stable prefix.
func TestCompiledOrderStability(t *testing.T) {
	db := sqldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE s (grp TEXT, n INT)`)
	tab, _ := db.Table("s")
	for i := 0; i < 40; i++ {
		if err := tab.Insert([]sqlval.Value{
			sqlval.NewString(fmt.Sprintf("g%d", i%4)),
			sqlval.NewInt(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	full := mustExec(t, db, `SELECT grp, n FROM s ORDER BY grp`)
	for _, lim := range []int{1, 5, 13, 40} {
		q := fmt.Sprintf(`SELECT grp, n FROM s ORDER BY grp LIMIT %d`, lim)
		for _, opts := range []Options{{}, {DisableTopK: true}} {
			got := mustExecOpts(t, db, q, opts)
			if len(got.Rows) != lim {
				t.Fatalf("LIMIT %d returned %d rows", lim, len(got.Rows))
			}
			for i := range got.Rows {
				if got.Rows[i][1].Int() != full.Rows[i][1].Int() {
					t.Fatalf("LIMIT %d opts=%+v: row %d = n%d, want n%d (stable prefix)",
						lim, opts, i, got.Rows[i][1].Int(), full.Rows[i][1].Int())
				}
			}
		}
	}
}

// TestIndexSeekMatchesScan drives the pushdown on and off across value
// types, including coerced constants (int literal on a float-typed
// column) and values absent from the index.
func TestIndexSeekMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := parityDB(t, rng, 60, 40)
	queries := []string{
		`SELECT x.id, x.b FROM t1 x WHERE x.id = 7`,
		`SELECT x.id FROM t1 x WHERE x.id = 7.0`,
		`SELECT x.id FROM t1 x WHERE x.id = 999`,
		`SELECT y.k, y.v FROM t2 y WHERE y.k = 's3'`,
		`SELECT y.k FROM t2 y WHERE y.k = 'absent'`,
		`SELECT x.id, y.k FROM t1 x JOIN t2 y ON x.b = y.k WHERE y.k = 's1' AND x.id = 3`,
		`SELECT COUNT(*) FROM t1 x, t2 y WHERE x.b = y.k AND y.k = 's2'`,
	}
	for _, q := range queries {
		with := renderRows(mustExecOpts(t, db, q, Options{}))
		without := renderRows(mustExecOpts(t, db, q, Options{DisableIndexSeek: true}))
		if strings.Join(sortedCopy(with), "\n") != strings.Join(sortedCopy(without), "\n") {
			t.Fatalf("%q: seek=%v scan=%v", q, with, without)
		}
	}
	// Non-integral and incomparable constants must not be pushed into the
	// int-keyed index (they filter, or error, exactly like the scan path).
	if got := mustExec(t, db, `SELECT COUNT(*) FROM t1 x WHERE x.id = 7.5`); got.Rows[0][0].Int() != 0 {
		t.Fatalf("fractional probe matched %v rows", got.Rows[0][0])
	}
	if _, err := Exec(db, `SELECT x.id FROM t1 x WHERE x.b = 3`); err == nil {
		t.Fatal("text = int comparison should error, not seek")
	}
}
