// Package dataset generates the synthetic SmartGround databank and
// contextual ontologies the experiments run on. The real SmartGround data
// (EU landfill registries) is not public; the generator reproduces the
// Fig. 3 schema — landfills, waste items / elements contained in them,
// analyses signed by labs — with controllable cardinalities and a skewed
// element co-occurrence structure so `oreAssemblage`-style knowledge has
// realistic fan-out. All generation is deterministic given the seed.
package dataset

import (
	"fmt"
	"math/rand"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

// Config controls the synthetic databank size and shape.
type Config struct {
	Seed       int64
	Landfills  int
	Elements   int // distinct element/material kinds
	PerLCount  int // elements contained per landfill
	Labs       int
	Analyses   int // analysis reports
	Cities     int
	HazardFrac float64 // fraction of elements considered hazardous in the ontology
}

// DefaultConfig is a laptop-scale databank comparable to a national
// registry slice.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		Landfills:  200,
		Elements:   60,
		PerLCount:  12,
		Labs:       15,
		Analyses:   400,
		Cities:     40,
		HazardFrac: 0.3,
	}
}

// ElementName returns the i-th synthetic element name.
func ElementName(i int) string { return fmt.Sprintf("element_%03d", i) }

// LandfillName returns the i-th synthetic landfill name.
func LandfillName(i int) string { return fmt.Sprintf("landfill_%04d", i) }

// CityName returns the i-th synthetic city name.
func CityName(i int) string { return fmt.Sprintf("city_%03d", i) }

// LabName returns the i-th synthetic laboratory name.
func LabName(i int) string { return fmt.Sprintf("lab_%02d", i) }

// CountryName returns the country a city index belongs to.
func CountryName(city int) string { return fmt.Sprintf("country_%02d", city%8) }

// Schema is the Fig. 3 databank DDL.
const Schema = `
CREATE TABLE landfill (
	name TEXT PRIMARY KEY,
	city TEXT NOT NULL,
	area DOUBLE,
	active BOOLEAN
);
CREATE TABLE elem_contained (
	elem_name TEXT NOT NULL,
	landfill_name TEXT NOT NULL,
	amount DOUBLE
);
CREATE TABLE lab (
	name TEXT PRIMARY KEY,
	city TEXT
);
CREATE TABLE analysis (
	id INT PRIMARY KEY,
	landfill_name TEXT NOT NULL,
	lab_name TEXT NOT NULL,
	elem_name TEXT NOT NULL,
	purity DOUBLE,
	signed_by TEXT
);
CREATE INDEX idx_elem_landfill ON elem_contained (landfill_name);
CREATE INDEX idx_elem_name ON elem_contained (elem_name);
CREATE INDEX idx_analysis_landfill ON analysis (landfill_name);
`

// Populate creates and fills the databank tables in db.
func Populate(db *engine.DB, cfg Config) error {
	if _, err := db.ExecScript(Schema); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	lf, err := db.Catalog().Table("landfill")
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Landfills; i++ {
		row, _ := engine.Row(
			LandfillName(i),
			CityName(rng.Intn(cfg.Cities)),
			50+rng.Float64()*500,
			rng.Float64() < 0.8,
		)
		if err := lf.Insert(row); err != nil {
			return err
		}
	}

	ec, err := db.Catalog().Table("elem_contained")
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Landfills; i++ {
		// Zipf-ish skew: low-index elements are much more common, which
		// gives co-occurrence structure for assemblage knowledge.
		seen := map[int]bool{}
		for k := 0; k < cfg.PerLCount; k++ {
			e := skewedIndex(rng, cfg.Elements)
			if seen[e] {
				continue
			}
			seen[e] = true
			row, _ := engine.Row(ElementName(e), LandfillName(i), rng.Float64()*100)
			if err := ec.Insert(row); err != nil {
				return err
			}
		}
	}

	labT, err := db.Catalog().Table("lab")
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Labs; i++ {
		row, _ := engine.Row(LabName(i), CityName(rng.Intn(cfg.Cities)))
		if err := labT.Insert(row); err != nil {
			return err
		}
	}

	an, err := db.Catalog().Table("analysis")
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Analyses; i++ {
		row, _ := engine.Row(
			i,
			LandfillName(rng.Intn(cfg.Landfills)),
			LabName(rng.Intn(cfg.Labs)),
			ElementName(skewedIndex(rng, cfg.Elements)),
			0.5+rng.Float64()*0.5,
			fmt.Sprintf("analyst_%02d", rng.Intn(30)),
		)
		if err := an.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// skewedIndex draws an element index with a harmonic-like skew.
func skewedIndex(rng *rand.Rand, n int) int {
	// Squaring a uniform variate biases toward 0 without the cost of a
	// true Zipf sampler; the shape (few hot, long tail) is what matters.
	u := rng.Float64()
	return int(u * u * float64(n))
}

// OntologyConfig controls the synthetic contextual knowledge.
type OntologyConfig struct {
	Seed       int64
	Elements   int
	Cities     int
	HazardFrac float64
	// ExtraTriples pads the KB with unrelated facts so experiments can
	// scale KB size independently of useful knowledge.
	ExtraTriples int
	// AssemblageDegree is how many other elements each element co-occurs
	// with in the user's domain knowledge.
	AssemblageDegree int
}

// DefaultOntology matches DefaultConfig.
func DefaultOntology() OntologyConfig {
	return OntologyConfig{
		Seed:             2,
		Elements:         60,
		Cities:           40,
		HazardFrac:       0.3,
		ExtraTriples:     0,
		AssemblageDegree: 3,
	}
}

// IRI mints a term in the experiment ontology namespace.
func IRI(local string) rdf.Term {
	return rdf.NewIRI("http://smartground.eu/onto#" + local)
}

// PopulateOntology inserts the user's contextual knowledge into the
// platform: dangerLevel and isA/HazardousWaste facts for the hazardous
// slice of elements, inCountry facts for every city, oreAssemblage
// co-occurrence facts, and optional padding triples. It returns the number
// of statements inserted.
func PopulateOntology(p *kb.Platform, user string, cfg OntologyConfig) (int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 0
	seen := map[rdf.Triple]struct{}{}
	ins := func(t rdf.Triple) error {
		if _, dup := seen[t]; dup {
			return nil
		}
		seen[t] = struct{}{}
		_, err := p.Insert(user, t)
		if err == nil {
			n++
		}
		return err
	}

	hazardous := int(float64(cfg.Elements) * cfg.HazardFrac)
	for i := 0; i < cfg.Elements; i++ {
		name := ElementName(i)
		if i < hazardous {
			if err := ins(rdf.Triple{S: IRI(name), P: IRI("isA"), O: IRI("HazardousWaste")}); err != nil {
				return n, err
			}
			if err := ins(rdf.Triple{S: IRI(name), P: IRI("dangerLevel"), O: rdf.NewLiteral("high")}); err != nil {
				return n, err
			}
		} else if rng.Float64() < 0.5 {
			if err := ins(rdf.Triple{S: IRI(name), P: IRI("dangerLevel"), O: rdf.NewLiteral("low")}); err != nil {
				return n, err
			}
		}
		for d := 0; d < cfg.AssemblageDegree; d++ {
			other := skewedIndex(rng, cfg.Elements)
			if other == i {
				continue
			}
			if err := ins(rdf.Triple{S: IRI(name), P: IRI("oreAssemblage"), O: IRI(ElementName(other))}); err != nil {
				return n, err
			}
		}
	}
	for c := 0; c < cfg.Cities; c++ {
		if err := ins(rdf.Triple{S: IRI(CityName(c)), P: IRI("inCountry"), O: IRI(CountryName(c))}); err != nil {
			return n, err
		}
	}
	for i := 0; i < cfg.ExtraTriples; i++ {
		t := rdf.Triple{
			S: IRI(fmt.Sprintf("pad_s%d", i)),
			P: IRI(fmt.Sprintf("pad_p%d", i%97)),
			O: IRI(fmt.Sprintf("pad_o%d", rng.Intn(1000))),
		}
		if err := ins(t); err != nil {
			return n, err
		}
	}
	return n, nil
}

// RegisterDangerQuery registers the paper's `dangerQuery` stored SPARQL
// query (Example 4.5) in the shared namespace.
func RegisterDangerQuery(p *kb.Platform) error {
	return p.RegisterQuery("", "dangerQuery",
		`SELECT ?x WHERE { ?x <http://smartground.eu/onto#isA> <http://smartground.eu/onto#HazardousWaste> }`)
}

// CountRows is a test/experiment convenience.
func CountRows(db *engine.DB, table string) (int, error) {
	r, err := db.Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	return int(r.Rows[0][0].Int()), nil
}
