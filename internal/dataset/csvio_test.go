package dataset

import (
	"bytes"
	"strings"
	"testing"

	"crosse/internal/engine"
)

func TestCSVRoundTrip(t *testing.T) {
	db := engine.Open()
	if err := Populate(db, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(db, "landfill", &buf); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "name:text,city:text,area:float,active:bool" {
		t.Errorf("header = %q", head)
	}

	db2 := engine.Open()
	n, err := ImportCSV(db2, "landfill", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := CountRows(db, "landfill")
	if n != want {
		t.Fatalf("imported %d rows, want %d", n, want)
	}

	// Spot-check content and types survive.
	q := `SELECT name, area FROM landfill WHERE active = TRUE ORDER BY name LIMIT 5`
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if r1.Rows[i][j].String() != r2.Rows[i][j].String() {
				t.Errorf("cell (%d,%d): %v vs %v", i, j, r1.Rows[i][j], r2.Rows[i][j])
			}
		}
	}
}

func TestCSVNullsAndQuoting(t *testing.T) {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE t (a TEXT, b INT);
		INSERT INTO t VALUES ('with,comma', 1), ('with "quotes"', NULL), (NULL, 3)`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(db, "t", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := engine.Open()
	if _, err := ImportCSV(db2, "t", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	r, err := db2.Query(`SELECT COUNT(*) FROM t WHERE b IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("NULL int round trip: %v", r.Rows[0][0])
	}
	r, _ = db2.Query(`SELECT b FROM t WHERE a = 'with,comma'`)
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 {
		t.Errorf("comma-containing text: %v", r.Rows)
	}
	// Caveat: empty string exports as NULL (documented lossy corner).
	r, _ = db2.Query(`SELECT COUNT(*) FROM t WHERE a IS NULL`)
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("NULL text round trip: %v", r.Rows[0][0])
	}
}

func TestImportCSVErrors(t *testing.T) {
	cases := []struct{ name, csv string }{
		{"empty header name", ":int\n1\n"},
		{"unknown tag", "a:blob\nx\n"},
		{"arity", "a:int,b:text\n1\n"},
		{"bad int", "a:int\nnot-a-number\n"},
		{"bad bool", "a:bool\nmaybe\n"},
	}
	for _, c := range cases {
		db := engine.Open()
		if _, err := ImportCSV(db, "t", strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: import should fail", c.name)
		}
	}
	// Duplicate table.
	db := engine.Open()
	if _, err := ImportCSV(db, "t", strings.NewReader("a:int\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCSV(db, "t", strings.NewReader("a:int\n1\n")); err == nil {
		t.Error("import into existing table should fail")
	}
	if err := ExportCSV(db, "missing", &bytes.Buffer{}); err == nil {
		t.Error("export of missing table should fail")
	}
}
