package dataset

import (
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func TestPopulateShapes(t *testing.T) {
	db := engine.Open()
	cfg := DefaultConfig()
	if err := Populate(db, cfg); err != nil {
		t.Fatal(err)
	}
	n, err := CountRows(db, "landfill")
	if err != nil || n != cfg.Landfills {
		t.Errorf("landfills = %d (%v)", n, err)
	}
	n, _ = CountRows(db, "lab")
	if n != cfg.Labs {
		t.Errorf("labs = %d", n)
	}
	n, _ = CountRows(db, "analysis")
	if n != cfg.Analyses {
		t.Errorf("analyses = %d", n)
	}
	n, _ = CountRows(db, "elem_contained")
	// Duplicate draws are skipped, so count is bounded by L*PerL and must
	// be a solid fraction of it.
	if n > cfg.Landfills*cfg.PerLCount || n < cfg.Landfills*cfg.PerLCount/2 {
		t.Errorf("elem_contained = %d, expected near %d", n, cfg.Landfills*cfg.PerLCount)
	}
	// Referential integrity: every contained element's landfill exists.
	r, err := db.Query(`SELECT COUNT(*) FROM elem_contained e LEFT JOIN landfill l
		ON e.landfill_name = l.name WHERE l.name IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 0 {
		t.Error("dangling landfill references")
	}
}

func TestPopulateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	db1, db2 := engine.Open(), engine.Open()
	if err := Populate(db1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Populate(db2, cfg); err != nil {
		t.Fatal(err)
	}
	q := `SELECT elem_name, landfill_name, amount FROM elem_contained ORDER BY landfill_name, elem_name LIMIT 50`
	r1, _ := db1.Query(q)
	r2, _ := db2.Query(q)
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if r1.Rows[i][j].String() != r2.Rows[i][j].String() {
				t.Fatalf("row %d differs: %v vs %v", i, r1.Rows[i], r2.Rows[i])
			}
		}
	}
}

func TestSkewIsSkewed(t *testing.T) {
	db := engine.Open()
	if err := Populate(db, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(`SELECT elem_name, COUNT(*) AS n FROM elem_contained GROUP BY elem_name ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 {
		t.Fatalf("too few distinct elements: %d", len(r.Rows))
	}
	top := r.Rows[0][1].Int()
	bottom := r.Rows[len(r.Rows)-1][1].Int()
	if top < 3*bottom {
		t.Errorf("distribution not skewed: top=%d bottom=%d", top, bottom)
	}
}

func TestPopulateOntology(t *testing.T) {
	p := kb.NewPlatform()
	if err := p.RegisterUser("u"); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOntology()
	cfg.ExtraTriples = 100
	n, err := PopulateOntology(p, "u", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.ViewSize("u") {
		t.Errorf("inserted %d but view has %d", n, p.ViewSize("u"))
	}
	g, _ := p.View("u")
	hazardous := g.Count(rdf.Pattern{P: IRI("isA"), O: IRI("HazardousWaste")})
	want := int(float64(cfg.Elements) * cfg.HazardFrac)
	if hazardous != want {
		t.Errorf("hazardous = %d, want %d", hazardous, want)
	}
	if cities := g.Count(rdf.Pattern{P: IRI("inCountry")}); cities != cfg.Cities {
		t.Errorf("inCountry facts = %d", cities)
	}
	if pad := g.Count(rdf.Pattern{P: IRI("pad_p0")}); pad == 0 {
		t.Error("padding triples missing")
	}
}

func TestRegisterDangerQuery(t *testing.T) {
	p := kb.NewPlatform()
	if err := RegisterDangerQuery(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.LookupQuery("anyone", "dangerQuery"); !ok {
		t.Error("dangerQuery not registered in shared namespace")
	}
}

func TestNameHelpers(t *testing.T) {
	if ElementName(3) != "element_003" || LandfillName(12) != "landfill_0012" {
		t.Error("name formats changed — experiments depend on them")
	}
	if CountryName(0) != CountryName(8) {
		t.Error("cities 0 and 8 share a country by construction")
	}
}
