package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crosse/internal/engine"
	"crosse/internal/sqldb"
	"crosse/internal/sqlval"
)

// This file gives the databank a bulk interchange format: real SmartGround
// deployments ingest registry extracts as delimited files; we support CSV
// with a header row. Types on import are declared in the header as
// "name:type" (type ∈ int, float, text, bool; default text), matching how
// the export writes them.

// ExportCSV writes the table as CSV: a typed header row, then one row per
// tuple. NULLs export as empty cells.
func ExportCSV(db *engine.DB, table string, w io.Writer) error {
	rel, err := db.Catalog().Resolve(table)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	schema := rel.Schema()
	header := make([]string, len(schema))
	for i, c := range schema {
		header[i] = c.Name + ":" + typeTag(c.Type)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	var writeErr error
	rel.Scan(func(row []sqlval.Value) bool {
		cells := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				cells[i] = ""
			} else {
				cells[i] = v.String()
			}
		}
		writeErr = cw.Write(cells)
		return writeErr == nil
	})
	if writeErr != nil {
		return writeErr
	}
	cw.Flush()
	return cw.Error()
}

func typeTag(t sqlval.Type) string {
	switch t {
	case sqlval.TypeInt:
		return "int"
	case sqlval.TypeFloat:
		return "float"
	case sqlval.TypeBool:
		return "bool"
	default:
		return "text"
	}
}

func tagType(tag string) (sqlval.Type, error) {
	switch strings.ToLower(tag) {
	case "int":
		return sqlval.TypeInt, nil
	case "float":
		return sqlval.TypeFloat, nil
	case "bool":
		return sqlval.TypeBool, nil
	case "text", "":
		return sqlval.TypeString, nil
	default:
		return sqlval.TypeString, fmt.Errorf("dataset: unknown CSV type tag %q", tag)
	}
}

// ImportCSV creates the table from the CSV's typed header and loads every
// row, returning the row count. Empty cells load as NULL.
func ImportCSV(db *engine.DB, table string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema := make(sqldb.Schema, len(header))
	for i, h := range header {
		name, tag := h, ""
		if j := strings.IndexByte(h, ':'); j >= 0 {
			name, tag = h[:j], h[j+1:]
		}
		if strings.TrimSpace(name) == "" {
			return 0, fmt.Errorf("dataset: empty column name in CSV header")
		}
		typ, err := tagType(tag)
		if err != nil {
			return 0, err
		}
		schema[i] = sqldb.Column{Name: strings.TrimSpace(name), Type: typ}
	}
	tab, err := db.Catalog().CreateTable(table, schema, false)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("dataset: CSV row %d: %w", n+2, err)
		}
		if len(record) != len(schema) {
			return n, fmt.Errorf("dataset: CSV row %d has %d cells, want %d", n+2, len(record), len(schema))
		}
		row := make([]sqlval.Value, len(schema))
		for i, cell := range record {
			v, err := parseCell(cell, schema[i].Type)
			if err != nil {
				return n, fmt.Errorf("dataset: CSV row %d column %s: %w", n+2, schema[i].Name, err)
			}
			row[i] = v
		}
		if err := tab.Insert(row); err != nil {
			return n, err
		}
		n++
	}
}

func parseCell(cell string, t sqlval.Type) (sqlval.Value, error) {
	if cell == "" {
		return sqlval.Null, nil
	}
	switch t {
	case sqlval.TypeInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.NewInt(i), nil
	case sqlval.TypeFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.NewFloat(f), nil
	case sqlval.TypeBool:
		switch strings.ToLower(cell) {
		case "true", "t", "1":
			return sqlval.NewBool(true), nil
		case "false", "f", "0":
			return sqlval.NewBool(false), nil
		}
		return sqlval.Null, fmt.Errorf("bad boolean %q", cell)
	default:
		return sqlval.NewString(cell), nil
	}
}
