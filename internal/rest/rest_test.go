package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano');
		INSERT INTO elem_contained VALUES ('Mercury', 'a'), ('Zinc', 'a'), ('Gold', 'b');
	`); err != nil {
		t.Fatal(err)
	}
	p := kb.NewPlatform()
	e := core.New(db, p, nil)
	p.SetConceptChecker(core.NewConceptChecker(db, e.Mapping))
	ts := httptest.NewServer(NewServer(e).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(raw)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad JSON response: %v", err)
	}
	return resp.StatusCode, out
}

func TestUserLifecycle(t *testing.T) {
	ts := newTestServer(t)
	code, _ := doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "alice"})
	if code != http.StatusCreated {
		t.Fatalf("create user: %d", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "alice"})
	if code != http.StatusConflict {
		t.Errorf("duplicate user: %d", code)
	}
	code, out := doJSON(t, "GET", ts.URL+"/api/users", nil)
	if code != http.StatusOK {
		t.Fatalf("list users: %d", code)
	}
	users := out["users"].([]any)
	if len(users) != 1 || users[0] != "alice" {
		t.Errorf("users = %v", users)
	}
}

func TestAnnotationAndQueryFlow(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "alice"})

	// Independent annotation with a reference.
	code, out := doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "alice", "subject": "Mercury", "property": "dangerLevel",
		"object": "high", "object_literal": true,
		"ref": map[string]string{"title": "WHO report"},
	})
	if code != http.StatusCreated {
		t.Fatalf("create statement: %d %v", code, out)
	}

	// SESQL query through the API, with stats.
	code, out = doJSON(t, "POST", ts.URL+"/api/query", map[string]any{
		"user": "alice",
		"sesql": `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`,
		"stats": true,
	})
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	cols := out["columns"].([]any)
	if len(cols) != 2 || cols[1] != "dangerLevel" {
		t.Errorf("columns = %v", cols)
	}
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	foundHigh := false
	for _, r := range rows {
		cells := r.([]any)
		if cells[0] == "Mercury" && cells[1] == "high" {
			foundHigh = true
		}
	}
	if !foundHigh {
		t.Errorf("Mercury|high missing: %v", rows)
	}
	if out["stats"] == nil {
		t.Error("stats requested but missing")
	}
}

func TestIntegratedAnnotationOverREST(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})
	// Mercury exists in the databank → integrated OK.
	code, _ := doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "u", "subject": "Mercury", "property": "note",
		"object": "x", "object_literal": true, "integrated": true,
	})
	if code != http.StatusCreated {
		t.Errorf("integrated annotation of db concept: %d", code)
	}
	// Unknown concept → rejected.
	code, _ = doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "u", "subject": "Unobtainium", "property": "note",
		"object": "x", "object_literal": true, "integrated": true,
	})
	if code != http.StatusBadRequest {
		t.Errorf("integrated annotation of unknown concept: %d", code)
	}
}

func TestCrowdsourcedImportOverREST(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "alice"})
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "bob"})
	_, out := doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "alice", "subject": "Mercury", "property": "isA", "object": "HazardousWaste",
	})
	id := out["id"].(string)

	// Bob explores alice's public statements…
	_, out = doJSON(t, "GET", ts.URL+"/api/statements?owner=alice", nil)
	sts := out["statements"].([]any)
	if len(sts) != 1 {
		t.Fatalf("explore: %v", out)
	}
	// …and imports one.
	code, _ := doJSON(t, "POST", ts.URL+"/api/statements/"+id+"/import", map[string]string{"user": "bob"})
	if code != http.StatusOK {
		t.Fatalf("import: %d", code)
	}
	_, out = doJSON(t, "GET", ts.URL+"/api/statements", nil)
	st := out["statements"].([]any)[0].(map[string]any)
	believers := st["believers"].([]any)
	if len(believers) != 2 {
		t.Errorf("believers = %v", believers)
	}
	// Retract bob's belief.
	code, _ = doJSON(t, "DELETE", ts.URL+"/api/statements/"+id+"?user=bob", nil)
	if code != http.StatusOK {
		t.Errorf("retract: %d", code)
	}
}

func TestSPARQLEndpoint(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})
	doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "u", "subject": "Mercury", "property": "isA", "object": "HazardousWaste",
	})
	code, out := doJSON(t, "POST", ts.URL+"/api/sparql", map[string]string{
		"user":  "u",
		"query": `SELECT ?x WHERE { ?x <` + core.DefaultIRIPrefix + `isA> <` + core.DefaultIRIPrefix + `HazardousWaste> }`,
	})
	if code != http.StatusOK {
		t.Fatalf("sparql: %d %v", code, out)
	}
	bindings := out["bindings"].([]any)
	if len(bindings) != 1 {
		t.Fatalf("bindings = %v", bindings)
	}
	x := bindings[0].(map[string]any)["x"].(string)
	if !strings.HasSuffix(x, "Mercury") {
		t.Errorf("x = %q", x)
	}
}

func TestStoredQueryEndpoints(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})
	code, _ := doJSON(t, "POST", ts.URL+"/api/queries", map[string]string{
		"name": "dangerQuery",
		"text": `SELECT ?x WHERE { ?x <` + core.DefaultIRIPrefix + `isA> <` + core.DefaultIRIPrefix + `HazardousWaste> }`,
	})
	if code != http.StatusCreated {
		t.Fatalf("register query: %d", code)
	}
	_, out := doJSON(t, "GET", ts.URL+"/api/queries?user=u", nil)
	qs := out["queries"].([]any)
	if len(qs) != 1 {
		t.Errorf("queries = %v", qs)
	}
	// Bad SPARQL rejected.
	code, _ = doJSON(t, "POST", ts.URL+"/api/queries", map[string]string{"name": "bad", "text": "SELECT"})
	if code != http.StatusBadRequest {
		t.Errorf("bad query registration: %d", code)
	}
}

func TestTablesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, out := doJSON(t, "GET", ts.URL+"/api/tables", nil)
	if code != http.StatusOK {
		t.Fatalf("tables: %d", code)
	}
	tables := out["tables"].([]any)
	if len(tables) != 2 {
		t.Errorf("tables = %v", tables)
	}
	first := tables[0].(map[string]any)
	if first["name"] != "elem_contained" {
		t.Errorf("first table = %v", first)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	// Unknown user query: typed kb.ErrUnknownUser → 404.
	code, _ := doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"user": "ghost", "sesql": "SELECT 1"})
	if code != http.StatusNotFound {
		t.Errorf("ghost query: %d", code)
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/api/users", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	// Unknown fields rejected (catches client typos).
	code, _ = doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"nmae": "x"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: %d", code)
	}
	// Missing statement fields.
	code, _ = doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{"user": "u"})
	if code != http.StatusBadRequest {
		t.Errorf("incomplete statement: %d", code)
	}
	// Import into missing statement: typed kb.ErrNoStatement → 404.
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})
	code, _ = doJSON(t, "POST", ts.URL+"/api/statements/stmt-99/import", map[string]string{"user": "u"})
	if code != http.StatusNotFound {
		t.Errorf("import missing: %d", code)
	}
	// Retract without user.
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/statements/stmt-1", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("retract without user: %d", resp2.StatusCode)
	}
}

func TestContextualAnswersDifferPerUser(t *testing.T) {
	ts := newTestServer(t)
	for _, u := range []string{"researcher", "planner"} {
		doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": u})
	}
	// The researcher tags Mercury as hazardous; the planner tags Zinc.
	doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "researcher", "subject": "Mercury", "property": "isA", "object": "HazardousWaste"})
	doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "planner", "subject": "Zinc", "property": "isA", "object": "HazardousWaste"})

	q := `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`
	results := map[string]string{}
	for _, u := range []string{"researcher", "planner"} {
		_, out := doJSON(t, "POST", ts.URL+"/api/query", map[string]any{"user": u, "sesql": q})
		raw, _ := json.Marshal(out["rows"])
		results[u] = string(raw)
	}
	if results["researcher"] == results["planner"] {
		t.Error("the same query must answer differently in different contexts")
	}
	for u, r := range results {
		if !strings.Contains(r, "true") {
			t.Errorf("%s sees no hazardous element: %s", u, r)
		}
	}
}

func TestStatementListingFilters(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "a"})
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "b"})
	for i, u := range []string{"a", "b", "a"} {
		doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
			"user": u, "subject": fmt.Sprintf("S%d", i), "property": "p", "object": "O"})
	}
	_, out := doJSON(t, "GET", ts.URL+"/api/statements?owner=a", nil)
	if n := len(out["statements"].([]any)); n != 2 {
		t.Errorf("owner filter: %d", n)
	}
	_, out = doJSON(t, "GET", ts.URL+"/api/statements?property=p", nil)
	if n := len(out["statements"].([]any)); n != 3 {
		t.Errorf("property filter: %d", n)
	}
}
