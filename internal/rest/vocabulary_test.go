package rest

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestVocabularyEndpoints(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})

	// Declare a resource (short name minted under the default prefix).
	code, out := doJSON(t, "POST", ts.URL+"/api/vocabulary", map[string]string{
		"user": "u", "name": "SecondaryRawMaterial", "kind": "resource"})
	if code != http.StatusCreated {
		t.Fatalf("declare resource: %d %v", code, out)
	}
	if !strings.Contains(out["name"].(string), "SecondaryRawMaterial") {
		t.Errorf("minted name = %v", out["name"])
	}
	// Declare a property and use another in a statement.
	code, _ = doJSON(t, "POST", ts.URL+"/api/vocabulary", map[string]string{
		"user": "u", "name": "recoverableFrom", "kind": "property"})
	if code != http.StatusCreated {
		t.Fatalf("declare property: %d", code)
	}
	doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "u", "subject": "Mercury", "property": "dangerLevel",
		"object": "high", "object_literal": true})

	code, out = doJSON(t, "GET", ts.URL+"/api/vocabulary", nil)
	if code != http.StatusOK {
		t.Fatalf("vocabulary: %d", code)
	}
	props := out["suggested_properties"].([]any)
	joined := ""
	for _, p := range props {
		joined += p.(string) + " "
	}
	if !strings.Contains(joined, "recoverableFrom") || !strings.Contains(joined, "dangerLevel") {
		t.Errorf("suggested properties = %v", props)
	}
	res := out["resources"].([]any)
	if len(res) != 1 || res[0].(map[string]any)["owner"] != "u" {
		t.Errorf("resources = %v", res)
	}

	// Bad kind rejected.
	code, _ = doJSON(t, "POST", ts.URL+"/api/vocabulary", map[string]string{
		"user": "u", "name": "x", "kind": "frob"})
	if code != http.StatusBadRequest {
		t.Errorf("bad kind: %d", code)
	}
	// Unknown user: typed kb.ErrUnknownUser → 404.
	code, _ = doJSON(t, "POST", ts.URL+"/api/vocabulary", map[string]string{
		"user": "ghost", "name": "x", "kind": "resource"})
	if code != http.StatusNotFound {
		t.Errorf("ghost declare: %d", code)
	}
}

func TestKBDOTEndpoint(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/users", map[string]string{"name": "u"})
	doJSON(t, "POST", ts.URL+"/api/statements", map[string]any{
		"user": "u", "subject": "Mercury", "property": "isA", "object": "HazardousWaste"})

	resp, err := http.Get(ts.URL + "/api/kb.dot?user=u")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dot: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "Mercury") {
		t.Errorf("dot body:\n%s", out)
	}
	// Unknown user → 404 JSON error.
	resp2, err := http.Get(ts.URL + "/api/kb.dot?user=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("ghost dot: %d", resp2.StatusCode)
	}
	// Missing user → 400.
	resp3, err := http.Get(ts.URL + "/api/kb.dot")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user dot: %d", resp3.StatusCode)
	}
}
