// Package rest exposes the CroSSE platform over HTTP/JSON. The paper's
// deployment integrates the main platform and the semantic platform
// "by means of RESTful APIs" (Sec. I-A); this package is that surface:
// user management, semantic tagging (the three annotation scenarios),
// knowledge exploration and import, stored queries, and SESQL execution.
package rest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"crosse/internal/core"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/preview"
	"crosse/internal/rdf"
	"crosse/internal/recommend"
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
)

// Server serves the CroSSE REST API.
type Server struct {
	enricher *core.Enricher
	// mutator is the platform mutation path. Reads go straight to the
	// enricher's platform; every handler that changes platform state goes
	// through here so a journal-backed server write-ahead-logs each
	// mutation before acknowledging it.
	mutator core.Mutator
	// journal, when set, backs /api/admin/wal and /api/admin/compact.
	journal *core.Journal
	// snapshotPath, when set, is where POST /api/admin/snapshot persists
	// the platform image (see SetSnapshotPath).
	snapshotPath string
	// health, when set, backs GET /api/admin/sources and the per-source
	// circuit summary in GET /healthz.
	health *fdw.Health
}

// NewServer wraps an Enricher (which carries the databank, the semantic
// platform and the resource mapping). Mutations apply directly to the
// platform until SetJournal routes them through a write-ahead log.
func NewServer(e *core.Enricher) *Server {
	return &Server{enricher: e, mutator: e.Platform}
}

// SetJournal routes every platform mutation through the journal's logged
// path and enables the WAL admin endpoints.
func (s *Server) SetJournal(j *core.Journal) {
	s.journal = j
	s.mutator = j
}

// SetSnapshotPath configures the file POST /api/admin/snapshot saves the
// platform image to. An empty path (the default) disables the save
// endpoint; GET (download) always works.
func (s *Server) SetSnapshotPath(path string) { s.snapshotPath = path }

// SetHealth exposes the remote-source health registry via
// GET /api/admin/sources and folds its circuit summary into GET /healthz.
func (s *Server) SetHealth(h *fdw.Health) { s.health = h }

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/users", s.listUsers)
	mux.HandleFunc("POST /api/users", s.createUser)
	mux.HandleFunc("GET /api/statements", s.listStatements)
	mux.HandleFunc("POST /api/statements", s.createStatement)
	mux.HandleFunc("POST /api/statements/{id}/import", s.importStatement)
	mux.HandleFunc("DELETE /api/statements/{id}", s.retractStatement)
	mux.HandleFunc("GET /api/queries", s.listQueries)
	mux.HandleFunc("POST /api/queries", s.registerQuery)
	mux.HandleFunc("POST /api/query", s.sesqlQuery)
	mux.HandleFunc("POST /api/sparql", s.sparqlQuery)
	mux.HandleFunc("GET /api/tables", s.listTables)
	mux.HandleFunc("GET /api/peers", s.listPeers)
	mux.HandleFunc("GET /api/recommendations", s.listRecommendations)
	mux.HandleFunc("GET /api/snippet", s.snippet)
	mux.HandleFunc("GET /api/vocabulary", s.vocabulary)
	mux.HandleFunc("POST /api/vocabulary", s.declare)
	mux.HandleFunc("GET /api/kb.dot", s.kbDOT)
	mux.HandleFunc("GET /api/admin/snapshot", s.downloadSnapshot)
	mux.HandleFunc("POST /api/admin/snapshot", s.saveSnapshot)
	mux.HandleFunc("GET /api/admin/wal", s.walStatus)
	mux.HandleFunc("POST /api/admin/compact", s.compact)
	mux.HandleFunc("GET /api/admin/sources", s.listSources)
	mux.HandleFunc("GET /healthz", s.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// --- users ---

func (s *Server) listUsers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"users": s.enricher.Platform.Users()})
}

func (s *Server) createUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mutator.RegisterUser(req.Name); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// --- statements (semantic tagging) ---

// statementJSON is the wire form of a reified statement.
type statementJSON struct {
	ID        string         `json:"id"`
	Subject   string         `json:"subject"`
	Property  string         `json:"property"`
	Object    string         `json:"object"`
	ObjectLit bool           `json:"object_literal,omitempty"`
	Owner     string         `json:"owner"`
	Believers []string       `json:"believers"`
	Ref       *referenceJSON `json:"ref,omitempty"`
}

type referenceJSON struct {
	Title  string `json:"title,omitempty"`
	Author string `json:"author,omitempty"`
	Link   string `json:"link,omitempty"`
	File   string `json:"file,omitempty"`
}

func toStatementJSON(st *kb.Statement) statementJSON {
	out := statementJSON{
		ID:        st.ID,
		Subject:   st.Triple.S.Value,
		Property:  st.Triple.P.Value,
		Object:    st.Triple.O.Value,
		ObjectLit: st.Triple.O.IsLiteral(),
		Owner:     st.Owner,
		Believers: st.Believers(),
	}
	if st.Ref != nil {
		out.Ref = &referenceJSON{Title: st.Ref.Title, Author: st.Ref.Author, Link: st.Ref.Link, File: st.Ref.File}
	}
	return out
}

func (s *Server) listStatements(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	property := r.URL.Query().Get("property")
	sts := s.enricher.Platform.Explore(func(st *kb.Statement) bool {
		if owner != "" && st.Owner != owner {
			return false
		}
		if property != "" && !strings.HasSuffix(st.Triple.P.Value, property) {
			return false
		}
		return true
	})
	out := make([]statementJSON, len(sts))
	for i, st := range sts {
		out[i] = toStatementJSON(st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"statements": out})
}

func (s *Server) createStatement(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User       string         `json:"user"`
		Subject    string         `json:"subject"`
		Property   string         `json:"property"`
		Object     string         `json:"object"`
		ObjectLit  bool           `json:"object_literal"`
		Integrated bool           `json:"integrated"`
		Ref        *referenceJSON `json:"ref"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Subject == "" || req.Property == "" || req.Object == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: subject, property and object are required"))
		return
	}
	m := s.enricher.Mapping
	var obj rdf.Term
	if req.ObjectLit {
		obj = rdf.NewLiteral(req.Object)
	} else {
		obj = m.PropertyIRI(req.Object) // mint under the default prefix
	}
	t := rdf.Triple{S: m.PropertyIRI(req.Subject), P: m.PropertyIRI(req.Property), O: obj}
	var opts []kb.InsertOption
	if req.Integrated {
		opts = append(opts, kb.Integrated())
	}
	if req.Ref != nil {
		opts = append(opts, kb.WithReference(kb.Reference{
			Title: req.Ref.Title, Author: req.Ref.Author, Link: req.Ref.Link, File: req.Ref.File,
		}))
	}
	id, err := s.mutator.Insert(req.User, t, opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) importStatement(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User string `json:"user"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mutator.Import(req.User, r.PathValue("id")); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "imported"})
}

func (s *Server) retractStatement(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: user query parameter required"))
		return
	}
	if err := s.mutator.Retract(user, r.PathValue("id")); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "retracted"})
}

// --- stored queries ---

func (s *Server) listQueries(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	qs := s.enricher.Platform.Queries(user)
	type qj struct {
		Name  string `json:"name"`
		Owner string `json:"owner,omitempty"`
		Text  string `json:"text"`
	}
	out := make([]qj, len(qs))
	for i, q := range qs {
		out[i] = qj{Name: q.Name, Owner: q.Owner, Text: q.Text}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": out})
}

func (s *Server) registerQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Owner string `json:"owner"`
		Name  string `json:"name"`
		Text  string `json:"text"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mutator.RegisterQuery(req.Owner, req.Name, req.Text); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// --- query execution ---

type resultJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Stats   *statsJSON `json:"stats,omitempty"`
	// Scores holds per-row contextual relevance when ranking was requested.
	Scores []float64 `json:"scores,omitempty"`
	// DegradedSources names remote sources that were down and skipped
	// under partial-results degradation: the result is complete except for
	// their rows. Empty (omitted) on complete results.
	DegradedSources []string `json:"degraded_sources,omitempty"`
}

type statsJSON struct {
	ParseMicros    int64    `json:"parse_us"`
	BaseSQLMicros  int64    `json:"base_sql_us"`
	SPARQLMicros   int64    `json:"sparql_us"`
	JoinMicros     int64    `json:"join_us"`
	FinalSQLMicros int64    `json:"final_sql_us"`
	BaseRows       int      `json:"base_rows"`
	FinalRows      int      `json:"final_rows"`
	SPARQLQueries  []string `json:"sparql_queries,omitempty"`
	FinalSQL       string   `json:"final_sql,omitempty"`
	SkippedSources []string `json:"skipped_sources,omitempty"`
}

func toResultJSON(res *sqlexec.Result, stats *core.Stats) resultJSON {
	out := resultJSON{Columns: res.Columns, Rows: make([][]string, len(res.Rows))}
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out.Rows[i] = cells
	}
	out.DegradedSources = res.SkippedSources
	if stats != nil {
		out.Stats = &statsJSON{
			ParseMicros:    stats.Parse.Microseconds(),
			BaseSQLMicros:  stats.BaseSQL.Microseconds(),
			SPARQLMicros:   stats.SPARQL.Microseconds(),
			JoinMicros:     stats.Join.Microseconds(),
			FinalSQLMicros: stats.FinalSQL.Microseconds(),
			BaseRows:       stats.BaseRows,
			FinalRows:      stats.FinalRows,
			SPARQLQueries:  stats.SPARQLQueries,
			FinalSQL:       stats.FinalSQLText,
			SkippedSources: stats.SkippedSources,
		}
	}
	return out
}

func (s *Server) sesqlQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User  string `json:"user"`
		SESQL string `json:"sesql"`
		Stats bool   `json:"stats"`
		// Rank applies context-aware ranking (Sec. I-B.c): rows the user's
		// KB knows most about come first, with relevance scores attached.
		Rank bool `json:"rank"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, stats, err := s.enricher.QueryStatsContext(r.Context(), req.User, req.SESQL)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fdw.ErrSourceDown) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	if !req.Stats {
		stats = nil
	}
	out := toResultJSON(res, stats)
	if req.Rank {
		view, err := s.enricher.Platform.View(req.User)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		ranked := preview.Rank(res, view, s.enricher.Mapping)
		out = toResultJSON(ranked.Result, stats)
		out.Scores = ranked.Scores
	}
	writeJSON(w, http.StatusOK, out)
}

// --- peer networking and previews (the Sec. I-B vision services) ---

func (s *Server) listPeers(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: user query parameter required"))
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	var peers []recommend.PeerScore
	switch r.URL.Query().Get("by") {
	case "interests":
		peers = recommend.PeersByInterests(s.enricher.Platform, user, k)
	case "activity":
		peers = recommend.PeersByActivity(s.enricher.Activity, user, k)
	default:
		peers = recommend.PeersByBeliefs(s.enricher.Platform, user, k)
	}
	type pj struct {
		User  string  `json:"user"`
		Score float64 `json:"score"`
	}
	out := make([]pj, len(peers))
	for i, p := range peers {
		out[i] = pj{User: p.User, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"peers": out})
}

func (s *Server) listRecommendations(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: user query parameter required"))
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	recs := recommend.RecommendStatements(s.enricher.Platform, user, k)
	type rj struct {
		Statement statementJSON `json:"statement"`
		Score     float64       `json:"score"`
		Via       []string      `json:"via"`
	}
	out := make([]rj, len(recs))
	for i, rec := range recs {
		out[i] = rj{Statement: toStatementJSON(rec.Statement), Score: rec.Score, Via: rec.Via}
	}
	writeJSON(w, http.StatusOK, map[string]any{"recommendations": out})
}

func (s *Server) snippet(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	concept := r.URL.Query().Get("concept")
	if user == "" || concept == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: user and concept query parameters required"))
		return
	}
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	view, err := s.enricher.Platform.View(user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	facts := preview.Snippet(view, s.enricher.Mapping, concept, max)
	type fj struct {
		Property string `json:"property"`
		Value    string `json:"value"`
		Outgoing bool   `json:"outgoing"`
	}
	out := make([]fj, len(facts))
	for i, f := range facts {
		out[i] = fj{Property: f.Property, Value: f.Value, Outgoing: f.Outgoing}
	}
	writeJSON(w, http.StatusOK, map[string]any{"concept": concept, "facts": out})
}

func (s *Server) sparqlQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User  string `json:"user"`
		Query string `json:"query"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.enricher.Platform.View(req.User)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	res, err := sparql.Eval(view, req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	bindings := make([]map[string]string, len(res.Bindings))
	for i, b := range res.Bindings {
		row := map[string]string{}
		for v, t := range b {
			row[v] = t.Value
		}
		bindings[i] = row
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vars":     res.Vars,
		"bindings": bindings,
		"bool":     res.Bool,
	})
}

// vocabulary lists suggested annotation properties and declared terms —
// the data behind the paper's "suggested properties" annotation UI.
func (s *Server) vocabulary(w http.ResponseWriter, r *http.Request) {
	p := s.enricher.Platform
	type dj struct {
		Name  string `json:"name"`
		Owner string `json:"owner"`
	}
	toDJ := func(ds []kb.Declaration) []dj {
		out := make([]dj, len(ds))
		for i, d := range ds {
			out[i] = dj{Name: d.Name, Owner: d.Owner}
		}
		return out
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"suggested_properties": p.SuggestedProperties(),
		"resources":            toDJ(p.Declarations(kb.DeclResource)),
		"properties":           toDJ(p.Declarations(kb.DeclProperty)),
	})
}

// declare registers a new user-declared resource or property (Fig. 4
// userResource / userProperty edges).
func (s *Server) declare(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User string `json:"user"`
		Name string `json:"name"`
		Kind string `json:"kind"` // "resource" | "property"
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := req.Name
	if !strings.Contains(name, "://") {
		name = s.enricher.Mapping.PropertyIRI(name).Value
	}
	var err error
	switch req.Kind {
	case "property":
		err = s.mutator.DeclareProperty(req.User, name)
	case "resource", "":
		err = s.mutator.DeclareResource(req.User, name)
	default:
		err = fmt.Errorf("rest: kind must be resource or property")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

// kbDOT streams the user's knowledge base as Graphviz DOT (the paper's
// graph-based visualization).
func (s *Server) kbDOT(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rest: user query parameter required"))
		return
	}
	view, err := s.enricher.Platform.View(user)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	if err := kb.WriteDOT(w, view, user+"-kb"); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// --- durability (platform image snapshots) ---

// downloadSnapshot streams the whole platform as a binary image (databank
// SQL dump + semantic-platform snapshot): the backup/off-site-copy path.
// core.ReadImage / crosse-server -snapshot restore it. The image is built
// in memory first so a dump/snapshot failure yields a 500, not a 200 with
// an empty or truncated body; a network failure mid-stream is detected by
// the client via the image's trailing checksum.
func (s *Server) downloadSnapshot(w http.ResponseWriter, r *http.Request) {
	var img bytes.Buffer
	if err := core.WriteImage(&img, s.enricher.DB, s.enricher.Platform); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="crosse-platform.img"`)
	w.Header().Set("Content-Length", strconv.Itoa(img.Len()))
	_, _ = w.Write(img.Bytes())
}

// saveSnapshot persists the platform image to the server's configured
// snapshot path (the same file -snapshot loads on boot), so an operator can
// force a durable point-in-time save without restarting.
func (s *Server) saveSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeErr(w, http.StatusConflict, fmt.Errorf("rest: no snapshot path configured (start the server with -snapshot)"))
		return
	}
	size, err := core.SaveImageFile(s.snapshotPath, s.enricher.DB, s.enricher.Platform)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": s.snapshotPath, "bytes": size})
}

// walStatus reports the write-ahead log's position: the image anchor, the
// last appended and last fsync-covered LSNs, size and sync counters.
func (s *Server) walStatus(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("rest: no write-ahead log configured (start the server with -wal)"))
		return
	}
	writeJSON(w, http.StatusOK, s.journal.Status())
}

// compact re-anchors the journal: a fresh platform image at the current
// LSN plus an empty log, reclaiming the replay work of every record the
// image now contains.
func (s *Server) compact(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("rest: no write-ahead log configured (start the server with -wal)"))
		return
	}
	st, err := s.journal.Compact()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// --- health ---

// healthz is the liveness/readiness probe. 200 means the node accepts
// queries and writes; 503 means the journal is wedged (reads still work,
// writes cannot be acknowledged). Degraded remote sources do not fail the
// probe — the node itself is healthy and can degrade gracefully — but the
// per-source circuit summary is included so callers can distinguish
// "healthy" from "healthy but partial".
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"status": "ok"}
	status := http.StatusOK
	if s.journal != nil {
		wal := map[string]any{"wedged": false}
		if err := s.journal.Wedged(); err != nil {
			wal["wedged"] = true
			wal["error"] = err.Error()
			out["status"] = "degraded"
			status = http.StatusServiceUnavailable
		} else {
			wal["lsn"] = s.journal.Status().LSN
		}
		out["wal"] = wal
	}
	if s.health != nil {
		snap := s.health.Snapshot()
		srcs := make([]map[string]any, len(snap))
		healthy := 0
		for i, st := range snap {
			srcs[i] = map[string]any{"name": st.Name, "state": st.State}
			if st.Healthy() {
				healthy++
			}
		}
		out["sources"] = srcs
		if healthy < len(snap) && out["status"] == "ok" {
			out["status"] = "degraded" // still 200: the node serves queries
		}
	}
	writeJSON(w, status, out)
}

// listSources reports the full per-source resilience state: circuit
// position, the error keeping it open, and cumulative request/retry/trip
// counters.
func (s *Server) listSources(w http.ResponseWriter, r *http.Request) {
	if s.health == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("rest: no remote sources configured (start the server with -attach)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sources": s.health.Snapshot()})
}

func (s *Server) listTables(w http.ResponseWriter, r *http.Request) {
	names := s.enricher.DB.Catalog().Names()
	type tableJSON struct {
		Name    string   `json:"name"`
		Columns []string `json:"columns"`
	}
	out := make([]tableJSON, 0, len(names))
	for _, n := range names {
		rel, err := s.enricher.DB.Catalog().Resolve(n)
		if err != nil {
			continue
		}
		out = append(out, tableJSON{Name: n, Columns: rel.Schema().Names()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}
