// Package rest exposes the CroSSE platform over HTTP/JSON. The paper's
// deployment integrates the main platform and the semantic platform
// "by means of RESTful APIs" (Sec. I-A); this package is that surface:
// user management, semantic tagging (the three annotation scenarios),
// knowledge exploration and import, stored queries, and SESQL execution.
//
// The public surface is versioned under /api/v1/... and wrapped by the
// serving tier (internal/serve): per-endpoint request metrics, an
// epoch-keyed enriched-result cache, and admission control on the query
// endpoints. Legacy unversioned /api/... paths remain as deprecated thin
// aliases for one release; see docs/API.md for the contract.
package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crosse/internal/core"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/preview"
	"crosse/internal/rdf"
	"crosse/internal/recommend"
	"crosse/internal/serve"
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
)

// Server serves the CroSSE REST API.
type Server struct {
	enricher *core.Enricher
	// mutator is the platform mutation path. Reads go straight to the
	// enricher's platform; every handler that changes platform state goes
	// through here so a journal-backed server write-ahead-logs each
	// mutation before acknowledging it.
	mutator core.Mutator
	// journal, when set, backs /api/v1/admin/wal and /api/v1/admin/compact.
	journal *core.Journal
	// snapshotPath, when set, is where POST /api/v1/admin/snapshot persists
	// the platform image (see SetSnapshotPath).
	snapshotPath string
	// health, when set, backs GET /api/v1/admin/sources and the per-source
	// circuit summary in GET /healthz and /api/v1/metrics.
	health *fdw.Health

	// metrics records per-endpoint request counts, latency histograms and
	// in-flight gauges; always on (the overhead is a few atomics).
	metrics *serve.Metrics
	// cache, when set, memoises enriched results keyed on (user, query,
	// options, view epoch, schema epoch). Nil disables result caching.
	cache *serve.Cache
	// limiter, when set, admission-controls the query-execution endpoints.
	// Nil admits everything.
	limiter *serve.Limiter

	// deprecatedOnce dedups the once-per-path deprecation log line.
	deprecatedOnce sync.Map
	// logf receives operational notices; log.Printf unless SetLogf.
	logf func(format string, args ...any)
}

// NewServer wraps an Enricher (which carries the databank, the semantic
// platform and the resource mapping). Mutations apply directly to the
// platform until SetJournal routes them through a write-ahead log.
func NewServer(e *core.Enricher) *Server {
	return &Server{enricher: e, mutator: e.Platform, metrics: serve.NewMetrics(), logf: log.Printf}
}

// SetJournal routes every platform mutation through the journal's logged
// path and enables the WAL admin endpoints.
func (s *Server) SetJournal(j *core.Journal) {
	s.journal = j
	s.mutator = j
}

// SetSnapshotPath configures the file POST /api/v1/admin/snapshot saves
// the platform image to. An empty path (the default) disables the save
// endpoint; GET (download) always works.
func (s *Server) SetSnapshotPath(path string) { s.snapshotPath = path }

// SetHealth exposes the remote-source health registry via
// GET /api/v1/admin/sources and folds its circuit summary into
// GET /healthz and GET /api/v1/metrics.
func (s *Server) SetHealth(h *fdw.Health) { s.health = h }

// SetResultCache installs the enriched-result cache. Nil (the default)
// disables result caching; plan caching inside the enricher is separate.
func (s *Server) SetResultCache(c *serve.Cache) { s.cache = c }

// SetAdmission installs the admission controller guarding the
// query-execution endpoints. Nil (the default) admits everything.
func (s *Server) SetAdmission(l *serve.Limiter) { s.limiter = l }

// SetLogf redirects the server's operational notices (deprecation
// warnings). nil silences them.
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Handler returns the API routes: the v1 surface plus legacy /api/...
// aliases (deprecated, kept for one release).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// route mounts a handler at its v1 path and at the legacy unversioned
	// alias. Both share one metrics label (the v1 pattern) so traffic is
	// attributed to the endpoint, not to which alias the client used.
	route := func(method, v1Path string, h http.HandlerFunc) {
		name := method + " " + v1Path
		mux.HandleFunc(name, s.instrument(name, "", h))
		legacy := "/api/" + strings.TrimPrefix(v1Path, "/api/v1/")
		mux.HandleFunc(method+" "+legacy, s.instrument(name, v1Path, h))
	}

	route("GET", "/api/v1/users", s.listUsers)
	route("POST", "/api/v1/users", s.createUser)
	route("GET", "/api/v1/statements", s.listStatements)
	route("POST", "/api/v1/statements", s.createStatement)
	route("POST", "/api/v1/statements/{id}/import", s.importStatement)
	route("DELETE", "/api/v1/statements/{id}", s.retractStatement)
	route("GET", "/api/v1/queries", s.listQueries)
	route("POST", "/api/v1/queries", s.registerQuery)
	route("POST", "/api/v1/query", s.admit(s.sesqlQuery))
	route("POST", "/api/v1/sparql", s.admit(s.sparqlQuery))
	route("GET", "/api/v1/tables", s.listTables)
	route("GET", "/api/v1/peers", s.listPeers)
	route("GET", "/api/v1/recommendations", s.listRecommendations)
	route("GET", "/api/v1/snippet", s.snippet)
	route("GET", "/api/v1/vocabulary", s.vocabulary)
	route("POST", "/api/v1/vocabulary", s.declare)
	route("GET", "/api/v1/kb.dot", s.kbDOT)
	route("GET", "/api/v1/admin/snapshot", s.downloadSnapshot)
	route("POST", "/api/v1/admin/snapshot", s.saveSnapshot)
	route("GET", "/api/v1/admin/wal", s.walStatus)
	route("POST", "/api/v1/admin/compact", s.compact)
	route("GET", "/api/v1/admin/sources", s.listSources)

	// v1-only: the serving-tier metrics snapshot.
	mux.HandleFunc("GET /api/v1/metrics", s.instrument("GET /api/v1/metrics", "", s.metricsSnapshot))
	// The liveness probe predates the versioned surface and stays put.
	mux.HandleFunc("GET /healthz", s.instrument("GET /healthz", "", s.healthz))
	return mux
}

// instrument wraps a handler with request metrics. successor, when
// non-empty, marks the mount as a deprecated legacy alias of that v1
// path: responses carry a Deprecation header and the first hit per path
// logs a migration notice.
func (s *Server) instrument(name, successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if successor != "" {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
			if _, logged := s.deprecatedOnce.LoadOrStore(r.URL.Path, true); !logged {
				s.logf("rest: deprecated path %s served (migrate to %s)", r.URL.Path, successor)
			}
		}
		done := s.metrics.Begin(name)
		sw := &statusWriter{ResponseWriter: w}
		defer func() { done(sw.status) }()
		h(sw, r)
	}
}

// admit guards a handler behind the admission controller: saturation
// yields a typed 429 (or 503 if the client's context dies while queued)
// instead of unbounded concurrency.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil {
			if err := s.limiter.Acquire(r.Context()); err != nil {
				writeError(w, err)
				return
			}
			defer s.limiter.Release()
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// --- users ---

func (s *Server) listUsers(w http.ResponseWriter, r *http.Request) {
	p := parsePage(r)
	users, total := slicePage(s.enricher.Platform.Users(), p)
	writeJSON(w, http.StatusOK, listEnvelope("users", users, p, total))
}

func (s *Server) createUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.mutator.RegisterUser(req.Name); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// --- statements (semantic tagging) ---

// statementJSON is the wire form of a reified statement.
type statementJSON struct {
	ID        string         `json:"id"`
	Subject   string         `json:"subject"`
	Property  string         `json:"property"`
	Object    string         `json:"object"`
	ObjectLit bool           `json:"object_literal,omitempty"`
	Owner     string         `json:"owner"`
	Believers []string       `json:"believers"`
	Ref       *referenceJSON `json:"ref,omitempty"`
}

type referenceJSON struct {
	Title  string `json:"title,omitempty"`
	Author string `json:"author,omitempty"`
	Link   string `json:"link,omitempty"`
	File   string `json:"file,omitempty"`
}

func toStatementJSON(st *kb.Statement) statementJSON {
	out := statementJSON{
		ID:        st.ID,
		Subject:   st.Triple.S.Value,
		Property:  st.Triple.P.Value,
		Object:    st.Triple.O.Value,
		ObjectLit: st.Triple.O.IsLiteral(),
		Owner:     st.Owner,
		Believers: st.Believers(),
	}
	if st.Ref != nil {
		out.Ref = &referenceJSON{Title: st.Ref.Title, Author: st.Ref.Author, Link: st.Ref.Link, File: st.Ref.File}
	}
	return out
}

func (s *Server) listStatements(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	property := r.URL.Query().Get("property")
	sts := s.enricher.Platform.Explore(func(st *kb.Statement) bool {
		if owner != "" && st.Owner != owner {
			return false
		}
		if property != "" && !strings.HasSuffix(st.Triple.P.Value, property) {
			return false
		}
		return true
	})
	p := parsePage(r)
	paged, total := slicePage(sts, p)
	out := make([]statementJSON, len(paged))
	for i, st := range paged {
		out[i] = toStatementJSON(st)
	}
	writeJSON(w, http.StatusOK, listEnvelope("statements", out, p, total))
}

func (s *Server) createStatement(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User       string         `json:"user"`
		Subject    string         `json:"subject"`
		Property   string         `json:"property"`
		Object     string         `json:"object"`
		ObjectLit  bool           `json:"object_literal"`
		Integrated bool           `json:"integrated"`
		Ref        *referenceJSON `json:"ref"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Subject == "" || req.Property == "" || req.Object == "" {
		writeError(w, fmt.Errorf("rest: subject, property and object are required"))
		return
	}
	m := s.enricher.Mapping
	var obj rdf.Term
	if req.ObjectLit {
		obj = rdf.NewLiteral(req.Object)
	} else {
		obj = m.PropertyIRI(req.Object) // mint under the default prefix
	}
	t := rdf.Triple{S: m.PropertyIRI(req.Subject), P: m.PropertyIRI(req.Property), O: obj}
	var opts []kb.InsertOption
	if req.Integrated {
		opts = append(opts, kb.Integrated())
	}
	if req.Ref != nil {
		opts = append(opts, kb.WithReference(kb.Reference{
			Title: req.Ref.Title, Author: req.Ref.Author, Link: req.Ref.Link, File: req.Ref.File,
		}))
	}
	id, err := s.mutator.Insert(req.User, t, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) importStatement(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User string `json:"user"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.mutator.Import(req.User, r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "imported"})
}

func (s *Server) retractStatement(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeError(w, fmt.Errorf("rest: user query parameter required"))
		return
	}
	if err := s.mutator.Retract(user, r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "retracted"})
}

// --- stored queries ---

func (s *Server) listQueries(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	qs := s.enricher.Platform.Queries(user)
	p := parsePage(r)
	paged, total := slicePage(qs, p)
	type qj struct {
		Name  string `json:"name"`
		Owner string `json:"owner,omitempty"`
		Text  string `json:"text"`
	}
	out := make([]qj, len(paged))
	for i, q := range paged {
		out[i] = qj{Name: q.Name, Owner: q.Owner, Text: q.Text}
	}
	writeJSON(w, http.StatusOK, listEnvelope("queries", out, p, total))
}

func (s *Server) registerQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Owner string `json:"owner"`
		Name  string `json:"name"`
		Text  string `json:"text"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.mutator.RegisterQuery(req.Owner, req.Name, req.Text); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// --- query execution ---

type resultJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Stats   *statsJSON `json:"stats,omitempty"`
	// Scores holds per-row contextual relevance when ranking was requested.
	Scores []float64 `json:"scores,omitempty"`
	// DegradedSources names remote sources that were down and skipped
	// under partial-results degradation: the result is complete except for
	// their rows. Empty (omitted) on complete results.
	DegradedSources []string `json:"degraded_sources,omitempty"`
}

type statsJSON struct {
	// ElapsedMicros and CacheHit are per-request serving stats, attached
	// to every success response: end-to-end handler latency and whether
	// the enriched-result cache answered.
	ElapsedMicros int64 `json:"elapsed_us"`
	CacheHit      bool  `json:"cache_hit"`

	// The per-stage pipeline breakdown (Fig. 6), present when the request
	// asked for stats.
	ParseMicros    int64    `json:"parse_us"`
	BaseSQLMicros  int64    `json:"base_sql_us"`
	SPARQLMicros   int64    `json:"sparql_us"`
	JoinMicros     int64    `json:"join_us"`
	FinalSQLMicros int64    `json:"final_sql_us"`
	BaseRows       int      `json:"base_rows"`
	FinalRows      int      `json:"final_rows"`
	SPARQLQueries  []string `json:"sparql_queries,omitempty"`
	FinalSQL       string   `json:"final_sql,omitempty"`
	SkippedSources []string `json:"skipped_sources,omitempty"`
	// ParallelFallback names why query stages ran serial instead of on the
	// morsel-driven parallel path (stage-prefixed, "; "-joined). Omitted
	// when every executed stage parallelised.
	ParallelFallback string `json:"parallel_fallback,omitempty"`
}

func toResultJSON(res *sqlexec.Result, stats *core.Stats) resultJSON {
	out := resultJSON{Columns: res.Columns, Rows: make([][]string, len(res.Rows))}
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out.Rows[i] = cells
	}
	out.DegradedSources = res.SkippedSources
	if stats != nil {
		out.Stats = &statsJSON{
			ParseMicros:      stats.Parse.Microseconds(),
			BaseSQLMicros:    stats.BaseSQL.Microseconds(),
			SPARQLMicros:     stats.SPARQL.Microseconds(),
			JoinMicros:       stats.Join.Microseconds(),
			FinalSQLMicros:   stats.FinalSQL.Microseconds(),
			BaseRows:         stats.BaseRows,
			FinalRows:        stats.FinalRows,
			SPARQLQueries:    stats.SPARQLQueries,
			FinalSQL:         stats.FinalSQLText,
			SkippedSources:   stats.SkippedSources,
			ParallelFallback: stats.ParallelFallback,
		}
	}
	return out
}

// resultSize approximates an enriched result's heap footprint for the
// cache's byte budget: string bytes plus per-cell and per-row overhead.
func resultSize(out resultJSON) int64 {
	size := int64(64)
	for _, c := range out.Columns {
		size += int64(len(c)) + 16
	}
	for _, row := range out.Rows {
		size += 24
		for _, cell := range row {
			size += int64(len(cell)) + 16
		}
	}
	size += int64(8 * len(out.Scores))
	return size
}

// cacheKey builds the enriched-result cache key for a request. The view
// epoch is read BEFORE evaluation: if a mutation lands during the query,
// the entry stays keyed to the pre-mutation epoch and is simply never hit
// again, rather than serving a pre-mutation result under the post-mutation
// epoch forever.
func (s *Server) cacheKey(user, query, lang, opts string) serve.Key {
	return serve.Key{
		User:        user,
		Query:       query,
		Lang:        lang,
		Opts:        fmt.Sprintf("%s&exec=%+v", opts, s.enricher.ExecOptions()),
		ViewEpoch:   s.enricher.Platform.ViewEpoch(user),
		SchemaEpoch: s.enricher.DB.Catalog().SchemaEpoch(),
	}
}

// cachedResult is the cache entry: the rendered result without its Stats
// (per-request) plus the pipeline stats of the original run.
type cachedResult struct {
	out   resultJSON // Stats nil; Columns/Rows shared read-only
	stats statsJSON  // original run's breakdown; per-request fields unset
}

func (s *Server) sesqlQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User  string `json:"user"`
		SESQL string `json:"sesql"`
		Stats bool   `json:"stats"`
		// Rank applies context-aware ranking (Sec. I-B.c): rows the user's
		// KB knows most about come first, with relevance scores attached.
		Rank bool `json:"rank"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()

	var key serve.Key
	if s.cache != nil {
		key = s.cacheKey(req.User, req.SESQL, "sesql", fmt.Sprintf("stats=%t&rank=%t", req.Stats, req.Rank))
		if v, ok := s.cache.Get(key); ok {
			ent := v.(cachedResult)
			out := ent.out
			st := ent.stats
			st.CacheHit = true
			st.ElapsedMicros = time.Since(start).Microseconds()
			out.Stats = &st
			writeJSON(w, http.StatusOK, out)
			return
		}
	}

	res, stats, err := s.enricher.QueryStatsContext(r.Context(), req.User, req.SESQL)
	if err != nil {
		writeError(w, err)
		return
	}
	if !req.Stats {
		stats = nil
	}
	out := toResultJSON(res, stats)
	if req.Rank {
		view, err := s.enricher.Platform.View(req.User)
		if err != nil {
			writeError(w, err)
			return
		}
		ranked := preview.Rank(res, view, s.enricher.Mapping)
		out = toResultJSON(ranked.Result, stats)
		out.Scores = ranked.Scores
	}
	s.finishQuery(w, out, key, start)
}

// finishQuery attaches serving stats to a fresh (uncached) query result,
// stores it in the result cache when eligible, and writes it. Degraded
// results are never cached: the skipped source may come back at any
// moment, and epochs do not cover circuit state.
func (s *Server) finishQuery(w http.ResponseWriter, out resultJSON, key serve.Key, start time.Time) {
	var st statsJSON
	if out.Stats != nil {
		st = *out.Stats
	}
	if s.cache != nil && len(out.DegradedSources) == 0 {
		ent := cachedResult{out: out, stats: st}
		ent.out.Stats = nil
		s.cache.Put(key, ent, resultSize(out))
	}
	st.ElapsedMicros = time.Since(start).Microseconds()
	out.Stats = &st
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) sparqlQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User  string `json:"user"`
		Query string `json:"query"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()

	var key serve.Key
	if s.cache != nil {
		key = s.cacheKey(req.User, req.Query, "sparql", "")
		if v, ok := s.cache.Get(key); ok {
			ent := v.(sparqlResultJSON)
			st := *ent.Stats
			st.CacheHit = true
			st.ElapsedMicros = time.Since(start).Microseconds()
			ent.Stats = &st
			writeJSON(w, http.StatusOK, ent)
			return
		}
	}

	view, err := s.enricher.Platform.View(req.User)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := sparql.Eval(view, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	out := sparqlResultJSON{Vars: res.Vars, Bool: res.Bool, Bindings: make([]map[string]string, len(res.Bindings))}
	size := int64(64)
	for i, b := range res.Bindings {
		row := map[string]string{}
		for v, t := range b {
			row[v] = t.Value
			size += int64(len(v)+len(t.Value)) + 32
		}
		out.Bindings[i] = row
	}
	if s.cache != nil {
		ent := out
		ent.Stats = &statsJSON{}
		s.cache.Put(key, ent, size)
	}
	out.Stats = &statsJSON{ElapsedMicros: time.Since(start).Microseconds()}
	writeJSON(w, http.StatusOK, out)
}

// sparqlResultJSON is the wire form of a direct SPARQL evaluation.
type sparqlResultJSON struct {
	Vars     []string            `json:"vars"`
	Bindings []map[string]string `json:"bindings"`
	Bool     bool                `json:"bool"`
	Stats    *statsJSON          `json:"stats,omitempty"`
}

// --- peer networking and previews (the Sec. I-B vision services) ---

func (s *Server) listPeers(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeError(w, fmt.Errorf("rest: user query parameter required"))
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	var peers []recommend.PeerScore
	switch r.URL.Query().Get("by") {
	case "interests":
		peers = recommend.PeersByInterests(s.enricher.Platform, user, k)
	case "activity":
		peers = recommend.PeersByActivity(s.enricher.Activity, user, k)
	default:
		peers = recommend.PeersByBeliefs(s.enricher.Platform, user, k)
	}
	type pj struct {
		User  string  `json:"user"`
		Score float64 `json:"score"`
	}
	out := make([]pj, len(peers))
	for i, p := range peers {
		out[i] = pj{User: p.User, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"peers": out})
}

func (s *Server) listRecommendations(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeError(w, fmt.Errorf("rest: user query parameter required"))
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	recs := recommend.RecommendStatements(s.enricher.Platform, user, k)
	p := parsePage(r)
	paged, total := slicePage(recs, p)
	type rj struct {
		Statement statementJSON `json:"statement"`
		Score     float64       `json:"score"`
		Via       []string      `json:"via"`
	}
	out := make([]rj, len(paged))
	for i, rec := range paged {
		out[i] = rj{Statement: toStatementJSON(rec.Statement), Score: rec.Score, Via: rec.Via}
	}
	writeJSON(w, http.StatusOK, listEnvelope("recommendations", out, p, total))
}

func (s *Server) snippet(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	concept := r.URL.Query().Get("concept")
	if user == "" || concept == "" {
		writeError(w, fmt.Errorf("rest: user and concept query parameters required"))
		return
	}
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	view, err := s.enricher.Platform.View(user)
	if err != nil {
		writeError(w, err)
		return
	}
	facts := preview.Snippet(view, s.enricher.Mapping, concept, max)
	type fj struct {
		Property string `json:"property"`
		Value    string `json:"value"`
		Outgoing bool   `json:"outgoing"`
	}
	out := make([]fj, len(facts))
	for i, f := range facts {
		out[i] = fj{Property: f.Property, Value: f.Value, Outgoing: f.Outgoing}
	}
	writeJSON(w, http.StatusOK, map[string]any{"concept": concept, "facts": out})
}

// vocabulary lists suggested annotation properties and declared terms —
// the data behind the paper's "suggested properties" annotation UI.
func (s *Server) vocabulary(w http.ResponseWriter, r *http.Request) {
	p := s.enricher.Platform
	type dj struct {
		Name  string `json:"name"`
		Owner string `json:"owner"`
	}
	toDJ := func(ds []kb.Declaration) []dj {
		out := make([]dj, len(ds))
		for i, d := range ds {
			out[i] = dj{Name: d.Name, Owner: d.Owner}
		}
		return out
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"suggested_properties": p.SuggestedProperties(),
		"resources":            toDJ(p.Declarations(kb.DeclResource)),
		"properties":           toDJ(p.Declarations(kb.DeclProperty)),
	})
}

// declare registers a new user-declared resource or property (Fig. 4
// userResource / userProperty edges).
func (s *Server) declare(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User string `json:"user"`
		Name string `json:"name"`
		Kind string `json:"kind"` // "resource" | "property"
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	name := req.Name
	if !strings.Contains(name, "://") {
		name = s.enricher.Mapping.PropertyIRI(name).Value
	}
	var err error
	switch req.Kind {
	case "property":
		err = s.mutator.DeclareProperty(req.User, name)
	case "resource", "":
		err = s.mutator.DeclareResource(req.User, name)
	default:
		err = fmt.Errorf("rest: kind must be resource or property")
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

// kbDOT streams the user's knowledge base as Graphviz DOT (the paper's
// graph-based visualization).
func (s *Server) kbDOT(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeError(w, fmt.Errorf("rest: user query parameter required"))
		return
	}
	view, err := s.enricher.Platform.View(user)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	if err := kb.WriteDOT(w, view, user+"-kb"); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// --- serving-tier metrics ---

// metricsSnapshot reports the serving tier's observable state: per-endpoint
// request counts and latency quantiles, result-cache and plan-cache
// counters, admission-control state, remote-source circuits, and the WAL
// position.
func (s *Server) metricsSnapshot(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.enricher.QueryCacheStats()
	out := map[string]any{
		"endpoints":  s.metrics.Snapshot(),
		"plan_cache": map[string]int{"hits": hits, "misses": misses},
	}
	if s.cache != nil {
		out["result_cache"] = s.cache.Stats()
	}
	if s.limiter != nil {
		out["admission"] = s.limiter.Stats()
	}
	if s.health != nil {
		out["sources"] = s.health.Snapshot()
	}
	if s.journal != nil {
		out["wal"] = s.journal.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// --- durability (platform image snapshots) ---

// downloadSnapshot streams the whole platform as a binary image (databank
// SQL dump + semantic-platform snapshot): the backup/off-site-copy path.
// core.ReadImage / crosse-server -snapshot restore it. The image is built
// in memory first so a dump/snapshot failure yields a 500, not a 200 with
// an empty or truncated body; a network failure mid-stream is detected by
// the client via the image's trailing checksum.
func (s *Server) downloadSnapshot(w http.ResponseWriter, r *http.Request) {
	var img bytes.Buffer
	if err := core.WriteImage(&img, s.enricher.DB, s.enricher.Platform); err != nil {
		writeErrorCode(w, http.StatusInternalServerError, codeInternal, err, nil)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="crosse-platform.img"`)
	w.Header().Set("Content-Length", strconv.Itoa(img.Len()))
	_, _ = w.Write(img.Bytes())
}

// saveSnapshot persists the platform image to the server's configured
// snapshot path (the same file -snapshot loads on boot), so an operator can
// force a durable point-in-time save without restarting.
func (s *Server) saveSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeErrorCode(w, http.StatusConflict, codeConflict,
			fmt.Errorf("rest: no snapshot path configured (start the server with -snapshot)"), nil)
		return
	}
	size, err := core.SaveImageFile(s.snapshotPath, s.enricher.DB, s.enricher.Platform)
	if err != nil {
		writeErrorCode(w, http.StatusInternalServerError, codeInternal, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": s.snapshotPath, "bytes": size})
}

// walStatus reports the write-ahead log's position: the image anchor, the
// last appended and last fsync-covered LSNs, size and sync counters.
func (s *Server) walStatus(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeErrorCode(w, http.StatusConflict, codeConflict,
			fmt.Errorf("rest: no write-ahead log configured (start the server with -wal)"), nil)
		return
	}
	writeJSON(w, http.StatusOK, s.journal.Status())
}

// compact re-anchors the journal: a fresh platform image at the current
// LSN plus an empty log, reclaiming the replay work of every record the
// image now contains.
func (s *Server) compact(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeErrorCode(w, http.StatusConflict, codeConflict,
			fmt.Errorf("rest: no write-ahead log configured (start the server with -wal)"), nil)
		return
	}
	st, err := s.journal.Compact()
	if err != nil {
		writeErrorCode(w, http.StatusInternalServerError, codeInternal, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// --- health ---

// healthz is the liveness/readiness probe. 200 means the node accepts
// queries and writes; 503 means the journal is wedged (reads still work,
// writes cannot be acknowledged). Degraded remote sources do not fail the
// probe — the node itself is healthy and can degrade gracefully — but the
// per-source circuit summary is included so callers can distinguish
// "healthy" from "healthy but partial".
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"status": "ok"}
	status := http.StatusOK
	if s.journal != nil {
		wal := map[string]any{"wedged": false}
		if err := s.journal.Wedged(); err != nil {
			wal["wedged"] = true
			wal["error"] = err.Error()
			out["status"] = "degraded"
			status = http.StatusServiceUnavailable
		} else {
			wal["lsn"] = s.journal.Status().LSN
		}
		out["wal"] = wal
	}
	if s.health != nil {
		snap := s.health.Snapshot()
		srcs := make([]map[string]any, len(snap))
		healthy := 0
		for i, st := range snap {
			srcs[i] = map[string]any{"name": st.Name, "state": st.State}
			if st.Healthy() {
				healthy++
			}
		}
		out["sources"] = srcs
		if healthy < len(snap) && out["status"] == "ok" {
			out["status"] = "degraded" // still 200: the node serves queries
		}
	}
	writeJSON(w, status, out)
}

// listSources reports the full per-source resilience state: circuit
// position, the error keeping it open, and cumulative request/retry/trip
// counters.
func (s *Server) listSources(w http.ResponseWriter, r *http.Request) {
	if s.health == nil {
		writeErrorCode(w, http.StatusConflict, codeConflict,
			fmt.Errorf("rest: no remote sources configured (start the server with -attach)"), nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sources": s.health.Snapshot()})
}

func (s *Server) listTables(w http.ResponseWriter, r *http.Request) {
	names := s.enricher.DB.Catalog().Names()
	type tableJSON struct {
		Name    string   `json:"name"`
		Columns []string `json:"columns"`
	}
	out := make([]tableJSON, 0, len(names))
	for _, n := range names {
		rel, err := s.enricher.DB.Catalog().Resolve(n)
		if err != nil {
			continue
		}
		out = append(out, tableJSON{Name: n, Columns: rel.Schema().Names()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}
