package rest

// Contract tests for the v1 surface: the uniform error envelope, typed
// status mapping, pagination fields, legacy-alias deprecation headers,
// and the serving-tier metrics endpoint. These are the assertions the CI
// api-contract job re-checks against a real server binary.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/serve"
)

// newV1Server builds a test server with the full serving tier installed:
// result cache and admission limiter, returning the Server for white-box
// poking (e.g. saturating the limiter).
func newV1Server(t *testing.T, maxInflight, queueDepth int) (*httptest.Server, *Server) {
	t.Helper()
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano');
		INSERT INTO elem_contained VALUES ('Mercury', 'a'), ('Zinc', 'a'), ('Gold', 'b');
	`); err != nil {
		t.Fatal(err)
	}
	p := kb.NewPlatform()
	e := core.New(db, p, nil)
	p.SetConceptChecker(core.NewConceptChecker(db, e.Mapping))
	s := NewServer(e)
	s.SetLogf(t.Logf)
	s.SetResultCache(serve.NewCache(128, 1<<20))
	s.SetAdmission(serve.NewLimiter(maxInflight, queueDepth))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// envelope fetches and decodes an expected-error response, asserting the
// uniform {"error": {code, message}} shape.
func envelope(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the uniform envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %+v", env.Error)
	}
	return env.Error
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestV1ErrorEnvelopeContract(t *testing.T) {
	ts, s := newV1Server(t, 1, 0)
	mustPost := func(path, body string) {
		t.Helper()
		resp := postJSON(t, ts.URL+path, body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	mustPost("/api/v1/users", `{"name":"alice"}`)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", "POST", "/api/v1/users", `{`, http.StatusBadRequest, codeBadRequest},
		{"unknown field", "POST", "/api/v1/users", `{"nmae":"x"}`, http.StatusBadRequest, codeBadRequest},
		{"duplicate user", "POST", "/api/v1/users", `{"name":"alice"}`, http.StatusConflict, codeConflict},
		{"unknown user query", "POST", "/api/v1/query", `{"user":"ghost","sesql":"SELECT 1"}`, http.StatusNotFound, codeNotFound},
		{"bad SESQL", "POST", "/api/v1/query", `{"user":"alice","sesql":"SELEC"}`, http.StatusBadRequest, codeBadRequest},
		{"unknown user sparql", "POST", "/api/v1/sparql", `{"user":"ghost","query":"SELECT ?s WHERE { ?s ?p ?o }"}`, http.StatusNotFound, codeNotFound},
		{"missing statement import", "POST", "/api/v1/statements/stmt-99/import", `{"user":"alice"}`, http.StatusNotFound, codeNotFound},
		{"missing statement retract", "DELETE", "/api/v1/statements/stmt-99?user=alice", "", http.StatusNotFound, codeNotFound},
		{"wal not configured", "GET", "/api/v1/admin/wal", "", http.StatusConflict, codeConflict},
		{"sources not configured", "GET", "/api/v1/admin/sources", "", http.StatusConflict, codeConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if e := envelope(t, resp); e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
		})
	}

	// 429 under saturation: hold the only execution slot, then query.
	if err := s.limiter.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/api/v1/query", `{"user":"alice","sesql":"SELECT 1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated query status = %d, want 429", resp.StatusCode)
	}
	if e := envelope(t, resp); e.Code != codeOverloaded {
		t.Errorf("saturated code = %q, want %q", e.Code, codeOverloaded)
	}
	s.limiter.Release()
	// The slot is free again: the same query succeeds.
	resp = postJSON(t, ts.URL+"/api/v1/query", `{"user":"alice","sesql":"SELECT 1"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release query status = %d, want 200", resp.StatusCode)
	}
}

func TestV1SuccessStatsContract(t *testing.T) {
	ts, _ := newV1Server(t, 0, 0)
	resp := postJSON(t, ts.URL+"/api/v1/users", `{"name":"alice"}`)
	resp.Body.Close()

	// Success responses carry stats (elapsed, cache hit) even without
	// stats:true — the serving-tier portion is unconditional.
	type queryResp struct {
		Rows  [][]string `json:"rows"`
		Stats *struct {
			ElapsedUS int64 `json:"elapsed_us"`
			CacheHit  bool  `json:"cache_hit"`
			ParseUS   int64 `json:"parse_us"`
		} `json:"stats"`
	}
	var out queryResp
	get := func() {
		t.Helper()
		resp := postJSON(t, ts.URL+"/api/v1/query", `{"user":"alice","sesql":"SELECT COUNT(*) FROM landfill"}`)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %d", resp.StatusCode)
		}
		out = queryResp{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	get()
	if out.Stats == nil {
		t.Fatal("success response missing stats")
	}
	if out.Stats.CacheHit {
		t.Error("first query must be a cache miss")
	}
	get()
	if !out.Stats.CacheHit {
		t.Error("repeat query must be a cache hit")
	}
	if len(out.Rows) != 1 || out.Rows[0][0] != "2" {
		t.Errorf("rows = %v", out.Rows)
	}

	// SPARQL responses carry the same serving stats.
	resp = postJSON(t, ts.URL+"/api/v1/sparql", `{"user":"alice","query":"SELECT ?s WHERE { ?s ?p ?o }"}`)
	defer resp.Body.Close()
	var sp struct {
		Stats *struct {
			CacheHit bool `json:"cache_hit"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		t.Fatal(err)
	}
	if sp.Stats == nil {
		t.Error("sparql response missing stats")
	}
}

func TestV1PaginationContract(t *testing.T) {
	ts, _ := newV1Server(t, 0, 0)
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/api/v1/users", fmt.Sprintf(`{"name":"u%d"}`, i))
		resp.Body.Close()
		resp = postJSON(t, ts.URL+"/api/v1/statements",
			fmt.Sprintf(`{"user":"u%d","subject":"S%d","property":"p","object":"O"}`, i, i))
		resp.Body.Close()
	}

	page := func(path, key string, wantLen, wantTotal, wantLimit, wantOffset int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		items, ok := out[key].([]any)
		if !ok {
			t.Fatalf("%s: %q missing: %v", path, key, out)
		}
		if len(items) != wantLen {
			t.Errorf("%s: %d items, want %d", path, len(items), wantLen)
		}
		if got := int(out["total"].(float64)); got != wantTotal {
			t.Errorf("%s: total = %d, want %d", path, got, wantTotal)
		}
		if got := int(out["limit"].(float64)); got != wantLimit {
			t.Errorf("%s: limit = %d, want %d", path, got, wantLimit)
		}
		if got := int(out["offset"].(float64)); got != wantOffset {
			t.Errorf("%s: offset = %d, want %d", path, got, wantOffset)
		}
	}

	page("/api/v1/users", "users", 5, 5, defaultPageLimit, 0)
	page("/api/v1/users?limit=2", "users", 2, 5, 2, 0)
	page("/api/v1/users?limit=2&offset=4", "users", 1, 5, 2, 4)
	page("/api/v1/users?offset=99", "users", 0, 5, defaultPageLimit, 99)
	page("/api/v1/statements?limit=3", "statements", 3, 5, 3, 0)
	page("/api/v1/statements?owner=u1", "statements", 1, 1, defaultPageLimit, 0)
	page("/api/v1/queries", "queries", 0, 0, defaultPageLimit, 0)

	// Recommendations: other users' statements are recommended to u1; the
	// exact count belongs to the recommender, so only check the window
	// arithmetic — limit=1 returns one item out of the same total.
	resp, err := http.Get(ts.URL + "/api/v1/recommendations?user=u1")
	if err != nil {
		t.Fatal(err)
	}
	var recs struct {
		Recommendations []any `json:"recommendations"`
		Total           int   `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if recs.Total != len(recs.Recommendations) {
		t.Errorf("recommendations: total = %d, items = %d", recs.Total, len(recs.Recommendations))
	}
	if recs.Total > 0 {
		page("/api/v1/recommendations?user=u1&limit=1", "recommendations", 1, recs.Total, 1, 0)
	}

	// Invalid limit/offset fall back to the defaults instead of erroring.
	page("/api/v1/users?limit=bogus&offset=-3", "users", 5, 5, defaultPageLimit, 0)
}

func TestLegacyAliasDeprecation(t *testing.T) {
	ts, _ := newV1Server(t, 0, 0)
	resp, err := http.Get(ts.URL + "/api/users")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy alias: %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/users") {
		t.Errorf("legacy alias Link = %q, want successor /api/v1/users", link)
	}

	resp, err = http.Get(ts.URL + "/api/v1/users")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("v1 path must not carry a Deprecation header")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newV1Server(t, 4, 2)
	// Generate traffic on both the v1 path and the legacy alias: both must
	// be attributed to the one v1 endpoint label.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/api/v1/users")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/users")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/api/v1/users", `{"name":"alice"}`)
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/api/v1/query", `{"user":"alice","sesql":"SELECT 1"}`)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var out struct {
		Endpoints map[string]struct {
			Requests uint64            `json:"requests"`
			InFlight int64             `json:"in_flight"`
			Status   map[string]uint64 `json:"status"`
			Latency  struct {
				Count uint64 `json:"count"`
				P50US int64  `json:"p50_us"`
				P95US int64  `json:"p95_us"`
				P99US int64  `json:"p99_us"`
			} `json:"latency"`
		} `json:"endpoints"`
		ResultCache *serve.CacheStats   `json:"result_cache"`
		Admission   *serve.LimiterStats `json:"admission"`
		PlanCache   map[string]int      `json:"plan_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	list := out.Endpoints["GET /api/v1/users"]
	if list.Requests != 3 {
		t.Errorf("GET /api/v1/users requests = %d, want 3 (v1 + legacy alias)", list.Requests)
	}
	if list.Status["2xx"] != 3 || list.Latency.Count != 3 {
		t.Errorf("endpoint stats = %+v", list)
	}
	if _, ok := out.Endpoints["GET /api/users"]; ok {
		t.Error("legacy alias must not appear as its own endpoint label")
	}
	q := out.Endpoints["POST /api/v1/query"]
	if q.Requests != 1 || q.Latency.P50US <= 0 {
		t.Errorf("query endpoint stats = %+v", q)
	}
	if out.ResultCache == nil || out.ResultCache.Misses == 0 {
		t.Errorf("result_cache = %+v", out.ResultCache)
	}
	if out.Admission == nil || out.Admission.MaxInflight != 4 || out.Admission.Admitted == 0 {
		t.Errorf("admission = %+v", out.Admission)
	}
	if out.PlanCache == nil {
		t.Error("plan_cache missing")
	}
}
