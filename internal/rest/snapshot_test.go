package rest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

// snapshotTestServer is newTestServer plus semantic state and a configured
// snapshot path, returning the pieces the assertions need.
func snapshotTestServer(t *testing.T, snapshotPath string) (*httptest.Server, *core.Enricher) {
	t.Helper()
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano');
	`); err != nil {
		t.Fatal(err)
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("alice", rdf.Triple{
		S: rdf.NewIRI(kb.SMG + "Mercury"),
		P: rdf.NewIRI(kb.SMG + "dangerLevel"),
		O: rdf.NewLiteral("high"),
	}); err != nil {
		t.Fatal(err)
	}
	e := core.New(db, p, nil)
	srv := NewServer(e)
	srv.SetSnapshotPath(snapshotPath)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, e
}

func TestAdminSnapshotDownload(t *testing.T) {
	ts, e := snapshotTestServer(t, "")

	resp, err := http.Get(ts.URL + "/api/admin/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/admin/snapshot: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	db, p, err := func() (*engine.DB, *kb.Platform, error) {
		defer io.Copy(io.Discard, resp.Body)
		return core.ReadImage(resp.Body)
	}()
	if err != nil {
		t.Fatalf("downloaded image does not restore: %v", err)
	}
	if got, want := p.Users(), e.Platform.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored users %v, want %v", got, want)
	}
	if p.ViewSize("alice") != e.Platform.ViewSize("alice") {
		t.Fatalf("restored alice view size %d, want %d", p.ViewSize("alice"), e.Platform.ViewSize("alice"))
	}
	r, err := db.Query(`SELECT name FROM landfill`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("restored databank has %d landfills, want 2", len(r.Rows))
	}
}

func TestAdminSnapshotSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "platform.img")
	ts, e := snapshotTestServer(t, path)

	status, body := doJSON(t, http.MethodPost, ts.URL+"/api/admin/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("POST /api/admin/snapshot: status %d body %v", status, body)
	}
	if body["path"] != path || body["bytes"].(float64) <= 0 {
		t.Fatalf("unexpected response %v", body)
	}
	_, p, err := core.LoadImageFile(path)
	if err != nil {
		t.Fatalf("saved image does not load: %v", err)
	}
	if !reflect.DeepEqual(p.Users(), e.Platform.Users()) {
		t.Fatalf("saved image users differ")
	}
}

func TestAdminSnapshotSaveUnconfigured(t *testing.T) {
	ts, _ := snapshotTestServer(t, "")
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/api/admin/snapshot", nil)
	if status != http.StatusConflict {
		t.Fatalf("POST without configured path: status %d, want %d", status, http.StatusConflict)
	}
}
