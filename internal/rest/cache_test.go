package rest

// Enriched-result cache behaviour through the HTTP surface: epoch-based
// invalidation (a mutation makes that user's cached entries unreachable
// while other users keep hitting), and freshness under concurrent cached
// reads vs journaled mutations (run with -race).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/serve"
)

const enrichQuery = `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`

// queryOut runs the enrichment query for user and returns its rows plus
// whether the result cache answered.
func queryOut(t *testing.T, ts *httptest.Server, user string) (rows [][]string, cacheHit bool) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/api/v1/query",
		fmt.Sprintf(`{"user":%q,"sesql":%q}`, user, enrichQuery))
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query for %s: %d", user, resp.StatusCode)
	}
	var out struct {
		Rows  [][]string `json:"rows"`
		Stats struct {
			CacheHit bool `json:"cache_hit"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Rows, out.Stats.CacheHit
}

func hasCell(rows [][]string, value string) bool {
	for _, row := range rows {
		for _, cell := range row {
			if cell == value {
				return true
			}
		}
	}
	return false
}

func TestResultCacheInvalidationPerUser(t *testing.T) {
	ts, _ := newV1Server(t, 0, 0)
	for _, u := range []string{"alice", "bob"} {
		resp := postJSON(t, ts.URL+"/api/v1/users", fmt.Sprintf(`{"name":%q}`, u))
		resp.Body.Close()
	}
	annotate := func(user, subject, object string) string {
		t.Helper()
		resp := postJSON(t, ts.URL+"/api/v1/statements", fmt.Sprintf(
			`{"user":%q,"subject":%q,"property":"dangerLevel","object":%q,"object_literal":true}`,
			user, subject, object))
		defer resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("annotate: %d", resp.StatusCode)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out["id"]
	}
	annotate("alice", "Mercury", "high")
	annotate("bob", "Mercury", "low")

	// First evaluation misses, the repeat hits, and each user sees their
	// own enrichment.
	rows, hit := queryOut(t, ts, "alice")
	if hit || !hasCell(rows, "high") {
		t.Fatalf("alice first query: hit=%v rows=%v", hit, rows)
	}
	if _, hit = queryOut(t, ts, "alice"); !hit {
		t.Error("alice repeat query must hit the cache")
	}
	if rows, hit = queryOut(t, ts, "bob"); hit || !hasCell(rows, "low") {
		t.Fatalf("bob first query: hit=%v rows=%v", hit, rows)
	}
	if _, hit = queryOut(t, ts, "bob"); !hit {
		t.Error("bob repeat query must hit the cache")
	}

	// A mutation by alice bumps her view epoch: her next query re-evaluates
	// and sees the new statement; bob's cached entry is untouched.
	zincID := annotate("alice", "Zinc", "medium")
	rows, hit = queryOut(t, ts, "alice")
	if hit {
		t.Error("alice query after her mutation must miss (stale entry unreachable)")
	}
	if !hasCell(rows, "medium") {
		t.Errorf("alice post-mutation rows lack new annotation: %v", rows)
	}
	if _, hit = queryOut(t, ts, "bob"); !hit {
		t.Error("bob's cached entry must survive alice's mutation")
	}

	// Retraction invalidates too: the annotation disappears from the next
	// evaluation.
	req, err := http.NewRequest("DELETE", ts.URL+"/api/v1/statements/"+zincID+"?user=alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("retract: %d", resp.StatusCode)
	}
	rows, hit = queryOut(t, ts, "alice")
	if hit {
		t.Error("alice query after retraction must miss")
	}
	if hasCell(rows, "medium") {
		t.Errorf("retracted annotation still visible: %v", rows)
	}

	// The cache recorded real traffic.
	st := mustCacheStats(t, ts)
	if st.Hits < 3 || st.Misses < 4 {
		t.Errorf("cache stats = %+v", st)
	}
}

// TestCachedReadsVsJournaledMutations hammers cached queries concurrently
// with journaled mutations and asserts read-your-writes: once an insert is
// acknowledged, the same user's next query must reflect it — the cache may
// never serve a pre-mutation result. Run with -race.
func TestCachedReadsVsJournaledMutations(t *testing.T) {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES ('Mercury', 'a'), ('Zinc', 'a');
	`); err != nil {
		t.Fatal(err)
	}
	p := kb.NewPlatform()
	e := core.New(db, p, nil)
	p.SetConceptChecker(core.NewConceptChecker(db, e.Mapping))
	j, _, err := core.OpenJournal(t.TempDir(), core.JournalOptions{}, func() (*engine.DB, *kb.Platform, error) {
		return db, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := NewServer(e)
	s.SetLogf(nil)
	s.SetJournal(j)
	s.SetResultCache(serve.NewCache(256, 4<<20))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const users, writes = 4, 8
	for i := 0; i < users; i++ {
		resp := postJSON(t, ts.URL+"/api/v1/users", fmt.Sprintf(`{"name":"u%d"}`, i))
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, users*2)
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("u%d", i)

		// Writer: journaled insert, then immediately read back through the
		// cached query path. The marker must be visible.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < writes; n++ {
				marker := fmt.Sprintf("%s-v%d", user, n)
				resp := postJSON(t, ts.URL+"/api/v1/statements", fmt.Sprintf(
					`{"user":%q,"subject":"Mercury","property":"dangerLevel","object":%q,"object_literal":true}`,
					user, marker))
				resp.Body.Close()
				if resp.StatusCode != 201 {
					errs <- fmt.Errorf("%s: insert %d: status %d", user, n, resp.StatusCode)
					return
				}
				rows, _ := queryOut(t, ts, user)
				if !hasCell(rows, marker) {
					errs <- fmt.Errorf("%s: stale read: %s acknowledged but absent from next query", user, marker)
					return
				}
			}
		}()

		// Reader: hammer the cached path for the same user; results may be
		// cached or fresh, but must never predate this user's own writes
		// beyond the last acknowledged one (checked by the writer above).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < writes*4; n++ {
				queryOut(t, ts, user)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent check: every user's final query reflects every write.
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("u%d", i)
		rows, _ := queryOut(t, ts, user)
		for n := 0; n < writes; n++ {
			if marker := fmt.Sprintf("%s-v%d", user, n); !hasCell(rows, marker) {
				t.Errorf("%s: marker %s missing after quiescence", user, marker)
			}
		}
	}
}

func mustCacheStats(t *testing.T, ts *httptest.Server) serve.CacheStats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ResultCache serve.CacheStats `json:"result_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ResultCache
}
