package rest

import (
	"context"
	"errors"
	"net/http"

	"crosse/internal/core"
	"crosse/internal/fdw"
	"crosse/internal/kb"
	"crosse/internal/serve"
)

// The v1 API's uniform error envelope: every non-2xx response is
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// with a machine-readable code per error class, so clients branch on code
// instead of parsing message strings. See docs/API.md for the catalogue.
type apiError struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// Error codes. Stable API surface — tests and clients match on these.
const (
	codeBadRequest  = "bad_request"
	codeNotFound    = "not_found"
	codeConflict    = "conflict"
	codeOverloaded  = "overloaded"
	codeUnavailable = "unavailable"
	codeInternal    = "internal"
)

// classify maps an error to its HTTP status and envelope code. Unmatched
// errors are client errors (400): the platform's validation errors
// (malformed SESQL/SPARQL, unknown columns, missing believers…) all land
// there, matching the legacy surface.
func classify(err error) (int, string) {
	var dup *kb.DupError
	switch {
	case errors.Is(err, kb.ErrUnknownUser), errors.Is(err, kb.ErrNoStatement):
		return http.StatusNotFound, codeNotFound
	case errors.As(err, &dup):
		return http.StatusConflict, codeConflict
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests, codeOverloaded
	case errors.Is(err, fdw.ErrSourceDown), errors.Is(err, core.ErrWedged):
		return http.StatusServiceUnavailable, codeUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The client went away or its deadline passed while queued.
		return http.StatusServiceUnavailable, codeUnavailable
	default:
		return http.StatusBadRequest, codeBadRequest
	}
}

// writeError classifies err and writes the uniform envelope.
func writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	writeErrorCode(w, status, code, err, nil)
}

// writeErrorCode writes the envelope with an explicit status + code (for
// cases classify cannot infer, e.g. configuration conflicts and internal
// failures).
func writeErrorCode(w http.ResponseWriter, status int, code string, err error, details map[string]any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code:    code,
		Message: err.Error(),
		Details: details,
	}})
}

// page is the pagination window parsed from limit/offset query
// parameters. The default and maximum limits are part of the documented
// v1 contract.
type page struct {
	Limit  int
	Offset int
}

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// parsePage reads limit/offset, clamping to the documented bounds.
// Invalid values fall back to the defaults rather than erroring: listings
// must stay usable from hand-typed curl.
func parsePage(r *http.Request) page {
	p := page{Limit: defaultPageLimit}
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		if n, err := atoiStrict(v); err == nil && n > 0 {
			p.Limit = min(n, maxPageLimit)
		}
	}
	if v := q.Get("offset"); v != "" {
		if n, err := atoiStrict(v); err == nil && n > 0 {
			p.Offset = n
		}
	}
	return p
}

func atoiStrict(s string) (int, error) {
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("rest: not a number")
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, errors.New("rest: out of range")
		}
	}
	return n, nil
}

// slicePage applies the window to a slice of any element type and returns
// the page plus the pre-slice total.
func slicePage[T any](items []T, p page) (paged []T, total int) {
	total = len(items)
	lo := min(p.Offset, total)
	hi := min(lo+p.Limit, total)
	return items[lo:hi], total
}

// listEnvelope renders a paginated collection response: the items under
// their collection key plus the window that produced them.
func listEnvelope(key string, items any, p page, total int) map[string]any {
	return map[string]any{
		key:      items,
		"total":  total,
		"limit":  p.Limit,
		"offset": p.Offset,
	}
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}
