package rest

import (
	"net/http"
	"testing"
)

// seedCommunity registers users and cross-linked knowledge for the peer
// services.
func seedCommunity(t *testing.T, url string) {
	t.Helper()
	for _, u := range []string{"alice", "bob", "carol"} {
		doJSON(t, "POST", url+"/api/users", map[string]string{"name": u})
	}
	// Alice publishes three statements.
	var ids []string
	for _, s := range []string{"Mercury", "Zinc", "Gold"} {
		_, out := doJSON(t, "POST", url+"/api/statements", map[string]any{
			"user": "alice", "subject": s, "property": "isA", "object": "HazardousWaste"})
		ids = append(ids, out["id"].(string))
	}
	// Bob imports two of them, so alice↔bob are belief-similar.
	for _, id := range ids[:2] {
		doJSON(t, "POST", url+"/api/statements/"+id+"/import", map[string]string{"user": "bob"})
	}
	// Bob adds one of his own: recommendation material for alice.
	doJSON(t, "POST", url+"/api/statements", map[string]any{
		"user": "bob", "subject": "Asbestos", "property": "isA", "object": "HazardousWaste"})
}

func TestPeersEndpoint(t *testing.T) {
	ts := newTestServer(t)
	seedCommunity(t, ts.URL)

	code, out := doJSON(t, "GET", ts.URL+"/api/peers?user=alice", nil)
	if code != http.StatusOK {
		t.Fatalf("peers: %d %v", code, out)
	}
	peers := out["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("peers = %v", peers)
	}
	first := peers[0].(map[string]any)
	if first["user"] != "bob" || first["score"].(float64) <= 0 {
		t.Errorf("first peer = %v", first)
	}

	// Interests mode also works.
	code, out = doJSON(t, "GET", ts.URL+"/api/peers?user=carol&by=interests", nil)
	if code != http.StatusOK {
		t.Fatalf("interest peers: %d", code)
	}
	// Missing user rejected.
	code, _ = doJSON(t, "GET", ts.URL+"/api/peers", nil)
	if code != http.StatusBadRequest {
		t.Errorf("missing user: %d", code)
	}
}

func TestRecommendationsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	seedCommunity(t, ts.URL)

	code, out := doJSON(t, "GET", ts.URL+"/api/recommendations?user=alice&k=5", nil)
	if code != http.StatusOK {
		t.Fatalf("recommendations: %d %v", code, out)
	}
	recs := out["recommendations"].([]any)
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	rec := recs[0].(map[string]any)
	st := rec["statement"].(map[string]any)
	if st["owner"] != "bob" {
		t.Errorf("recommended statement = %v", st)
	}
	via := rec["via"].([]any)
	if len(via) != 1 || via[0] != "bob" {
		t.Errorf("via = %v", via)
	}
}

func TestSnippetEndpoint(t *testing.T) {
	ts := newTestServer(t)
	seedCommunity(t, ts.URL)

	code, out := doJSON(t, "GET", ts.URL+"/api/snippet?user=alice&concept=Mercury", nil)
	if code != http.StatusOK {
		t.Fatalf("snippet: %d %v", code, out)
	}
	facts := out["facts"].([]any)
	if len(facts) != 1 {
		t.Fatalf("facts = %v", facts)
	}
	f := facts[0].(map[string]any)
	if f["property"] != "isA" || f["value"] != "HazardousWaste" || f["outgoing"] != true {
		t.Errorf("fact = %v", f)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/api/snippet?user=alice", nil)
	if code != http.StatusBadRequest {
		t.Errorf("missing concept: %d", code)
	}
}

func TestRankedQuery(t *testing.T) {
	ts := newTestServer(t)
	seedCommunity(t, ts.URL)

	code, out := doJSON(t, "POST", ts.URL+"/api/query", map[string]any{
		"user":  "alice",
		"sesql": `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'`,
		"rank":  true,
	})
	if code != http.StatusOK {
		t.Fatalf("ranked query: %d %v", code, out)
	}
	rows := out["rows"].([]any)
	scores := out["scores"].([]any)
	if len(rows) != len(scores) {
		t.Fatalf("rows/scores mismatch: %d vs %d", len(rows), len(scores))
	}
	// Mercury (alice knows it) must rank first with a positive score.
	first := rows[0].([]any)
	if first[0] != "Mercury" {
		t.Errorf("first row = %v", first)
	}
	if scores[0].(float64) <= 0 {
		t.Errorf("first score = %v", scores[0])
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].(float64) > scores[i-1].(float64) {
			t.Errorf("scores not descending: %v", scores)
		}
	}
}
