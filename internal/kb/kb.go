// Package kb implements CroSSE's crowdsourced knowledge-base layer
// (Sec. III and Fig. 4): registered users insert RDF statements into a
// shared semantic platform, each statement carries its provenance (the
// user who inserted it) and the set of users who "accepted it as their
// own" (beliefs), optionally a bibliographic reference, and each user's
// personal knowledge base — the context her SESQL queries are evaluated
// in — is the set of statements she owns or believes.
//
// Storage architecture: the platform keeps ONE dictionary-encoded triple
// arena (rdf.SharedStore) holding every asserted triple, and each user's
// KB is an overlay view (rdf.View) over it — a compact set of encoded
// triple keys plus O(1) per-view pattern counters, sharing the arena's
// dictionary and union indexes. A crowdsourced corpus believed by N users
// is interned and indexed once; importing a belief is a few ID-keyed map
// updates, never a re-hash of term strings. Views implement rdf.Graph and
// rdf.IDGraph, so SESQL enrichment and the streaming SPARQL executor
// evaluate against them unchanged, and queries over distinct users' views
// run concurrently under shared read locks.
//
// The package supports the paper's three annotation scenarios:
//
//   - integrated annotation: the subject must be a concept extracted from
//     the original data source (validated through a concept checker);
//   - independent annotation: any triple may be inserted;
//   - crowdsourced annotation: users explore statements made public by
//     their peers and import (part of) them into their own KB.
//
// It also hosts the stored-SPARQL-query registry the paper's Example 4.5
// relies on (the `dangerQuery` property names a saved query rather than a
// stored triple property).
package kb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// Sentinel errors for conditions callers dispatch on (the REST layer maps
// them to HTTP statuses). They carry the message prefix, so wrapping them
// with the offending name via %w keeps the historical error texts.
var (
	// ErrUnknownUser marks operations naming a user that is not registered.
	ErrUnknownUser = errors.New("kb: unknown user")
	// ErrNoStatement marks operations naming a statement id that does not
	// exist (or no longer exists).
	ErrNoStatement = errors.New("kb: no statement")
)

// DupError marks rejected duplicate registrations (an existing user or
// stored-query name). The REST layer maps it to 409 Conflict.
type DupError struct{ msg string }

func (e *DupError) Error() string { return e.msg }

// SMG is the base IRI of the SmartGround ontology namespace.
const SMG = "http://smartground.eu/onto#"

// Fig. 4 vocabulary.
const (
	ClassUser      = SMG + "User"
	ClassStatement = SMG + "Statement"
	ClassReference = SMG + "Reference"

	PropUserStatement = SMG + "userStatement" // user → statement (owner)
	PropUserBelief    = SMG + "userBelief"    // user → statement (accepted)
	PropStmReference  = SMG + "stmReference"  // statement → reference
	PropRefTitle      = SMG + "refTitle"
	PropRefAuthor     = SMG + "refAuthor"
	PropRefLink       = SMG + "refLink"
	PropFileReference = SMG + "fileReference" // statement → attached file
)

// Reference is bibliographic/provenance metadata attached to a statement
// (smg:Reference in Fig. 4).
type Reference struct {
	Title  string
	Author string
	Link   string
	File   string // fileReference: user notes, pictures, reports, …
}

// Statement is one reified contextual assertion.
type Statement struct {
	ID     string
	Triple rdf.Triple
	Owner  string
	Ref    *Reference

	key       rdf.TripleKey // Triple encoded against the platform arena
	believers map[string]struct{}

	// believersShared marks the believers map as published to a snapshot:
	// the next mutation must copy it instead of writing in place. Snapshots
	// set it under the platform read lock (hence atomic); mutators check
	// and clear it under the write lock. This is what lets a bulk import
	// run allocation-free: the per-statement copy-on-write clone happens
	// only when a snapshot actually shares the map, not on every mutation.
	believersShared atomic.Bool
}

// Believers returns the sorted user names that accepted this statement
// (the owner is always included).
func (s *Statement) Believers() []string {
	out := make([]string, 0, len(s.believers))
	for u := range s.believers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// BelievedBy reports whether the user owns or has imported the statement.
func (s *Statement) BelievedBy(user string) bool {
	_, ok := s.believers[user]
	return ok
}

// snapshot returns a defensive copy of the statement whose believers set is
// detached from the platform's mutable state. Statement and Explore return
// snapshots so callers can hold them (and call Believers/BelievedBy) while
// Import/ImportFrom/Retract keep mutating the platform. Believers maps are
// copy-on-write: the snapshot shares the current map and flags it, and the
// next mutator installs a fresh copy instead of writing into the published
// one.
func (s *Statement) snapshot() *Statement {
	s.believersShared.Store(true)
	return &Statement{ID: s.ID, Triple: s.Triple, Owner: s.Owner, Ref: s.Ref,
		key: s.key, believers: s.believers}
}

// addBeliever records user's belief under the copy-on-write discipline:
// in-place when the map is private, via a fresh copy when a snapshot
// shares it. Caller holds the platform write lock.
func (s *Statement) addBeliever(user string) {
	if s.believersShared.Load() {
		s.believers = s.believersWith(user)
		s.believersShared.Store(false)
		return
	}
	s.believers[user] = struct{}{}
}

// removeBeliever is addBeliever's removal counterpart.
func (s *Statement) removeBeliever(user string) {
	if s.believersShared.Load() {
		s.believers = s.believersWithout(user)
		s.believersShared.Store(false)
		return
	}
	delete(s.believers, user)
}

// believersWith returns a copy of the statement's believers set with user
// added.
func (s *Statement) believersWith(user string) map[string]struct{} {
	c := make(map[string]struct{}, len(s.believers)+1)
	for u := range s.believers {
		c[u] = struct{}{}
	}
	c[user] = struct{}{}
	return c
}

// believersWithout is believersWith's removal counterpart.
func (s *Statement) believersWithout(user string) map[string]struct{} {
	c := make(map[string]struct{}, len(s.believers))
	for u := range s.believers {
		if u != user {
			c[u] = struct{}{}
		}
	}
	return c
}

// ConceptChecker validates that a subject is a concept extracted from the
// original data source (integrated annotation scenario). The CroSSE core
// wires this to a databank lookup through the resource mapping.
type ConceptChecker func(subject string) bool

// StoredQuery is a registered SPARQL query addressable by name from SESQL
// enrichment clauses (e.g. the paper's dangerQuery).
type StoredQuery struct {
	Name  string
	Owner string // empty = shared/global
	Text  string
}

// Platform is the semantic platform: users, statements, beliefs, stored
// queries, and per-user overlay KB views over one shared encoded arena.
// Safe for concurrent use.
type Platform struct {
	mu         sync.RWMutex
	users      map[string]struct{}
	statements map[string]*Statement
	order      []*Statement // statements in insertion order
	shared     *rdf.SharedStore
	views      map[string]*rdf.View
	byTriple   map[rdf.TripleKey]map[string]struct{} // encoded triple → asserting statement ids
	queries    map[string]*StoredQuery               // key: owner + "\x00" + name
	decls      map[string]*Declaration               // key: kind + "\x00" + iri
	checker    ConceptChecker
	nextID     int

	// epochs counts, per user, the mutations that can change what that
	// user's enriched queries answer: inserts, imports, retractions and
	// owned stored-query registrations. globalEpoch counts mutations that
	// affect every user at once (shared stored-query registrations).
	// ViewEpoch folds the two into one monotonic number per user; the
	// serving tier keys its enriched-result cache on it, so a belief
	// mutation invalidates exactly the affected users' cache entries while
	// everyone else keeps serving hits.
	epochs      map[string]uint64
	globalEpoch uint64
}

// NewPlatform returns an empty platform.
func NewPlatform() *Platform {
	return &Platform{
		users:      map[string]struct{}{},
		statements: map[string]*Statement{},
		shared:     rdf.NewSharedStore(),
		views:      map[string]*rdf.View{},
		byTriple:   map[rdf.TripleKey]map[string]struct{}{},
		queries:    map[string]*StoredQuery{},
	}
}

// ViewEpoch returns a monotonic counter that advances whenever a mutation
// may change the results of the user's enriched queries: her own inserts,
// imports and retractions, an owner retraction of a statement she believed,
// a stored-query registration in her namespace, and shared (ownerless)
// stored-query registrations. Epochs of an unknown user are 0. Read the
// epoch BEFORE evaluating a query that will be cached under it: a
// concurrent mutation then moves the epoch and the entry becomes
// unreachable, never stale.
func (p *Platform) ViewEpoch(user string) uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.globalEpoch + p.epochs[user]
}

// bumpView advances one user's view epoch. Caller holds the write lock.
func (p *Platform) bumpView(user string) {
	if p.epochs == nil {
		p.epochs = map[string]uint64{}
	}
	p.epochs[user]++
}

// SetConceptChecker installs the integrated-annotation validator.
func (p *Platform) SetConceptChecker(c ConceptChecker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checker = c
}

// RegisterUser adds a user. Registering an existing user is an error so
// callers notice identity typos.
func (p *Platform) RegisterUser(name string) error {
	if name == "" {
		return fmt.Errorf("kb: empty user name")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[name]; ok {
		return &DupError{msg: fmt.Sprintf("kb: user %q already registered", name)}
	}
	p.users[name] = struct{}{}
	p.views[name] = p.shared.NewView()
	return nil
}

// Users returns the sorted registered user names.
func (p *Platform) Users() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.users))
	for u := range p.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (p *Platform) requireUser(name string) error {
	if _, ok := p.users[name]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownUser, name)
	}
	return nil
}

// InsertOption customises statement insertion.
type InsertOption func(*insertOpts)

type insertOpts struct {
	ref        *Reference
	integrated bool
}

// WithReference attaches bibliographic metadata to the statement.
func WithReference(ref Reference) InsertOption {
	return func(o *insertOpts) { o.ref = &ref }
}

// InsertArgs is the resolved form of a set of InsertOptions. The
// write-ahead log records it instead of the opaque option closures so an
// insertion replays with exactly the arguments it was acknowledged with.
type InsertArgs struct {
	Ref        *Reference
	Integrated bool
}

// ResolveInsertOptions flattens options into their recordable form.
func ResolveInsertOptions(opts ...InsertOption) InsertArgs {
	var o insertOpts
	for _, opt := range opts {
		opt(&o)
	}
	return InsertArgs{Ref: o.ref, Integrated: o.integrated}
}

// Options converts the resolved arguments back to insertion options.
func (a InsertArgs) Options() []InsertOption {
	var opts []InsertOption
	if a.Ref != nil {
		opts = append(opts, WithReference(*a.Ref))
	}
	if a.Integrated {
		opts = append(opts, Integrated())
	}
	return opts
}

// Integrated marks the insertion as an integrated annotation: the subject
// must pass the platform's concept checker (i.e. be a concept shown by the
// main platform).
func Integrated() InsertOption {
	return func(o *insertOpts) { o.integrated = true }
}

// Insert adds a statement owned (and believed) by the user and returns its
// id. This is the independent annotation scenario unless Integrated() is
// given. The triple is interned and asserted once in the shared arena; the
// owner's view gains only its encoded key.
func (p *Platform) Insert(user string, t rdf.Triple, opts ...InsertOption) (string, error) {
	var o insertOpts
	for _, opt := range opts {
		opt(&o)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return "", err
	}
	if o.integrated {
		if p.checker == nil {
			return "", fmt.Errorf("kb: integrated annotation requires a concept checker")
		}
		if !t.S.IsIRI() && !t.S.IsLiteral() {
			return "", fmt.Errorf("kb: integrated annotation subject must be a named concept")
		}
		if !p.checker(t.S.Value) {
			return "", fmt.Errorf("kb: %q is not a concept of the data source", t.S.Value)
		}
	}
	p.nextID++
	id := fmt.Sprintf("stmt-%d", p.nextID)
	key := p.shared.AcquireTriple(t)
	st := &Statement{
		ID:        id,
		Triple:    t,
		Owner:     user,
		Ref:       o.ref,
		key:       key,
		believers: map[string]struct{}{user: {}},
	}
	p.statements[id] = st
	p.order = append(p.order, st)
	ids := p.byTriple[key]
	if ids == nil {
		ids = map[string]struct{}{}
		p.byTriple[key] = ids
	}
	ids[id] = struct{}{}
	p.views[user].Add(key)
	p.bumpView(user)
	return id, nil
}

// Retract removes the user's belief in a statement; when the owner
// retracts, the statement itself disappears for everyone. The byTriple
// index makes the "does another believed statement assert this triple?"
// check O(statements asserting that triple) instead of a scan over the
// whole platform.
func (p *Platform) Retract(user, id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return err
	}
	st, ok := p.statements[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrNoStatement, id)
	}
	if _, believes := st.believers[user]; !believes {
		return fmt.Errorf("kb: user %q does not hold statement %q", user, id)
	}
	if st.Owner == user {
		// Unlink the statement first so believesElsewhere doesn't see it as
		// a surviving assertion of the same triple.
		delete(p.statements, id)
		for i, s := range p.order {
			if s == st {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		p.unlinkTriple(id, st.key)
		// An owner retraction changes every believer's KB, so every
		// believer's view epoch moves (their cached enriched results may
		// now be stale), not just the retracting owner's.
		for u := range st.believers {
			if !p.believesElsewhere(u, st.key) {
				p.views[u].Remove(st.key)
			}
			p.bumpView(u)
		}
		p.shared.Release(st.key)
		return nil
	}
	st.removeBeliever(user)
	if !p.believesElsewhere(user, st.key) {
		p.views[user].Remove(st.key)
	}
	p.bumpView(user)
	return nil
}

// unlinkTriple drops a statement id from the triple→statements index.
func (p *Platform) unlinkTriple(id string, key rdf.TripleKey) {
	ids := p.byTriple[key]
	delete(ids, id)
	if len(ids) == 0 {
		delete(p.byTriple, key)
	}
}

// believesElsewhere reports whether some surviving statement asserting the
// triple is believed by the user.
func (p *Platform) believesElsewhere(user string, key rdf.TripleKey) bool {
	for sid := range p.byTriple[key] {
		if _, ok := p.statements[sid].believers[user]; ok {
			return true
		}
	}
	return false
}

// Import makes the user accept an existing statement as her own belief
// (crowdsourced annotation scenario). The statement's triple is already
// encoded, so the user's view gains a key — no term is re-interned.
func (p *Platform) Import(user, id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return err
	}
	st, ok := p.statements[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrNoStatement, id)
	}
	if _, already := st.believers[user]; already {
		return nil
	}
	st.addBeliever(user)
	p.views[user].Add(st.key)
	p.bumpView(user)
	return nil
}

// ImportFrom imports every statement owned by fromUser that matches the
// optional filter. It returns the imported statement count. The whole
// batch is applied to the importing user's view under one view lock, and
// believer sets mutate copy-on-write only when a snapshot shares them, so
// a bulk import of an encoded corpus is a pure ID-level set operation.
func (p *Platform) ImportFrom(user, fromUser string, filter func(*Statement) bool) (int, error) {
	ids, err := p.ImportFromIDs(user, fromUser, filter)
	return len(ids), err
}

// ImportFromIDs is ImportFrom returning the ids of the statements actually
// imported, in insertion order. The write-ahead log records those ids
// rather than the filter (an arbitrary closure), so replaying the batch
// imports exactly the statements the original call did even if unrelated
// statements were inserted or retracted since.
func (p *Platform) ImportFromIDs(user, fromUser string, filter func(*Statement) bool) ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return nil, err
	}
	if err := p.requireUser(fromUser); err != nil {
		return nil, err
	}
	var ids []string
	var keys []rdf.TripleKey
	for _, st := range p.order {
		if st.Owner != fromUser {
			continue
		}
		if filter != nil && !filter(st) {
			continue
		}
		if _, already := st.believers[user]; already {
			continue
		}
		st.addBeliever(user)
		ids = append(ids, st.ID)
		keys = append(keys, st.key)
	}
	if len(keys) > 0 {
		p.views[user].AddBatch(keys)
		p.bumpView(user)
	}
	return ids, nil
}

// Statement returns a snapshot of a statement by id. The snapshot's
// believers set is fixed at call time; later Import/Retract calls do not
// show through (re-fetch to observe them).
func (p *Platform) Statement(id string) (*Statement, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.statements[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoStatement, id)
	}
	return st.snapshot(), nil
}

// Explore lists statement snapshots in insertion order; annotations are
// public (Sec. III-A), so every user sees everything. The filter may be nil;
// it runs under the platform lock against the live statement, so it must not
// call back into the platform.
func (p *Platform) Explore(filter func(*Statement) bool) []*Statement {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Statement
	for _, st := range p.order {
		if filter == nil || filter(st) {
			out = append(out, st.snapshot())
		}
	}
	return out
}

// View returns the user's personal knowledge base: the graph of triples
// she owns or has imported, as an overlay over the platform's shared
// arena. This is the context SESQL queries run in; it implements both
// rdf.Graph and rdf.IDGraph, so the streaming SPARQL executor evaluates
// it ID-natively.
func (p *Platform) View(user string) (rdf.Graph, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.views[user]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownUser, user)
	}
	return v, nil
}

// ViewSize returns the triple count of the user's KB.
func (p *Platform) ViewSize(user string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if v, ok := p.views[user]; ok {
		return v.Len()
	}
	return 0
}

// Shared exposes the platform's shared encoded arena (the union graph over
// every asserted statement). Diagnostics and platform-wide tooling read it;
// per-user query evaluation always goes through View.
func (p *Platform) Shared() *rdf.SharedStore {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.shared
}

// --- stored SPARQL queries ---

func queryKey(owner, name string) string { return owner + "\x00" + name }

// RegisterQuery saves a named SPARQL query. owner "" makes it shared.
// The text is parsed and compiled eagerly so registration fails fast on
// syntax errors and on plan-time errors such as invalid constant regex()
// patterns.
func (p *Platform) RegisterQuery(owner, name, text string) error {
	if name == "" {
		return fmt.Errorf("kb: empty query name")
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return fmt.Errorf("kb: query %q: %w", name, err)
	}
	if _, err := sparql.Compile(q); err != nil {
		return fmt.Errorf("kb: query %q: %w", name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if owner != "" {
		if err := p.requireUser(owner); err != nil {
			return err
		}
	}
	key := queryKey(owner, name)
	if _, dup := p.queries[key]; dup {
		return &DupError{msg: fmt.Sprintf("kb: query %q already registered", name)}
	}
	p.queries[key] = &StoredQuery{Name: name, Owner: owner, Text: text}
	// A personal query changes only its owner's enrichment surface; a
	// shared query is visible to every user's LookupQuery fallback, so it
	// moves the global epoch.
	if owner != "" {
		p.bumpView(owner)
	} else {
		p.globalEpoch++
	}
	return nil
}

// LookupQuery resolves a stored query for the user: her own first, then the
// shared namespace.
func (p *Platform) LookupQuery(user, name string) (*StoredQuery, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if q, ok := p.queries[queryKey(user, name)]; ok {
		return q, true
	}
	q, ok := p.queries[queryKey("", name)]
	return q, ok
}

// Queries lists stored queries visible to the user (own + shared), sorted
// by name.
func (p *Platform) Queries(user string) []*StoredQuery {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*StoredQuery
	for _, q := range p.queries {
		if q.Owner == "" || q.Owner == user {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
