// Package kb implements CroSSE's crowdsourced knowledge-base layer
// (Sec. III and Fig. 4): registered users insert RDF statements into a
// shared semantic platform, each statement carries its provenance (the
// user who inserted it) and the set of users who "accepted it as their
// own" (beliefs), optionally a bibliographic reference, and each user's
// personal knowledge base — the context her SESQL queries are evaluated
// in — is the set of statements she owns or believes.
//
// The package supports the paper's three annotation scenarios:
//
//   - integrated annotation: the subject must be a concept extracted from
//     the original data source (validated through a concept checker);
//   - independent annotation: any triple may be inserted;
//   - crowdsourced annotation: users explore statements made public by
//     their peers and import (part of) them into their own KB.
//
// It also hosts the stored-SPARQL-query registry the paper's Example 4.5
// relies on (the `dangerQuery` property names a saved query rather than a
// stored triple property).
package kb

import (
	"fmt"
	"sort"
	"sync"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// SMG is the base IRI of the SmartGround ontology namespace.
const SMG = "http://smartground.eu/onto#"

// Fig. 4 vocabulary.
const (
	ClassUser      = SMG + "User"
	ClassStatement = SMG + "Statement"
	ClassReference = SMG + "Reference"

	PropUserStatement = SMG + "userStatement" // user → statement (owner)
	PropUserBelief    = SMG + "userBelief"    // user → statement (accepted)
	PropStmReference  = SMG + "stmReference"  // statement → reference
	PropRefTitle      = SMG + "refTitle"
	PropRefAuthor     = SMG + "refAuthor"
	PropRefLink       = SMG + "refLink"
	PropFileReference = SMG + "fileReference" // statement → attached file
)

// Reference is bibliographic/provenance metadata attached to a statement
// (smg:Reference in Fig. 4).
type Reference struct {
	Title  string
	Author string
	Link   string
	File   string // fileReference: user notes, pictures, reports, …
}

// Statement is one reified contextual assertion.
type Statement struct {
	ID     string
	Triple rdf.Triple
	Owner  string
	Ref    *Reference

	believers map[string]struct{}
}

// Believers returns the sorted user names that accepted this statement
// (the owner is always included).
func (s *Statement) Believers() []string {
	out := make([]string, 0, len(s.believers))
	for u := range s.believers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// BelievedBy reports whether the user owns or has imported the statement.
func (s *Statement) BelievedBy(user string) bool {
	_, ok := s.believers[user]
	return ok
}

// snapshot returns a defensive copy of the statement whose believers set is
// detached from the platform's mutable state. Statement and Explore return
// snapshots so callers can hold them (and call Believers/BelievedBy) while
// Import/ImportFrom/Retract keep mutating the platform. Believers maps are
// copy-on-write (mutators install a fresh map under the platform lock, they
// never write into a published one), so the snapshot shares the current map
// without copying it.
func (s *Statement) snapshot() *Statement {
	return &Statement{ID: s.ID, Triple: s.Triple, Owner: s.Owner, Ref: s.Ref,
		believers: s.believers}
}

// believersWith returns a copy of the statement's believers set with user
// added. Part of the copy-on-write discipline: published maps are immutable.
func (s *Statement) believersWith(user string) map[string]struct{} {
	c := make(map[string]struct{}, len(s.believers)+1)
	for u := range s.believers {
		c[u] = struct{}{}
	}
	c[user] = struct{}{}
	return c
}

// believersWithout is believersWith's removal counterpart.
func (s *Statement) believersWithout(user string) map[string]struct{} {
	c := make(map[string]struct{}, len(s.believers))
	for u := range s.believers {
		if u != user {
			c[u] = struct{}{}
		}
	}
	return c
}

// ConceptChecker validates that a subject is a concept extracted from the
// original data source (integrated annotation scenario). The CroSSE core
// wires this to a databank lookup through the resource mapping.
type ConceptChecker func(subject string) bool

// StoredQuery is a registered SPARQL query addressable by name from SESQL
// enrichment clauses (e.g. the paper's dangerQuery).
type StoredQuery struct {
	Name  string
	Owner string // empty = shared/global
	Text  string
}

// Platform is the semantic platform: users, statements, beliefs, stored
// queries, and per-user materialised KB views. Safe for concurrent use.
type Platform struct {
	mu         sync.RWMutex
	users      map[string]struct{}
	statements map[string]*Statement
	order      []string // statement ids in insertion order
	views      map[string]*rdf.Store
	queries    map[string]*StoredQuery // key: owner + "\x00" + name
	decls      map[string]*Declaration // key: kind + "\x00" + iri
	checker    ConceptChecker
	nextID     int
}

// NewPlatform returns an empty platform.
func NewPlatform() *Platform {
	return &Platform{
		users:      map[string]struct{}{},
		statements: map[string]*Statement{},
		views:      map[string]*rdf.Store{},
		queries:    map[string]*StoredQuery{},
	}
}

// SetConceptChecker installs the integrated-annotation validator.
func (p *Platform) SetConceptChecker(c ConceptChecker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checker = c
}

// RegisterUser adds a user. Registering an existing user is an error so
// callers notice identity typos.
func (p *Platform) RegisterUser(name string) error {
	if name == "" {
		return fmt.Errorf("kb: empty user name")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[name]; ok {
		return fmt.Errorf("kb: user %q already registered", name)
	}
	p.users[name] = struct{}{}
	p.views[name] = rdf.NewStore()
	return nil
}

// Users returns the sorted registered user names.
func (p *Platform) Users() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.users))
	for u := range p.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (p *Platform) requireUser(name string) error {
	if _, ok := p.users[name]; !ok {
		return fmt.Errorf("kb: unknown user %q", name)
	}
	return nil
}

// InsertOption customises statement insertion.
type InsertOption func(*insertOpts)

type insertOpts struct {
	ref        *Reference
	integrated bool
}

// WithReference attaches bibliographic metadata to the statement.
func WithReference(ref Reference) InsertOption {
	return func(o *insertOpts) { o.ref = &ref }
}

// Integrated marks the insertion as an integrated annotation: the subject
// must pass the platform's concept checker (i.e. be a concept shown by the
// main platform).
func Integrated() InsertOption {
	return func(o *insertOpts) { o.integrated = true }
}

// Insert adds a statement owned (and believed) by the user and returns its
// id. This is the independent annotation scenario unless Integrated() is
// given.
func (p *Platform) Insert(user string, t rdf.Triple, opts ...InsertOption) (string, error) {
	var o insertOpts
	for _, opt := range opts {
		opt(&o)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return "", err
	}
	if o.integrated {
		if p.checker == nil {
			return "", fmt.Errorf("kb: integrated annotation requires a concept checker")
		}
		if !t.S.IsIRI() && !t.S.IsLiteral() {
			return "", fmt.Errorf("kb: integrated annotation subject must be a named concept")
		}
		if !p.checker(t.S.Value) {
			return "", fmt.Errorf("kb: %q is not a concept of the data source", t.S.Value)
		}
	}
	p.nextID++
	id := fmt.Sprintf("stmt-%d", p.nextID)
	st := &Statement{
		ID:        id,
		Triple:    t,
		Owner:     user,
		Ref:       o.ref,
		believers: map[string]struct{}{user: {}},
	}
	p.statements[id] = st
	p.order = append(p.order, id)
	p.views[user].Add(t)
	return id, nil
}

// Retract removes the user's belief in a statement; when the owner
// retracts, the statement itself disappears for everyone.
func (p *Platform) Retract(user, id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return err
	}
	st, ok := p.statements[id]
	if !ok {
		return fmt.Errorf("kb: no statement %q", id)
	}
	if _, believes := st.believers[user]; !believes {
		return fmt.Errorf("kb: user %q does not hold statement %q", user, id)
	}
	if st.Owner == user {
		// Remove the statement first so dropFromView doesn't see it as a
		// surviving assertion of the same triple.
		delete(p.statements, id)
		for i, sid := range p.order {
			if sid == id {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		for u := range st.believers {
			p.dropFromView(u, st.Triple)
		}
		return nil
	}
	st.believers = st.believersWithout(user)
	p.dropFromView(user, st.Triple)
	return nil
}

// dropFromView removes the triple from a user view unless another believed
// statement asserts the same triple.
func (p *Platform) dropFromView(user string, t rdf.Triple) {
	for _, st := range p.statements {
		if st.Triple == t {
			if _, ok := st.believers[user]; ok {
				return // still asserted by another statement
			}
		}
	}
	p.views[user].Remove(t)
}

// Import makes the user accept an existing statement as her own belief
// (crowdsourced annotation scenario).
func (p *Platform) Import(user, id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return err
	}
	st, ok := p.statements[id]
	if !ok {
		return fmt.Errorf("kb: no statement %q", id)
	}
	if _, already := st.believers[user]; !already {
		st.believers = st.believersWith(user)
	}
	p.views[user].Add(st.Triple)
	return nil
}

// ImportFrom imports every statement owned by fromUser that matches the
// optional filter. It returns the imported statement count.
func (p *Platform) ImportFrom(user, fromUser string, filter func(*Statement) bool) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return 0, err
	}
	if err := p.requireUser(fromUser); err != nil {
		return 0, err
	}
	n := 0
	for _, id := range p.order {
		st := p.statements[id]
		if st.Owner != fromUser {
			continue
		}
		if filter != nil && !filter(st) {
			continue
		}
		if _, already := st.believers[user]; already {
			continue
		}
		st.believers = st.believersWith(user)
		p.views[user].Add(st.Triple)
		n++
	}
	return n, nil
}

// Statement returns a snapshot of a statement by id. The snapshot's
// believers set is fixed at call time; later Import/Retract calls do not
// show through (re-fetch to observe them).
func (p *Platform) Statement(id string) (*Statement, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.statements[id]
	if !ok {
		return nil, fmt.Errorf("kb: no statement %q", id)
	}
	return st.snapshot(), nil
}

// Explore lists statement snapshots in insertion order; annotations are
// public (Sec. III-A), so every user sees everything. The filter may be nil;
// it runs under the platform lock against the live statement, so it must not
// call back into the platform.
func (p *Platform) Explore(filter func(*Statement) bool) []*Statement {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Statement
	for _, id := range p.order {
		st := p.statements[id]
		if filter == nil || filter(st) {
			out = append(out, st.snapshot())
		}
	}
	return out
}

// View returns the user's personal knowledge base: the graph of triples
// she owns or has imported. This is the context SESQL queries run in.
func (p *Platform) View(user string) (rdf.Graph, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.views[user]
	if !ok {
		return nil, fmt.Errorf("kb: unknown user %q", user)
	}
	return v, nil
}

// ViewSize returns the triple count of the user's KB.
func (p *Platform) ViewSize(user string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if v, ok := p.views[user]; ok {
		return v.Len()
	}
	return 0
}

// --- stored SPARQL queries ---

func queryKey(owner, name string) string { return owner + "\x00" + name }

// RegisterQuery saves a named SPARQL query. owner "" makes it shared.
// The text is parsed and compiled eagerly so registration fails fast on
// syntax errors and on plan-time errors such as invalid constant regex()
// patterns.
func (p *Platform) RegisterQuery(owner, name, text string) error {
	if name == "" {
		return fmt.Errorf("kb: empty query name")
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return fmt.Errorf("kb: query %q: %w", name, err)
	}
	if _, err := sparql.Compile(q); err != nil {
		return fmt.Errorf("kb: query %q: %w", name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if owner != "" {
		if err := p.requireUser(owner); err != nil {
			return err
		}
	}
	key := queryKey(owner, name)
	if _, dup := p.queries[key]; dup {
		return fmt.Errorf("kb: query %q already registered", name)
	}
	p.queries[key] = &StoredQuery{Name: name, Owner: owner, Text: text}
	return nil
}

// LookupQuery resolves a stored query for the user: her own first, then the
// shared namespace.
func (p *Platform) LookupQuery(user, name string) (*StoredQuery, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if q, ok := p.queries[queryKey(user, name)]; ok {
		return q, true
	}
	q, ok := p.queries[queryKey("", name)]
	return q, ok
}

// Queries lists stored queries visible to the user (own + shared), sorted
// by name.
func (p *Platform) Queries(user string) []*StoredQuery {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*StoredQuery
	for _, q := range p.queries {
		if q.Owner == "" || q.Owner == user {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
