package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"crosse/internal/rdf"
)

// randomPlatform builds a platform with random users, statements, beliefs,
// references and stored queries.
func randomPlatform(t *testing.T, seed int64) *Platform {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewPlatform()
	nUsers := 2 + rng.Intn(4)
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%d", i)
		if err := p.RegisterUser(users[i]); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	nStmts := 5 + rng.Intn(30)
	for i := 0; i < nStmts; i++ {
		owner := users[rng.Intn(nUsers)]
		var opts []InsertOption
		if rng.Intn(3) == 0 {
			opts = append(opts, WithReference(Reference{
				Title:  fmt.Sprintf("title %d", i),
				Author: fmt.Sprintf("author %d", rng.Intn(5)),
				Link:   fmt.Sprintf("http://ref/%d", i),
				File:   fmt.Sprintf("file%d.txt", i),
			}))
		}
		var obj rdf.Term
		if rng.Intn(2) == 0 {
			obj = rdf.NewIRI(SMG + fmt.Sprintf("obj%d", rng.Intn(10)))
		} else {
			obj = rdf.NewLiteral(fmt.Sprintf("lit %d \"quoted\"\n", rng.Intn(10)))
		}
		id, err := p.Insert(owner, rdf.Triple{
			S: rdf.NewIRI(SMG + fmt.Sprintf("subj%d", rng.Intn(12))),
			P: rdf.NewIRI(SMG + fmt.Sprintf("prop%d", rng.Intn(6))),
			O: obj,
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Random beliefs.
	for _, id := range ids {
		for _, u := range users {
			if rng.Intn(3) == 0 {
				if err := p.Import(u, id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Stored queries.
	if err := p.RegisterQuery("", "shared", `SELECT ?x WHERE { ?x ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterQuery(users[0], "own", `ASK { ?x ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	return p
}

// snapshot captures the observable platform state for comparison.
func snapshot(p *Platform) map[string]any {
	out := map[string]any{"users": p.Users()}
	var stmts []string
	for _, st := range p.Explore(nil) {
		ref := ""
		if st.Ref != nil {
			ref = st.Ref.Title + "|" + st.Ref.Author + "|" + st.Ref.Link + "|" + st.Ref.File
		}
		stmts = append(stmts, fmt.Sprintf("%s;%s;%v;%s", st.Triple, st.Owner, st.Believers(), ref))
	}
	sort.Strings(stmts)
	out["statements"] = stmts
	views := map[string]int{}
	for _, u := range p.Users() {
		views[u] = p.ViewSize(u)
	}
	out["views"] = views
	return out
}

// Property: Save → Load preserves every observable aspect of the platform
// for random platforms.
func TestSaveLoadRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p := randomPlatform(t, seed)
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		p2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		a, b := snapshot(p), snapshot(p2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: round trip differs:\n a: %v\n b: %v", seed, a, b)
		}
		// Stored queries survive too.
		if _, ok := p2.LookupQuery("user0", "own"); !ok {
			t.Fatalf("seed %d: owned query lost", seed)
		}
		if _, ok := p2.LookupQuery("user1", "shared"); !ok {
			t.Fatalf("seed %d: shared query lost", seed)
		}
	}
}

// Property: a user's view is exactly the set of triples of statements she
// believes.
func TestViewMatchesBeliefs(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p := randomPlatform(t, seed)
		for _, u := range p.Users() {
			want := map[rdf.Triple]struct{}{}
			for _, st := range p.Explore(nil) {
				if st.BelievedBy(u) {
					want[st.Triple] = struct{}{}
				}
			}
			view, err := p.View(u)
			if err != nil {
				t.Fatal(err)
			}
			got := map[rdf.Triple]struct{}{}
			view.ForEach(rdf.Pattern{}, func(tr rdf.Triple) bool {
				got[tr] = struct{}{}
				return true
			})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d user %s: view has %d triples, beliefs imply %d",
					seed, u, len(got), len(want))
			}
		}
	}
}

// Property: retracting everything a user owns empties what she contributed
// but never disturbs other owners' statements.
func TestMassRetractionIsolation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := randomPlatform(t, seed)
		users := p.Users()
		victim := users[0]
		othersBefore := len(p.Explore(func(st *Statement) bool { return st.Owner != victim }))
		for _, st := range p.Explore(func(st *Statement) bool { return st.Owner == victim }) {
			if err := p.Retract(victim, st.ID); err != nil {
				t.Fatal(err)
			}
		}
		if n := len(p.Explore(func(st *Statement) bool { return st.Owner == victim })); n != 0 {
			t.Fatalf("seed %d: %d statements survive owner retraction", seed, n)
		}
		othersAfter := len(p.Explore(func(st *Statement) bool { return st.Owner != victim }))
		if othersBefore != othersAfter {
			t.Fatalf("seed %d: other owners affected: %d → %d", seed, othersBefore, othersAfter)
		}
	}
}
