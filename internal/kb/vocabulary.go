package kb

import (
	"fmt"
	"sort"
	"strings"

	"crosse/internal/rdf"
)

// This file implements the remaining Fig. 4 vocabulary: smg:Resource and
// smg:Property declarations. The paper lets users "defin[e] new concepts
// and new properties" (Sec. V) and relate them to known ones; the semantic
// platform records who declared what via the userResource / userProperty
// edges, and annotation UIs use the declared vocabulary for suggestions.

// Fig. 4 vocabulary for user-declared terms.
const (
	ClassResource    = SMG + "Resource"
	ClassProperty    = SMG + "Property"
	PropUserResource = SMG + "userResource"
	PropUserProperty = SMG + "userProperty"
)

// Declaration is one user-declared vocabulary term.
type Declaration struct {
	Name  string // the term's IRI
	Owner string
	Kind  DeclKind
}

// DeclKind discriminates resource vs property declarations.
type DeclKind int

// Declaration kinds.
const (
	DeclResource DeclKind = iota
	DeclProperty
)

func (k DeclKind) String() string {
	if k == DeclProperty {
		return "property"
	}
	return "resource"
}

// DeclareResource records that the user introduces a new concept into the
// shared vocabulary. Declarations are idempotent per (name); the first
// declarer is recorded as owner.
func (p *Platform) DeclareResource(user, iri string) error {
	return p.declare(user, iri, DeclResource)
}

// DeclareProperty records a new user-declared property.
func (p *Platform) DeclareProperty(user, iri string) error {
	return p.declare(user, iri, DeclProperty)
}

func (p *Platform) declare(user, iri string, kind DeclKind) error {
	if iri == "" {
		return fmt.Errorf("kb: empty declaration")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.requireUser(user); err != nil {
		return err
	}
	if p.decls == nil {
		p.decls = map[string]*Declaration{}
	}
	key := kind.String() + "\x00" + iri
	if _, ok := p.decls[key]; ok {
		return nil // idempotent
	}
	p.decls[key] = &Declaration{Name: iri, Owner: user, Kind: kind}
	return nil
}

// Declarations lists declared terms of the given kind, sorted by name.
func (p *Platform) Declarations(kind DeclKind) []Declaration {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []Declaration
	for _, d := range p.decls {
		if d.Kind == kind {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SuggestedProperties returns the property vocabulary an annotation UI
// should offer: explicitly declared properties plus every property already
// used in statements, sorted and deduplicated. This backs the paper's
// "connecting existing concepts through suggested properties" (Sec. V).
func (p *Platform) SuggestedProperties() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	seen := map[string]struct{}{}
	for _, d := range p.decls {
		if d.Kind == DeclProperty {
			seen[d.Name] = struct{}{}
		}
	}
	for _, st := range p.statements {
		if st.Triple.P.IsIRI() {
			seen[st.Triple.P.Value] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// declsToRDF renders declarations into the reified graph (called by ToRDF
// with the platform lock held).
func (p *Platform) declsToRDF(g *rdf.Store) {
	typ := rdf.NewIRI(rdf.RDFType)
	for _, d := range p.decls {
		node := rdf.NewIRI(d.Name)
		switch d.Kind {
		case DeclProperty:
			g.Add(rdf.Triple{S: node, P: typ, O: rdf.NewIRI(ClassProperty)})
			g.Add(rdf.Triple{S: userIRI(d.Owner), P: rdf.NewIRI(PropUserProperty), O: node})
		default:
			g.Add(rdf.Triple{S: node, P: typ, O: rdf.NewIRI(ClassResource)})
			g.Add(rdf.Triple{S: userIRI(d.Owner), P: rdf.NewIRI(PropUserResource), O: node})
		}
	}
}

// declsFromRDF rebuilds declarations from the reified graph (called by
// FromRDF after users exist).
func declsFromRDF(p *Platform, g *rdf.Store) error {
	typ := rdf.NewIRI(rdf.RDFType)
	load := func(class, edge string, kind DeclKind) error {
		for _, t := range g.MatchSorted(rdf.Pattern{P: typ, O: rdf.NewIRI(class)}) {
			owners := g.Subjects(rdf.NewIRI(edge), t.S)
			if len(owners) != 1 {
				return fmt.Errorf("kb: declaration %s has %d owners", t.S, len(owners))
			}
			owner := strings.TrimPrefix(owners[0].Value, SMG+"user/")
			if err := p.declare(owner, t.S.Value, kind); err != nil {
				return err
			}
		}
		return nil
	}
	if err := load(ClassResource, PropUserResource, DeclResource); err != nil {
		return err
	}
	return load(ClassProperty, PropUserProperty, DeclProperty)
}
