package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// allTriplesQuery orders the full view deterministically, so equal results
// mean equal graphs.
const allTriplesQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`

// comparePlatforms asserts that restored is observationally identical to
// want: users, statements (identity, provenance, believers, references),
// stored queries, declarations, every user's view (SPARQL results and
// pattern counts), and the arena's shape.
func comparePlatforms(t *testing.T, want, restored *Platform) {
	t.Helper()

	if got, exp := restored.Users(), want.Users(); !reflect.DeepEqual(got, exp) {
		t.Fatalf("users = %v, want %v", got, exp)
	}

	ws, rs := want.Explore(nil), restored.Explore(nil)
	if len(ws) != len(rs) {
		t.Fatalf("restored %d statements, want %d", len(rs), len(ws))
	}
	for i := range ws {
		a, b := ws[i], rs[i]
		if a.ID != b.ID || a.Triple != b.Triple || a.Owner != b.Owner || a.key != b.key {
			t.Fatalf("statement %d: got {%s %v %s %v}, want {%s %v %s %v}",
				i, b.ID, b.Triple, b.Owner, b.key, a.ID, a.Triple, a.Owner, a.key)
		}
		if !reflect.DeepEqual(a.Believers(), b.Believers()) {
			t.Fatalf("statement %s believers = %v, want %v", a.ID, b.Believers(), a.Believers())
		}
		if (a.Ref == nil) != (b.Ref == nil) || (a.Ref != nil && *a.Ref != *b.Ref) {
			t.Fatalf("statement %s reference = %+v, want %+v", a.ID, b.Ref, a.Ref)
		}
	}

	for _, u := range want.Users() {
		if restored.ViewSize(u) != want.ViewSize(u) {
			t.Fatalf("view of %q has %d triples, want %d", u, restored.ViewSize(u), want.ViewSize(u))
		}
		if !reflect.DeepEqual(restored.Queries(u), want.Queries(u)) {
			t.Fatalf("queries of %q differ", u)
		}
		wv, err := want.View(u)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := restored.View(u)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := sparql.Eval(wv, allTriplesQuery)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := sparql.Eval(rv, allTriplesQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wres.Bindings, rres.Bindings) {
			t.Fatalf("SPARQL results over %q's view differ after restore", u)
		}
		// Pattern counts for every shape derived from each view triple.
		wv.(*rdf.View).ForEachIDs(rdf.PatternIDs{}, func(s, p, o rdf.TermID) bool {
			for _, pat := range []rdf.PatternIDs{
				{}, {S: s}, {P: p}, {O: o},
				{S: s, P: p}, {P: p, O: o}, {S: s, O: o}, {S: s, P: p, O: o},
			} {
				if got, exp := rv.(*rdf.View).CountIDs(pat), wv.(*rdf.View).CountIDs(pat); got != exp {
					t.Fatalf("view %q CountIDs(%v) = %d, want %d", u, pat, got, exp)
				}
			}
			return true
		})
	}

	for _, kind := range []DeclKind{DeclResource, DeclProperty} {
		if !reflect.DeepEqual(restored.Declarations(kind), want.Declarations(kind)) {
			t.Fatalf("%v declarations differ", kind)
		}
	}
	if restored.Shared().Len() != want.Shared().Len() {
		t.Fatalf("arena has %d triples, want %d", restored.Shared().Len(), want.Shared().Len())
	}
	if restored.Shared().DictLen() > want.Shared().DictLen() {
		t.Fatalf("restored dictionary grew: %d > %d", restored.Shared().DictLen(), want.Shared().DictLen())
	}
}

func roundTrip(t *testing.T, p *Platform) *Platform {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return restored
}

func TestPlatformSnapshotRoundTrip(t *testing.T) {
	p := NewPlatform()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := p.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	iri := func(s string) rdf.Term { return rdf.NewIRI(SMG + s) }
	id1, err := p.Insert("alice", rdf.Triple{S: iri("lf1"), P: iri("dangerLevel"), O: rdf.NewLiteral("high")},
		WithReference(Reference{Title: "survey", Author: "alice", Link: "http://x/report", File: "notes.txt"}))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := p.Insert("bob", rdf.Triple{S: iri("lf2"), P: iri("pollutes"), O: iri("river1")})
	if err != nil {
		t.Fatal(err)
	}
	// Same triple asserted by a second statement: arena refcount 2.
	if _, err := p.Insert("carol", rdf.Triple{S: iri("lf2"), P: iri("pollutes"), O: iri("river1")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Import("carol", id1); err != nil {
		t.Fatal(err)
	}
	if err := p.Import("alice", id2); err != nil {
		t.Fatal(err)
	}
	// A retracted belief must stay retracted after restore.
	id3, err := p.Insert("bob", rdf.Triple{S: iri("lf3"), P: iri("dangerLevel"), O: rdf.NewLiteral("low")})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Import("alice", id3); err != nil {
		t.Fatal(err)
	}
	if err := p.Retract("alice", id3); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterQuery("", "dangerQuery",
		"SELECT ?s WHERE { ?s <"+SMG+"dangerLevel> \"high\" }"); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterQuery("alice", "mine", "SELECT ?s ?o WHERE { ?s <"+SMG+"pollutes> ?o }"); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareResource("bob", SMG+"River"); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareProperty("carol", SMG+"flowsInto"); err != nil {
		t.Fatal(err)
	}

	restored := roundTrip(t, p)
	comparePlatforms(t, p, restored)

	// The restored platform is live: new ids do not collide, beliefs and
	// retractions work, and refcounted triples survive partial retracts.
	newID, err := restored.Insert("alice", rdf.Triple{S: iri("lf9"), P: iri("dangerLevel"), O: rdf.NewLiteral("mid")})
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := restored.statements[newID]; !dup || newID == id1 || newID == id2 || newID == id3 {
		t.Fatalf("post-restore insert got id %q colliding with restored ids", newID)
	}
	if err := restored.Retract("bob", id2); err != nil {
		t.Fatal(err)
	}
	// carol's own statement still asserts the same triple, so her view and
	// alice's (importer of id2... which is gone) must be consistent:
	v, err := restored.View("carol")
	if err != nil {
		t.Fatal(err)
	}
	if v.Count(rdf.Pattern{S: iri("lf2")}) != 1 {
		t.Fatalf("carol lost a triple she still asserts")
	}
}

func TestSnapshotRejectsCorruptStream(t *testing.T) {
	p := NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("alice", rdf.Triple{
		S: rdf.NewIRI(SMG + "a"), P: rdf.NewIRI(SMG + "b"), O: rdf.NewLiteral("c"),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Restore(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatalf("truncated snapshot restored without error")
	}
	if _, err := Restore(bytes.NewReader([]byte("NOTASNAP0123"))); err == nil {
		t.Fatalf("bad magic accepted")
	}
	bumped := append([]byte(nil), raw...)
	bumped[len(snapshotMagic)] = 99 // unsupported version
	if _, err := Restore(bytes.NewReader(bumped)); err == nil {
		t.Fatalf("unknown version accepted")
	}
}

// TestPlatformSnapshotProperty round-trips randomised platforms: random
// users, statements over a small term pool (forcing shared triples and
// refcounts > 1), random references, imports, retracts, declarations and
// stored queries. Losslessness is checked observationally (SPARQL results,
// pattern counts, statement metadata).
func TestPlatformSnapshotProperty(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		p := NewPlatform()
		nUsers := 2 + rng.Intn(5)
		users := make([]string, nUsers)
		for i := range users {
			users[i] = fmt.Sprintf("user%d", i)
			if err := p.RegisterUser(users[i]); err != nil {
				t.Fatal(err)
			}
		}
		term := func() rdf.Term {
			switch rng.Intn(4) {
			case 0:
				return rdf.NewIRI(fmt.Sprintf("http://x/r%d", rng.Intn(12)))
			case 1:
				return rdf.NewLiteral(fmt.Sprintf("lit %d", rng.Intn(12)))
			case 2:
				return rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(12)), rdf.XSDInteger)
			default:
				return rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(6)))
			}
		}
		var ids []string
		nStmts := 1 + rng.Intn(40)
		for i := 0; i < nStmts; i++ {
			owner := users[rng.Intn(nUsers)]
			tr := rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(10))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5))),
				O: term(),
			}
			var opts []InsertOption
			if rng.Intn(3) == 0 {
				opts = append(opts, WithReference(Reference{
					Title:  fmt.Sprintf("title %d", i),
					Author: owner,
					Link:   fmt.Sprintf("http://ref/%d", i),
				}))
			}
			id, err := p.Insert(owner, tr, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < nStmts; i++ {
			if err := p.Import(users[rng.Intn(nUsers)], ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nStmts/4; i++ {
			// Retracts may fail when the user holds no belief; that's fine.
			_ = p.Retract(users[rng.Intn(nUsers)], ids[rng.Intn(len(ids))])
		}
		if rng.Intn(2) == 0 {
			if err := p.RegisterQuery("", "shared", `ASK { ?s ?p ?o }`); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := p.DeclareResource(users[0], fmt.Sprintf("http://x/decl%d", trial)); err != nil {
				t.Fatal(err)
			}
		}

		restored := roundTrip(t, p)
		comparePlatforms(t, p, restored)
	}
}
