package kb

import (
	"bytes"
	"strings"
	"testing"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

func iri(local string) rdf.Term { return rdf.NewIRI(SMG + local) }

func tr(s, p, o string) rdf.Triple { return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)} }

func newPlatformWithUsers(t *testing.T, users ...string) *Platform {
	t.Helper()
	p := NewPlatform()
	for _, u := range users {
		if err := p.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestRegisterUser(t *testing.T) {
	p := NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUser("alice"); err == nil {
		t.Error("duplicate user must fail")
	}
	if err := p.RegisterUser(""); err == nil {
		t.Error("empty user must fail")
	}
	if got := p.Users(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("Users = %v", got)
	}
}

func TestInsertAndView(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, err := p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Statement(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Owner != "alice" || !st.BelievedBy("alice") || st.BelievedBy("bob") {
		t.Errorf("%+v", st)
	}
	if p.ViewSize("alice") != 1 || p.ViewSize("bob") != 0 {
		t.Errorf("views: alice=%d bob=%d", p.ViewSize("alice"), p.ViewSize("bob"))
	}
	if _, err := p.Insert("ghost", tr("a", "b", "c")); err == nil {
		t.Error("unknown user must fail")
	}
}

func TestViewIsQueryable(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"))
	p.Insert("alice", tr("Lead", "isA", "HazardousWaste"))
	g, err := p.View("alice")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sparql.Eval(g, `PREFIX smg: <`+SMG+`> SELECT ?x WHERE { ?x smg:isA smg:HazardousWaste }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bindings) != 2 {
		t.Errorf("bindings = %d", len(r.Bindings))
	}
	if _, err := p.View("ghost"); err == nil {
		t.Error("unknown user view must fail")
	}
}

func TestImportSharesKnowledge(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, _ := p.Insert("alice", tr("Asbestos", "isA", "HazardousWaste"))
	if err := p.Import("bob", id); err != nil {
		t.Fatal(err)
	}
	if p.ViewSize("bob") != 1 {
		t.Error("import must populate bob's view")
	}
	st, _ := p.Statement(id)
	if got := st.Believers(); strings.Join(got, ",") != "alice,bob" {
		t.Errorf("believers = %v", got)
	}
	// Importing twice is idempotent.
	if err := p.Import("bob", id); err != nil {
		t.Fatal(err)
	}
	if p.ViewSize("bob") != 1 {
		t.Error("double import must not duplicate")
	}
	if err := p.Import("bob", "stmt-999"); err == nil {
		t.Error("missing statement must fail")
	}
}

func TestImportFromWithFilter(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"))
	p.Insert("alice", tr("Gold", "isA", "PreciousMetal"))
	p.Insert("alice", tr("Lead", "isA", "HazardousWaste"))
	n, err := p.ImportFrom("bob", "alice", func(st *Statement) bool {
		return st.Triple.O == iri("HazardousWaste")
	})
	if err != nil || n != 2 {
		t.Fatalf("imported %d, err %v", n, err)
	}
	if p.ViewSize("bob") != 2 {
		t.Errorf("bob view = %d", p.ViewSize("bob"))
	}
	// Re-import is a no-op.
	n, _ = p.ImportFrom("bob", "alice", nil)
	if n != 1 { // only the Gold statement remains unimported
		t.Errorf("second import n = %d", n)
	}
}

func TestRetractByOwnerRemovesEverywhere(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, _ := p.Insert("alice", tr("X", "p", "Y"))
	p.Import("bob", id)
	if err := p.Retract("alice", id); err != nil {
		t.Fatal(err)
	}
	if p.ViewSize("alice") != 0 || p.ViewSize("bob") != 0 {
		t.Error("owner retraction must clear all views")
	}
	if _, err := p.Statement(id); err == nil {
		t.Error("statement must be gone")
	}
}

func TestRetractBeliefOnly(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, _ := p.Insert("alice", tr("X", "p", "Y"))
	p.Import("bob", id)
	if err := p.Retract("bob", id); err != nil {
		t.Fatal(err)
	}
	if p.ViewSize("bob") != 0 || p.ViewSize("alice") != 1 {
		t.Error("belief retraction must only clear bob")
	}
	if err := p.Retract("bob", id); err == nil {
		t.Error("retracting a non-held statement must fail")
	}
}

func TestRetractKeepsTripleAssertedTwice(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	// Same triple asserted independently by both users.
	idA, _ := p.Insert("alice", tr("X", "p", "Y"))
	idB, _ := p.Insert("bob", tr("X", "p", "Y"))
	p.Import("alice", idB) // alice also believes bob's copy
	if err := p.Retract("alice", idA); err != nil {
		t.Fatal(err)
	}
	// Alice still believes bob's statement with the same triple.
	if p.ViewSize("alice") != 1 {
		t.Error("triple asserted by another believed statement must survive")
	}
}

func TestIntegratedAnnotationValidation(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	if _, err := p.Insert("alice", tr("Mercury", "isA", "X"), Integrated()); err == nil {
		t.Error("integrated without checker must fail")
	}
	p.SetConceptChecker(func(s string) bool { return strings.Contains(s, "Mercury") })
	if _, err := p.Insert("alice", tr("Mercury", "isA", "X"), Integrated()); err != nil {
		t.Errorf("valid concept rejected: %v", err)
	}
	if _, err := p.Insert("alice", tr("Unobtainium", "isA", "X"), Integrated()); err == nil {
		t.Error("unknown concept must be rejected in integrated mode")
	}
	// Independent annotation has no such check.
	if _, err := p.Insert("alice", tr("Unobtainium", "isA", "X")); err != nil {
		t.Errorf("independent annotation rejected: %v", err)
	}
}

func TestExplore(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	p.Insert("alice", tr("A", "p", "B"))
	p.Insert("bob", tr("C", "p", "D"))
	p.Insert("alice", tr("E", "p", "F"))
	all := p.Explore(nil)
	if len(all) != 3 || all[0].Triple.S != iri("A") || all[2].Triple.S != iri("E") {
		t.Errorf("explore order: %v", all)
	}
	onlyBob := p.Explore(func(st *Statement) bool { return st.Owner == "bob" })
	if len(onlyBob) != 1 || onlyBob[0].Triple.S != iri("C") {
		t.Errorf("filtered explore: %v", onlyBob)
	}
}

func TestStoredQueries(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	q := `PREFIX smg: <` + SMG + `> SELECT ?x WHERE { ?x smg:isA smg:HazardousWaste }`
	if err := p.RegisterQuery("", "dangerQuery", q); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterQuery("alice", "dangerQuery", `SELECT ?x WHERE { ?x ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	// Alice resolves her own override; bob falls back to shared.
	qa, ok := p.LookupQuery("alice", "dangerQuery")
	if !ok || qa.Owner != "alice" {
		t.Errorf("alice lookup: %+v ok=%v", qa, ok)
	}
	qb, ok := p.LookupQuery("bob", "dangerQuery")
	if !ok || qb.Owner != "" {
		t.Errorf("bob lookup: %+v ok=%v", qb, ok)
	}
	if _, ok := p.LookupQuery("bob", "missing"); ok {
		t.Error("missing query must not resolve")
	}
	// Syntax errors rejected at registration.
	if err := p.RegisterQuery("", "bad", "SELECT WHERE"); err == nil {
		t.Error("bad SPARQL must fail registration")
	}
	if err := p.RegisterQuery("", "dangerQuery", q); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := p.RegisterQuery("ghost", "x", q); err == nil {
		t.Error("unknown owner must fail")
	}
	if got := p.Queries("bob"); len(got) != 1 {
		t.Errorf("bob sees %d queries", len(got))
	}
	if got := p.Queries("alice"); len(got) != 2 {
		t.Errorf("alice sees %d queries", len(got))
	}
}

func TestToRDFShape(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, _ := p.Insert("alice", tr("Mercury", "dangerLevel", "high"),
		WithReference(Reference{Title: "WHO report", Author: "WHO", Link: "http://who.int", File: "notes.txt"}))
	p.Import("bob", id)
	g := p.ToRDF()

	typ := rdf.NewIRI(rdf.RDFType)
	if n := g.Count(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassUser)}); n != 2 {
		t.Errorf("users in graph = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassStatement)}); n != 1 {
		t.Errorf("statements in graph = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: rdf.NewIRI(PropUserBelief)}); n != 2 {
		t.Errorf("beliefs in graph = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: rdf.NewIRI(PropUserStatement)}); n != 1 {
		t.Errorf("ownership edges = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassReference)}); n != 1 {
		t.Errorf("references = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: rdf.NewIRI(PropFileReference)}); n != 1 {
		t.Errorf("file references = %d", n)
	}
	// The reified triple is reachable via rdf:subject / rdf:object.
	subs := g.Subjects(rdf.NewIRI(rdf.RDFSubject), iri("Mercury"))
	if len(subs) != 1 {
		t.Errorf("reified subject edges = %d", len(subs))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id1, _ := p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"),
		WithReference(Reference{Title: "T", Author: "A", Link: "L", File: "F"}))
	p.Insert("bob", rdf.Triple{S: iri("Torino"), P: iri("inCountry"), O: rdf.NewLiteral("Italy")})
	p.Import("bob", id1)
	p.RegisterQuery("", "dangerQuery", `SELECT ?x WHERE { ?x ?p ?o }`)
	p.RegisterQuery("alice", "mine", `ASK { ?x ?p ?o }`)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p2.Users(), ",") != "alice,bob" {
		t.Errorf("users = %v", p2.Users())
	}
	if p2.ViewSize("alice") != 1 || p2.ViewSize("bob") != 2 {
		t.Errorf("views: alice=%d bob=%d", p2.ViewSize("alice"), p2.ViewSize("bob"))
	}
	sts := p2.Explore(func(st *Statement) bool { return st.Ref != nil })
	if len(sts) != 1 || sts[0].Ref.Title != "T" || sts[0].Ref.File != "F" {
		t.Errorf("reference round trip: %+v", sts)
	}
	if _, ok := p2.LookupQuery("bob", "dangerQuery"); !ok {
		t.Error("shared query lost")
	}
	if q, ok := p2.LookupQuery("alice", "mine"); !ok || q.Owner != "alice" {
		t.Error("owned query lost")
	}
}

func TestConcurrentPlatformAccess(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			p.Insert("alice", tr("A", "p", "B"))
			p.Explore(nil)
		}
	}()
	for i := 0; i < 200; i++ {
		p.Insert("bob", tr("C", "p", "D"))
		p.ViewSize("bob")
		if g, err := p.View("alice"); err == nil {
			g.Count(rdf.Pattern{})
		}
	}
	<-done
}

// Regression test for the Statement/Explore vs Import data race: statements
// handed out to callers used to share their believers map with the platform,
// so a reader calling BelievedBy/Believers while another goroutine ran
// Import/ImportFrom raced on the map. Snapshots must detach that state.
// Run with -race to exercise the guarantee.
func TestStatementSnapshotNoRace(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob", "carol")
	var ids []string
	for i := 0; i < 50; i++ {
		id, err := p.Insert("alice", tr("S"+string(rune('a'+i%26)), "p", "O"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, id := range ids {
				p.Import("bob", id)
			}
			p.ImportFrom("carol", "alice", nil)
		}
	}()
	for i := 0; i < 100; i++ {
		for _, st := range p.Explore(nil) {
			st.Believers()
			st.BelievedBy("bob")
		}
		if st, err := p.Statement(ids[i%len(ids)]); err == nil {
			st.Believers()
		}
	}
	<-done

	st, err := p.Statement(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if !st.BelievedBy(u) {
			t.Errorf("statement should be believed by %s", u)
		}
	}
	// A snapshot must not see later imports: retract and re-check the old
	// snapshot still reports the belief.
	if err := p.Retract("bob", ids[0]); err != nil {
		t.Fatal(err)
	}
	if !st.BelievedBy("bob") {
		t.Error("snapshot must be detached from later platform mutations")
	}
	fresh, err := p.Statement(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fresh.BelievedBy("bob") {
		t.Error("fresh snapshot must observe the retraction")
	}
}

// TestSharedArenaNoReInterning pins the overlay-view memory contract: a
// corpus believed by many users is interned and indexed once in the shared
// arena — imports add ID-level view state only, never dictionary entries or
// duplicate union triples — and owner retraction releases arena triples no
// surviving statement asserts.
func TestSharedArenaNoReInterning(t *testing.T) {
	p := newPlatformWithUsers(t, "expert", "u1", "u2", "u3")
	var ids []string
	for _, x := range []string{"Mercury", "Lead", "Zinc"} {
		id, err := p.Insert("expert", tr(x, "isA", "HazardousWaste"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	arena := p.Shared()
	dictBefore, lenBefore := arena.DictLen(), arena.Len()

	for _, u := range []string{"u1", "u2", "u3"} {
		if _, err := p.ImportFrom(u, "expert", nil); err != nil {
			t.Fatal(err)
		}
		if p.ViewSize(u) != 3 {
			t.Fatalf("%s view = %d", u, p.ViewSize(u))
		}
	}
	if arena.DictLen() != dictBefore {
		t.Errorf("imports grew the dictionary: %d → %d", dictBefore, arena.DictLen())
	}
	if arena.Len() != lenBefore {
		t.Errorf("imports grew the union arena: %d → %d", lenBefore, arena.Len())
	}

	// Owner retraction drops the triple from the arena (no other statement
	// asserts it) and from every believer's view.
	if err := p.Retract("expert", ids[0]); err != nil {
		t.Fatal(err)
	}
	if arena.Len() != lenBefore-1 {
		t.Errorf("arena Len after retract = %d, want %d", arena.Len(), lenBefore-1)
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		if p.ViewSize(u) != 2 {
			t.Errorf("%s view after retract = %d", u, p.ViewSize(u))
		}
	}
}

// TestViewIsIDGraph pins that per-user views expose the encoded layer, so
// the streaming SPARQL executor takes the ID-native path (no adapter).
func TestViewIsIDGraph(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"))
	g, err := p.View("alice")
	if err != nil {
		t.Fatal(err)
	}
	ig, ok := g.(rdf.IDGraph)
	if !ok {
		t.Fatal("view does not implement rdf.IDGraph")
	}
	ig.ReadIDs(func(r rdf.IDReader) {
		pid, ok := r.IDOf(iri("isA"))
		if !ok {
			t.Fatal("isA not interned")
		}
		if n := r.CountIDs(rdf.PatternIDs{P: pid}); n != 1 {
			t.Errorf("CountIDs = %d", n)
		}
	})
}
