package kb

import (
	"bytes"
	"reflect"
	"testing"

	"crosse/internal/rdf"
)

func TestDeclareAndList(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	if err := p.DeclareResource("alice", SMG+"SecondaryRawMaterial"); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareProperty("bob", SMG+"recoverableFrom"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: re-declaring keeps the first owner.
	if err := p.DeclareResource("bob", SMG+"SecondaryRawMaterial"); err != nil {
		t.Fatal(err)
	}
	res := p.Declarations(DeclResource)
	if len(res) != 1 || res[0].Owner != "alice" {
		t.Errorf("resources = %+v", res)
	}
	props := p.Declarations(DeclProperty)
	if len(props) != 1 || props[0].Name != SMG+"recoverableFrom" {
		t.Errorf("properties = %+v", props)
	}
	if err := p.DeclareResource("ghost", SMG+"X"); err == nil {
		t.Error("unknown user must fail")
	}
	if err := p.DeclareProperty("alice", ""); err == nil {
		t.Error("empty declaration must fail")
	}
}

func TestSuggestedProperties(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	// A used property and a declared-but-unused property both appear.
	if _, err := p.Insert("alice", tr("Hg", "dangerLevel", "high")); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareProperty("alice", SMG+"recoverableFrom"); err != nil {
		t.Fatal(err)
	}
	got := p.SuggestedProperties()
	want := []string{SMG + "dangerLevel", SMG + "recoverableFrom"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("suggested = %v, want %v", got, want)
	}
}

func TestDeclarationsInReifiedGraph(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	p.DeclareResource("alice", SMG+"Tailings")
	p.DeclareProperty("alice", SMG+"storedAt")
	g := p.ToRDF()
	typ := rdf.NewIRI(rdf.RDFType)
	if n := g.Count(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassResource)}); n != 1 {
		t.Errorf("smg:Resource nodes = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassProperty)}); n != 1 {
		t.Errorf("smg:Property nodes = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: rdf.NewIRI(PropUserResource)}); n != 1 {
		t.Errorf("userResource edges = %d", n)
	}
	if n := g.Count(rdf.Pattern{P: rdf.NewIRI(PropUserProperty)}); n != 1 {
		t.Errorf("userProperty edges = %d", n)
	}
}

func TestDeclarationsSurviveSaveLoad(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	p.DeclareResource("alice", SMG+"Tailings")
	p.DeclareProperty("bob", SMG+"storedAt")
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := p2.Declarations(DeclResource)
	if len(res) != 1 || res[0].Owner != "alice" || res[0].Name != SMG+"Tailings" {
		t.Errorf("resources after load = %+v", res)
	}
	props := p2.Declarations(DeclProperty)
	if len(props) != 1 || props[0].Owner != "bob" {
		t.Errorf("properties after load = %+v", props)
	}
}
