package kb

import (
	"bytes"
	"strings"
	"testing"

	"crosse/internal/rdf"
)

func TestWriteDOT(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")
	p.Insert("alice", tr("Mercury", "isA", "HazardousWaste"))
	p.Insert("alice", rdf.Triple{S: iri("Mercury"), P: iri("dangerLevel"), O: rdf.NewLiteral("high")})
	view, err := p.View("alice")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, view, "alice-kb"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "alice-kb"`,
		`"Mercury" -> "HazardousWaste" [label="isA"]`,
		`shape=box`, // literal leaf
		`label="high"`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	p := newPlatformWithUsers(t, "u")
	for _, s := range []string{"C", "A", "B"} {
		p.Insert("u", tr(s, "p", "X"))
	}
	view, _ := p.View("u")
	var a, b bytes.Buffer
	WriteDOT(&a, view, "g")
	WriteDOT(&b, view, "g")
	if a.String() != b.String() {
		t.Error("DOT output must be deterministic")
	}
	// Sorted by subject.
	out := a.String()
	if strings.Index(out, `"A"`) > strings.Index(out, `"B"`) {
		t.Error("edges not sorted")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want string
	}{
		{rdf.NewIRI("http://x/y#Frag"), "Frag"},
		{rdf.NewIRI("http://x/path/Leaf"), "Leaf"},
		{rdf.NewIRI("plain"), "plain"},
		{rdf.NewLiteral("lex"), "lex"},
		{rdf.NewBlank("b1"), "_:b1"},
	}
	for _, c := range cases {
		if got := localName(c.term); got != c.want {
			t.Errorf("localName(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}
