package kb

import (
	"fmt"
	"io"
	"strings"

	"crosse/internal/rdf"
)

// This file materialises the Fig. 4 reified RDF schema: every statement
// becomes an smg:Statement node carrying rdf:subject/predicate/object,
// linked from its owner via smg:userStatement and from each accepting user
// via smg:userBelief, with optional smg:Reference nodes. Export+Import give
// the platform a persistence format that is itself RDF, as the paper's
// architecture implies (the semantic platform stores everything in the
// triple store).

func userIRI(name string) rdf.Term  { return rdf.NewIRI(SMG + "user/" + name) }
func stmtIRI(id string) rdf.Term    { return rdf.NewIRI(SMG + "statement/" + id) }
func refIRI(id string) rdf.Term     { return rdf.NewIRI(SMG + "reference/" + id) }
func queryIRI(name string) rdf.Term { return rdf.NewIRI(SMG + "query/" + name) }

// Additional vocabulary for stored queries (an implementation detail the
// paper mentions via [25]: SPARQL queries saved under a property name).
const (
	classStoredQuery = SMG + "StoredQuery"
	propQueryText    = SMG + "queryText"
	propQueryOwner   = SMG + "queryOwner"
)

// ToRDF renders the entire platform state as a reified RDF graph.
func (p *Platform) ToRDF() *rdf.Store {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g := rdf.NewStore()
	typ := rdf.NewIRI(rdf.RDFType)

	for u := range p.users {
		g.Add(rdf.Triple{S: userIRI(u), P: typ, O: rdf.NewIRI(ClassUser)})
	}
	for _, st := range p.order {
		id := st.ID
		node := stmtIRI(id)
		g.Add(rdf.Triple{S: node, P: typ, O: rdf.NewIRI(ClassStatement)})
		g.Add(rdf.Triple{S: node, P: rdf.NewIRI(rdf.RDFSubject), O: st.Triple.S})
		g.Add(rdf.Triple{S: node, P: rdf.NewIRI(rdf.RDFPredicate), O: st.Triple.P})
		g.Add(rdf.Triple{S: node, P: rdf.NewIRI(rdf.RDFObject), O: st.Triple.O})
		g.Add(rdf.Triple{S: userIRI(st.Owner), P: rdf.NewIRI(PropUserStatement), O: node})
		for u := range st.believers {
			g.Add(rdf.Triple{S: userIRI(u), P: rdf.NewIRI(PropUserBelief), O: node})
		}
		if st.Ref != nil {
			rnode := refIRI(id)
			g.Add(rdf.Triple{S: node, P: rdf.NewIRI(PropStmReference), O: rnode})
			g.Add(rdf.Triple{S: rnode, P: typ, O: rdf.NewIRI(ClassReference)})
			if st.Ref.Title != "" {
				g.Add(rdf.Triple{S: rnode, P: rdf.NewIRI(PropRefTitle), O: rdf.NewLiteral(st.Ref.Title)})
			}
			if st.Ref.Author != "" {
				g.Add(rdf.Triple{S: rnode, P: rdf.NewIRI(PropRefAuthor), O: rdf.NewLiteral(st.Ref.Author)})
			}
			if st.Ref.Link != "" {
				g.Add(rdf.Triple{S: rnode, P: rdf.NewIRI(PropRefLink), O: rdf.NewLiteral(st.Ref.Link)})
			}
			if st.Ref.File != "" {
				g.Add(rdf.Triple{S: node, P: rdf.NewIRI(PropFileReference), O: rdf.NewLiteral(st.Ref.File)})
			}
		}
	}
	for _, q := range p.queries {
		node := queryIRI(q.Name)
		g.Add(rdf.Triple{S: node, P: typ, O: rdf.NewIRI(classStoredQuery)})
		g.Add(rdf.Triple{S: node, P: rdf.NewIRI(propQueryText), O: rdf.NewLiteral(q.Text)})
		if q.Owner != "" {
			g.Add(rdf.Triple{S: node, P: rdf.NewIRI(propQueryOwner), O: userIRI(q.Owner)})
		}
	}
	p.declsToRDF(g)
	return g
}

// Save writes the platform as N-Triples of the reified graph.
func (p *Platform) Save(w io.Writer) error {
	return rdf.WriteNTriples(w, p.ToRDF())
}

// Load reconstructs a platform from a reified graph previously produced by
// Save/ToRDF. It returns a fresh platform.
func Load(r io.Reader) (*Platform, error) {
	g := rdf.NewStore()
	if _, err := rdf.ReadNTriples(r, g); err != nil {
		return nil, err
	}
	return FromRDF(g)
}

// FromRDF rebuilds platform state from a reified graph.
func FromRDF(g *rdf.Store) (*Platform, error) {
	p := NewPlatform()
	typ := rdf.NewIRI(rdf.RDFType)

	// Users.
	for _, t := range g.MatchSorted(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassUser)}) {
		name := strings.TrimPrefix(t.S.Value, SMG+"user/")
		if err := p.RegisterUser(name); err != nil {
			return nil, err
		}
	}

	one := func(s rdf.Term, prop string) (rdf.Term, error) {
		objs := g.Objects(s, rdf.NewIRI(prop))
		if len(objs) != 1 {
			return rdf.Term{}, fmt.Errorf("kb: node %s has %d values for %s, want 1", s, len(objs), prop)
		}
		return objs[0], nil
	}

	// Statements, in id order (MatchSorted gives deterministic order; ids
	// encode insertion order numerically but we only need stable rebuild).
	stmts := g.MatchSorted(rdf.Pattern{P: typ, O: rdf.NewIRI(ClassStatement)})
	for _, t := range stmts {
		node := t.S
		id := strings.TrimPrefix(node.Value, SMG+"statement/")
		sub, err := one(node, rdf.RDFSubject)
		if err != nil {
			return nil, err
		}
		pred, err := one(node, rdf.RDFPredicate)
		if err != nil {
			return nil, err
		}
		obj, err := one(node, rdf.RDFObject)
		if err != nil {
			return nil, err
		}
		owners := g.Subjects(rdf.NewIRI(PropUserStatement), node)
		if len(owners) != 1 {
			return nil, fmt.Errorf("kb: statement %s has %d owners", id, len(owners))
		}
		owner := strings.TrimPrefix(owners[0].Value, SMG+"user/")

		var opts []InsertOption
		// Reference.
		if refs := g.Objects(node, rdf.NewIRI(PropStmReference)); len(refs) == 1 {
			ref := Reference{}
			if v := g.Objects(refs[0], rdf.NewIRI(PropRefTitle)); len(v) == 1 {
				ref.Title = v[0].Value
			}
			if v := g.Objects(refs[0], rdf.NewIRI(PropRefAuthor)); len(v) == 1 {
				ref.Author = v[0].Value
			}
			if v := g.Objects(refs[0], rdf.NewIRI(PropRefLink)); len(v) == 1 {
				ref.Link = v[0].Value
			}
			if v := g.Objects(node, rdf.NewIRI(PropFileReference)); len(v) == 1 {
				ref.File = v[0].Value
			}
			opts = append(opts, WithReference(ref))
		}
		newID, err := p.Insert(owner, rdf.Triple{S: sub, P: pred, O: obj}, opts...)
		if err != nil {
			return nil, err
		}
		// Beliefs beyond the owner.
		for _, u := range g.Subjects(rdf.NewIRI(PropUserBelief), node) {
			name := strings.TrimPrefix(u.Value, SMG+"user/")
			if name != owner {
				if err := p.Import(name, newID); err != nil {
					return nil, err
				}
			}
		}
	}

	// Stored queries.
	for _, t := range g.MatchSorted(rdf.Pattern{P: typ, O: rdf.NewIRI(classStoredQuery)}) {
		name := strings.TrimPrefix(t.S.Value, SMG+"query/")
		text, err := one(t.S, propQueryText)
		if err != nil {
			return nil, err
		}
		owner := ""
		if ow := g.Objects(t.S, rdf.NewIRI(propQueryOwner)); len(ow) == 1 {
			owner = strings.TrimPrefix(ow[0].Value, SMG+"user/")
		}
		if err := p.RegisterQuery(owner, name, text.Value); err != nil {
			return nil, err
		}
	}

	if err := declsFromRDF(p, g); err != nil {
		return nil, err
	}
	return p, nil
}
