package kb

// This file implements the platform's binary snapshot (durability for the
// semantic side of the paper's architecture). Unlike Save/Load — which
// round-trip through the reified N-Triples graph and replay Insert/Import,
// re-interning every term and re-running validation — Snapshot serialises
// the encoded layer directly: the shared arena's dictionary and TripleKeys,
// each user's view membership set, and the statement/believer metadata on
// top. Restore is a bulk ID-level load: triples and memberships come back
// as integer keys into presized maps, statement triples decode from the
// restored dictionary, and nothing is parsed or re-hashed per triple. The
// wire primitives are rdf's snapshot codec (rdf.SnapshotEncoder/Decoder),
// so the two layers cannot fork the format.
//
// The stream is versioned (snapshotMagic + snapshotVersion); decoding an
// unknown version fails loudly so format evolutions stay explicit.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// snapshotMagic identifies a platform snapshot stream; snapshotVersion is
// the current format revision.
const (
	snapshotMagic   = "CROSSEKB"
	snapshotVersion = 1
)

// decoder layers user-name interning over the rdf snapshot decoder: a
// restored platform references each name string once, as the live one does,
// so per-statement owner/believer reads are allocation-free after the first
// occurrence.
type decoder struct {
	*rdf.SnapshotDecoder
	names map[string]string
}

func (d *decoder) name() (string, error) {
	buf, err := d.Bytes()
	if err != nil {
		return "", err
	}
	if s, ok := d.names[string(buf)]; ok { // keyed lookup: no allocation
		return s, nil
	}
	s := string(buf)
	d.names[s] = s
	return s, nil
}

// Snapshot writes the platform's full state in the binary snapshot format:
// the shared arena (dictionary + asserted TripleKeys + refcounts), each
// user's view membership set, every statement with its provenance, believers
// and optional reference, the stored-query registry and the vocabulary
// declarations. The write is one consistent point in time: it holds the
// platform read lock, which every mutator excludes.
func (p *Platform) Snapshot(w io.Writer) error {
	p.mu.RLock()
	defer p.mu.RUnlock()

	bw := bufio.NewWriter(w)
	enc := rdf.SnapshotEncoder{W: bw}
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := enc.Uvarint(snapshotVersion); err != nil {
		return err
	}

	// Shared arena: dictionary + triples. Statement keys and view members
	// below reference the IDs serialised here.
	if err := p.shared.WriteSnapshot(bw); err != nil {
		return err
	}

	// Users and their overlay views, sorted for a deterministic stream.
	users := make([]string, 0, len(p.users))
	for u := range p.users {
		users = append(users, u)
	}
	sort.Strings(users)
	if err := enc.Uvarint(uint64(len(users))); err != nil {
		return err
	}
	for _, u := range users {
		if err := enc.String(u); err != nil {
			return err
		}
		if err := p.views[u].WriteSnapshot(bw); err != nil {
			return err
		}
	}

	// Statements in insertion order (the order Explore reports).
	if err := enc.Uvarint(uint64(len(p.order))); err != nil {
		return err
	}
	var believers []string
	for _, st := range p.order {
		if err := enc.String(st.ID); err != nil {
			return err
		}
		if err := enc.String(st.Owner); err != nil {
			return err
		}
		if err := enc.Key(st.key); err != nil {
			return err
		}
		if st.Ref == nil {
			if err := enc.Byte(0); err != nil {
				return err
			}
		} else {
			if err := enc.Byte(1); err != nil {
				return err
			}
			for _, s := range []string{st.Ref.Title, st.Ref.Author, st.Ref.Link, st.Ref.File} {
				if err := enc.String(s); err != nil {
					return err
				}
			}
		}
		believers = believers[:0]
		for u := range st.believers {
			believers = append(believers, u)
		}
		sort.Strings(believers)
		if err := enc.Uvarint(uint64(len(believers))); err != nil {
			return err
		}
		for _, u := range believers {
			if err := enc.String(u); err != nil {
				return err
			}
		}
	}
	if err := enc.Uvarint(uint64(p.nextID)); err != nil {
		return err
	}

	// Stored queries, sorted by registry key.
	qkeys := make([]string, 0, len(p.queries))
	for k := range p.queries {
		qkeys = append(qkeys, k)
	}
	sort.Strings(qkeys)
	if err := enc.Uvarint(uint64(len(qkeys))); err != nil {
		return err
	}
	for _, k := range qkeys {
		q := p.queries[k]
		for _, s := range []string{q.Owner, q.Name, q.Text} {
			if err := enc.String(s); err != nil {
				return err
			}
		}
	}

	// Vocabulary declarations, sorted by registry key.
	dkeys := make([]string, 0, len(p.decls))
	for k := range p.decls {
		dkeys = append(dkeys, k)
	}
	sort.Strings(dkeys)
	if err := enc.Uvarint(uint64(len(dkeys))); err != nil {
		return err
	}
	for _, k := range dkeys {
		d := p.decls[k]
		if err := enc.Byte(byte(d.Kind)); err != nil {
			return err
		}
		if err := enc.String(d.Name); err != nil {
			return err
		}
		if err := enc.String(d.Owner); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore rebuilds a platform from a stream written by Snapshot. The
// returned platform is fully live: views accept queries and mutations, the
// triple→statement index, arena refcounts and every user's view membership
// are validated against the statement/believer set, and stored queries are
// re-compiled so the registration invariant (only compilable queries are
// stored) survives the round trip.
//
// Equal believer sets are shared between restored statements under the
// copy-on-write discipline (believersShared), so a crowdsourced corpus
// believed by the same peers costs one set, not one per statement.
func Restore(r io.Reader) (*Platform, error) {
	br := bufio.NewReader(r)
	d := &decoder{SnapshotDecoder: &rdf.SnapshotDecoder{R: br}, names: map[string]string{}}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("kb: read snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("kb: not a platform snapshot (bad magic %q)", magic)
	}
	version, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("kb: unsupported snapshot version %d (have %d)", version, snapshotVersion)
	}

	shared, err := rdf.ReadSharedSnapshot(br)
	if err != nil {
		return nil, fmt.Errorf("kb: restore arena: %w", err)
	}
	p := &Platform{
		users:      map[string]struct{}{},
		statements: map[string]*Statement{},
		shared:     shared,
		views:      map[string]*rdf.View{},
		byTriple:   map[rdf.TripleKey]map[string]struct{}{},
		queries:    map[string]*StoredQuery{},
	}

	nUsers, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nUsers; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		if _, dup := p.users[name]; dup || name == "" {
			return nil, fmt.Errorf("kb: corrupt snapshot: bad user entry %q", name)
		}
		v, err := shared.ReadViewSnapshot(br)
		if err != nil {
			return nil, fmt.Errorf("kb: restore view of %q: %w", name, err)
		}
		p.users[name] = struct{}{}
		p.views[name] = v
	}

	nStmts, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	p.order = make([]*Statement, 0, rdf.PresizeHint(nStmts))
	// believed accumulates, per user, the distinct keys of statements the
	// user believes — the set the user's restored view must equal.
	believed := make(map[string]map[rdf.TripleKey]struct{}, len(p.users))
	for u := range p.users {
		believed[u] = map[rdf.TripleKey]struct{}{}
	}
	belPool := map[string]map[string]struct{}{} // length-prefixed-names key → shared set
	var belNames []string
	var belKey []byte
	for i := uint64(0); i < nStmts; i++ {
		id, err := d.String()
		if err != nil {
			return nil, err
		}
		owner, err := d.name()
		if err != nil {
			return nil, err
		}
		key, err := d.Key()
		if err != nil {
			return nil, err
		}
		triple, ok := shared.DecodeTriple(key)
		if !ok {
			return nil, fmt.Errorf("kb: corrupt snapshot: statement %q has undecodable key %v", id, key)
		}
		hasRef, err := d.Byte()
		if err != nil {
			return nil, err
		}
		var ref *Reference
		switch hasRef {
		case 0:
		case 1:
			ref = &Reference{}
			for _, dst := range []*string{&ref.Title, &ref.Author, &ref.Link, &ref.File} {
				if *dst, err = d.String(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("kb: corrupt snapshot: statement %q has reference tag %d", id, hasRef)
		}
		nBel, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		belNames = belNames[:0]
		belKey = belKey[:0]
		for j := uint64(0); j < nBel; j++ {
			u, err := d.name()
			if err != nil {
				return nil, err
			}
			if _, known := p.users[u]; !known {
				return nil, fmt.Errorf("kb: corrupt snapshot: statement %q believed by unknown user %q", id, u)
			}
			belNames = append(belNames, u)
			believed[u][key] = struct{}{}
			// Length-prefixed so names cannot collide across boundaries.
			belKey = binary.AppendUvarint(belKey, uint64(len(u)))
			belKey = append(belKey, u...)
		}
		believers, ok := belPool[string(belKey)] // keyed lookup: no allocation
		if !ok {
			believers = make(map[string]struct{}, len(belNames))
			for _, u := range belNames {
				believers[u] = struct{}{}
			}
			if len(believers) != len(belNames) {
				return nil, fmt.Errorf("kb: corrupt snapshot: statement %q repeats a believer", id)
			}
			belPool[string(belKey)] = believers
		}
		if _, owns := believers[owner]; !owns {
			return nil, fmt.Errorf("kb: corrupt snapshot: statement %q owner %q is not a believer", id, owner)
		}
		if _, dup := p.statements[id]; dup {
			return nil, fmt.Errorf("kb: corrupt snapshot: duplicate statement id %q", id)
		}
		st := &Statement{ID: id, Triple: triple, Owner: owner, Ref: ref, key: key, believers: believers}
		// The set may be shared with other restored statements; the next
		// mutation must copy it (same discipline as published snapshots).
		st.believersShared.Store(true)
		p.statements[id] = st
		p.order = append(p.order, st)
		ids := p.byTriple[key]
		if ids == nil {
			ids = map[string]struct{}{}
			p.byTriple[key] = ids
		}
		ids[id] = struct{}{}
	}
	// The arena's refcounts must agree with the statement set, or a future
	// owner Retract would deassert a triple other statements still hold.
	if shared.Len() != len(p.byTriple) {
		return nil, fmt.Errorf("kb: corrupt snapshot: arena holds %d triples, statements assert %d",
			shared.Len(), len(p.byTriple))
	}
	for key, ids := range p.byTriple {
		if shared.RefCount(key) != len(ids) {
			return nil, fmt.Errorf("kb: corrupt snapshot: triple %v asserted by %d statements but refcounted %d",
				key, len(ids), shared.RefCount(key))
		}
	}
	// Each view must hold exactly the keys of the statements its user
	// believes, or queries would disagree with Believers()/Retract.
	for u, keys := range believed {
		v := p.views[u]
		if v.Len() != len(keys) {
			return nil, fmt.Errorf("kb: corrupt snapshot: view of %q holds %d triples, beliefs imply %d",
				u, v.Len(), len(keys))
		}
		for k := range keys {
			if !v.Has(k) {
				return nil, fmt.Errorf("kb: corrupt snapshot: view of %q is missing believed triple %v", u, k)
			}
		}
	}

	next, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	p.nextID = int(next)

	nQueries, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nQueries; i++ {
		var owner, name, text string
		for _, dst := range []*string{&owner, &name, &text} {
			if *dst, err = d.String(); err != nil {
				return nil, err
			}
		}
		if name == "" {
			return nil, fmt.Errorf("kb: corrupt snapshot: stored query with empty name")
		}
		q, err := sparql.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("kb: restore query %q: %w", name, err)
		}
		if _, err := sparql.Compile(q); err != nil {
			return nil, fmt.Errorf("kb: restore query %q: %w", name, err)
		}
		key := queryKey(owner, name)
		if _, dup := p.queries[key]; dup {
			return nil, fmt.Errorf("kb: corrupt snapshot: duplicate stored query %q", name)
		}
		p.queries[key] = &StoredQuery{Name: name, Owner: owner, Text: text}
	}

	nDecls, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nDecls; i++ {
		kind, err := d.Byte()
		if err != nil {
			return nil, err
		}
		if DeclKind(kind) != DeclResource && DeclKind(kind) != DeclProperty {
			return nil, fmt.Errorf("kb: corrupt snapshot: declaration kind %d", kind)
		}
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		owner, err := d.name()
		if err != nil {
			return nil, err
		}
		if p.decls == nil {
			p.decls = map[string]*Declaration{}
		}
		p.decls[DeclKind(kind).String()+"\x00"+name] = &Declaration{Name: name, Owner: owner, Kind: DeclKind(kind)}
	}
	return p, nil
}
