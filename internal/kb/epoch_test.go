package kb

import (
	"errors"
	"testing"
)

// The serving tier keys its enriched-result cache on ViewEpoch, so the
// contract under test is: every mutation that can change a user's query
// results moves that user's epoch, and only theirs (except shared-query
// registration, which moves everyone's).

func TestViewEpochBumpsOnInsert(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	a0, b0 := p.ViewEpoch("alice"), p.ViewEpoch("bob")
	if _, err := p.Insert("alice", tr("s", "p", "o")); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("alice"); got <= a0 {
		t.Errorf("alice epoch %d, want > %d after Insert", got, a0)
	}
	if got := p.ViewEpoch("bob"); got != b0 {
		t.Errorf("bob epoch moved to %d on alice's Insert (was %d)", got, b0)
	}
}

func TestViewEpochBumpsOnImportAndRetract(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	id, err := p.Insert("alice", tr("s", "p", "o"))
	if err != nil {
		t.Fatal(err)
	}

	b0 := p.ViewEpoch("bob")
	if err := p.Import("bob", id); err != nil {
		t.Fatal(err)
	}
	b1 := p.ViewEpoch("bob")
	if b1 <= b0 {
		t.Fatalf("bob epoch %d, want > %d after Import", b1, b0)
	}
	// Importing a statement already held is a no-op and must not
	// invalidate cached results.
	if err := p.Import("bob", id); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("bob"); got != b1 {
		t.Errorf("bob epoch %d after no-op re-import, want %d", got, b1)
	}

	// Bob retracts his belief: only bob moves.
	a1 := p.ViewEpoch("alice")
	if err := p.Retract("bob", id); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("bob"); got <= b1 {
		t.Errorf("bob epoch %d, want > %d after Retract", got, b1)
	}
	if got := p.ViewEpoch("alice"); got != a1 {
		t.Errorf("alice epoch moved to %d on bob's Retract (was %d)", got, a1)
	}
}

func TestViewEpochOwnerRetractBumpsAllBelievers(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob", "carol")
	id, err := p.Insert("alice", tr("s", "p", "o"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Import("bob", id); err != nil {
		t.Fatal(err)
	}
	a0, b0, c0 := p.ViewEpoch("alice"), p.ViewEpoch("bob"), p.ViewEpoch("carol")
	// Owner retraction removes the statement from every believer's KB.
	if err := p.Retract("alice", id); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("alice"); got <= a0 {
		t.Errorf("alice epoch %d, want > %d after owner Retract", got, a0)
	}
	if got := p.ViewEpoch("bob"); got <= b0 {
		t.Errorf("believer bob epoch %d, want > %d after owner Retract", got, b0)
	}
	if got := p.ViewEpoch("carol"); got != c0 {
		t.Errorf("bystander carol epoch moved to %d (was %d)", got, c0)
	}
}

func TestViewEpochImportFromBatch(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	for _, s := range []string{"s1", "s2", "s3"} {
		if _, err := p.Insert("alice", tr(s, "p", "o")); err != nil {
			t.Fatal(err)
		}
	}
	b0 := p.ViewEpoch("bob")
	n, err := p.ImportFrom("bob", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d, want 3", n)
	}
	b1 := p.ViewEpoch("bob")
	if b1 <= b0 {
		t.Fatalf("bob epoch %d, want > %d after batch import", b1, b0)
	}
	// Second import matches nothing: no bump.
	if _, err := p.ImportFrom("bob", "alice", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("bob"); got != b1 {
		t.Errorf("bob epoch %d after empty batch import, want %d", got, b1)
	}
}

func TestViewEpochStoredQueries(t *testing.T) {
	p := newPlatformWithUsers(t, "alice", "bob")
	const q = "SELECT ?s WHERE { ?s ?p ?o }"

	a0, b0 := p.ViewEpoch("alice"), p.ViewEpoch("bob")
	if err := p.RegisterQuery("alice", "mine", q); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("alice"); got <= a0 {
		t.Errorf("alice epoch %d, want > %d after personal query", got, a0)
	}
	if got := p.ViewEpoch("bob"); got != b0 {
		t.Errorf("bob epoch moved to %d on alice's personal query (was %d)", got, b0)
	}

	// Shared queries are visible to every user's LookupQuery fallback.
	a1, b1 := p.ViewEpoch("alice"), p.ViewEpoch("bob")
	if err := p.RegisterQuery("", "shared", q); err != nil {
		t.Fatal(err)
	}
	if got := p.ViewEpoch("alice"); got <= a1 {
		t.Errorf("alice epoch %d, want > %d after shared query", got, a1)
	}
	if got := p.ViewEpoch("bob"); got <= b1 {
		t.Errorf("bob epoch %d, want > %d after shared query", got, b1)
	}
}

func TestSentinelErrors(t *testing.T) {
	p := newPlatformWithUsers(t, "alice")

	if _, err := p.Insert("ghost", tr("s", "p", "o")); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Insert ghost user: err = %v, want ErrUnknownUser", err)
	}
	if _, err := p.View("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("View ghost user: err = %v, want ErrUnknownUser", err)
	}
	if err := p.Import("alice", "nope"); !errors.Is(err, ErrNoStatement) {
		t.Errorf("Import missing id: err = %v, want ErrNoStatement", err)
	}
	if err := p.Retract("alice", "nope"); !errors.Is(err, ErrNoStatement) {
		t.Errorf("Retract missing id: err = %v, want ErrNoStatement", err)
	}
	if _, err := p.Statement("nope"); !errors.Is(err, ErrNoStatement) {
		t.Errorf("Statement missing id: err = %v, want ErrNoStatement", err)
	}

	var dup *DupError
	if err := p.RegisterUser("alice"); !errors.As(err, &dup) {
		t.Errorf("duplicate user: err = %T %v, want *DupError", err, err)
	}
	const q = "SELECT ?s WHERE { ?s ?p ?o }"
	if err := p.RegisterQuery("alice", "q", q); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterQuery("alice", "q", q); !errors.As(err, &dup) {
		t.Errorf("duplicate query: err = %T %v, want *DupError", err, err)
	}

	// The wrapped messages must read exactly as before the sentinels.
	if _, err := p.View("ghost"); err.Error() != `kb: unknown user "ghost"` {
		t.Errorf("View error text = %q", err.Error())
	}
	if _, err := p.Statement("nope"); err.Error() != `kb: no statement "nope"` {
		t.Errorf("Statement error text = %q", err.Error())
	}
}
