package kb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"crosse/internal/rdf"
)

// WriteDOT renders a knowledge graph in Graphviz DOT syntax — the backing
// for the paper's "graph-based visualization tool which supports knowledge
// insertion in a more user friendly way" (Sec. III-A). IRIs are shortened
// to their local names; literal objects render as boxed leaf nodes.
func WriteDOT(w io.Writer, g rdf.Graph, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", title)
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=ellipse, fontsize=10];")

	// Deterministic output: collect and sort edges first.
	type edge struct {
		from, label, to string
		lit             bool
	}
	var edges []edge
	g.ForEach(rdf.Pattern{}, func(t rdf.Triple) bool {
		edges = append(edges, edge{
			from:  localName(t.S),
			label: localName(t.P),
			to:    localName(t.O),
			lit:   t.O.IsLiteral(),
		})
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].label != edges[j].label {
			return edges[i].label < edges[j].label
		}
		return edges[i].to < edges[j].to
	})

	litID := 0
	for _, e := range edges {
		if e.lit {
			// Literals get unique box nodes so shared lexical forms don't
			// merge into one node.
			litID++
			node := fmt.Sprintf("lit%d", litID)
			fmt.Fprintf(bw, "  %s [label=%q, shape=box];\n", node, e.to)
			fmt.Fprintf(bw, "  %q -> %s [label=%q];\n", e.from, node, e.label)
		} else {
			fmt.Fprintf(bw, "  %q -> %q [label=%q];\n", e.from, e.to, e.label)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// localName shortens an IRI to the fragment/last path segment; literals
// return their lexical form.
func localName(t rdf.Term) string {
	if t.IsBlank() {
		return "_:" + t.Value
	}
	v := t.Value
	if t.IsIRI() {
		if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
			return v[i+1:]
		}
	}
	return v
}
