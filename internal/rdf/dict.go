package rdf

// This file implements the dictionary-encoding layer of the triple store.
// Every distinct Term a store has seen is interned once into a dense uint32
// ID, and the store's SPO/POS/OSP indexes are built on those IDs instead of
// full Term structs. This is the standard layout of production RDF engines:
// hashing a 4-byte integer is far cheaper than hashing a three-field struct
// with two strings, index maps shrink (IDs instead of repeated term copies),
// and bulk operations like Clone become flat map copies.

// TermID is a dense identifier for an interned Term. IDs are scoped to the
// Dict that issued them: the same term may have different IDs in different
// stores. ID 0 is reserved so the zero value never aliases a real term.
type TermID uint32

// Dict is a bidirectional Term ↔ TermID intern table. It is not safe for
// concurrent use on its own; the owning Store guards it with its lock.
//
// typedKey identifies a typed literal without ambiguity: value and datatype
// stay separate fields, so no byte sequence in either can alias another term.
type typedKey struct {
	value, datatype string
}

// Internally terms are keyed per kind on their string value rather than on
// the full Term struct: hashing one string is measurably cheaper than Go's
// generated struct hash over (Kind, Value, Datatype), and the intern maps
// sit on the hot path of every Add and every bound-pattern probe. Typed
// literals — the only kind carrying a second string — live in their own map
// under a two-field struct key.
type Dict struct {
	iris      map[string]TermID
	blanks    map[string]TermID
	plainLits map[string]TermID
	typedLits map[typedKey]TermID
	terms     []Term // terms[id-1] is the term for id; ids are dense from 1
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		iris:      make(map[string]TermID),
		blanks:    make(map[string]TermID),
		plainLits: make(map[string]TermID),
		typedLits: make(map[typedKey]TermID),
	}
}

// kindMap returns the intern map for terms keyed on their value alone; typed
// literals are handled separately by Encode/Lookup.
func (d *Dict) kindMap(t Term) map[string]TermID {
	switch t.Kind {
	case IRI:
		return d.iris
	case Blank:
		return d.blanks
	default:
		return d.plainLits
	}
}

// Encode interns the term, returning its ID (allocating a new one for a term
// never seen before). Terms are never released: a store's dictionary only
// grows, which keeps IDs stable for the life of the store.
func (d *Dict) Encode(t Term) TermID {
	if t.Kind == Literal && t.Datatype != "" {
		key := typedKey{t.Value, t.Datatype}
		if id, ok := d.typedLits[key]; ok {
			return id
		}
		d.terms = append(d.terms, t)
		id := TermID(len(d.terms))
		d.typedLits[key] = id
		return id
	}
	m := d.kindMap(t)
	if id, ok := m[t.Value]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := TermID(len(d.terms))
	m[t.Value] = id
	return id
}

// Lookup returns the ID of an already-interned term without interning it.
// The second result is false when the term has never been seen; callers use
// that as an immediate "no matches" answer for bound pattern positions.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t.Kind == Literal && t.Datatype != "" {
		id, ok := d.typedLits[typedKey{t.Value, t.Datatype}]
		return id, ok
	}
	id, ok := d.kindMap(t)[t.Value]
	return id, ok
}

// Term returns the term for a previously issued ID.
func (d *Dict) Term(id TermID) Term {
	return d.terms[id-1]
}

// TermOf returns the term for an ID, reporting whether the ID was ever
// issued. The zero TermID (reserved, never issued) always reports false.
// This is the checked counterpart of Term for callers — like the SPARQL
// executor — that decode IDs coming from computed rows rather than directly
// from an index walk.
func (d *Dict) TermOf(id TermID) (Term, bool) {
	// Compare in uint64 so IDs near the top of the uint32 range (the SPARQL
	// executor's synthetic constants) stay out of range on 32-bit platforms
	// instead of wrapping negative through int.
	if id == 0 || uint64(id) > uint64(len(d.terms)) {
		return Term{}, false
	}
	return d.terms[id-1], true
}

// IDOf returns the ID of an already-interned term without interning it; the
// second result is false when the term has never been seen. It is Lookup
// under the name the encoded-layer consumers use.
func (d *Dict) IDOf(t Term) (TermID, bool) { return d.Lookup(t) }

// encodePattern resolves the bound positions of a term-level pattern to IDs
// without interning anything. ok is false when some bound term was never
// interned — nothing can match then.
func (d *Dict) encodePattern(p Pattern) (ids PatternIDs, ok bool) {
	ok = true
	if !p.S.IsZero() {
		if ids.S, ok = d.Lookup(p.S); !ok {
			return
		}
	}
	if !p.P.IsZero() {
		if ids.P, ok = d.Lookup(p.P); !ok {
			return
		}
	}
	if !p.O.IsZero() {
		if ids.O, ok = d.Lookup(p.O); !ok {
			return
		}
	}
	return
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// Clone returns an independent copy of the dictionary. The copy preserves
// every issued ID, so index structures keyed on those IDs remain valid
// against the clone.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		iris:      make(map[string]TermID, len(d.iris)),
		blanks:    make(map[string]TermID, len(d.blanks)),
		plainLits: make(map[string]TermID, len(d.plainLits)),
		typedLits: make(map[typedKey]TermID, len(d.typedLits)),
		terms:     append([]Term(nil), d.terms...),
	}
	for k, id := range d.iris {
		c.iris[k] = id
	}
	for k, id := range d.blanks {
		c.blanks[k] = id
	}
	for k, id := range d.plainLits {
		c.plainLits[k] = id
	}
	for k, id := range d.typedLits {
		c.typedLits[k] = id
	}
	return c
}
