package rdf

// This file implements the shared-dictionary overlay layer: one SharedStore
// holds the platform-wide dictionary plus refcounted union indexes over
// every asserted triple, and each user's knowledge base is a View — an
// overlay holding only compact ID-level state (a TripleKey membership set
// plus O(1) per-view pattern counters). A corpus believed by N users is
// interned and indexed once; each extra believer costs only ID-keyed map
// entries, never term strings. Views implement Graph and IDGraph, so the
// streaming SPARQL executor and the enrichment pipeline evaluate against
// them exactly as against a private Store.
//
// Concurrency discipline: the arena and each view carry their own RWMutex.
// Readers (View.ReadIDs and the term-level Graph methods) acquire the view
// lock then the arena lock, once per transaction, and run lock-free inside.
// Mutators never hold both locks at the same time — the KB layer acquires
// the arena (Acquire/Release) and the view (Add/Remove) in separate
// critical sections — so an in-flight read transaction is never invalidated
// and there is no lock-order cycle.

import "sync"

// SharedStore is the platform-wide encoded triple arena: one dictionary and
// one set of SPO/POS/OSP union indexes over every triple asserted by any
// statement, with a per-triple assertion refcount. It is safe for
// concurrent use and itself implements Graph and IDGraph (the union graph).
type SharedStore struct {
	mu   sync.RWMutex
	dict *Dict
	encStore
	refs map[TripleKey]int32 // assertions per triple; >0 ⇒ indexed
}

// NewSharedStore returns an empty arena.
func NewSharedStore() *SharedStore {
	return &SharedStore{
		dict:     NewDict(),
		encStore: newEncStore(),
		refs:     make(map[TripleKey]int32),
	}
}

// EncodeTriple interns the triple's terms into the shared dictionary and
// returns its encoded key. It does not assert the triple — pair with
// Acquire to make it visible in the union indexes.
func (s *SharedStore) EncodeTriple(t Triple) TripleKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TripleKey{s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)}
}

// AcquireTriple interns and asserts the triple in one step, returning its
// key. Each call adds one assertion reference; the triple enters the union
// indexes on its first reference.
func (s *SharedStore) AcquireTriple(t Triple) TripleKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := TripleKey{s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)}
	s.acquireLocked(k)
	return k
}

// Acquire adds one assertion reference to an already-encoded triple.
func (s *SharedStore) Acquire(k TripleKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acquireLocked(k)
}

func (s *SharedStore) acquireLocked(k TripleKey) {
	if s.refs[k]++; s.refs[k] == 1 {
		s.addKey(k)
	}
}

// Release drops one assertion reference; on the last release the triple
// leaves the union indexes (its terms stay interned — IDs are never
// recycled). A triple must stay acquired for as long as any View holds it:
// views iterate the shared posting lists, so a released triple disappears
// from every overlay.
func (s *SharedStore) Release(k TripleKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.refs[k]
	if !ok {
		return
	}
	if n <= 1 {
		delete(s.refs, k)
		s.delKey(k)
		return
	}
	s.refs[k] = n - 1
}

// DecodeTriple resolves an encoded key back to its terms, reporting false
// when any ID was never issued.
func (s *SharedStore) DecodeTriple(k TripleKey) (Triple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, okS := s.dict.TermOf(k[0])
	pt, okP := s.dict.TermOf(k[1])
	ot, okO := s.dict.TermOf(k[2])
	if !okS || !okP || !okO {
		return Triple{}, false
	}
	return Triple{st, pt, ot}, true
}

// Len returns the number of distinct asserted triples.
func (s *SharedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.triples)
}

// DictLen returns the number of interned terms (memory diagnostics: this
// grows with the corpus, never with the user count).
func (s *SharedStore) DictLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict.Len()
}

// ForEach streams union triples matching the term-level pattern.
func (s *SharedStore) ForEach(p Pattern, fn func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids, ok := s.dict.encodePattern(p)
	if !ok {
		return
	}
	d := s.dict
	s.matchIDs(ids, func(a, b, c TermID) bool {
		return fn(Triple{d.Term(a), d.Term(b), d.Term(c)})
	})
}

// Count returns the union cardinality of the term-level pattern in O(1).
func (s *SharedStore) Count(p Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids, ok := s.dict.encodePattern(p)
	if !ok {
		return 0
	}
	return s.countIDs(ids)
}

// ForEachIDs streams encoded union triples matching the ID pattern.
func (s *SharedStore) ForEachIDs(p PatternIDs, fn func(si, pi, oi TermID) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchIDs(p, fn)
}

// CountIDs answers an encoded union pattern cardinality in O(1).
func (s *SharedStore) CountIDs(p PatternIDs) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.countIDs(p)
}

// TermOf decodes an ID issued by the shared dictionary.
func (s *SharedStore) TermOf(id TermID) (Term, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict.TermOf(id)
}

// IDOf resolves an interned term to its shared-dictionary ID.
func (s *SharedStore) IDOf(t Term) (TermID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict.IDOf(t)
}

// sharedReader implements IDReader over the union graph without per-call
// locking; the enclosing ReadIDs holds the arena read lock.
type sharedReader struct{ s *SharedStore }

func (sharedReader) ConcurrentIDReads() {}

func (r sharedReader) ForEachIDs(p PatternIDs, fn func(s, p, o TermID) bool) {
	r.s.matchIDs(p, fn)
}
func (r sharedReader) CountIDs(p PatternIDs) int     { return r.s.countIDs(p) }
func (r sharedReader) TermOf(id TermID) (Term, bool) { return r.s.dict.TermOf(id) }
func (r sharedReader) IDOf(t Term) (TermID, bool)    { return r.s.dict.IDOf(t) }

// ReadIDs runs fn as one read transaction over the union graph.
func (s *SharedStore) ReadIDs(fn func(IDReader)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(sharedReader{s})
}

// NewView returns an empty overlay over the arena.
func (s *SharedStore) NewView() *View {
	return &View{
		shared:  s,
		members: make(map[TripleKey]struct{}),
		cntS:    make(map[TermID]int32),
		cntP:    make(map[TermID]int32),
		cntO:    make(map[TermID]int32),
		cntSP:   make(map[uint64]int32),
		cntPO:   make(map[uint64]int32),
		cntSO:   make(map[uint64]int32),
	}
}

// pairKey packs two 32-bit term IDs into one counter-map key.
func pairKey(a, b TermID) uint64 { return uint64(a)<<32 | uint64(b) }

// View is one user's knowledge base as an overlay over a SharedStore: a
// membership set of encoded TripleKeys plus per-view counters that answer
// every pattern-cardinality shape in O(1) for the SPARQL join orderer. A
// view holds no term strings and no dictionary — adding an already-encoded
// triple is a handful of small-key map updates, which is what makes belief
// imports cheap and keeps N views over one corpus at O(corpus) string
// memory.
//
// Safe for concurrent use. Every triple added to a view must be (and stay)
// acquired in the arena; the KB layer maintains that invariant.
type View struct {
	shared *SharedStore
	mu     sync.RWMutex

	members map[TripleKey]struct{}

	// Exact distinct-triple counters per pattern shape: single-position
	// (cntS/cntP/cntO) and pair-position (cntSP/cntPO/cntSO, packed keys).
	// SPO probes members; ??? is len(members).
	cntS, cntP, cntO    map[TermID]int32
	cntSP, cntPO, cntSO map[uint64]int32
}

// Add inserts an encoded triple into the view, reporting whether it was new.
func (v *View) Add(k TripleKey) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.addLocked(k)
}

// AddBatch inserts a batch of encoded triples under one lock acquisition,
// returning how many were new. This is the belief-import fast path: a bulk
// import into a fresh view (the common crowdsourcing shape) presizes the
// membership set and the pair-counter maps, so insertion never pays
// incremental map growth.
func (v *View) AddBatch(ks []TripleKey) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.members) == 0 && len(ks) > 64 {
		n := len(ks)
		v.members = make(map[TripleKey]struct{}, n)
		v.cntSP = make(map[uint64]int32, n)
		v.cntPO = make(map[uint64]int32, n)
		v.cntSO = make(map[uint64]int32, n)
	}
	added := 0
	for _, k := range ks {
		if v.addLocked(k) {
			added++
		}
	}
	return added
}

func (v *View) addLocked(k TripleKey) bool {
	if _, dup := v.members[k]; dup {
		return false
	}
	v.members[k] = struct{}{}
	v.cntS[k[0]]++
	v.cntP[k[1]]++
	v.cntO[k[2]]++
	v.cntSP[pairKey(k[0], k[1])]++
	v.cntPO[pairKey(k[1], k[2])]++
	v.cntSO[pairKey(k[0], k[2])]++
	return true
}

// Remove deletes an encoded triple from the view, reporting whether it was
// present.
func (v *View) Remove(k TripleKey) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.members[k]; !ok {
		return false
	}
	delete(v.members, k)
	dec(v.cntS, k[0])
	dec(v.cntP, k[1])
	dec(v.cntO, k[2])
	dec(v.cntSP, pairKey(k[0], k[1]))
	dec(v.cntPO, pairKey(k[1], k[2]))
	dec(v.cntSO, pairKey(k[0], k[2]))
	return true
}

// dec decrements a counter entry, deleting it at zero so counter maps never
// accumulate dead keys.
func dec[K comparable](m map[K]int32, k K) {
	if m[k] <= 1 {
		delete(m, k)
		return
	}
	m[k]--
}

// Has reports whether the view holds the encoded triple.
func (v *View) Has(k TripleKey) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.members[k]
	return ok
}

// Len returns the number of triples in the view.
func (v *View) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.members)
}

// countIDsLocked answers every pattern shape from the per-view counters in
// O(1). Counts are exact (distinct triples in the view).
func (v *View) countIDsLocked(p PatternIDs) int {
	sb, pb, ob := p.S != 0, p.P != 0, p.O != 0
	switch {
	case sb && pb && ob:
		if _, ok := v.members[TripleKey{p.S, p.P, p.O}]; ok {
			return 1
		}
		return 0
	case sb && pb:
		return int(v.cntSP[pairKey(p.S, p.P)])
	case pb && ob:
		return int(v.cntPO[pairKey(p.P, p.O)])
	case sb && ob:
		return int(v.cntSO[pairKey(p.S, p.O)])
	case sb:
		return int(v.cntS[p.S])
	case pb:
		return int(v.cntP[p.P])
	case ob:
		return int(v.cntO[p.O])
	default:
		return len(v.members)
	}
}

// matchIDsLocked streams the view's triples matching the pattern. For bound
// patterns it iterates the cheaper side: the shared posting list filtered by
// view membership when the arena-wide cardinality is smaller than the view,
// or the view membership set filtered by the pattern otherwise. The caller
// holds both the view and the arena read locks.
//
// Cost is O(min(shared posting list, view size)) candidates per probe, not
// O(results) — the deliberate trade against per-view permutation indexes,
// which would cost O(view) extra maps per user and defeat the shared-memory
// design. Join probes bind positions from the outer row, so their shared
// posting lists are small; the worst case (a pattern unselective in both
// the arena and the view) degrades to one membership/pattern test per
// candidate, a small constant over a private store's native scan.
func (v *View) matchIDsLocked(p PatternIDs, fn func(si, pi, oi TermID) bool) {
	sb, pb, ob := p.S != 0, p.P != 0, p.O != 0
	switch {
	case sb && pb && ob:
		if _, ok := v.members[TripleKey{p.S, p.P, p.O}]; ok {
			fn(p.S, p.P, p.O)
		}
		return
	case !sb && !pb && !ob:
		for k := range v.members {
			if !fn(k[0], k[1], k[2]) {
				return
			}
		}
		return
	}
	if v.shared.countIDs(p) < len(v.members) {
		v.shared.matchIDs(p, func(a, b, c TermID) bool {
			if _, ok := v.members[TripleKey{a, b, c}]; !ok {
				return true
			}
			return fn(a, b, c)
		})
		return
	}
	for k := range v.members {
		if (!sb || k[0] == p.S) && (!pb || k[1] == p.P) && (!ob || k[2] == p.O) {
			if !fn(k[0], k[1], k[2]) {
				return
			}
		}
	}
}

// read runs fn under the view's read transaction lock order (view, then
// arena). Mutators never hold both locks, so this cannot deadlock.
func (v *View) read(fn func()) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.shared.mu.RLock()
	defer v.shared.mu.RUnlock()
	fn()
}

// ForEach streams the view's triples matching the term-level pattern.
func (v *View) ForEach(p Pattern, fn func(Triple) bool) {
	v.read(func() {
		ids, ok := v.shared.dict.encodePattern(p)
		if !ok {
			return
		}
		d := v.shared.dict
		v.matchIDsLocked(ids, func(a, b, c TermID) bool {
			return fn(Triple{d.Term(a), d.Term(b), d.Term(c)})
		})
	})
}

// Count returns the number of view triples matching the pattern in O(1).
func (v *View) Count(p Pattern) int {
	n := 0
	v.read(func() {
		if ids, ok := v.shared.dict.encodePattern(p); ok {
			n = v.countIDsLocked(ids)
		}
	})
	return n
}

// ForEachIDs streams encoded view triples matching the ID pattern.
func (v *View) ForEachIDs(p PatternIDs, fn func(si, pi, oi TermID) bool) {
	v.read(func() { v.matchIDsLocked(p, fn) })
}

// CountIDs answers an encoded pattern cardinality from per-view counters in
// O(1).
func (v *View) CountIDs(p PatternIDs) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.countIDsLocked(p)
}

// TermOf decodes an ID issued by the shared dictionary.
func (v *View) TermOf(id TermID) (Term, bool) { return v.shared.TermOf(id) }

// IDOf resolves an interned term to its shared-dictionary ID.
func (v *View) IDOf(t Term) (TermID, bool) { return v.shared.IDOf(t) }

// viewReader implements IDReader over the overlay without per-call locking;
// the enclosing ReadIDs holds the view and arena read locks.
type viewReader struct{ v *View }

func (viewReader) ConcurrentIDReads() {}

func (r viewReader) ForEachIDs(p PatternIDs, fn func(s, p, o TermID) bool) {
	r.v.matchIDsLocked(p, fn)
}
func (r viewReader) CountIDs(p PatternIDs) int     { return r.v.countIDsLocked(p) }
func (r viewReader) TermOf(id TermID) (Term, bool) { return r.v.shared.dict.TermOf(id) }
func (r viewReader) IDOf(t Term) (TermID, bool)    { return r.v.shared.dict.IDOf(t) }

// ReadIDs runs fn as one read transaction over the overlay: the view and
// arena read locks are acquired once and every IDReader call inside fn is
// lock-free. This is the transaction the streaming SPARQL executor opens
// per query; concurrent transactions over distinct users' views share the
// arena read lock and proceed in parallel.
func (v *View) ReadIDs(fn func(IDReader)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.shared.mu.RLock()
	defer v.shared.mu.RUnlock()
	fn(viewReader{v})
}

var _ Graph = (*SharedStore)(nil)
var _ IDGraph = (*SharedStore)(nil)
var _ Graph = (*View)(nil)
var _ IDGraph = (*View)(nil)
