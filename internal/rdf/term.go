// Package rdf implements the contextual-knowledge substrate of CroSSE:
// an RDF data model (IRIs, literals, blank nodes, triples) and a
// dictionary-encoded, indexed in-memory triple store with pattern matching.
// Terms are interned to dense uint32 IDs (Dict) and the SPO/POS/OSP
// permutation indexes are keyed on those IDs, which makes pattern counting
// O(1) and store snapshots flat map copies. It plays the role the paper
// assigns to the Jena triple store (Sec. III-B, Fig. 4), and is the storage
// layer underneath the SPARQL engine (internal/sparql) and the knowledge-base
// management layer (internal/kb).
//
// Two storage shapes share the encoded core: Store is a self-contained
// graph with a private dictionary, and SharedStore + View form the
// multi-user overlay layer — one arena interning and indexing every
// asserted triple once, with per-user Views holding only TripleKey
// membership and O(1) pattern counters (see shared.go). Both shapes
// implement Graph and IDGraph, so the SPARQL executor is agnostic to which
// one it evaluates.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three RDF term kinds.
type TermKind int

const (
	// IRI identifies a resource (concept, property, user, …).
	IRI TermKind = iota
	// Literal is a (possibly typed) value such as a string or number.
	Literal
	// Blank is an anonymous node, scoped to the store it lives in.
	Blank
)

// Term is an RDF term. Terms are immutable value types: two terms are the
// same resource iff they are == comparable equal, which makes them usable
// as map keys throughout the store and the SPARQL engine.
type Term struct {
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label, depending on Kind.
	Value string
	// Datatype is the literal datatype IRI; empty means xsd:string.
	// Only meaningful when Kind == Literal.
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain (string) literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// Common datatype IRIs used by the platform.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Well-known RDF/RDFS vocabulary used by the Fig. 4 schema.
const (
	RDFType      = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSubject   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#subject"
	RDFPredicate = "http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate"
	RDFObject    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#object"
	RDFSClass    = "http://www.w3.org/2000/01/rdf-schema#Class"
)

// IsZero reports whether the term is the zero Term (used as "unbound" in
// match patterns).
func (t Term) IsZero() bool { return t == Term{} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// Compare totally orders terms by kind, then value, then datatype, without
// rendering them. It underlies MatchSorted and the SPARQL engine's ORDER BY
// fallback comparison.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, u.Datatype)
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		q := "\"" + escapeLiteral(t.Value) + "\""
		if t.Datatype != "" && t.Datatype != XSDString {
			return q + "^^<" + t.Datatype + ">"
		}
		return q
	default:
		return fmt.Sprintf("?term(%d)", int(t.Kind))
	}
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// Triple is an RDF statement <subject, property, object>.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the final dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Compare orders triples by subject, then predicate, then object under
// Term.Compare.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Pattern is a triple pattern: zero-value terms act as wildcards.
// It is the unit of the store's Match API.
type Pattern struct {
	S, P, O Term
}

// Matches reports whether the triple satisfies the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.S.IsZero() || p.S == t.S) &&
		(p.P.IsZero() || p.P == t.P) &&
		(p.O.IsZero() || p.O == t.O)
}

// String renders the pattern with "?" for wildcards.
func (p Pattern) String() string {
	part := func(t Term) string {
		if t.IsZero() {
			return "?"
		}
		return t.String()
	}
	return part(p.S) + " " + part(p.P) + " " + part(p.O)
}
