package rdf

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildArena populates an arena with a mixed-kind corpus and returns the
// triples alongside their keys.
func buildArena(t testing.TB, n int) (*SharedStore, []Triple, []TripleKey) {
	t.Helper()
	s := NewSharedStore()
	rng := rand.New(rand.NewSource(7))
	triples := make([]Triple, 0, n)
	keys := make([]TripleKey, 0, n)
	for i := 0; i < n; i++ {
		var o Term
		switch i % 4 {
		case 0:
			o = NewIRI(fmt.Sprintf("http://x/obj-%d", i))
		case 1:
			o = NewLiteral(fmt.Sprintf("value %d", i))
		case 2:
			o = NewTypedLiteral(fmt.Sprintf("%d", i), XSDInteger)
		default:
			o = NewBlank(fmt.Sprintf("b%d", i))
		}
		tr := Triple{
			S: NewIRI(fmt.Sprintf("http://x/subj-%d", rng.Intn(n/4+1))),
			P: NewIRI(fmt.Sprintf("http://x/pred-%d", rng.Intn(8))),
			O: o,
		}
		k := s.AcquireTriple(tr)
		if rng.Intn(3) == 0 {
			s.Acquire(k) // some triples asserted more than once
		}
		triples = append(triples, tr)
		keys = append(keys, k)
	}
	return s, triples, keys
}

func TestSharedSnapshotRoundTrip(t *testing.T) {
	s, triples, keys := buildArena(t, 400)

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSharedSnapshot(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadSharedSnapshot: %v", err)
	}

	if got.Len() != s.Len() {
		t.Fatalf("restored %d triples, want %d", got.Len(), s.Len())
	}
	if got.DictLen() != s.DictLen() {
		t.Fatalf("restored dictionary has %d terms, want %d", got.DictLen(), s.DictLen())
	}
	for i, tr := range triples {
		// Same IDs: keys issued by the source resolve against the restore.
		back, ok := got.DecodeTriple(keys[i])
		if !ok || back != tr {
			t.Fatalf("key %v decodes to %v (ok=%v), want %v", keys[i], back, ok, tr)
		}
		if got.RefCount(keys[i]) != s.RefCount(keys[i]) {
			t.Fatalf("refcount mismatch for %v: got %d want %d",
				keys[i], got.RefCount(keys[i]), s.RefCount(keys[i]))
		}
	}
	// Pattern counts agree for every shape on a sample triple.
	probe := triples[13]
	for _, p := range []Pattern{
		{}, {S: probe.S}, {P: probe.P}, {O: probe.O},
		{S: probe.S, P: probe.P}, {P: probe.P, O: probe.O},
		{S: probe.S, O: probe.O}, {S: probe.S, P: probe.P, O: probe.O},
	} {
		if got.Count(p) != s.Count(p) {
			t.Fatalf("Count(%v) = %d, want %d", p, got.Count(p), s.Count(p))
		}
	}
	// Release semantics survive: dropping all references removes the triple.
	k := keys[0]
	for got.RefCount(k) > 0 {
		got.Release(k)
	}
	if got.CountIDs(PatternIDs{S: k[0], P: k[1], O: k[2]}) != 0 {
		t.Fatalf("released triple still asserted")
	}
}

func TestViewSnapshotRoundTrip(t *testing.T) {
	s, _, keys := buildArena(t, 300)
	v := s.NewView()
	for i, k := range keys {
		if i%3 != 0 {
			v.Add(k)
		}
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot(arena): %v", err)
	}
	if err := v.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot(view): %v", err)
	}

	r := bufio.NewReader(&buf)
	arena, err := ReadSharedSnapshot(r)
	if err != nil {
		t.Fatalf("ReadSharedSnapshot: %v", err)
	}
	got, err := arena.ReadViewSnapshot(r)
	if err != nil {
		t.Fatalf("ReadViewSnapshot: %v", err)
	}

	if got.Len() != v.Len() {
		t.Fatalf("restored view has %d triples, want %d", got.Len(), v.Len())
	}
	for _, k := range keys {
		if got.Has(k) != v.Has(k) {
			t.Fatalf("membership mismatch for %v", k)
		}
	}
	// Counter parity across all eight shapes for every member key.
	for _, k := range keys {
		for _, p := range []PatternIDs{
			{}, {S: k[0]}, {P: k[1]}, {O: k[2]},
			{S: k[0], P: k[1]}, {P: k[1], O: k[2]},
			{S: k[0], O: k[2]}, {S: k[0], P: k[1], O: k[2]},
		} {
			if got.CountIDs(p) != v.CountIDs(p) {
				t.Fatalf("CountIDs(%v) = %d, want %d", p, got.CountIDs(p), v.CountIDs(p))
			}
		}
	}
	// The restored view stays a live overlay: mutations keep counters exact.
	k := keys[3] // i%3==0 → not in the view
	if got.Has(k) {
		t.Fatalf("key %v unexpectedly in view", k)
	}
	if !got.Add(k) || got.CountIDs(PatternIDs{S: k[0]}) != v.CountIDs(PatternIDs{S: k[0]})+1 {
		t.Fatalf("restored view does not accept mutations")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	s, _, _ := buildArena(t, 50)
	v := s.NewView()

	var arenaBuf, viewBuf bytes.Buffer
	if err := s.WriteSnapshot(&arenaBuf); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteSnapshot(&viewBuf); err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		raw := arenaBuf.Bytes()
		_, err := ReadSharedSnapshot(bytes.NewReader(raw[:len(raw)/2]))
		if err == nil {
			t.Fatalf("truncated snapshot restored without error")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		_, err := ReadSharedSnapshot(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0x01, 0x02}))
		if err == nil {
			t.Fatalf("garbage restored without error")
		}
	})
	t.Run("unassertedViewKey", func(t *testing.T) {
		arena, err := ReadSharedSnapshot(bytes.NewReader(arenaBuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// One member whose IDs are in dictionary range but whose key is not
		// asserted (no corpus triple has S == P == O).
		var bad bytes.Buffer
		enc := SnapshotEncoder{W: bufio.NewWriter(&bad)}
		id := uint64(arena.DictLen())
		for _, v := range []uint64{1, id, id, id} {
			if err := enc.Uvarint(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.W.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := arena.ReadViewSnapshot(bytes.NewReader(bad.Bytes())); err == nil || !IsCorrupt(err) {
			t.Fatalf("foreign view restored: err=%v", err)
		}
	})
}
