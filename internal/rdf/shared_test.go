package rdf

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func viri(n string) Term { return NewIRI("http://x/" + n) }

func TestSharedStoreAcquireRelease(t *testing.T) {
	s := NewSharedStore()
	tr := Triple{viri("a"), viri("p"), viri("b")}
	k := s.AcquireTriple(tr)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// A second assertion of the same triple must not duplicate it.
	k2 := s.AcquireTriple(tr)
	if k != k2 {
		t.Fatalf("re-encoding changed the key: %v vs %v", k, k2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after double acquire = %d, want 1", s.Len())
	}
	if got, ok := s.DecodeTriple(k); !ok || got != tr {
		t.Fatalf("DecodeTriple = %v, %v", got, ok)
	}
	// First release keeps it (one reference left), second drops it.
	s.Release(k)
	if s.Len() != 1 {
		t.Fatalf("Len after first release = %d, want 1", s.Len())
	}
	s.Release(k)
	if s.Len() != 0 {
		t.Fatalf("Len after last release = %d, want 0", s.Len())
	}
	if s.Count(Pattern{S: viri("a")}) != 0 {
		t.Fatal("released triple still matches in union indexes")
	}
	// Terms stay interned.
	if _, ok := s.IDOf(viri("a")); !ok {
		t.Fatal("term released from dictionary")
	}
	// Releasing an unknown key is a no-op.
	s.Release(TripleKey{999, 999, 999})
}

func TestViewMembershipAndCounters(t *testing.T) {
	s := NewSharedStore()
	v := s.NewView()
	tr := Triple{viri("a"), viri("p"), viri("b")}
	k := s.AcquireTriple(tr)
	if !v.Add(k) {
		t.Fatal("Add reported not-new")
	}
	if v.Add(k) {
		t.Fatal("duplicate Add reported new")
	}
	if v.Len() != 1 || !v.Has(k) {
		t.Fatalf("Len=%d Has=%v", v.Len(), v.Has(k))
	}
	if n := v.Count(Pattern{S: viri("a")}); n != 1 {
		t.Fatalf("Count(S) = %d", n)
	}
	if !v.Remove(k) {
		t.Fatal("Remove reported absent")
	}
	if v.Remove(k) {
		t.Fatal("double Remove reported present")
	}
	if v.Len() != 0 || v.Count(Pattern{S: viri("a")}) != 0 {
		t.Fatalf("view not empty after remove: len=%d", v.Len())
	}
}

// TestViewParityWithStore drives a view and a private store with the same
// random triple subset and checks Count and ForEach agree for every pattern
// shape — including both sides of the cheaper-side iteration choice, since
// the view holds a small fraction of a much larger arena.
func TestViewParityWithStore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shared := NewSharedStore()
	ref := NewStore()
	v := shared.NewView()

	var all []Triple
	for i := 0; i < 2000; i++ {
		tr := Triple{
			S: viri(fmt.Sprintf("s%d", rng.Intn(50))),
			P: viri(fmt.Sprintf("p%d", rng.Intn(8))),
			O: viri(fmt.Sprintf("o%d", rng.Intn(200))),
		}
		all = append(all, tr)
		k := shared.AcquireTriple(tr)
		if i%5 == 0 { // view holds ~20% of the arena
			v.Add(k)
			ref.Add(tr)
		}
	}
	pats := []Pattern{
		{},
		{S: viri("s1")},
		{P: viri("p2")},
		{O: viri("o3")},
		{S: viri("s1"), P: viri("p2")},
		{P: viri("p2"), O: viri("o3")},
		{S: viri("s1"), O: viri("o3")},
		all[0].pattern(),
		{S: viri("never")},
		{S: viri("s1"), P: viri("never")},
	}
	for _, p := range pats {
		if got, want := v.Count(p), ref.Count(p); got != want {
			t.Errorf("Count(%v) = %d, want %d", p, got, want)
		}
		got := collect(v, p)
		want := collect(ref, p)
		if !equalTriples(got, want) {
			t.Errorf("ForEach(%v): got %d triples, want %d", p, len(got), len(want))
		}
	}

	// Flip the balance: a view holding nearly everything iterates the
	// shared posting lists; results must still agree.
	big := shared.NewView()
	ref2 := NewStore()
	for _, tr := range all {
		big.Add(shared.EncodeTriple(tr))
		ref2.Add(tr)
	}
	for _, p := range pats {
		if got, want := big.Count(p), ref2.Count(p); got != want {
			t.Errorf("big view Count(%v) = %d, want %d", p, got, want)
		}
		if !equalTriples(collect(big, p), collect(ref2, p)) {
			t.Errorf("big view ForEach(%v) mismatch", p)
		}
	}
}

func (t Triple) pattern() Pattern { return Pattern{S: t.S, P: t.P, O: t.O} }

func collect(g Graph, p Pattern) []Triple {
	var out []Triple
	g.ForEach(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func equalTriples(a, b []Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestViewReleaseDropsFromOverlay pins the arena/view invariant: a triple
// released from the arena disappears from every overlay's iteration, so the
// KB layer must keep triples acquired while any view holds them.
func TestViewReleaseDropsFromOverlay(t *testing.T) {
	s := NewSharedStore()
	v := s.NewView()
	k := s.AcquireTriple(Triple{viri("a"), viri("p"), viri("b")})
	v.Add(k)
	s.Release(k)
	// Per-view state still says 1 (the view was not told), but shared-side
	// iteration no longer surfaces it for bound patterns.
	if n := len(collect(v, Pattern{S: viri("a")})); n != 0 {
		t.Fatalf("released triple still iterates: %d", n)
	}
}

func TestViewReadIDsTransaction(t *testing.T) {
	s := NewSharedStore()
	v := s.NewView()
	for i := 0; i < 10; i++ {
		k := s.AcquireTriple(Triple{viri(fmt.Sprintf("s%d", i)), viri("p"), viri("o")})
		v.Add(k)
	}
	v.ReadIDs(func(r IDReader) {
		pid, ok := r.IDOf(viri("p"))
		if !ok {
			t.Fatal("IDOf(p) failed")
		}
		if n := r.CountIDs(PatternIDs{P: pid}); n != 10 {
			t.Fatalf("CountIDs = %d, want 10", n)
		}
		seen := 0
		r.ForEachIDs(PatternIDs{P: pid}, func(a, b, c TermID) bool {
			if term, ok := r.TermOf(a); !ok || !term.IsIRI() {
				t.Fatalf("TermOf(%d) = %v, %v", a, term, ok)
			}
			seen++
			return true
		})
		if seen != 10 {
			t.Fatalf("ForEachIDs saw %d, want 10", seen)
		}
	})
}

// TestViewAddBatchPresize covers the bulk-import fast path (fresh view,
// batch larger than the presize threshold) including duplicate keys.
func TestViewAddBatchPresize(t *testing.T) {
	s := NewSharedStore()
	var ks []TripleKey
	for i := 0; i < 200; i++ {
		ks = append(ks, s.AcquireTriple(Triple{viri(fmt.Sprintf("s%d", i)), viri("p"), viri("o")}))
	}
	ks = append(ks, ks[0]) // duplicate
	v := s.NewView()
	if n := v.AddBatch(ks); n != 200 {
		t.Fatalf("AddBatch = %d, want 200", n)
	}
	if v.Len() != 200 {
		t.Fatalf("Len = %d", v.Len())
	}
	if n := v.Count(Pattern{P: viri("p")}); n != 200 {
		t.Fatalf("Count(P) = %d", n)
	}
}

// TestSharedConcurrentMutationAndReads races arena mutations and view
// mutations against ReadIDs transactions on other views. Run with -race.
func TestSharedConcurrentMutationAndReads(t *testing.T) {
	s := NewSharedStore()
	const users = 4
	views := make([]*View, users)
	var base []TripleKey
	for i := 0; i < 100; i++ {
		base = append(base, s.AcquireTriple(Triple{viri(fmt.Sprintf("s%d", i)), viri("p"), viri("o")}))
	}
	for u := range views {
		views[u] = s.NewView()
		views[u].AddBatch(base)
	}
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		u := u
		wg.Add(1)
		go func() { // mutator: private triples come and go
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := Triple{viri(fmt.Sprintf("u%d_%d", u, i)), viri("q"), viri("o")}
				k := s.AcquireTriple(tr)
				views[u].Add(k)
				if i%2 == 0 {
					views[u].Remove(k)
					s.Release(k)
				}
			}
		}()
		wg.Add(1)
		go func() { // reader: whole-view transactions
			defer wg.Done()
			for i := 0; i < 200; i++ {
				views[u].ReadIDs(func(r IDReader) {
					pid, ok := r.IDOf(viri("p"))
					if !ok {
						t.Error("p vanished from dictionary")
						return
					}
					if n := r.CountIDs(PatternIDs{P: pid}); n < 100 {
						t.Errorf("base triples missing: %d", n)
					}
					r.ForEachIDs(PatternIDs{P: pid}, func(a, b, c TermID) bool { return true })
				})
			}
		}()
	}
	wg.Wait()
}
