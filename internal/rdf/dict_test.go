package rdf

import "testing"

func TestDictEncodeLookup(t *testing.T) {
	d := NewDict()
	a, b := iri("a"), iri("b")
	idA := d.Encode(a)
	if id := d.Encode(a); id != idA {
		t.Fatalf("re-encoding the same term gave %d, want %d", id, idA)
	}
	idB := d.Encode(b)
	if idA == idB {
		t.Fatal("distinct terms must get distinct IDs")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if got := d.Term(idA); got != a {
		t.Fatalf("Term(%d) = %v, want %v", idA, got, a)
	}
	if _, ok := d.Lookup(iri("never-seen")); ok {
		t.Fatal("Lookup must not intern unseen terms")
	}
	if d.Len() != 2 {
		t.Fatalf("Lookup interned: Len = %d, want 2", d.Len())
	}
	// Literals with different datatypes are distinct terms.
	l1 := d.Encode(NewLiteral("1"))
	l2 := d.Encode(NewTypedLiteral("1", XSDInteger))
	if l1 == l2 {
		t.Fatal("plain and typed literal must intern separately")
	}
}

func TestDictCloneIndependent(t *testing.T) {
	d := NewDict()
	idA := d.Encode(iri("a"))
	c := d.Clone()
	if got, ok := c.Lookup(iri("a")); !ok || got != idA {
		t.Fatalf("clone must preserve issued IDs, got (%d,%v)", got, ok)
	}
	c.Encode(iri("b"))
	if _, ok := d.Lookup(iri("b")); ok {
		t.Fatal("encoding into the clone must not touch the original")
	}
	d.Encode(iri("c"))
	if _, ok := c.Lookup(iri("c")); ok {
		t.Fatal("encoding into the original must not touch the clone")
	}
}

// Count must answer every shape from index sizes; this cross-checks it
// against ForEach enumeration on a store with mixed term kinds, including
// after removals (which must decrement the sub-index counters).
func TestCountMatchesEnumeration(t *testing.T) {
	st := NewStore()
	ts := []Triple{
		{iri("Hg"), iri("dangerLevel"), NewLiteral("high")},
		{iri("Hg"), iri("is-a"), iri("element")},
		{iri("Pb"), iri("dangerLevel"), NewLiteral("high")},
		{iri("Pb"), iri("is-a"), iri("element")},
		{NewBlank("n1"), iri("note"), NewLiteral("x")},
	}
	st.AddAll(ts)
	st.Remove(ts[2])

	pats := []Pattern{
		{},
		{S: iri("Hg")},
		{P: iri("dangerLevel")},
		{O: NewLiteral("high")},
		{S: iri("Hg"), P: iri("is-a")},
		{P: iri("is-a"), O: iri("element")},
		{S: iri("Hg"), O: NewLiteral("high")},
		{S: iri("Hg"), P: iri("dangerLevel"), O: NewLiteral("high")},
		{S: iri("absent")},
		{P: iri("absent")},
		{O: iri("absent")},
	}
	for _, p := range pats {
		want := 0
		st.ForEach(p, func(Triple) bool { want++; return true })
		if got := st.Count(p); got != want {
			t.Errorf("Count(%v) = %d, enumeration gives %d", p, got, want)
		}
	}
}

// Literals containing NUL bytes must not collide with typed literals whose
// (value, datatype) pair happens to render the same byte sequence — the
// struct-keyed typed-literal map keeps the two fields separate.
func TestDictNulLiteralNoCollision(t *testing.T) {
	d := NewDict()
	plain := d.Encode(NewLiteral("a\x00" + XSDInteger))
	typed := d.Encode(NewTypedLiteral("a", XSDInteger))
	if plain == typed {
		t.Fatal("plain literal with embedded NUL must not alias a typed literal")
	}
	if d.Term(plain) != NewLiteral("a\x00"+XSDInteger) || d.Term(typed) != NewTypedLiteral("a", XSDInteger) {
		t.Fatal("decode must round-trip both literals")
	}
	// Typed vs typed: value "a\x00b" ^^ "c" is not value "a" ^^ "b\x00c".
	t1 := d.Encode(NewTypedLiteral("a\x00b", "c"))
	t2 := d.Encode(NewTypedLiteral("a", "b\x00c"))
	if t1 == t2 {
		t.Fatal("typed literals must intern on (value, datatype), not a joined byte string")
	}

	st := NewStore()
	s, p := iri("s"), iri("p")
	st.Add(Triple{s, p, NewTypedLiteral("a\x00b", "c")})
	if st.Has(Triple{s, p, NewTypedLiteral("a", "b\x00c")}) {
		t.Fatal("store must not report a triple that was never added")
	}
}
