package rdf

import (
	"sort"
	"sync"
)

// Store is an in-memory triple store with three full indexes (SPO, POS, OSP)
// so that every triple-pattern shape resolves through an index rather than a
// scan. It is safe for concurrent use: reads take a shared lock, mutations an
// exclusive one. This is the CroSSE semantic platform's storage engine
// (the role Jena plays in the paper).
type Store struct {
	mu sync.RWMutex
	// spo: S → P → set of O, and the two rotations.
	spo map[Term]map[Term]map[Term]struct{}
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		spo: make(map[Term]map[Term]map[Term]struct{}),
		pos: make(map[Term]map[Term]map[Term]struct{}),
		osp: make(map[Term]map[Term]map[Term]struct{}),
	}
}

func addIdx(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m1, ok := idx[a]
	if !ok {
		m1 = make(map[Term]map[Term]struct{})
		idx[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[Term]struct{})
		m1[b] = m2
	}
	if _, dup := m2[c]; dup {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func delIdx(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m1, ok := idx[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, ok := m2[c]; !ok {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(idx, a)
		}
	}
	return true
}

// Add inserts a triple. It reports whether the triple was new.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !addIdx(s.spo, t.S, t.P, t.O) {
		return false
	}
	addIdx(s.pos, t.P, t.O, t.S)
	addIdx(s.osp, t.O, t.S, t.P)
	s.n++
	return true
}

// AddAll inserts a batch of triples, returning how many were new.
func (s *Store) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if s.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes a triple. It reports whether the triple was present.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !delIdx(s.spo, t.S, t.P, t.O) {
		return false
	}
	delIdx(s.pos, t.P, t.O, t.S)
	delIdx(s.osp, t.O, t.S, t.P)
	s.n--
	return true
}

// Has reports whether the exact triple is in the store.
func (s *Store) Has(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if m1, ok := s.spo[t.S]; ok {
		if m2, ok := m1[t.P]; ok {
			_, ok := m2[t.O]
			return ok
		}
	}
	return false
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Match returns every triple matching the pattern. The index used is chosen
// by which positions are bound: S?? and SP? use SPO, ?P? and ?PO use POS,
// ??O and S?O use OSP, SPO uses a Has probe, and ??? enumerates SPO.
// Results are returned in unspecified order; use MatchSorted for stability.
func (s *Store) Match(p Pattern) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Triple
	s.matchLocked(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEach streams matching triples into fn; fn returning false stops early.
func (s *Store) ForEach(p Pattern, fn func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchLocked(p, fn)
}

// Count returns the number of triples matching the pattern without
// materialising them.
func (s *Store) Count(p Pattern) int {
	n := 0
	s.ForEach(p, func(Triple) bool { n++; return true })
	return n
}

func (s *Store) matchLocked(p Pattern, fn func(Triple) bool) {
	sb, pb, ob := !p.S.IsZero(), !p.P.IsZero(), !p.O.IsZero()
	switch {
	case sb && pb && ob:
		if m1, ok := s.spo[p.S]; ok {
			if m2, ok := m1[p.P]; ok {
				if _, ok := m2[p.O]; ok {
					fn(Triple{p.S, p.P, p.O})
				}
			}
		}
	case sb && pb:
		if m1, ok := s.spo[p.S]; ok {
			for o := range m1[p.P] {
				if !fn(Triple{p.S, p.P, o}) {
					return
				}
			}
		}
	case pb && ob:
		if m1, ok := s.pos[p.P]; ok {
			for sub := range m1[p.O] {
				if !fn(Triple{sub, p.P, p.O}) {
					return
				}
			}
		}
	case sb && ob:
		if m1, ok := s.osp[p.O]; ok {
			for pr := range m1[p.S] {
				if !fn(Triple{p.S, pr, p.O}) {
					return
				}
			}
		}
	case sb:
		if m1, ok := s.spo[p.S]; ok {
			for pr, objs := range m1 {
				for o := range objs {
					if !fn(Triple{p.S, pr, o}) {
						return
					}
				}
			}
		}
	case pb:
		if m1, ok := s.pos[p.P]; ok {
			for o, subs := range m1 {
				for sub := range subs {
					if !fn(Triple{sub, p.P, o}) {
						return
					}
				}
			}
		}
	case ob:
		if m1, ok := s.osp[p.O]; ok {
			for sub, preds := range m1 {
				for pr := range preds {
					if !fn(Triple{sub, pr, p.O}) {
						return
					}
				}
			}
		}
	default:
		for sub, m1 := range s.spo {
			for pr, objs := range m1 {
				for o := range objs {
					if !fn(Triple{sub, pr, o}) {
						return
					}
				}
			}
		}
	}
}

// MatchSorted returns matching triples in deterministic (lexicographic by
// rendered form) order. Useful for golden tests and stable exports.
func (s *Store) MatchSorted(p Pattern) []Triple {
	ts := s.Match(p)
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
	return ts
}

// Subjects returns the distinct subjects of triples matching (?, p, o).
func (s *Store) Subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	var out []Term
	s.ForEach(Pattern{P: p, O: o}, func(t Triple) bool {
		if _, ok := seen[t.S]; !ok {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// Objects returns the distinct objects of triples matching (s, p, ?).
func (s *Store) Objects(sub, p Term) []Term {
	seen := make(map[Term]struct{})
	var out []Term
	s.ForEach(Pattern{S: sub, P: p}, func(t Triple) bool {
		if _, ok := seen[t.O]; !ok {
			seen[t.O] = struct{}{}
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Predicates returns the distinct predicates appearing in the store.
func (s *Store) Predicates() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Term, 0, len(s.pos))
	for p := range s.pos {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Clone returns a deep snapshot of the store. Used by the KB layer to build
// per-user materialised views without blocking writers.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	for sub, m1 := range s.spo {
		for pr, objs := range m1 {
			for o := range objs {
				c.Add(Triple{sub, pr, o})
			}
		}
	}
	return c
}

// Clear removes every triple.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spo = make(map[Term]map[Term]map[Term]struct{})
	s.pos = make(map[Term]map[Term]map[Term]struct{})
	s.osp = make(map[Term]map[Term]map[Term]struct{})
	s.n = 0
}

// Graph is the read-only view the SPARQL engine evaluates against. Both
// *Store and the KB layer's filtered per-user views implement it.
type Graph interface {
	// ForEach streams triples matching the pattern; fn returning false
	// stops the enumeration early.
	ForEach(p Pattern, fn func(Triple) bool)
	// Count returns the number of triples matching the pattern (used for
	// join ordering).
	Count(p Pattern) int
}

var _ Graph = (*Store)(nil)
