package rdf

import (
	"sort"
	"sync"
)

// idSet is a third-level index entry: the set of IDs completing a triple.
type idSet map[TermID]struct{}

// TripleKey is a dictionary-encoded triple: the [subject, predicate, object]
// IDs issued by the owning dictionary. One 12-byte hash probe answers
// Has/duplicate-Add/exact-Count without walking three index levels, and the
// KB layer's overlay views (View) keep their whole membership state as sets
// of TripleKeys — no term strings, no per-view dictionary.
type TripleKey [3]TermID

// subIndex is one first-level entry of a three-level index: the second-level
// key → third-level set mapping, plus the total number of triples stored
// under this entry so Count answers S??/?P?/??O shapes in O(1) instead of
// enumerating.
type subIndex struct {
	m map[TermID]idSet
	n int
}

// index is a full three-level permutation index over encoded triples.
type index map[TermID]*subIndex

// add records an (a, b, c) entry. The caller has already established via the
// store's flat triple set that the entry is new.
func (idx index) add(a, b, c TermID) {
	s1, ok := idx[a]
	if !ok {
		s1 = &subIndex{m: make(map[TermID]idSet)}
		idx[a] = s1
	}
	s2, ok := s1.m[b]
	if !ok {
		s2 = make(idSet)
		s1.m[b] = s2
	}
	s2[c] = struct{}{}
	s1.n++
}

// del removes an (a, b, c) entry. The caller has already established via the
// store's flat triple set that the entry is present.
func (idx index) del(a, b, c TermID) {
	s1 := idx[a]
	s2 := s1.m[b]
	delete(s2, c)
	s1.n--
	if len(s2) == 0 {
		delete(s1.m, b)
		if len(s1.m) == 0 {
			delete(idx, a)
		}
	}
}

// clone deep-copies the index structure. The copied maps are keyed on the
// same IDs, so the copy must be paired with a Dict.Clone of the source.
func (idx index) clone() index {
	c := make(index, len(idx))
	for a, s1 := range idx {
		m := make(map[TermID]idSet, len(s1.m))
		for b, s2 := range s1.m {
			set := make(idSet, len(s2))
			for k := range s2 {
				set[k] = struct{}{}
			}
			m[b] = set
		}
		c[a] = &subIndex{m: m, n: s1.n}
	}
	return c
}

// encStore is the dictionary-free encoded core of a triple store: the flat
// TripleKey membership set plus the three permutation indexes. Store pairs
// one with a private Dict; SharedStore pairs one with the platform-wide
// shared Dict. It carries no lock — the embedding type's lock guards it.
type encStore struct {
	triples map[TripleKey]struct{} // flat membership set: dup/Has/exact-Count probes
	spo     index
	pos     index
	osp     index
}

func newEncStore() encStore {
	return encStore{
		triples: make(map[TripleKey]struct{}),
		spo:     make(index),
		pos:     make(index),
		osp:     make(index),
	}
}

// addKey inserts an encoded triple, reporting whether it was new.
func (c *encStore) addKey(k TripleKey) bool {
	if _, dup := c.triples[k]; dup {
		return false
	}
	c.triples[k] = struct{}{}
	c.spo.add(k[0], k[1], k[2])
	c.pos.add(k[1], k[2], k[0])
	c.osp.add(k[2], k[0], k[1])
	return true
}

// delKey removes an encoded triple, reporting whether it was present.
func (c *encStore) delKey(k TripleKey) bool {
	if _, ok := c.triples[k]; !ok {
		return false
	}
	delete(c.triples, k)
	c.spo.del(k[0], k[1], k[2])
	c.pos.del(k[1], k[2], k[0])
	c.osp.del(k[2], k[0], k[1])
	return true
}

// countIDs answers a pattern cardinality from index sizes in O(1). A
// never-issued (including synthetic) ID in any position yields 0.
func (c *encStore) countIDs(p PatternIDs) int {
	sb, pb, ob := p.S != 0, p.P != 0, p.O != 0
	switch {
	case sb && pb && ob:
		if _, ok := c.triples[TripleKey{p.S, p.P, p.O}]; ok {
			return 1
		}
		return 0
	case sb && pb:
		if s1, ok := c.spo[p.S]; ok {
			return len(s1.m[p.P])
		}
		return 0
	case pb && ob:
		if s1, ok := c.pos[p.P]; ok {
			return len(s1.m[p.O])
		}
		return 0
	case sb && ob:
		if s1, ok := c.osp[p.O]; ok {
			return len(s1.m[p.S])
		}
		return 0
	case sb:
		if s1, ok := c.spo[p.S]; ok {
			return s1.n
		}
		return 0
	case pb:
		if s1, ok := c.pos[p.P]; ok {
			return s1.n
		}
		return 0
	case ob:
		if s1, ok := c.osp[p.O]; ok {
			return s1.n
		}
		return 0
	default:
		return len(c.triples)
	}
}

// matchIDs streams encoded triples matching the pattern into fn without any
// term decoding; fn returning false stops the enumeration. This is the layer
// the term-level match API, the SPARQL executor's ID-native joins and the
// overlay views' shared-side iteration all sit on.
func (c *encStore) matchIDs(p PatternIDs, fn func(si, pi, oi TermID) bool) {
	sb, pb, ob := p.S != 0, p.P != 0, p.O != 0
	switch {
	case sb && pb && ob:
		if _, ok := c.triples[TripleKey{p.S, p.P, p.O}]; ok {
			fn(p.S, p.P, p.O)
		}
	case sb && pb:
		if s1, ok := c.spo[p.S]; ok {
			for o := range s1.m[p.P] {
				if !fn(p.S, p.P, o) {
					return
				}
			}
		}
	case pb && ob:
		if s1, ok := c.pos[p.P]; ok {
			for sub := range s1.m[p.O] {
				if !fn(sub, p.P, p.O) {
					return
				}
			}
		}
	case sb && ob:
		if s1, ok := c.osp[p.O]; ok {
			for pr := range s1.m[p.S] {
				if !fn(p.S, pr, p.O) {
					return
				}
			}
		}
	case sb:
		if s1, ok := c.spo[p.S]; ok {
			for pr, objs := range s1.m {
				for o := range objs {
					if !fn(p.S, pr, o) {
						return
					}
				}
			}
		}
	case pb:
		if s1, ok := c.pos[p.P]; ok {
			for o, subs := range s1.m {
				for sub := range subs {
					if !fn(sub, p.P, o) {
						return
					}
				}
			}
		}
	case ob:
		if s1, ok := c.osp[p.O]; ok {
			for sub, preds := range s1.m {
				for pr := range preds {
					if !fn(sub, pr, p.O) {
						return
					}
				}
			}
		}
	default:
		for sub, s1 := range c.spo {
			for pr, objs := range s1.m {
				for o := range objs {
					if !fn(sub, pr, o) {
						return
					}
				}
			}
		}
	}
}

// clone deep-copies the encoded core.
func (c *encStore) clone() encStore {
	triples := make(map[TripleKey]struct{}, len(c.triples))
	for k := range c.triples {
		triples[k] = struct{}{}
	}
	return encStore{
		triples: triples,
		spo:     c.spo.clone(),
		pos:     c.pos.clone(),
		osp:     c.osp.clone(),
	}
}

// Store is an in-memory triple store with three full permutation indexes
// (SPO, POS, OSP) over dictionary-encoded terms, so that every triple-pattern
// shape resolves through an index rather than a scan and every pattern
// cardinality is answered from index sizes without enumeration. It is safe
// for concurrent use: reads take a shared lock, mutations an exclusive one.
// This is the CroSSE semantic platform's storage engine (the role Jena plays
// in the paper).
type Store struct {
	mu   sync.RWMutex
	dict *Dict
	encStore
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dict:     NewDict(),
		encStore: newEncStore(),
	}
}

// Add inserts a triple. It reports whether the triple was new.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(t)
}

func (s *Store) addLocked(t Triple) bool {
	si, pi, oi := s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)
	return s.addKey(TripleKey{si, pi, oi})
}

// AddAll inserts a batch of triples under a single lock acquisition,
// returning how many were new.
func (s *Store) AddAll(ts []Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, t := range ts {
		if s.addLocked(t) {
			added++
		}
	}
	return added
}

// Remove deletes a triple. It reports whether the triple was present.
// Removed terms stay interned in the dictionary (IDs are never recycled).
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	si, okS := s.dict.Lookup(t.S)
	pi, okP := s.dict.Lookup(t.P)
	oi, okO := s.dict.Lookup(t.O)
	if !okS || !okP || !okO {
		return false
	}
	return s.delKey(TripleKey{si, pi, oi})
}

// Has reports whether the exact triple is in the store.
func (s *Store) Has(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si, okS := s.dict.Lookup(t.S)
	pi, okP := s.dict.Lookup(t.P)
	oi, okO := s.dict.Lookup(t.O)
	if !okS || !okP || !okO {
		return false
	}
	_, ok := s.triples[TripleKey{si, pi, oi}]
	return ok
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.triples)
}

// PatternIDs is a triple pattern over dictionary-encoded terms: the zero
// TermID (reserved, never issued to a real term) acts as a wildcard. It is
// the unit of the store's ID-native match API, which the SPARQL executor
// joins on without decoding terms.
type PatternIDs struct {
	S, P, O TermID
}

// Match returns every triple matching the pattern. The index used is chosen
// by which positions are bound: S?? and SP? use SPO, ?P? and ?PO use POS,
// ??O and S?O use OSP, SPO uses a Has probe, and ??? enumerates SPO.
// Results are returned in unspecified order; use MatchSorted for stability.
func (s *Store) Match(p Pattern) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Triple
	s.matchLocked(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEach streams matching triples into fn; fn returning false stops early.
func (s *Store) ForEach(p Pattern, fn func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchLocked(p, fn)
}

// Count returns the number of triples matching the pattern without
// materialising or enumerating them: every shape is answered from index
// sizes (sub-index counters for single-bound shapes, set lengths for
// double-bound ones), so the SPARQL join orderer can probe candidate
// patterns in O(1) regardless of store size.
func (s *Store) Count(p Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids, ok := s.dict.encodePattern(p)
	if !ok {
		return 0
	}
	return s.countIDs(ids)
}

func (s *Store) matchLocked(p Pattern, fn func(Triple) bool) {
	ids, ok := s.dict.encodePattern(p)
	if !ok {
		return
	}
	d := s.dict
	s.matchIDs(ids, func(a, b, c TermID) bool {
		return fn(Triple{d.Term(a), d.Term(b), d.Term(c)})
	})
}

// ForEachIDs streams encoded triples matching the ID pattern into fn; fn
// returning false stops early. No term is decoded. Each call acquires the
// read lock once; callers that issue many dependent probes (nested joins)
// should use ReadIDs instead to hold a single read transaction.
func (s *Store) ForEachIDs(p PatternIDs, fn func(si, pi, oi TermID) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchIDs(p, fn)
}

// CountIDs is Count over an already-encoded pattern: every shape is answered
// from index sizes in O(1).
func (s *Store) CountIDs(p PatternIDs) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.countIDs(p)
}

// TermOf decodes an ID issued by this store's dictionary.
func (s *Store) TermOf(id TermID) (Term, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict.TermOf(id)
}

// IDOf returns the ID this store's dictionary has issued for the term, or
// false if the term has never been interned (in which case no triple of the
// store mentions it).
func (s *Store) IDOf(t Term) (TermID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict.IDOf(t)
}

// IDReader is the ID-native read surface handed out by ReadIDs: pattern
// matching, O(1) pattern counting and term↔ID translation over the store's
// dictionary-encoded indexes, valid for the duration of one read
// transaction. Implementations are NOT safe to retain after the ReadIDs
// callback returns.
type IDReader interface {
	// ForEachIDs streams encoded triples matching the pattern; fn returning
	// false stops early.
	ForEachIDs(p PatternIDs, fn func(s, p, o TermID) bool)
	// CountIDs returns the pattern's cardinality from index sizes.
	CountIDs(p PatternIDs) int
	// TermOf decodes an issued ID.
	TermOf(id TermID) (Term, bool)
	// IDOf resolves an interned term to its ID.
	IDOf(t Term) (TermID, bool)
}

// ConcurrentReader marks IDReader implementations that are safe for
// concurrent use from multiple goroutines within one ReadIDs transaction:
// every method is a pure read, and the transaction's read lock blocks all
// writers for the reader's whole lifetime. The store-backed readers
// (private store, shared arena, overlay view) all qualify; adapters that
// intern terms on the fly do not. The SPARQL executor's parallel path
// requires this capability.
type ConcurrentReader interface {
	IDReader
	// ConcurrentIDReads is a marker; it does nothing.
	ConcurrentIDReads()
}

// storeReader implements IDReader without per-call locking; the enclosing
// ReadIDs holds the store's read lock for the reader's whole lifetime.
type storeReader struct{ s *Store }

func (storeReader) ConcurrentIDReads() {}

func (r storeReader) ForEachIDs(p PatternIDs, fn func(s, p, o TermID) bool) {
	r.s.matchIDs(p, fn)
}
func (r storeReader) CountIDs(p PatternIDs) int     { return r.s.countIDs(p) }
func (r storeReader) TermOf(id TermID) (Term, bool) { return r.s.dict.TermOf(id) }
func (r storeReader) IDOf(t Term) (TermID, bool)    { return r.s.dict.IDOf(t) }

// ReadIDs runs fn as one read transaction over the encoded layer: the
// store's read lock is acquired once and every IDReader call inside fn is
// lock-free. This is how the SPARQL executor evaluates a whole query —
// nested index probes per join row — without re-locking per probe and
// without the lock-order hazards of re-entrant RLock acquisition. fn must
// not call the store's own locked methods (Add, Match, Count, …).
func (s *Store) ReadIDs(fn func(IDReader)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(storeReader{s})
}

// MatchSorted returns matching triples in deterministic order (by subject,
// predicate, object under Term.Compare). Useful for golden tests and stable
// exports.
func (s *Store) MatchSorted(p Pattern) []Triple {
	ts := s.Match(p)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}

// Subjects returns the distinct subjects of triples matching (?, p, o).
func (s *Store) Subjects(p, o Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pi, okP := s.dict.Lookup(p)
	oi, okO := s.dict.Lookup(o)
	if !okP || !okO {
		return nil
	}
	s1, ok := s.pos[pi]
	if !ok {
		return nil
	}
	set := s1.m[oi]
	out := make([]Term, 0, len(set))
	for sub := range set {
		out = append(out, s.dict.Term(sub))
	}
	return out
}

// Objects returns the distinct objects of triples matching (s, p, ?).
func (s *Store) Objects(sub, p Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si, okS := s.dict.Lookup(sub)
	pi, okP := s.dict.Lookup(p)
	if !okS || !okP {
		return nil
	}
	s1, ok := s.spo[si]
	if !ok {
		return nil
	}
	set := s1.m[pi]
	out := make([]Term, 0, len(set))
	for o := range set {
		out = append(out, s.dict.Term(o))
	}
	return out
}

// Predicates returns the distinct predicates appearing in the store.
func (s *Store) Predicates() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Term, 0, len(s.pos))
	for p := range s.pos {
		out = append(out, s.dict.Term(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Clone returns a deep snapshot of the store, built by bulk-copying the
// encoded indexes and the dictionary under a single shared lock — no
// per-triple re-encoding or re-locking — so cloning costs one flat pass over
// the index maps. It is the snapshot API for callers that need a
// point-in-time copy to read or mutate without blocking the original
// (offline analysis, export); the KB layer's views are overlays over a
// SharedStore and update incrementally.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &Store{
		dict:     s.dict.Clone(),
		encStore: s.encStore.clone(),
	}
}

// Clear removes every triple and resets the dictionary.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dict = NewDict()
	s.encStore = newEncStore()
}

// Graph is the read-only view the SPARQL engine evaluates against. Both
// *Store and the KB layer's overlay per-user views implement it.
type Graph interface {
	// ForEach streams triples matching the pattern; fn returning false
	// stops the enumeration early.
	ForEach(p Pattern, fn func(Triple) bool)
	// Count returns the number of triples matching the pattern (used for
	// join ordering).
	Count(p Pattern) int
}

// IDGraph is a Graph whose storage exposes the dictionary-encoded layer.
// The SPARQL executor type-asserts its input Graph to IDGraph and, when the
// assertion holds (it does for *Store, *SharedStore and every KB overlay
// View), runs the whole query ID-natively under a single ReadIDs
// transaction; other Graph implementations fall back to an adapter that
// interns terms on the fly.
type IDGraph interface {
	Graph
	// ReadIDs runs fn as one lock-free-inside read transaction over the
	// encoded layer.
	ReadIDs(fn func(IDReader))
}

var _ Graph = (*Store)(nil)
var _ IDGraph = (*Store)(nil)
