package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements an N-Triples-style codec so knowledge bases can be
// exported, versioned, and re-imported (the paper's platform persists user
// annotations; we persist them as line-oriented triples).

// WriteNTriples serialises every triple in the store (sorted, deterministic)
// to w, one statement per line terminated by " .".
func WriteNTriples(w io.Writer, g *Store) error {
	for _, t := range g.MatchSorted(Pattern{}) {
		if _, err := fmt.Fprintf(w, "%s .\n", t.String()); err != nil {
			return err
		}
	}
	return nil
}

// ReadNTriples parses triples from r (N-Triples subset: IRIs, quoted
// literals with optional ^^<datatype>, blank nodes, # comments) and adds
// them to the store. It returns the number of triples added.
func ReadNTriples(r io.Reader, g *Store) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	added, lineno := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return added, fmt.Errorf("rdf: line %d: %w", lineno, err)
		}
		if g.Add(t) {
			added++
		}
	}
	return added, sc.Err()
}

// ParseTripleLine parses a single N-Triples statement (the trailing dot is
// optional).
func ParseTripleLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	if p.pos < len(p.in) && p.in[p.pos] == '.' {
		p.pos++
	}
	p.ws()
	if p.pos < len(p.in) {
		return Triple{}, fmt.Errorf("trailing garbage %q", p.in[p.pos:])
	}
	return Triple{s, pr, o}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.ws()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.in[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return NewIRI(iri), nil
	case '_':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.pos + 2
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		label := p.in[start:end]
		p.pos = end
		if label == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		return NewBlank(label), nil
	case '"':
		lex, rest, err := unquoteLiteral(p.in[p.pos:])
		if err != nil {
			return Term{}, err
		}
		p.pos = len(p.in) - len(rest)
		// Optional ^^<datatype>.
		if strings.HasPrefix(p.in[p.pos:], "^^<") {
			end := strings.IndexByte(p.in[p.pos+3:], '>')
			if end < 0 {
				return Term{}, fmt.Errorf("unterminated datatype IRI")
			}
			dt := p.in[p.pos+3 : p.pos+3+end]
			p.pos += 3 + end + 1
			return NewTypedLiteral(lex, dt), nil
		}
		return NewLiteral(lex), nil
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.in[p.pos])
	}
}

// unquoteLiteral consumes a leading quoted literal from s and returns the
// unescaped lexical form plus the remainder of s.
func unquoteLiteral(s string) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted literal")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
			continue
		default:
			b.WriteByte(c)
		}
		i++
	}
	return "", "", fmt.Errorf("unterminated literal")
}
