package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

func idFixtureStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		st.Add(Triple{
			S: NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(20))),
			P: NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5))),
			O: NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(40))),
		})
	}
	st.Add(Triple{S: NewIRI("http://x/s0"), P: NewIRI("http://x/p0"),
		O: NewTypedLiteral("7", XSDInteger)})
	return st
}

// encodeTestPattern resolves a term-level pattern through the public ID API.
func encodeTestPattern(t *testing.T, st *Store, p Pattern) (PatternIDs, bool) {
	t.Helper()
	var ids PatternIDs
	resolve := func(term Term) (TermID, bool) {
		if term.IsZero() {
			return 0, true
		}
		return st.IDOf(term)
	}
	var ok bool
	if ids.S, ok = resolve(p.S); !ok {
		return ids, false
	}
	if ids.P, ok = resolve(p.P); !ok {
		return ids, false
	}
	if ids.O, ok = resolve(p.O); !ok {
		return ids, false
	}
	return ids, true
}

// Every pattern shape must stream the same triples through ForEachIDs (after
// decoding) as the term-level ForEach, and CountIDs must agree with Count.
func TestForEachIDsMatchesTermLevelAcrossShapes(t *testing.T) {
	st := idFixtureStore(t)
	s0 := NewIRI("http://x/s0")
	p0 := NewIRI("http://x/p0")
	o0 := NewIRI("http://x/o1")
	shapes := []Pattern{
		{},
		{S: s0},
		{P: p0},
		{O: o0},
		{S: s0, P: p0},
		{P: p0, O: o0},
		{S: s0, O: o0},
		{S: s0, P: p0, O: o0},
	}
	for _, pat := range shapes {
		ids, ok := encodeTestPattern(t, st, pat)
		if !ok {
			t.Fatalf("pattern %v references un-interned terms", pat)
		}
		want := map[string]int{}
		st.ForEach(pat, func(tr Triple) bool {
			want[tr.String()]++
			return true
		})
		got := map[string]int{}
		n := 0
		st.ForEachIDs(ids, func(si, pi, oi TermID) bool {
			s, okS := st.TermOf(si)
			p, okP := st.TermOf(pi)
			o, okO := st.TermOf(oi)
			if !okS || !okP || !okO {
				t.Fatalf("pattern %v: undecodable ids (%d,%d,%d)", pat, si, pi, oi)
			}
			got[Triple{s, p, o}.String()]++
			n++
			return true
		})
		if len(got) != len(want) || n != st.Count(pat) {
			t.Fatalf("pattern %v: ID stream %d distinct (%d total), term stream %d, Count %d",
				pat, len(got), n, len(want), st.Count(pat))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("pattern %v: triple %s seen %d times via IDs, %d via terms", pat, k, got[k], c)
			}
		}
		if st.CountIDs(ids) != st.Count(pat) {
			t.Fatalf("pattern %v: CountIDs %d != Count %d", pat, st.CountIDs(ids), st.Count(pat))
		}
	}
}

func TestForEachIDsEarlyStop(t *testing.T) {
	st := idFixtureStore(t)
	n := 0
	st.ForEachIDs(PatternIDs{}, func(_, _, _ TermID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop after 3, saw %d", n)
	}
}

func TestTermOfIDOfRoundTrip(t *testing.T) {
	st := NewStore()
	terms := []Term{
		NewIRI("http://x/a"),
		NewBlank("b1"),
		NewLiteral("plain"),
		NewTypedLiteral("5", XSDInteger),
		NewTypedLiteral("5", XSDDouble), // same lexical form, distinct datatype
	}
	for _, tm := range terms {
		st.Add(Triple{S: NewIRI("http://x/s"), P: NewIRI("http://x/p"), O: tm})
	}
	seen := map[TermID]struct{}{}
	for _, tm := range terms {
		id, ok := st.IDOf(tm)
		if !ok || id == 0 {
			t.Fatalf("IDOf(%v) = (%d, %v)", tm, id, ok)
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("id %d issued twice", id)
		}
		seen[id] = struct{}{}
		back, ok := st.TermOf(id)
		if !ok || back != tm {
			t.Fatalf("TermOf(IDOf(%v)) = (%v, %v)", tm, back, ok)
		}
	}
	if _, ok := st.IDOf(NewIRI("http://x/never")); ok {
		t.Error("IDOf must report false for never-interned terms")
	}
	if _, ok := st.TermOf(0); ok {
		t.Error("TermOf(0) must report false (reserved wildcard)")
	}
	if _, ok := st.TermOf(TermID(1 << 30)); ok {
		t.Error("TermOf of a never-issued id must report false")
	}
}

// ReadIDs must expose a consistent snapshot usable for nested probes — the
// executor's access pattern: an outer enumeration issuing inner probes per
// row, all under one read transaction.
func TestReadIDsNestedProbes(t *testing.T) {
	st := idFixtureStore(t)
	p0 := NewIRI("http://x/p0")
	pid, ok := st.IDOf(p0)
	if !ok {
		t.Fatal("p0 not interned")
	}
	wantJoin := 0
	st.ForEach(Pattern{P: p0}, func(tr Triple) bool {
		wantJoin += st.Count(Pattern{S: tr.O})
		return true
	})
	gotJoin := 0
	st.ReadIDs(func(r IDReader) {
		r.ForEachIDs(PatternIDs{P: pid}, func(_, _, oi TermID) bool {
			gotJoin += r.CountIDs(PatternIDs{S: oi})
			return true
		})
	})
	if gotJoin != wantJoin {
		t.Fatalf("nested join under ReadIDs: got %d, want %d", gotJoin, wantJoin)
	}
}

func TestDictTermOfIDOf(t *testing.T) {
	d := NewDict()
	a := NewIRI("http://x/a")
	id := d.Encode(a)
	if got, ok := d.TermOf(id); !ok || got != a {
		t.Fatalf("TermOf(%d) = (%v, %v)", id, got, ok)
	}
	if got, ok := d.IDOf(a); !ok || got != id {
		t.Fatalf("IDOf = (%d, %v), want %d", got, ok, id)
	}
	if _, ok := d.TermOf(0); ok {
		t.Error("TermOf(0) must be false")
	}
	if _, ok := d.TermOf(id + 1); ok {
		t.Error("TermOf past the issued range must be false")
	}
}
