package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func iri(s string) Term { return NewIRI("http://smartground.eu/" + s) }

func tr(s, p, o string) Triple { return Triple{iri(s), iri(p), iri(o)} }

func TestAddHasRemove(t *testing.T) {
	st := NewStore()
	x := tr("Mercury", "is-a", "element")
	if !st.Add(x) {
		t.Fatal("first Add must report new")
	}
	if st.Add(x) {
		t.Fatal("duplicate Add must report not-new")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if !st.Has(x) {
		t.Fatal("Has must find the triple")
	}
	if !st.Remove(x) {
		t.Fatal("Remove must report present")
	}
	if st.Remove(x) {
		t.Fatal("second Remove must report absent")
	}
	if st.Len() != 0 || st.Has(x) {
		t.Fatal("store must be empty after removal")
	}
}

func TestMatchAllShapes(t *testing.T) {
	st := NewStore()
	triples := []Triple{
		tr("Hg", "is-a", "element"),
		tr("Hg", "dangerLevel", "high"),
		tr("Pb", "is-a", "element"),
		tr("Pb", "dangerLevel", "high"),
		tr("Au", "is-a", "element"),
		tr("Au", "dangerLevel", "low"),
	}
	st.AddAll(triples)

	cases := []struct {
		name string
		p    Pattern
		want int
	}{
		{"???", Pattern{}, 6},
		{"S??", Pattern{S: iri("Hg")}, 2},
		{"?P?", Pattern{P: iri("is-a")}, 3},
		{"??O", Pattern{O: iri("high")}, 2},
		{"SP?", Pattern{S: iri("Hg"), P: iri("dangerLevel")}, 1},
		{"?PO", Pattern{P: iri("dangerLevel"), O: iri("high")}, 2},
		{"S?O", Pattern{S: iri("Au"), O: iri("low")}, 1},
		{"SPO hit", Pattern{S: iri("Au"), P: iri("is-a"), O: iri("element")}, 1},
		{"SPO miss", Pattern{S: iri("Au"), P: iri("is-a"), O: iri("mineral")}, 0},
	}
	for _, c := range cases {
		got := st.Match(c.p)
		if len(got) != c.want {
			t.Errorf("%s: got %d matches, want %d", c.name, len(got), c.want)
		}
		for _, m := range got {
			if !c.p.Matches(m) {
				t.Errorf("%s: returned non-matching triple %v", c.name, m)
			}
		}
		if n := st.Count(c.p); n != c.want {
			t.Errorf("%s: Count = %d, want %d", c.name, n, c.want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	n := 0
	st.ForEach(Pattern{P: iri("p")}, func(Triple) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d, want 10", n)
	}
}

func TestSubjectsObjects(t *testing.T) {
	st := NewStore()
	st.AddAll([]Triple{
		tr("Hg", "is-a", "HazardousWaste"),
		tr("Pb", "is-a", "HazardousWaste"),
		tr("Hg", "foundWith", "Pb"),
		tr("Hg", "foundWith", "Zn"),
	})
	subs := st.Subjects(iri("is-a"), iri("HazardousWaste"))
	if len(subs) != 2 {
		t.Errorf("Subjects: got %d, want 2", len(subs))
	}
	objs := st.Objects(iri("Hg"), iri("foundWith"))
	if len(objs) != 2 {
		t.Errorf("Objects: got %d, want 2", len(objs))
	}
}

func TestPredicates(t *testing.T) {
	st := NewStore()
	st.AddAll([]Triple{tr("a", "p2", "b"), tr("a", "p1", "b")})
	ps := st.Predicates()
	if len(ps) != 2 || ps[0].Value >= ps[1].Value {
		t.Errorf("Predicates not sorted distinct: %v", ps)
	}
}

func TestCloneIsDeep(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "p", "b"))
	c := st.Clone()
	st.Add(tr("c", "p", "d"))
	if c.Len() != 1 {
		t.Errorf("clone mutated by original: Len=%d", c.Len())
	}
	c.Add(tr("e", "p", "f"))
	if st.Len() != 2 {
		t.Errorf("original mutated by clone: Len=%d", st.Len())
	}
}

func TestClear(t *testing.T) {
	st := NewStore()
	st.AddAll([]Triple{tr("a", "p", "b"), tr("c", "p", "d")})
	st.Clear()
	if st.Len() != 0 || len(st.Match(Pattern{})) != 0 {
		t.Error("Clear must empty the store")
	}
}

func TestMatchSortedDeterministic(t *testing.T) {
	st := NewStore()
	for i := 0; i < 50; i++ {
		st.Add(tr(fmt.Sprintf("s%02d", i), "p", "o"))
	}
	// Mixed kinds exercise the kind-major ordering of Triple.Compare.
	st.Add(Triple{NewBlank("b"), iri("p"), NewLiteral("lit")})
	a := st.MatchSorted(Pattern{})
	b := st.MatchSorted(Pattern{})
	if !reflect.DeepEqual(a, b) {
		t.Error("MatchSorted must be deterministic")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].Compare(a[j]) < 0 }) {
		t.Error("MatchSorted must be sorted by Triple.Compare")
	}
}

func TestTermCompare(t *testing.T) {
	cases := []struct {
		a, b Term
		want int
	}{
		{iri("a"), iri("a"), 0},
		{iri("a"), iri("b"), -1},
		{iri("b"), iri("a"), 1},
		{NewIRI("x"), NewLiteral("x"), -1},                      // IRI < Literal
		{NewLiteral("x"), NewBlank("x"), -1},                    // Literal < Blank
		{NewLiteral("1"), NewTypedLiteral("1", XSDInteger), -1}, // datatype tiebreak
		{Term{}, NewIRI("a"), -1},                               // zero term sorts first
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

// Property: for random stores and random patterns, index-driven Match equals
// a naive scan filter.
func TestMatchEqualsNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d"}
	randTerm := func() Term { return iri(names[rng.Intn(len(names))]) }
	for iter := 0; iter < 200; iter++ {
		st := NewStore()
		var all []Triple
		for i := 0; i < 30; i++ {
			t3 := Triple{randTerm(), randTerm(), randTerm()}
			if st.Add(t3) {
				all = append(all, t3)
			}
		}
		var p Pattern
		if rng.Intn(2) == 0 {
			p.S = randTerm()
		}
		if rng.Intn(2) == 0 {
			p.P = randTerm()
		}
		if rng.Intn(2) == 0 {
			p.O = randTerm()
		}
		var naive []string
		for _, t3 := range all {
			if p.Matches(t3) {
				naive = append(naive, t3.String())
			}
		}
		var indexed []string
		for _, t3 := range st.Match(p) {
			indexed = append(indexed, t3.String())
		}
		sort.Strings(naive)
		sort.Strings(indexed)
		if !reflect.DeepEqual(naive, indexed) {
			t.Fatalf("iter %d: pattern %v: naive %v != indexed %v", iter, p, naive, indexed)
		}
	}
}

// Property: add then remove of random triple sets leaves the store empty, and
// all three indexes agree at each step (observed via the three match shapes).
func TestAddRemoveRoundTrip(t *testing.T) {
	f := func(seeds []uint8) bool {
		st := NewStore()
		var ts []Triple
		for _, s := range seeds {
			t3 := tr(fmt.Sprintf("s%d", s%5), fmt.Sprintf("p%d", (s/5)%3), fmt.Sprintf("o%d", (s/15)%4))
			st.Add(t3)
			ts = append(ts, t3)
		}
		for _, t3 := range ts {
			// Each index route must agree on membership.
			bySPO := len(st.Match(Pattern{S: t3.S, P: t3.P, O: t3.O})) == 1
			byPOS := false
			for _, m := range st.Match(Pattern{P: t3.P, O: t3.O}) {
				if m == t3 {
					byPOS = true
				}
			}
			byOSP := false
			for _, m := range st.Match(Pattern{S: t3.S, O: t3.O}) {
				if m == t3 {
					byOSP = true
				}
			}
			if !bySPO || !byPOS || !byOSP {
				return false
			}
		}
		for _, t3 := range ts {
			st.Remove(t3)
		}
		return st.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Add(tr(fmt.Sprintf("s%d-%d", g, i), "p", "o"))
				st.Match(Pattern{P: iri("p")})
				st.Count(Pattern{S: iri(fmt.Sprintf("s%d-%d", g, i))})
			}
		}(g)
	}
	wg.Wait()
	if st.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", st.Len(), 8*200)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/y"), "<http://x/y>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLiteral(`say "hi"` + "\n"), `"say \"hi\"\n"`},
		{NewTypedLiteral("4", XSDInteger), `"4"^^<` + XSDInteger + `>`},
		{NewTypedLiteral("s", XSDString), `"s"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{S: iri("a")}
	if got := p.String(); !strings.Contains(got, "?") || !strings.Contains(got, "a") {
		t.Errorf("Pattern.String() = %q", got)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	st := NewStore()
	st.AddAll([]Triple{
		{iri("Hg"), iri("dangerLevel"), NewLiteral("high")},
		{iri("Hg"), iri("weight"), NewTypedLiteral("200.59", XSDDouble)},
		{NewBlank("n1"), iri("note"), NewLiteral("line1\nline2 \"q\"")},
		tr("Pb", "is-a", "element"),
	})
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, st); err != nil {
		t.Fatal(err)
	}
	back := NewStore()
	n, err := ReadNTriples(&buf, back)
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Len() {
		t.Fatalf("read %d triples, want %d", n, st.Len())
	}
	for _, t3 := range st.Match(Pattern{}) {
		if !back.Has(t3) {
			t.Errorf("round trip lost %v", t3)
		}
	}
}

func TestReadNTriplesCommentsAndErrors(t *testing.T) {
	st := NewStore()
	in := "# comment\n\n<http://a> <http://p> \"x\" .\n"
	n, err := ReadNTriples(strings.NewReader(in), st)
	if err != nil || n != 1 {
		t.Fatalf("got n=%d err=%v", n, err)
	}
	bad := []string{
		"<http://a> <http://p>",
		"<http://a <http://p> <http://o> .",
		`<http://a> <http://p> "unterminated .`,
		`<http://a> <http://p> "x"^^<dangling .`,
		"@prefix foo <http://x> .",
		`<http://a> <http://p> "bad\q" .`,
		"_: <http://p> <http://o> .",
		`<http://a> <http://p> <http://o> . extra`,
	}
	for _, line := range bad {
		if _, err := ParseTripleLine(line); err == nil {
			t.Errorf("ParseTripleLine(%q) should fail", line)
		}
	}
}

func TestParseTripleLineForms(t *testing.T) {
	got, err := ParseTripleLine(`_:b <http://p> "v\twith\ttabs"^^<` + XSDString + `>`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.S.IsBlank() || got.O.Value != "v\twith\ttabs" {
		t.Errorf("parsed %v", got)
	}
	// Datatype xsd:string normalises away on print but parses fine.
	if got.O.Datatype != XSDString {
		t.Errorf("datatype = %q", got.O.Datatype)
	}
}
