package rdf

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseTripleLineNeverPanics feeds the N-Triples parser random input:
// reject or accept, never panic — KB save files may come from other tools.
func TestParseTripleLineNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	alphabet := []byte(`<>"\_:. ^#httpabz019` + "\t")
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		line := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", line, r)
				}
			}()
			_, _ = ParseTripleLine(line)
		}()
	}
}

// TestReadNTriplesTruncations truncates a valid document everywhere.
func TestReadNTriplesTruncations(t *testing.T) {
	doc := `<http://a> <http://p> "x\ty" .
_:b <http://q> <http://o> .
<http://c> <http://p> "4.5"^^<http://www.w3.org/2001/XMLSchema#double> .
`
	for i := 0; i <= len(doc); i++ {
		st := NewStore()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = ReadNTriples(strings.NewReader(doc[:i]), st)
		}()
	}
}
