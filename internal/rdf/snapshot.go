package rdf

// This file implements the binary snapshot codec for the encoded layer: the
// dictionary term table, the shared arena's asserted triples (raw TripleKeys
// plus assertion refcounts), and per-view membership sets. The format
// serialises exactly what the in-memory structures hold, so restore is a
// bulk ID-level load: triples and view members are read back as integer
// keys and inserted into presized maps — no N-Triples parsing and no term
// re-hashing per triple. Only the dictionary's intern maps are rebuilt, one
// string-hash per *distinct* term, which is O(dictionary), not O(triples).
//
// All integers are unsigned varints; strings are length-prefixed. The
// primitives (SnapshotEncoder / SnapshotDecoder) are exported so the
// embedding layers — internal/kb frames the platform stream, internal/core
// adds the image checksum — share one codec instead of forking the wire
// format.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// SnapshotReader is the reader the snapshot decoder consumes: sequential
// byte-level access without read-ahead beyond what the caller hands over.
// *bufio.Reader and *bytes.Reader both satisfy it.
type SnapshotReader interface {
	io.Reader
	io.ByteReader
}

// errCorrupt tags every decode failure so callers can distinguish a damaged
// snapshot from an I/O error.
var errCorrupt = errors.New("rdf: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// IsCorrupt reports whether err marks a structurally invalid snapshot (as
// opposed to an underlying I/O failure).
func IsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }

// --- primitive encoding ---

// maxSnapshotString bounds a single decoded string so a corrupt length
// prefix cannot drive a multi-gigabyte allocation.
const maxSnapshotString = 64 << 20

// PresizeHint clamps a decoded element count to a sane preallocation size:
// maps and slices still grow to the real count, but a corrupt header cannot
// force an enormous up-front allocation.
func PresizeHint(n uint64) int {
	const limit = 1 << 22
	if n > limit {
		return limit
	}
	return int(n)
}

// SnapshotEncoder writes the snapshot wire primitives. It wraps a concrete
// *bufio.Writer rather than io.Writer so the per-integer scratch stays on
// the stack (through an interface it escapes — one heap allocation per
// varint). The owner of the bufio.Writer flushes.
type SnapshotEncoder struct {
	W *bufio.Writer
}

// Uvarint writes v as an unsigned varint.
func (e SnapshotEncoder) Uvarint(v uint64) error {
	for v >= 0x80 {
		if err := e.W.WriteByte(byte(v) | 0x80); err != nil {
			return err
		}
		v >>= 7
	}
	return e.W.WriteByte(byte(v))
}

// String writes a length-prefixed string.
func (e SnapshotEncoder) String(s string) error {
	if err := e.Uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := e.W.WriteString(s)
	return err
}

// Byte writes one raw byte (tags and flags).
func (e SnapshotEncoder) Byte(b byte) error { return e.W.WriteByte(b) }

// Key writes an encoded triple key as three varints.
func (e SnapshotEncoder) Key(k TripleKey) error {
	for _, id := range k {
		if err := e.Uvarint(uint64(id)); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotDecoder reads the snapshot wire primitives through one reusable
// scratch buffer, so each decoded string costs exactly its own allocation
// (the string conversion) instead of a throwaway byte slice per read.
type SnapshotDecoder struct {
	R       SnapshotReader
	scratch []byte
}

// Uvarint reads an unsigned varint.
func (d *SnapshotDecoder) Uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := d.R.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, corruptf("varint overflow")
}

// Byte reads one raw byte (tags and flags).
func (d *SnapshotDecoder) Byte() (byte, error) {
	b, err := d.R.ReadByte()
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return b, err
}

// Bytes reads the next length-prefixed string into the scratch buffer. The
// returned slice is only valid until the next Bytes/String call.
func (d *SnapshotDecoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSnapshotString {
		return nil, corruptf("string length %d exceeds limit", n)
	}
	if uint64(cap(d.scratch)) < n {
		d.scratch = make([]byte, n)
	}
	buf := d.scratch[:n]
	if _, err := io.ReadFull(d.R, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// String reads a length-prefixed string.
func (d *SnapshotDecoder) String() (string, error) {
	buf, err := d.Bytes()
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// Key reads an encoded triple key (three varints) without validating the
// IDs; use KeyInRange when a dictionary bound is known.
func (d *SnapshotDecoder) Key() (TripleKey, error) {
	var k TripleKey
	for i := range k {
		id, err := d.Uvarint()
		if err != nil {
			return k, err
		}
		k[i] = TermID(id)
	}
	return k, nil
}

// KeyInRange reads a triple key, validating every ID against the size of
// the dictionary it must decode under.
func (d *SnapshotDecoder) KeyInRange(dictLen int) (TripleKey, error) {
	k, err := d.Key()
	if err != nil {
		return k, err
	}
	for _, id := range k {
		if id == 0 || uint64(id) > uint64(dictLen) {
			return k, corruptf("triple term id %d out of range (dictionary has %d terms)", id, dictLen)
		}
	}
	return k, nil
}

// Term writes a term as kind tag + value, with the datatype appended for
// typed literals (same tag scheme as the dictionary table). The WAL op
// codec uses this for insert records, whose terms must travel as strings:
// dictionary IDs are assigned during replay, so a log record cannot
// reference them.
func (e SnapshotEncoder) Term(t Term) error {
	tag := byte(snapIRI)
	switch t.Kind {
	case Blank:
		tag = snapBlank
	case Literal:
		if t.Datatype == "" {
			tag = snapPlainLit
		} else {
			tag = snapTypedLit
		}
	}
	if err := e.Byte(tag); err != nil {
		return err
	}
	if err := e.String(t.Value); err != nil {
		return err
	}
	if tag == snapTypedLit {
		return e.String(t.Datatype)
	}
	return nil
}

// Term reads a term written by SnapshotEncoder.Term.
func (d *SnapshotDecoder) Term() (Term, error) {
	tag, err := d.Byte()
	if err != nil {
		return Term{}, err
	}
	value, err := d.String()
	if err != nil {
		return Term{}, err
	}
	switch tag {
	case snapIRI:
		return Term{Kind: IRI, Value: value}, nil
	case snapBlank:
		return Term{Kind: Blank, Value: value}, nil
	case snapPlainLit:
		return Term{Kind: Literal, Value: value}, nil
	case snapTypedLit:
		dt, err := d.String()
		if err != nil {
			return Term{}, err
		}
		return Term{Kind: Literal, Value: value, Datatype: dt}, nil
	default:
		return Term{}, corruptf("unknown term tag %d", tag)
	}
}

// asEncoder reuses the caller's *bufio.Writer or wraps w in a fresh one.
// The returned flush is a no-op for reused writers (the owner flushes) and
// a real Flush for wrapped ones.
func asEncoder(w io.Writer) (enc SnapshotEncoder, flush func() error) {
	if b, ok := w.(*bufio.Writer); ok {
		return SnapshotEncoder{W: b}, func() error { return nil }
	}
	b := bufio.NewWriter(w)
	return SnapshotEncoder{W: b}, b.Flush
}

// --- dictionary ---

// Term kind tags in the snapshot stream. Typed literals get their own tag so
// plain literals do not pay a datatype length byte.
const (
	snapIRI = iota
	snapBlank
	snapPlainLit
	snapTypedLit
)

// writeSnapshot serialises the term table in ID order, preceded by per-kind
// counts so the decoder can presize each intern map exactly.
func (d *Dict) writeSnapshot(enc SnapshotEncoder) error {
	for _, n := range []uint64{
		uint64(len(d.terms)),
		uint64(len(d.iris)),
		uint64(len(d.blanks)),
		uint64(len(d.plainLits)),
		uint64(len(d.typedLits)),
	} {
		if err := enc.Uvarint(n); err != nil {
			return err
		}
	}
	for _, t := range d.terms {
		var tag byte
		switch {
		case t.Kind == IRI:
			tag = snapIRI
		case t.Kind == Blank:
			tag = snapBlank
		case t.Datatype == "":
			tag = snapPlainLit
		default:
			tag = snapTypedLit
		}
		if err := enc.Byte(tag); err != nil {
			return err
		}
		if err := enc.String(t.Value); err != nil {
			return err
		}
		if tag == snapTypedLit {
			if err := enc.String(t.Datatype); err != nil {
				return err
			}
		}
	}
	return nil
}

// readDictSnapshot rebuilds a dictionary. Every issued ID is preserved
// (terms are stored in ID order), so TripleKeys serialised against the
// source dictionary decode identically against the restored one.
func readDictSnapshot(dec *SnapshotDecoder) (*Dict, error) {
	var counts [5]uint64
	for i := range counts {
		n, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		counts[i] = n
	}
	total := counts[0]
	for _, n := range counts[1:] {
		if n > total {
			return nil, corruptf("dictionary kind count %d exceeds total %d", n, total)
		}
	}
	if counts[1]+counts[2]+counts[3]+counts[4] != total {
		return nil, corruptf("dictionary kind counts %v do not sum to %d", counts[1:], total)
	}
	d := &Dict{
		iris:      make(map[string]TermID, PresizeHint(counts[1])),
		blanks:    make(map[string]TermID, PresizeHint(counts[2])),
		plainLits: make(map[string]TermID, PresizeHint(counts[3])),
		typedLits: make(map[typedKey]TermID, PresizeHint(counts[4])),
		terms:     make([]Term, 0, PresizeHint(total)),
	}
	for i := uint64(0); i < total; i++ {
		tag, err := dec.Byte()
		if err != nil {
			return nil, err
		}
		value, err := dec.String()
		if err != nil {
			return nil, err
		}
		id := TermID(len(d.terms) + 1)
		switch tag {
		case snapIRI:
			d.terms = append(d.terms, Term{Kind: IRI, Value: value})
			d.iris[value] = id
		case snapBlank:
			d.terms = append(d.terms, Term{Kind: Blank, Value: value})
			d.blanks[value] = id
		case snapPlainLit:
			d.terms = append(d.terms, Term{Kind: Literal, Value: value})
			d.plainLits[value] = id
		case snapTypedLit:
			datatype, err := dec.String()
			if err != nil {
				return nil, err
			}
			d.terms = append(d.terms, Term{Kind: Literal, Value: value, Datatype: datatype})
			d.typedLits[typedKey{value, datatype}] = id
		default:
			return nil, corruptf("unknown term tag %d", tag)
		}
	}
	if uint64(len(d.iris)) != counts[1] || uint64(len(d.blanks)) != counts[2] ||
		uint64(len(d.plainLits)) != counts[3] || uint64(len(d.typedLits)) != counts[4] {
		return nil, corruptf("duplicate terms in dictionary")
	}
	return d, nil
}

// --- shared arena ---

// WriteSnapshot serialises the arena: the dictionary term table followed by
// every asserted triple as its raw TripleKey plus its assertion refcount.
// The stream captures a consistent point-in-time state (one read lock).
func (s *SharedStore) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc, flush := asEncoder(w)
	if err := s.dict.writeSnapshot(enc); err != nil {
		return err
	}
	if err := enc.Uvarint(uint64(len(s.triples))); err != nil {
		return err
	}
	for k := range s.triples {
		if err := enc.Key(k); err != nil {
			return err
		}
		if err := enc.Uvarint(uint64(s.refs[k])); err != nil {
			return err
		}
	}
	return flush()
}

// ReadSharedSnapshot rebuilds an arena from a stream written by
// WriteSnapshot. The load is ID-level throughout: the membership set is
// presized to the exact triple count and index insertion hashes only small
// integer keys, never term strings.
func ReadSharedSnapshot(r SnapshotReader) (*SharedStore, error) {
	dec := &SnapshotDecoder{R: r}
	dict, err := readDictSnapshot(dec)
	if err != nil {
		return nil, err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	s := &SharedStore{
		dict: dict,
		encStore: encStore{
			triples: make(map[TripleKey]struct{}, PresizeHint(n)),
			spo:     make(index),
			pos:     make(index),
			osp:     make(index),
		},
		refs: make(map[TripleKey]int32, PresizeHint(n)),
	}
	for i := uint64(0); i < n; i++ {
		k, err := dec.KeyInRange(dict.Len())
		if err != nil {
			return nil, err
		}
		refs, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		if refs == 0 || refs > 1<<31-1 {
			return nil, corruptf("triple %v has invalid refcount %d", k, refs)
		}
		if !s.addKey(k) {
			return nil, corruptf("duplicate triple %v", k)
		}
		s.refs[k] = int32(refs)
	}
	return s, nil
}

// RefCount returns the arena's assertion refcount for an encoded triple
// (0 when the triple is not asserted). The KB layer uses it to validate that
// a restored snapshot's refcounts agree with its statement set.
func (s *SharedStore) RefCount(k TripleKey) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.refs[k])
}

// --- views ---

// WriteSnapshot serialises the view's membership set as raw TripleKeys.
// Per-view counters are not written: the decoder rebuilds them in the same
// pass that fills the membership map.
func (v *View) WriteSnapshot(w io.Writer) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	enc, flush := asEncoder(w)
	if err := enc.Uvarint(uint64(len(v.members))); err != nil {
		return err
	}
	for k := range v.members {
		if err := enc.Key(k); err != nil {
			return err
		}
	}
	return flush()
}

// ReadViewSnapshot rebuilds one overlay view over this arena from a stream
// written by View.WriteSnapshot. Membership and all six counter maps are
// presized, and every key is validated to be asserted in the arena (the
// invariant the KB layer maintains for live views).
func (s *SharedStore) ReadViewSnapshot(r SnapshotReader) (*View, error) {
	dec := &SnapshotDecoder{R: r}
	n, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	size := PresizeHint(n)
	v := &View{
		shared:  s,
		members: make(map[TripleKey]struct{}, size),
		cntS:    make(map[TermID]int32, size/4+1),
		cntP:    make(map[TermID]int32, size/4+1),
		cntO:    make(map[TermID]int32, size/4+1),
		cntSP:   make(map[uint64]int32, size),
		cntPO:   make(map[uint64]int32, size),
		cntSO:   make(map[uint64]int32, size),
	}
	s.mu.RLock()
	dictLen := s.dict.Len()
	for i := uint64(0); i < n; i++ {
		k, err := dec.KeyInRange(dictLen)
		if err != nil {
			s.mu.RUnlock()
			return nil, err
		}
		if _, asserted := s.triples[k]; !asserted {
			s.mu.RUnlock()
			return nil, corruptf("view triple %v is not asserted in the arena", k)
		}
		if !v.addLocked(k) {
			s.mu.RUnlock()
			return nil, corruptf("duplicate view triple %v", k)
		}
	}
	s.mu.RUnlock()
	return v, nil
}
