package recommend

import (
	"testing"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func TestPeersByActivity(t *testing.T) {
	a := core.NewActivity()
	a.Record("anna", []string{"p:dangerLevel", "p:isA"})
	a.Record("anna", []string{"p:dangerLevel"})
	a.Record("berta", []string{"p:dangerLevel"})
	a.Record("chiara", []string{"p:inCountry"})

	peers := PeersByActivity(a, "anna", 5)
	if len(peers) != 1 || peers[0].User != "berta" {
		t.Fatalf("peers = %+v", peers)
	}
	if peers[0].Score <= 0 || peers[0].Score > 1 {
		t.Errorf("score out of range: %v", peers[0].Score)
	}
	if got := PeersByActivity(a, "chiara", 5); len(got) != 0 {
		t.Errorf("chiara has no activity peers: %+v", got)
	}
	if got := PeersByActivity(nil, "anna", 5); got != nil {
		t.Error("nil tracker must yield nil")
	}
}

func TestActivityRecordedByEnricher(t *testing.T) {
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES ('Mercury', 'a')`); err != nil {
		t.Fatal(err)
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("u", rdf.Triple{
		S: rdf.NewIRI(core.DefaultIRIPrefix + "Mercury"),
		P: rdf.NewIRI(core.DefaultIRIPrefix + "dangerLevel"),
		O: rdf.NewLiteral("high"),
	}); err != nil {
		t.Fatal(err)
	}
	enr := core.New(db, p, nil)
	enr.Activity = core.NewActivity()

	// Plain SQL: not recorded.
	if _, err := enr.Query("u", `SELECT elem_name FROM elem_contained`); err != nil {
		t.Fatal(err)
	}
	if enr.Activity.QueryCount("u") != 0 {
		t.Error("plain SQL must not be recorded")
	}
	// Enriched query: recorded with the property IRI.
	if _, err := enr.Query("u", `SELECT elem_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`); err != nil {
		t.Fatal(err)
	}
	if enr.Activity.QueryCount("u") != 1 {
		t.Errorf("query count = %d", enr.Activity.QueryCount("u"))
	}
	prof := enr.Activity.Profile("u")
	if prof[core.DefaultIRIPrefix+"dangerLevel"] != 1 {
		t.Errorf("profile = %v", prof)
	}
	if users := enr.Activity.Users(); len(users) != 1 || users[0] != "u" {
		t.Errorf("users = %v", users)
	}
}
