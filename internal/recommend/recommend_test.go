package recommend

import (
	"math"
	"testing"

	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func iri(l string) rdf.Term { return rdf.NewIRI(kb.SMG + l) }

func tr(s, p, o string) rdf.Triple { return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)} }

// community builds: alice and bob share most beliefs; carol is disjoint;
// dave is empty.
func community(t *testing.T) *kb.Platform {
	t.Helper()
	p := kb.NewPlatform()
	for _, u := range []string{"alice", "bob", "carol", "dave"} {
		if err := p.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, 0, 4)
	for i, s := range []string{"Hg", "Pb", "As", "Zn"} {
		id, err := p.Insert("alice", tr(s, "isA", "HazardousWaste"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if i < 3 { // bob shares 3 of alice's 4
			if err := p.Import("bob", id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Bob has one of his own that alice lacks.
	if _, err := p.Insert("bob", tr("Cd", "isA", "HazardousWaste")); err != nil {
		t.Fatal(err)
	}
	// Carol's knowledge is disjoint in statements but uses a shared property.
	if _, err := p.Insert("carol", tr("Torino", "inCountry", "Italy")); err != nil {
		t.Fatal(err)
	}
	_ = ids
	return p
}

func TestPeersByBeliefs(t *testing.T) {
	p := community(t)
	peers := PeersByBeliefs(p, "alice", 10)
	if len(peers) != 1 || peers[0].User != "bob" {
		t.Fatalf("alice's belief peers = %+v", peers)
	}
	// bob shares 3 of alice's 4, has 1 extra: J = 3/(4+4-3) = 0.6.
	if math.Abs(peers[0].Score-0.6) > 1e-9 {
		t.Errorf("jaccard = %v, want 0.6", peers[0].Score)
	}
	// Carol overlaps with nobody.
	if got := PeersByBeliefs(p, "carol", 10); len(got) != 0 {
		t.Errorf("carol's peers = %+v", got)
	}
	// Unknown user yields nil, not panic.
	if got := PeersByBeliefs(p, "ghost", 10); got != nil {
		t.Errorf("ghost peers = %+v", got)
	}
}

func TestPeersByInterests(t *testing.T) {
	p := community(t)
	// Carol uses inCountry only; alice uses isA only → no interest overlap.
	peers := PeersByInterests(p, "carol", 10)
	if len(peers) != 0 {
		t.Errorf("carol interest peers = %+v", peers)
	}
	// Give carol one isA statement: now she overlaps with alice and bob.
	if _, err := p.Insert("carol", tr("Rn", "isA", "HazardousWaste")); err != nil {
		t.Fatal(err)
	}
	peers = PeersByInterests(p, "carol", 10)
	if len(peers) != 2 {
		t.Fatalf("carol interest peers after isA = %+v", peers)
	}
	// Alice's profile is pure isA; carol's is half isA → alice ranks ≥ bob? both pure isA for alice and bob.
	for _, ps := range peers {
		if ps.Score <= 0 || ps.Score > 1 {
			t.Errorf("cosine out of range: %+v", ps)
		}
	}
}

func TestTopKTruncation(t *testing.T) {
	p := community(t)
	if got := PeersByBeliefs(p, "alice", 0); len(got) != 1 {
		t.Errorf("k=0 means unlimited: %+v", got)
	}
	// Add more overlapping users to test truncation.
	for _, u := range []string{"e1", "e2", "e3"} {
		if err := p.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ImportFrom(u, "alice", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := PeersByBeliefs(p, "alice", 2); len(got) != 2 {
		t.Errorf("k=2 truncation: %+v", got)
	}
}

func TestRecommendStatements(t *testing.T) {
	p := community(t)
	recs := RecommendStatements(p, "alice", 10)
	// Bob (similar peer) holds one statement alice lacks: Cd.
	if len(recs) != 1 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Statement.Triple.S != iri("Cd") {
		t.Errorf("recommended %v", recs[0].Statement.Triple)
	}
	if len(recs[0].Via) != 1 || recs[0].Via[0] != "bob" {
		t.Errorf("via = %v", recs[0].Via)
	}
	// Importing the recommendation makes it disappear.
	if err := p.Import("alice", recs[0].Statement.ID); err != nil {
		t.Fatal(err)
	}
	if recs := RecommendStatements(p, "alice", 10); len(recs) != 0 {
		t.Errorf("after import: %+v", recs)
	}
}

func TestRecommendColdStartFallsBackToInterests(t *testing.T) {
	p := community(t)
	// Eve shares no statements but uses isA, like alice and bob.
	if err := p.RegisterUser("eve"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("eve", tr("Po", "isA", "HazardousWaste")); err != nil {
		t.Fatal(err)
	}
	recs := RecommendStatements(p, "eve", 3)
	if len(recs) == 0 {
		t.Fatal("cold-start user with interests must get recommendations")
	}
	for _, r := range recs {
		if r.Statement.BelievedBy("eve") {
			t.Errorf("recommended an already-held statement: %+v", r)
		}
		if r.Statement.Triple.P != iri("isA") && r.Statement.Triple.P != iri("inCountry") {
			t.Errorf("unexpected rec: %v", r.Statement.Triple)
		}
	}
}

func TestRecommendationDeterminism(t *testing.T) {
	p := community(t)
	a := RecommendStatements(p, "carol", 10)
	b := RecommendStatements(p, "carol", 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Statement.ID != b[i].Statement.ID {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Statement.ID, b[i].Statement.ID)
		}
	}
}

func TestJaccardAndCosine(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	b := map[string]struct{}{"y": {}, "z": {}}
	if j := jaccard(a, b); math.Abs(j-1.0/3) > 1e-9 {
		t.Errorf("jaccard = %v", j)
	}
	if j := jaccard(nil, nil); j != 0 {
		t.Errorf("jaccard empty = %v", j)
	}
	va := map[string]float64{"p": 1, "q": 1}
	vb := map[string]float64{"p": 1}
	if c := cosine(va, vb); math.Abs(c-1/math.Sqrt2) > 1e-9 {
		t.Errorf("cosine = %v", c)
	}
	if c := cosine(va, map[string]float64{}); c != 0 {
		t.Errorf("cosine vs empty = %v", c)
	}
}
