// Package recommend implements the peer-networking services of the paper's
// vision (Sec. I-B.b): discovering peers with similar interests and
// recommending resources (statements) explored and used by others within
// similar contexts. Similarity is computed from what the platform already
// knows — who believes which statements, and which ontology properties a
// user's knowledge engages with — so no extra tracking infrastructure is
// required.
package recommend

import (
	"math"
	"sort"

	"crosse/internal/core"
	"crosse/internal/kb"
)

// PeerScore is one ranked peer.
type PeerScore struct {
	User  string
	Score float64
}

// StatementScore is one recommended statement with its evidence.
type StatementScore struct {
	Statement *kb.Statement
	Score     float64
	// Via lists the similar peers whose beliefs contributed.
	Via []string
}

// beliefSets returns, per user, the set of statement ids she believes.
func beliefSets(p *kb.Platform) map[string]map[string]struct{} {
	sets := map[string]map[string]struct{}{}
	for _, u := range p.Users() {
		sets[u] = map[string]struct{}{}
	}
	for _, st := range p.Explore(nil) {
		for _, u := range st.Believers() {
			if s, ok := sets[u]; ok {
				s[st.ID] = struct{}{}
			}
		}
	}
	return sets
}

// jaccard computes |a∩b| / |a∪b|; empty∪empty scores 0.
func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// PeersByBeliefs ranks the other users by Jaccard similarity of believed
// statement sets: the "peers who accepted the same knowledge" notion of
// peer discovery. Users with zero overlap are omitted. Ties break by name
// for determinism.
func PeersByBeliefs(p *kb.Platform, user string, k int) []PeerScore {
	sets := beliefSets(p)
	mine, ok := sets[user]
	if !ok {
		return nil
	}
	var out []PeerScore
	for peer, theirs := range sets {
		if peer == user {
			continue
		}
		if s := jaccard(mine, theirs); s > 0 {
			out = append(out, PeerScore{User: peer, Score: s})
		}
	}
	sortPeers(out)
	return truncate(out, k)
}

// interestProfile is a property-IRI → weight vector derived from a user's
// believed statements: which kinds of knowledge she engages with.
func interestProfile(p *kb.Platform, user string) map[string]float64 {
	prof := map[string]float64{}
	for _, st := range p.Explore(func(st *kb.Statement) bool { return st.BelievedBy(user) }) {
		prof[st.Triple.P.Value]++
	}
	return prof
}

// cosine computes the cosine similarity of two sparse vectors.
func cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for k, va := range a {
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// PeersByInterests ranks peers by cosine similarity of ontology-property
// usage: two users are similar when their knowledge engages the same kinds
// of properties, even if the concrete statements differ. This captures the
// paper's "researchers with similar goals" notion without query tracking.
func PeersByInterests(p *kb.Platform, user string, k int) []PeerScore {
	mine := interestProfile(p, user)
	var out []PeerScore
	for _, peer := range p.Users() {
		if peer == user {
			continue
		}
		if s := cosine(mine, interestProfile(p, peer)); s > 0 {
			out = append(out, PeerScore{User: peer, Score: s})
		}
	}
	sortPeers(out)
	return truncate(out, k)
}

// PeersByActivity ranks peers by cosine similarity of query behaviour: the
// ontology properties their enriched queries engage (recorded by
// core.Activity). This is the paper's "based on this researcher's
// interactions with the system (including her past queries)" signal.
func PeersByActivity(a *core.Activity, user string, k int) []PeerScore {
	if a == nil {
		return nil
	}
	mine := a.Profile(user)
	var out []PeerScore
	for _, peer := range a.Users() {
		if peer == user {
			continue
		}
		if s := cosine(mine, a.Profile(peer)); s > 0 {
			out = append(out, PeerScore{User: peer, Score: s})
		}
	}
	sortPeers(out)
	return truncate(out, k)
}

// RecommendStatements suggests statements the user does not yet hold,
// scored by the summed belief-similarity of the peers who do hold them —
// "data recommendations based on peer networks" (Sec. I-B.b). Results are
// ranked by score, then statement id for determinism.
func RecommendStatements(p *kb.Platform, user string, k int) []StatementScore {
	peers := PeersByBeliefs(p, user, 0)
	if len(peers) == 0 {
		// Cold start: fall back to interest similarity so new users still
		// receive recommendations.
		peers = PeersByInterests(p, user, 0)
	}
	weight := map[string]float64{}
	for _, ps := range peers {
		weight[ps.User] = ps.Score
	}
	var out []StatementScore
	for _, st := range p.Explore(nil) {
		if st.BelievedBy(user) {
			continue
		}
		var score float64
		var via []string
		for _, believer := range st.Believers() {
			if w, ok := weight[believer]; ok && w > 0 {
				score += w
				via = append(via, believer)
			}
		}
		if score > 0 {
			out = append(out, StatementScore{Statement: st, Score: score, Via: via})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Statement.ID < out[j].Statement.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func sortPeers(ps []PeerScore) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Score != ps[j].Score {
			return ps[i].Score > ps[j].Score
		}
		return ps[i].User < ps[j].User
	})
}

func truncate(ps []PeerScore, k int) []PeerScore {
	if k > 0 && len(ps) > k {
		return ps[:k]
	}
	return ps
}
