package sqlparser

import (
	"fmt"
	"math/rand"
	"testing"
)

// randExpr generates a random SQL expression string.
func randExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprint(rng.Intn(1000))
		case 1:
			return fmt.Sprintf("%.2f", rng.Float64()*100)
		case 2:
			return "'str" + fmt.Sprint(rng.Intn(10)) + "'"
		case 3:
			return []string{"a", "b", "t.c", "u.d"}[rng.Intn(4)]
		case 4:
			return []string{"TRUE", "FALSE", "NULL"}[rng.Intn(3)]
		default:
			return "col" + fmt.Sprint(rng.Intn(5))
		}
	}
	switch rng.Intn(10) {
	case 0:
		return "(" + randExpr(rng, depth-1) + " + " + randExpr(rng, depth-1) + ")"
	case 1:
		return "(" + randExpr(rng, depth-1) + " * " + randExpr(rng, depth-1) + ")"
	case 2:
		return "(" + randExpr(rng, depth-1) + " = " + randExpr(rng, depth-1) + ")"
	case 3:
		return "(" + randExpr(rng, depth-1) + " AND " + randExpr(rng, depth-1) + ")"
	case 4:
		return "(" + randExpr(rng, depth-1) + " OR " + randExpr(rng, depth-1) + ")"
	case 5:
		return "(NOT " + randExpr(rng, depth-1) + ")"
	case 6:
		return "(" + randExpr(rng, depth-1) + " IS NULL)"
	case 7:
		return "(" + randExpr(rng, depth-1) + " IN (" + randExpr(rng, depth-1) + ", " + randExpr(rng, depth-1) + "))"
	case 8:
		return "COALESCE(" + randExpr(rng, depth-1) + ", " + randExpr(rng, depth-1) + ")"
	default:
		return "CASE WHEN " + randExpr(rng, depth-1) + " THEN " + randExpr(rng, depth-1) +
			" ELSE " + randExpr(rng, depth-1) + " END"
	}
}

// Property: parse → print → parse is a fixpoint for random expressions
// (the printer emits exactly re-parseable, structurally identical SQL).
func TestExprPrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		src := randExpr(rng, 4)
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, src, err)
		}
		printed := e1.SQL()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, printed, err)
		}
		if e2.SQL() != printed {
			t.Fatalf("trial %d: fixpoint broken:\n 1: %s\n 2: %s", trial, printed, e2.SQL())
		}
	}
}

// Property: SELECT round trip via SelectSQL is a fixpoint for randomly
// assembled queries.
func TestSelectPrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		var b []byte
		b = append(b, "SELECT "...)
		if rng.Intn(3) == 0 {
			b = append(b, "DISTINCT "...)
		}
		nItems := 1 + rng.Intn(3)
		for i := 0; i < nItems; i++ {
			if i > 0 {
				b = append(b, ", "...)
			}
			b = append(b, randExpr(rng, 2)...)
			if rng.Intn(2) == 0 {
				b = append(b, fmt.Sprintf(" AS x%d", i)...)
			}
		}
		b = append(b, " FROM t"...)
		if rng.Intn(2) == 0 {
			b = append(b, " JOIN u ON (t.id = u.id)"...)
		}
		if rng.Intn(2) == 0 {
			b = append(b, " WHERE "...)
			b = append(b, randExpr(rng, 2)...)
		}
		if rng.Intn(3) == 0 {
			b = append(b, " ORDER BY a DESC"...)
		}
		if rng.Intn(3) == 0 {
			b = append(b, fmt.Sprintf(" LIMIT %d", rng.Intn(50))...)
		}
		src := string(b)
		s1, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, src, err)
		}
		printed := SelectSQL(s1)
		s2, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, printed, err)
		}
		if SelectSQL(s2) != printed {
			t.Fatalf("trial %d: fixpoint broken:\n 1: %s\n 2: %s", trial, printed, SelectSQL(s2))
		}
	}
}
