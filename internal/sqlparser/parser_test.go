package sqlparser

import (
	"strings"
	"testing"

	"crosse/internal/sqlval"
)

func TestLexer(t *testing.T) {
	toks, err := LexAll(`SELECT a.b, 'it''s', 3.14, 42 FROM t WHERE x <> 1 -- comment
AND y >= 2 /* block */ || 'z'`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "a", ".", "b", "it's", "3.14", "42", "<>", ">=", "||"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
	if strings.Contains(joined, "comment") || strings.Contains(joined, "block") {
		t.Error("comments must be skipped")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE landfill (
		id INT PRIMARY KEY,
		name VARCHAR(64) NOT NULL,
		city TEXT,
		area DOUBLE,
		active BOOLEAN
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "landfill" || len(ct.Columns) != 5 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].NotNull {
		t.Error("PRIMARY KEY implies NOT NULL")
	}
	if ct.Columns[1].Type != sqlval.TypeString || !ct.Columns[1].NotNull {
		t.Error("VARCHAR(64) NOT NULL parse failed")
	}
	if ct.Columns[3].Type != sqlval.TypeFloat {
		t.Error("DOUBLE type parse failed")
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	st, err := Parse(`CREATE TABLE IF NOT EXISTS t (a INT)`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*CreateTable).IfNotExists {
		t.Error("IF NOT EXISTS not parsed")
	}
}

func TestParseDropAndIndex(t *testing.T) {
	st, err := Parse(`DROP TABLE IF EXISTS t`)
	if err != nil {
		t.Fatal(err)
	}
	if dt := st.(*DropTable); !dt.IfExists || dt.Name != "t" {
		t.Errorf("%+v", st)
	}
	st2, err := Parse(`CREATE INDEX idx_name ON landfill (name)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := st2.(*CreateIndex)
	if ci.Name != "idx_name" || ci.Table != "landfill" || ci.Column != "name" {
		t.Errorf("%+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Fatalf("%+v", ins)
	}
	if ins.Rows[1][1].(*Literal).Val.IsNull() != true {
		t.Error("NULL literal")
	}
	// Without column list.
	st2, err := Parse(`INSERT INTO t VALUES (1+2, -3)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.(*Insert).Columns) != 0 {
		t.Error("column list should be empty")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st, err := Parse(`UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("%+v", up)
	}
	st2, err := Parse(`DELETE FROM t WHERE a IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	del := st2.(*Delete)
	if del.Where.(*IsNull).Not != true {
		t.Errorf("%+v", del.Where)
	}
}

func TestParsePaperExample41(t *testing.T) {
	// The SQL part of Example 4.1 in the paper.
	sel, err := ParseSelect(`SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 2 || sel.From[0].Table != "elem_contained" {
		t.Errorf("%+v", sel)
	}
	be := sel.Where.(*BinExpr)
	if be.Op != OpEq || be.L.(*ColRef).Name != "landfill_name" {
		t.Errorf("%+v", be)
	}
}

func TestParsePaperExample46Skeleton(t *testing.T) {
	// Example 4.6's cleaned SQL (tags removed by the SESQL scanner).
	sel, err := ParseSelect(`SELECT Elecond1.landfill_name AS l_name1,
 Elecond2.landfill_name AS l_name2, Elecond1.elem_name
FROM elem_contained AS Elecond1, elem_contained AS Elecond2
WHERE Elecond1.elem_name <> Elecond2.elem_name AND
 Elecond1.elem_name = Elecond2.elem_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "Elecond1" {
		t.Errorf("%+v", sel.From)
	}
	if sel.Items[0].Alias != "l_name1" {
		t.Errorf("%+v", sel.Items)
	}
	and := sel.Where.(*BinExpr)
	if and.Op != OpAnd {
		t.Errorf("top-level op %v", and.Op)
	}
}

func TestParseJoins(t *testing.T) {
	sel, err := ParseSelect(`SELECT l.name, e.elem_name
FROM landfill AS l
JOIN elem_contained e ON l.name = e.landfill_name
LEFT JOIN analysis a ON a.landfill = l.name
CROSS JOIN lab`)
	if err != nil {
		t.Fatal(err)
	}
	tr := sel.From[0]
	if len(tr.Joins) != 3 {
		t.Fatalf("joins = %d", len(tr.Joins))
	}
	if tr.Joins[0].Kind != JoinInner || tr.Joins[0].Alias != "e" {
		t.Errorf("%+v", tr.Joins[0])
	}
	if tr.Joins[1].Kind != JoinLeft || tr.Joins[1].On == nil {
		t.Errorf("%+v", tr.Joins[1])
	}
	if tr.Joins[2].Kind != JoinCross || tr.Joins[2].On != nil {
		t.Errorf("%+v", tr.Joins[2])
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	sel, err := ParseSelect(`SELECT city, COUNT(*) AS n, AVG(area)
FROM landfill
WHERE active = TRUE
GROUP BY city
HAVING COUNT(*) > 2
ORDER BY n DESC, city ASC
LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Items[1].Expr.(*FuncCall).Star {
		t.Error("COUNT(*)")
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("%+v", sel.OrderBy)
	}
	if sel.Limit.(*Literal).Val.Int() != 10 || sel.Offset.(*Literal).Val.Int() != 5 {
		t.Error("limit/offset")
	}
}

func TestParseSelectStarForms(t *testing.T) {
	sel, err := ParseSelect(`SELECT *, t.*, a AS x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "" {
		t.Error("bare star")
	}
	if !sel.Items[1].Star || sel.Items[1].Qualifier != "t" {
		t.Error("qualified star")
	}
	if sel.Items[2].Alias != "x" {
		t.Error("alias")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		`a + b * c - d / e % f`,
		`a || 'suffix'`,
		`x IN (1, 2, 3)`,
		`x NOT IN ('a')`,
		`x BETWEEN 1 AND 10`,
		`x NOT BETWEEN 1 AND 10`,
		`name LIKE 'Mer%'`,
		`name NOT LIKE '%x%'`,
		`a IS NULL OR b IS NOT NULL`,
		`NOT (a = 1 AND b = 2)`,
		`CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END`,
		`CASE a WHEN 1 THEN 'one' ELSE 'many' END`,
		`COALESCE(a, b, 'dflt')`,
		`COUNT(DISTINCT x)`,
		`UPPER(LOWER(name))`,
		`-x + 3`,
	}
	for _, src := range cases {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`a OR b AND c`)
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*BinExpr)
	if or.Op != OpOr {
		t.Fatal("top must be OR")
	}
	if or.R.(*BinExpr).Op != OpAnd {
		t.Error("AND binds tighter than OR")
	}
	e2, err := ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	add := e2.(*BinExpr)
	if add.Op != OpAdd || add.R.(*BinExpr).Op != OpMul {
		t.Error("* binds tighter than +")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"CREATE VIEW v AS SELECT 1",
		"UPDATE t WHERE a = 1",
		"DELETE t",
		"SELECT a FROM t GROUP",
		"SELECT CASE END",
		"SELECT a FROM t; extra",
		"SELECT x BETWEEN 1 FROM t",
		"SELECT a b c FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT elem_name, landfill_name FROM elem_contained WHERE (landfill_name = 'a')`,
		`SELECT DISTINCT a AS x, COUNT(*) FROM t AS u JOIN v ON (u.id = v.id) WHERE ((a > 1) AND (b IS NULL)) GROUP BY a HAVING (COUNT(*) > 2) ORDER BY x DESC LIMIT 5 OFFSET 2`,
		`SELECT * FROM t LEFT JOIN s ON (t.a = s.b)`,
		`SELECT CASE WHEN (a = 1) THEN 'x' ELSE 'y' END AS c FROM t`,
		`SELECT t.* FROM t CROSS JOIN u`,
		`SELECT (a IN (1, 2)) AS m, (x NOT BETWEEN 1 AND 2) AS n FROM t`,
	}
	for _, src := range queries {
		sel1, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := SelectSQL(sel1)
		sel2, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if SelectSQL(sel2) != printed {
			t.Errorf("fixpoint:\n first %s\nsecond %s", printed, SelectSQL(sel2))
		}
	}
}

func TestStatementSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
}

func TestQuotedIdentifier(t *testing.T) {
	sel, err := ParseSelect(`SELECT "select" FROM "from"`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Items[0].Expr.(*ColRef).Name != "select" || sel.From[0].Table != "from" {
		t.Errorf("%+v", sel)
	}
}
