package sqlparser

import "testing"

func TestParseInsertSelect(t *testing.T) {
	st, err := Parse(`INSERT INTO dst (a, b) SELECT x, y FROM src WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Query == nil || len(ins.Rows) != 0 {
		t.Fatalf("%+v", ins)
	}
	if len(ins.Columns) != 2 || ins.Query.From[0].Table != "src" {
		t.Errorf("%+v", ins)
	}
	// Without column list.
	st2, err := Parse(`INSERT INTO dst SELECT * FROM src`)
	if err != nil {
		t.Fatal(err)
	}
	if st2.(*Insert).Query == nil {
		t.Error("query form not parsed")
	}
	// Trailing garbage after the SELECT is rejected.
	if _, err := Parse(`INSERT INTO dst SELECT x FROM src VALUES (1)`); err == nil {
		t.Error("mixed forms should fail")
	}
}
