package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"crosse/internal/sqlval"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.eat(";")
	if p.tok.Kind != TEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.tok)
	}
	return st, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*Select, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	s, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return s, nil
}

// ParseExpr parses a standalone expression (used by the SESQL condition
// scanner to validate tagged conditions).
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TEOF {
		return nil, fmt.Errorf("sql: unexpected %s after expression", p.tok)
	}
	return e, nil
}

type parser struct {
	lex  *Lexer
	tok  Token // current
	peek *Token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

// kw reports whether the current token is the keyword (case-insensitive).
// Quoted identifiers are never keywords.
func (p *parser) kw(word string) bool {
	return p.tok.Kind == TIdent && !p.tok.Quoted && strings.EqualFold(p.tok.Text, word)
}

// eat consumes the token if it matches the keyword or punctuation and
// reports whether it did.
func (p *parser) eat(s string) bool {
	match := false
	if p.tok.Kind == TPunct && p.tok.Text == s {
		match = true
	}
	if p.tok.Kind == TIdent && strings.EqualFold(p.tok.Text, s) {
		match = true
	}
	if match {
		if err := p.advance(); err != nil {
			// Error surfaces at the next expect.
			p.tok = Token{Kind: TEOF}
		}
	}
	return match
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("sql: expected %s, got %s", strings.ToUpper(word), p.tok)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.Kind != TPunct || p.tok.Text != s {
		return fmt.Errorf("sql: expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) ident() (string, error) {
	if p.tok.Kind != TIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s", p.tok)
	}
	name := p.tok.Text
	if !p.tok.Quoted && reserved[strings.ToUpper(name)] {
		return "", fmt.Errorf("sql: unexpected keyword %s", p.tok)
	}
	return name, p.advance()
}

// reserved words that cannot be bare identifiers (so `FROM t WHERE` parses).
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "JOIN": true, "LEFT": true,
	"INNER": true, "CROSS": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "BY": true, "DISTINCT": true, "INSERT": true,
	"UPDATE": true, "DELETE": true, "CREATE": true, "DROP": true, "TABLE": true,
	"INDEX": true, "VALUES": true, "SET": true, "INTO": true, "NULL": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "ASC": true,
	"DESC": true, "UNION": true, "TRUE": true, "FALSE": true, "EXISTS": true,
	"IF": true, "PRIMARY": true, "KEY": true, "ENRICH": true,
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.kw("SELECT"):
		return p.selectStmt()
	case p.kw("CREATE"):
		return p.createStmt()
	case p.kw("DROP"):
		return p.dropStmt()
	case p.kw("INSERT"):
		return p.insertStmt()
	case p.kw("UPDATE"):
		return p.updateStmt()
	case p.kw("DELETE"):
		return p.deleteStmt()
	default:
		return nil, fmt.Errorf("sql: expected statement, got %s", p.tok)
	}
}

func (p *parser) createStmt() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	switch {
	case p.kw("TABLE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		ct := &CreateTable{}
		if p.kw("IF") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if !p.kw("EXISTS") {
				return nil, fmt.Errorf("sql: expected EXISTS, got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
			if p.eat(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.kw("INDEX"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Column: col}, nil
	default:
		return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE, got %s", p.tok)
	}
}

func (p *parser) columnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	if p.tok.Kind != TIdent {
		return ColumnDef{}, fmt.Errorf("sql: expected type for column %s, got %s", name, p.tok)
	}
	typ, err := sqlval.ParseType(p.tok.Text)
	if err != nil {
		return ColumnDef{}, err
	}
	if err := p.advance(); err != nil {
		return ColumnDef{}, err
	}
	// Optional length like VARCHAR(64): parse and ignore.
	if p.tok.Kind == TPunct && p.tok.Text == "(" {
		if err := p.advance(); err != nil {
			return ColumnDef{}, err
		}
		if p.tok.Kind != TNumber {
			return ColumnDef{}, fmt.Errorf("sql: expected length, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return ColumnDef{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	col := ColumnDef{Name: name, Type: typ}
	for {
		switch {
		case p.kw("NOT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if !p.kw("NULL") {
				return ColumnDef{}, fmt.Errorf("sql: expected NULL after NOT, got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			col.NotNull = true
		case p.kw("PRIMARY"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if !p.kw("KEY") {
				return ColumnDef{}, fmt.Errorf("sql: expected KEY after PRIMARY, got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		default:
			return col, nil
		}
	}
}

func (p *parser) dropStmt() (Statement, error) {
	if err := p.advance(); err != nil { // DROP
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.kw("IF") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.kw("EXISTS") {
			return nil, fmt.Errorf("sql: expected EXISTS, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.tok.Kind == TPunct && p.tok.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.eat(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if p.kw("SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = sel
		return ins, nil
	}
	if !p.kw("VALUES") {
		return nil, fmt.Errorf("sql: expected VALUES or SELECT, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.eat(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.eat(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.eat(",") {
			continue
		}
		break
	}
	if p.kw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.kw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	sel := &Select{}
	if p.kw("DISTINCT") {
		sel.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.eat(",") {
			continue
		}
		break
	}
	if p.kw("FROM") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if p.eat(",") {
				continue
			}
			break
		}
	}
	if p.kw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.kw("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if p.eat(",") {
				continue
			}
			break
		}
	}
	if p.kw("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.kw("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.kw("DESC") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.kw("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.eat(",") {
				continue
			}
			break
		}
	}
	if p.kw("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.kw("OFFSET") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	// '*'
	if p.tok.Kind == TPunct && p.tok.Text == "*" {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Star: true}, nil
	}
	// 'alias.*'
	if p.tok.Kind == TIdent && !reserved[strings.ToUpper(p.tok.Text)] {
		nxt, err := p.peekTok()
		if err != nil {
			return SelectItem{}, err
		}
		if nxt.Kind == TPunct && nxt.Text == "." {
			// Need a third token: save state by re-lexing is complex; peek
			// only gives one token, so parse the qualified form via expr
			// unless the token after '.' is '*'. We detect that by lexing
			// a throwaway lexer from the '.' position.
			save := *p.lex
			if p.peek == nil {
				return SelectItem{}, fmt.Errorf("sql: internal peek state")
			}
			third, lerr := save.Next()
			if lerr == nil && third.Kind == TPunct && third.Text == "*" {
				qual := p.tok.Text
				// consume ident, '.', '*'
				if err := p.advance(); err != nil {
					return SelectItem{}, err
				}
				if err := p.advance(); err != nil {
					return SelectItem{}, err
				}
				if err := p.advance(); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Star: true, Qualifier: qual}, nil
			}
		}
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.kw("AS") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.tok.Kind == TIdent && !reserved[strings.ToUpper(p.tok.Text)] {
		// bare alias
		item.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	tr.Alias, err = p.maybeAlias()
	if err != nil {
		return TableRef{}, err
	}
	for {
		var kind JoinKind
		switch {
		case p.kw("JOIN") || p.kw("INNER"):
			kind = JoinInner
			if p.kw("INNER") {
				if err := p.advance(); err != nil {
					return TableRef{}, err
				}
			}
			if err := p.expectKw("JOIN"); err != nil {
				return TableRef{}, err
			}
		case p.kw("LEFT"):
			kind = JoinLeft
			if err := p.advance(); err != nil {
				return TableRef{}, err
			}
			p.eat("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return TableRef{}, err
			}
		case p.kw("CROSS"):
			kind = JoinCross
			if err := p.advance(); err != nil {
				return TableRef{}, err
			}
			if err := p.expectKw("JOIN"); err != nil {
				return TableRef{}, err
			}
		default:
			return tr, nil
		}
		jt, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		j := Join{Kind: kind, Table: jt}
		j.Alias, err = p.maybeAlias()
		if err != nil {
			return TableRef{}, err
		}
		if kind != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return TableRef{}, err
			}
			on, err := p.expr()
			if err != nil {
				return TableRef{}, err
			}
			j.On = on
		}
		tr.Joins = append(tr.Joins, j)
	}
}

func (p *parser) maybeAlias() (string, error) {
	if p.kw("AS") {
		if err := p.advance(); err != nil {
			return "", err
		}
		return p.ident()
	}
	if p.tok.Kind == TIdent && !reserved[strings.ToUpper(p.tok.Text)] {
		a := p.tok.Text
		return a, p.advance()
	}
	return "", nil
}

// --- expressions, precedence climbing ---
// OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < additive/|| < multiplicative < unary

func (p *parser) expr() (Expr, error) { return p.exprOr() }

func (p *parser) exprOr() (Expr, error) {
	left, err := p.exprAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprAnd() (Expr, error) {
	left, err := p.exprNot()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprNot() (Expr, error) {
	if p.kw("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: inner}, nil
	}
	return p.exprCmp()
}

func (p *parser) exprCmp() (Expr, error) {
	left, err := p.exprAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.Kind == TPunct:
			var op BinOpKind
			switch p.tok.Text {
			case "=":
				op = OpEq
			case "<>", "!=":
				op = OpNe
			case "<":
				op = OpLt
			case "<=":
				op = OpLe
			case ">":
				op = OpGt
			case ">=":
				op = OpGe
			default:
				return left, nil
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: op, L: left, R: right}
		case p.kw("IS"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			not := false
			if p.kw("NOT") {
				not = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if !p.kw("NULL") {
				return nil, fmt.Errorf("sql: expected NULL after IS, got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			left = &IsNull{E: left, Not: not}
		case p.kw("IN"), p.kw("BETWEEN"), p.kw("LIKE"), p.kw("NOT"):
			not := false
			if p.kw("NOT") {
				nxt, err := p.peekTok()
				if err != nil {
					return nil, err
				}
				up := strings.ToUpper(nxt.Text)
				if nxt.Kind != TIdent || (up != "IN" && up != "BETWEEN" && up != "LIKE") {
					return left, nil
				}
				not = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			switch {
			case p.kw("IN"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				var list []Expr
				if !(p.tok.Kind == TPunct && p.tok.Text == ")") {
					for {
						e, err := p.expr()
						if err != nil {
							return nil, err
						}
						list = append(list, e)
						if p.eat(",") {
							continue
						}
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				left = &InList{E: left, Not: not, List: list}
			case p.kw("BETWEEN"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				lo, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				left = &Between{E: left, Not: not, Lo: lo, Hi: hi}
			case p.kw("LIKE"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				pat, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				var e Expr = &BinExpr{Op: OpLike, L: left, R: pat}
				if not {
					e = &UnaryExpr{Op: "NOT", E: e}
				}
				left = e
			default:
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) exprAdd() (Expr, error) {
	left, err := p.exprMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TPunct && (p.tok.Text == "+" || p.tok.Text == "-" || p.tok.Text == "||") {
		var op BinOpKind
		switch p.tok.Text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		default:
			op = OpConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprMul()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprMul() (Expr, error) {
	left, err := p.exprUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TPunct && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		var op BinOpKind
		switch p.tok.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) exprUnary() (Expr, error) {
	if p.tok.Kind == TPunct && p.tok.Text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: inner}, nil
	}
	return p.exprPrimary()
}

func (p *parser) exprPrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TNumber:
		text := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", text)
			}
			return &Literal{Val: sqlval.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", text)
		}
		return &Literal{Val: sqlval.NewInt(i)}, nil
	case p.tok.Kind == TString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqlval.NewString(s)}, nil
	case p.tok.Kind == TPunct && p.tok.Text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.kw("NULL"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqlval.Null}, nil
	case p.kw("TRUE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqlval.NewBool(true)}, nil
	case p.kw("FALSE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqlval.NewBool(false)}, nil
	case p.kw("CASE"):
		return p.caseExpr()
	case p.tok.Kind == TIdent:
		name := p.tok.Text
		if !p.tok.Quoted && reserved[strings.ToUpper(name)] {
			return nil, fmt.Errorf("sql: unexpected keyword %s in expression", p.tok)
		}
		nxt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		// Function call.
		if nxt.Kind == TPunct && nxt.Text == "(" {
			if err := p.advance(); err != nil { // name
				return nil, err
			}
			if err := p.advance(); err != nil { // (
				return nil, err
			}
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.tok.Kind == TPunct && p.tok.Text == "*" {
				fc.Star = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if !(p.tok.Kind == TPunct && p.tok.Text == ")") {
				if p.kw("DISTINCT") {
					fc.Distinct = true
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.eat(",") {
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column: name.col
		if nxt.Kind == TPunct && nxt.Text == "." {
			if err := p.advance(); err != nil { // name
				return nil, err
			}
			if err := p.advance(); err != nil { // .
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: name, Name: col}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ColRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("sql: expected expression, got %s", p.tok)
	}
}

func (p *parser) caseExpr() (Expr, error) {
	if err := p.advance(); err != nil { // CASE
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.kw("WHEN") {
		op, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.kw("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN")
	}
	if p.kw("ELSE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if !p.kw("END") {
		return nil, fmt.Errorf("sql: expected END, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return ce, nil
}
