package sqlparser

import (
	"strings"

	"crosse/internal/sqlval"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// --- DDL ---

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqlval.Type
	NotNull    bool
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateIndex is CREATE INDEX name ON table (column).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*CreateIndex) stmt() {}

// --- DML ---

// Insert is INSERT INTO table [(cols)] VALUES (...), (...) or
// INSERT INTO table [(cols)] SELECT ....
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	// Query is set for the INSERT ... SELECT form (Rows is then empty).
	Query *Select
}

// Update is UPDATE table SET col=expr,... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause element.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*Insert) stmt() {}
func (*Update) stmt() {}
func (*Delete) stmt() {}

// --- SELECT ---

// Select is a full SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr // nil = no offset
}

func (*Select) stmt() {}

// SelectItem is one projection: expression with optional alias, or a star.
type SelectItem struct {
	// Star is SELECT * (Qualifier empty) or alias.* (Qualifier set).
	Star      bool
	Qualifier string
	Expr      Expr
	Alias     string
}

// TableRef is a table in FROM with joins chained onto it.
type TableRef struct {
	Table string
	Alias string
	Joins []Join
}

// JoinKind discriminates join types.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// Join is one JOIN clause attached to a TableRef.
type Join struct {
	Kind  JoinKind
	Table string
	Alias string
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// --- Expressions ---

// Expr is a SQL expression node.
type Expr interface {
	expr()
	// SQL renders the expression back to parseable SQL text. The SESQL
	// pipeline uses this when generating the final query of Fig. 6.
	SQL() string
}

// Literal is a constant value.
type Literal struct{ Val sqlval.Value }

// ColRef references a column, optionally qualified by table/alias.
type ColRef struct {
	Qualifier string
	Name      string
}

// BinOpKind enumerates binary operators.
type BinOpKind int

// Binary operators.
const (
	OpEq BinOpKind = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpConcat
	OpLike
)

func (o BinOpKind) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	case OpLike:
		return "LIKE"
	default:
		return "?"
	}
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOpKind
	L, R Expr
}

// UnaryExpr is NOT e or -e.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

// InList is e [NOT] IN (e1, e2, ...).
type InList struct {
	E    Expr
	Not  bool
	List []Expr
}

// Between is e [NOT] BETWEEN lo AND hi.
type Between struct {
	E      Expr
	Not    bool
	Lo, Hi Expr
}

// FuncCall is a scalar or aggregate function call.
type FuncCall struct {
	Name     string // upper-cased
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

// CaseExpr is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN pair.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (*Literal) expr()   {}
func (*ColRef) expr()    {}
func (*BinExpr) expr()   {}
func (*UnaryExpr) expr() {}
func (*IsNull) expr()    {}
func (*InList) expr()    {}
func (*Between) expr()   {}
func (*FuncCall) expr()  {}
func (*CaseExpr) expr()  {}

// SQL implementations.

// SQL renders the literal.
func (e *Literal) SQL() string { return e.Val.SQLLiteral() }

// SQL renders the column reference.
func (e *ColRef) SQL() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// SQL renders the binary expression fully parenthesised.
func (e *BinExpr) SQL() string {
	return "(" + e.L.SQL() + " " + e.Op.String() + " " + e.R.SQL() + ")"
}

// SQL renders the unary expression.
func (e *UnaryExpr) SQL() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.SQL() + ")"
	}
	return "(" + e.Op + e.E.SQL() + ")"
}

// SQL renders IS [NOT] NULL.
func (e *IsNull) SQL() string {
	if e.Not {
		return "(" + e.E.SQL() + " IS NOT NULL)"
	}
	return "(" + e.E.SQL() + " IS NULL)"
}

// SQL renders [NOT] IN.
func (e *InList) SQL() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.SQL()
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.E.SQL() + not + " IN (" + strings.Join(parts, ", ") + "))"
}

// SQL renders [NOT] BETWEEN.
func (e *Between) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.E.SQL() + not + " BETWEEN " + e.Lo.SQL() + " AND " + e.Hi.SQL() + ")"
}

// SQL renders the function call.
func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.SQL()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// SQL renders the CASE expression.
func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.SQL())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// SelectSQL renders a Select back to SQL text. Round-trips through Parse.
func SelectSQL(s *Select) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			b.WriteString(it.Qualifier + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.Expr.SQL())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tr.Table)
			if tr.Alias != "" {
				b.WriteString(" AS " + tr.Alias)
			}
			for _, j := range tr.Joins {
				switch j.Kind {
				case JoinLeft:
					b.WriteString(" LEFT JOIN ")
				case JoinCross:
					b.WriteString(" CROSS JOIN ")
				default:
					b.WriteString(" JOIN ")
				}
				b.WriteString(j.Table)
				if j.Alias != "" {
					b.WriteString(" AS " + j.Alias)
				}
				if j.On != nil {
					b.WriteString(" ON " + j.On.SQL())
				}
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.SQL())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.SQL())
	}
	return b.String()
}
