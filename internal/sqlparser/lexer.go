// Package sqlparser implements the SQL dialect of the CroSSE relational
// substrate: lexer, AST and recursive-descent parser for the DDL/DML/query
// surface the SmartGround databank uses (CREATE TABLE/INDEX, DROP, INSERT,
// UPDATE, DELETE, SELECT with joins, grouping, ordering and expressions).
// The SESQL front-end (internal/sesql) strips enrichment syntax and feeds
// the remaining text through this parser, exactly as Fig. 6 prescribes.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind enumerates SQL token kinds.
type TokKind int

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TNumber
	TString
	TPunct // single/multi char operators and punctuation
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier text (original case), operator text, literal body
	Pos  int
	// Quoted marks identifiers written as "name"; they bypass the
	// reserved-word check.
	Quoted bool
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Lexer tokenises SQL text.
type Lexer struct {
	in  string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{in: src} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skip()
	start := l.pos
	if l.pos >= len(l.in) {
		return Token{Kind: TEOF, Pos: start}, nil
	}
	c := l.in[l.pos]

	// String literal.
	if c == '\'' {
		var b strings.Builder
		i := l.pos + 1
		for i < len(l.in) {
			if l.in[i] == '\'' {
				// '' is an escaped quote.
				if i+1 < len(l.in) && l.in[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				l.pos = i + 1
				return Token{Kind: TString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(l.in[i])
			i++
		}
		return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
	}

	// Number.
	if c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
		i := l.pos
		seenDot := false
		for i < len(l.in) {
			d := l.in[i]
			if d >= '0' && d <= '9' {
				i++
				continue
			}
			if d == '.' && !seenDot {
				seenDot = true
				i++
				continue
			}
			if (d == 'e' || d == 'E') && i+1 < len(l.in) {
				j := i + 1
				if l.in[j] == '+' || l.in[j] == '-' {
					j++
				}
				if j < len(l.in) && l.in[j] >= '0' && l.in[j] <= '9' {
					i = j
					seenDot = true // exponent implies float
					continue
				}
			}
			break
		}
		tok := Token{Kind: TNumber, Text: l.in[l.pos:i], Pos: start}
		l.pos = i
		return tok, nil
	}

	// Quoted identifier "..." (kept verbatim).
	if c == '"' {
		end := strings.IndexByte(l.in[l.pos+1:], '"')
		if end < 0 {
			return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
		}
		text := l.in[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return Token{Kind: TIdent, Text: text, Pos: start, Quoted: true}, nil
	}

	// Identifier / keyword.
	r, _ := utf8.DecodeRuneInString(l.in[l.pos:])
	if unicode.IsLetter(r) || r == '_' {
		i := l.pos
		for i < len(l.in) {
			r, sz := utf8.DecodeRuneInString(l.in[i:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			i += sz
		}
		tok := Token{Kind: TIdent, Text: l.in[l.pos:i], Pos: start}
		l.pos = i
		return tok, nil
	}

	// Operators / punctuation, longest match first.
	for _, op := range []string{"<>", "!=", "<=", ">=", "||"} {
		if strings.HasPrefix(l.in[l.pos:], op) {
			l.pos += len(op)
			return Token{Kind: TPunct, Text: op, Pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.pos++
		return Token{Kind: TPunct, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func (l *Lexer) skip() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '-':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '*':
			end := strings.Index(l.in[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.in)
				return
			}
			l.pos += end + 4
		default:
			return
		}
	}
}

// LexAll tokenises the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TEOF {
			return out, nil
		}
		out = append(out, t)
	}
}
