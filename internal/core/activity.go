package core

import (
	"sort"
	"sync"
)

// Activity records each user's interaction profile — which ontology
// properties her enriched queries engage — so the peer-discovery services
// can find "individuals with similar interests or who have similar goals"
// from query behaviour (Sec. I-B.b), not only from stored knowledge.
// Attach one to an Enricher and every enriched query updates it.
type Activity struct {
	mu      sync.RWMutex
	props   map[string]map[string]float64 // user → property → weight
	queries map[string]int                // user → total enriched queries
}

// NewActivity returns an empty tracker.
func NewActivity() *Activity {
	return &Activity{props: map[string]map[string]float64{}, queries: map[string]int{}}
}

// Record notes that the user ran an enriched query using the properties.
func (a *Activity) Record(user string, properties []string) {
	if len(properties) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	prof, ok := a.props[user]
	if !ok {
		prof = map[string]float64{}
		a.props[user] = prof
	}
	for _, p := range properties {
		prof[p]++
	}
	a.queries[user]++
}

// Profile returns a copy of the user's property-usage vector.
func (a *Activity) Profile(user string) map[string]float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := map[string]float64{}
	for k, v := range a.props[user] {
		out[k] = v
	}
	return out
}

// QueryCount reports how many enriched queries the user has run.
func (a *Activity) QueryCount(user string) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.queries[user]
}

// Users lists users with recorded activity, sorted.
func (a *Activity) Users() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.props))
	for u := range a.props {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
