package core

import (
	"strings"
	"testing"

	"crosse/internal/rdf"
	"crosse/internal/sqlval"
)

const mappingXML = `
<resourceMapping>
  <default iriPrefix="http://smartground.eu/onto#"/>
  <map table="elem_contained" column="elem_name" iriPrefix="http://smartground.eu/element/"/>
  <map column="city" literal="true"/>
</resourceMapping>`

func TestLoadMapping(t *testing.T) {
	m, err := LoadMapping(strings.NewReader(mappingXML))
	if err != nil {
		t.Fatal(err)
	}
	// Table-qualified rule.
	term := m.ToTerm("elem_contained", "elem_name", sqlval.NewString("Mercury"))
	if term.Value != "http://smartground.eu/element/Mercury" || !term.IsIRI() {
		t.Errorf("qualified rule: %v", term)
	}
	// Column-only rule → literal.
	term = m.ToTerm("landfill", "city", sqlval.NewString("Torino"))
	if !term.IsLiteral() || term.Value != "Torino" {
		t.Errorf("literal rule: %v", term)
	}
	// Fallback to default prefix.
	term = m.ToTerm("landfill", "name", sqlval.NewString("a"))
	if term.Value != DefaultIRIPrefix+"a" {
		t.Errorf("default rule: %v", term)
	}
}

func TestLoadMappingErrors(t *testing.T) {
	bad := []string{
		`not xml`,
		`<resourceMapping><map table="t"/></resourceMapping>`,
		`<resourceMapping><map column="c" literal="true" iriPrefix="http://x/"/></resourceMapping>`,
	}
	for _, doc := range bad {
		if _, err := LoadMapping(strings.NewReader(doc)); err == nil {
			t.Errorf("LoadMapping(%q) should fail", doc)
		}
	}
}

func TestXMLDocumentRoundTrip(t *testing.T) {
	m, err := LoadMapping(strings.NewReader(mappingXML))
	if err != nil {
		t.Fatal(err)
	}
	doc := m.XMLDocument()
	m2, err := LoadMapping(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("re-load of %q: %v", doc, err)
	}
	for _, col := range []string{"elem_name", "city", "other"} {
		a := m.ToTerm("elem_contained", col, sqlval.NewString("X"))
		b := m2.ToTerm("elem_contained", col, sqlval.NewString("X"))
		if a != b {
			t.Errorf("round trip diverges on %s: %v vs %v", col, a, b)
		}
	}
}

func TestLiteralTermTypes(t *testing.T) {
	m, _ := LoadMapping(strings.NewReader(mappingXML))
	cases := []struct {
		v  sqlval.Value
		dt string
	}{
		{sqlval.NewInt(4), rdf.XSDInteger},
		{sqlval.NewFloat(2.5), rdf.XSDDouble},
		{sqlval.NewBool(true), rdf.XSDBoolean},
		{sqlval.NewString("x"), ""},
	}
	for _, c := range cases {
		term := m.ToTerm("landfill", "city", c.v)
		if term.Datatype != c.dt {
			t.Errorf("ToTerm(%v) datatype = %q, want %q", c.v, term.Datatype, c.dt)
		}
	}
}

func TestFromTerm(t *testing.T) {
	m, _ := LoadMapping(strings.NewReader(mappingXML))
	cases := []struct {
		term rdf.Term
		want sqlval.Value
	}{
		{rdf.NewIRI(DefaultIRIPrefix + "Mercury"), sqlval.NewString("Mercury")},
		{rdf.NewIRI("http://smartground.eu/element/Lead"), sqlval.NewString("Lead")},
		{rdf.NewIRI("http://elsewhere.org/x"), sqlval.NewString("http://elsewhere.org/x")},
		{rdf.NewLiteral("plain"), sqlval.NewString("plain")},
		{rdf.NewTypedLiteral("42", rdf.XSDInteger), sqlval.NewInt(42)},
		{rdf.NewTypedLiteral("2.5", rdf.XSDDouble), sqlval.NewFloat(2.5)},
		{rdf.NewTypedLiteral("true", rdf.XSDBoolean), sqlval.NewBool(true)},
		{rdf.NewTypedLiteral("zz", rdf.XSDInteger), sqlval.NewString("zz")}, // malformed → text
	}
	for _, c := range cases {
		got := m.FromTerm(c.term)
		if got.Type() != c.want.Type() || got.String() != c.want.String() {
			t.Errorf("FromTerm(%v) = %v (%v), want %v", c.term, got, got.Type(), c.want)
		}
	}
}

func TestToFromTermRoundTrip(t *testing.T) {
	m, _ := LoadMapping(strings.NewReader(mappingXML))
	vals := []sqlval.Value{
		sqlval.NewString("Mercury"), sqlval.NewInt(7), sqlval.NewFloat(1.25), sqlval.NewBool(false),
	}
	for _, v := range vals {
		// literal column round-trips types exactly
		back := m.FromTerm(m.ToTerm("landfill", "city", v))
		if back.Type() != v.Type() || back.String() != v.String() {
			t.Errorf("literal round trip %v → %v", v, back)
		}
		// IRI column round-trips the rendering
		back = m.FromTerm(m.ToTerm("elem_contained", "elem_name", v))
		if back.String() != v.String() {
			t.Errorf("IRI round trip %v → %v", v, back)
		}
	}
}

func TestPropertyAndConceptHelpers(t *testing.T) {
	m := NewMapping("")
	if got := m.PropertyIRI("dangerLevel").Value; got != DefaultIRIPrefix+"dangerLevel" {
		t.Errorf("PropertyIRI: %q", got)
	}
	if got := m.PropertyIRI("http://x/p").Value; got != "http://x/p" {
		t.Errorf("PropertyIRI absolute: %q", got)
	}
	terms := m.ConceptTerms("Italy")
	if len(terms) != 2 || !terms[0].IsIRI() || !terms[1].IsLiteral() {
		t.Errorf("ConceptTerms: %v", terms)
	}
	if terms := m.ConceptTerms("http://x/C"); len(terms) != 1 {
		t.Errorf("absolute concept: %v", terms)
	}
}
