package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// enrichedQueries exercise the full pipeline: schema extension via the
// user's KB plus a stored-query enrichment.
var enrichedQueries = []string{
	"SELECT elem_name, landfill_name\nFROM elem_contained\nENRICH\nSCHEMAEXTENSION( elem_name, dangerLevel)",
	"SELECT name, city\nFROM landfill\nENRICH\nSCHEMAREPLACEMENT(city, inCountry)",
	"SELECT elem_name\nFROM elem_contained\nENRICH\nBOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)",
}

func TestImageRoundTrip(t *testing.T) {
	e := fixture(t)

	var img bytes.Buffer
	if err := WriteImage(&img, e.DB, e.Platform); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	db, p, err := ReadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}
	restored := New(db, p, nil)

	// Same SESQL results through the full enrichment pipeline.
	for _, q := range enrichedQueries {
		want, err := e.Query("alice", q)
		if err != nil {
			t.Fatalf("query original: %v", err)
		}
		got, err := restored.Query("alice", q)
		if err != nil {
			t.Fatalf("query restored: %v", err)
		}
		if !reflect.DeepEqual(resultRows(want), resultRows(got)) {
			t.Fatalf("query %q differs after restore:\n got %v\nwant %v", q, resultRows(got), resultRows(want))
		}
	}
	// Plain SQL against the restored databank.
	want, err := e.DB.Query(`SELECT name FROM landfill`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(`SELECT name FROM landfill`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultRows(want), resultRows(got)) {
		t.Fatalf("databank rows differ after restore")
	}
	// The stored dangerQuery still resolves for the restored platform.
	if _, ok := p.LookupQuery("alice", "dangerQuery"); !ok {
		t.Fatalf("stored query lost in restore")
	}
}

func TestImageChecksum(t *testing.T) {
	e := fixture(t)
	var img bytes.Buffer
	if err := WriteImage(&img, e.DB, e.Platform); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()

	// Flip one payload byte: the checksum must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, _, err := ReadImage(bytes.NewReader(flipped)); err == nil {
		t.Fatalf("bit flip restored without error")
	}
	// Truncation fails too.
	if _, _, err := ReadImage(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatalf("truncated image restored without error")
	}
	if _, _, err := ReadImage(bytes.NewReader([]byte("NOTANIMAGE"))); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

// Every proper prefix of a valid image must be rejected. Recovery can
// meet a torn image after a crash mid-save (the rename is atomic, but a
// copied or half-restored file is not), and a truncated image must fail
// cleanly at every possible cut — never load as a silently partial
// platform.
func TestImageTruncationSeries(t *testing.T) {
	e := fixture(t)
	var img bytes.Buffer
	if err := WriteImageLSN(&img, e.DB, e.Platform, 42); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()
	if _, _, lsn, err := ReadImageLSN(bytes.NewReader(raw)); err != nil || lsn != 42 {
		t.Fatalf("full image: lsn=%d err=%v", lsn, err)
	}
	for n := range raw {
		if _, _, _, err := ReadImageLSN(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", n, len(raw))
		}
	}
}

func TestImageFileSaveLoad(t *testing.T) {
	e := fixture(t)
	path := filepath.Join(t.TempDir(), "platform.img")

	size, err := SaveImageFile(path, e.DB, e.Platform)
	if err != nil {
		t.Fatalf("SaveImageFile: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != size || size == 0 {
		t.Fatalf("reported size %d, file has %d", size, st.Size())
	}

	db, p, err := LoadImageFile(path)
	if err != nil {
		t.Fatalf("LoadImageFile: %v", err)
	}
	if got, want := p.Users(), e.Platform.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("users = %v, want %v", got, want)
	}
	if db.Catalog().Names() == nil {
		t.Fatalf("restored databank is empty")
	}

	// A failed save must not clobber the existing image: saving over a
	// read-only directory fails, the original stays loadable.
	if _, err := SaveImageFile(filepath.Join(t.TempDir(), "missing", "x.img"), e.DB, e.Platform); err == nil {
		t.Fatalf("save into missing directory succeeded")
	}
	if _, _, err := LoadImageFile(path); err != nil {
		t.Fatalf("original image unreadable after failed save: %v", err)
	}
}
