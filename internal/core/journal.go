package core

// This file implements the platform journal: the logged-mutation path that
// makes the platform durable between images. Every public mutator applies
// the change to the in-memory platform, appends exactly one record to the
// write-ahead log, and only acknowledges once the record is durable under
// the log's sync policy. The journal's lock serializes {apply + append}
// so the log's record order IS the application order — the property that
// makes replay deterministic (statement ids come from a platform counter,
// so records replayed in order reproduce the ids they were acknowledged
// with). The fsync wait happens outside the lock, so group commit batches
// concurrent acknowledgements into shared fsyncs.
//
// Recovery: load the newest image (which records the LSN of the last
// mutation it contains), then replay every log record past that LSN.
// Compact() re-anchors: it writes a fresh image at the current LSN and
// atomically swaps in an empty log anchored there.

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
	"crosse/internal/wal"
)

// Mutator is the platform mutation surface. *kb.Platform implements it
// directly (no durability); *Journal implements it with write-ahead
// logging. The REST layer mutates through this interface so a server runs
// identically with or without a journal.
type Mutator interface {
	RegisterUser(name string) error
	Insert(user string, t rdf.Triple, opts ...kb.InsertOption) (string, error)
	Import(user, id string) error
	ImportFrom(user, fromUser string, filter func(*kb.Statement) bool) (int, error)
	Retract(user, id string) error
	RegisterQuery(owner, name, text string) error
	DeclareResource(user, iri string) error
	DeclareProperty(user, iri string) error
}

var _ Mutator = (*kb.Platform)(nil)
var _ Mutator = (*Journal)(nil)

// ErrWedged marks a journal that applied a mutation it could not log: the
// in-memory state is ahead of the durable log, so further mutations are
// refused until the operator compacts or restarts. The serving tier maps
// it to 503.
var ErrWedged = errors.New("core: journal wedged (state applied but not logged)")

// JournalOptions configure OpenJournal.
type JournalOptions struct {
	// FS is the filesystem (nil = the real one). The crash property suite
	// passes a fault-injecting in-memory FS.
	FS wal.FS
	// Sync is the log's durability policy.
	Sync wal.SyncPolicy
	// SyncEvery is the SyncInterval period.
	SyncEvery time.Duration
	// Logf receives operational notices (nil = silent).
	Logf func(format string, args ...any)
}

// Journal is a platform with a write-ahead log under it.
type Journal struct {
	db  *engine.DB
	p   *kb.Platform
	log *wal.Log
	fs  wal.FS
	dir string

	// mu serializes every logged mutation's {apply + append} pair (and
	// compaction, which must see a quiescent platform at a known LSN).
	mu     sync.Mutex
	wedged error
}

// ImagePath returns the platform image path under a journal directory.
func ImagePath(dir string) string { return filepath.Join(dir, "platform.img") }

// LogPath returns the write-ahead log path under a journal directory.
func LogPath(dir string) string { return filepath.Join(dir, "wal.log") }

// OpenJournal opens (or initialises) the journal directory. When an image
// exists the platform is restored from it and the log replayed past the
// image's anchor; restored reports true. When the directory is fresh,
// bootstrap supplies the initial platform pair, an anchoring image is
// written, and an empty log is created — so the bootstrap state itself
// never depends on the log. A log without an image is refused: the records
// are relative to an image that is gone.
func OpenJournal(dir string, opts JournalOptions, bootstrap func() (*engine.DB, *kb.Platform, error)) (*Journal, bool, error) {
	j := &Journal{fs: opts.FS, dir: dir}
	if j.fs == nil {
		j.fs = wal.OS
	}
	imgPath, logPath := ImagePath(dir), LogPath(dir)

	img, err := j.fs.ReadFile(imgPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if _, err := j.fs.ReadFile(logPath); err == nil {
			return nil, false, fmt.Errorf("core: %s exists without %s: the log's anchoring image is gone; refusing to guess", logPath, imgPath)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, false, err
		}
		db, p, err := bootstrap()
		if err != nil {
			return nil, false, fmt.Errorf("core: bootstrap journal: %w", err)
		}
		if _, err := saveImageFS(j.fs, imgPath, db, p, 0); err != nil {
			return nil, false, fmt.Errorf("core: write bootstrap image: %w", err)
		}
		j.db, j.p = db, p
		j.log, err = wal.Open(logPath, wal.Options{
			FS: j.fs, Sync: opts.Sync, SyncEvery: opts.SyncEvery, Start: 0, Logf: opts.Logf,
		})
		if err != nil {
			return nil, false, err
		}
		return j, false, nil

	case err != nil:
		return nil, false, err
	}

	db, p, lsn, err := ReadImageLSN(bytes.NewReader(img))
	if err != nil {
		return nil, false, fmt.Errorf("core: load image %s: %w", imgPath, err)
	}
	j.db, j.p = db, p
	j.log, err = wal.Open(logPath, wal.Options{
		FS:        j.fs,
		Sync:      opts.Sync,
		SyncEvery: opts.SyncEvery,
		Start:     lsn,
		FromLSN:   lsn,
		Replay: func(_ uint64, payload []byte) error {
			return applyOp(db, p, payload)
		},
		Logf: opts.Logf,
	})
	if err != nil {
		return nil, false, err
	}
	return j, true, nil
}

// DB returns the journal's databank.
func (j *Journal) DB() *engine.DB { return j.db }

// Platform returns the journal's semantic platform. Reads (views, queries,
// exploration) go straight to it; mutations must go through the journal.
func (j *Journal) Platform() *kb.Platform { return j.p }

// Status reports the underlying log's position.
func (j *Journal) Status() wal.Status { return j.log.StatusNow() }

// Wedged reports the error that permanently wedged the journal (state
// applied but not logged), or nil while it accepts mutations. Liveness
// endpoints use it: a wedged journal means the node serves reads but can
// no longer acknowledge writes.
func (j *Journal) Wedged() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wedged
}

// logged runs one mutation: apply to the in-memory platform, append its
// record, then (outside the lock) wait for durability. An apply error is
// the mutation's own error — nothing was logged, nothing changed. An
// append error after a successful apply wedges the journal permanently:
// the in-memory platform is now ahead of the durable log, so acknowledging
// anything more (or compacting the divergent state into an image) would
// break the recovery invariant.
func (j *Journal) logged(apply func() error, record func() []byte) error {
	j.mu.Lock()
	if j.wedged != nil {
		j.mu.Unlock()
		return j.wedged
	}
	if err := apply(); err != nil {
		j.mu.Unlock()
		return err
	}
	payload := record()
	if payload == nil { // the mutation was a no-op; nothing to make durable
		j.mu.Unlock()
		return nil
	}
	lsn, err := j.log.Append(payload)
	if err != nil {
		j.wedged = fmt.Errorf("%w: %v", ErrWedged, err)
		j.mu.Unlock()
		return j.wedged
	}
	j.mu.Unlock()
	return j.log.Commit(lsn)
}

func (j *Journal) RegisterUser(name string) error {
	return j.logged(
		func() error { return j.p.RegisterUser(name) },
		func() []byte { return encRegisterUser(name) },
	)
}

func (j *Journal) Insert(user string, t rdf.Triple, opts ...kb.InsertOption) (string, error) {
	args := kb.ResolveInsertOptions(opts...)
	var id string
	err := j.logged(
		func() (err error) {
			id, err = j.p.Insert(user, t, opts...)
			return err
		},
		func() []byte { return encInsert(id, user, t, args.Ref) },
	)
	if err != nil {
		return "", err
	}
	return id, nil
}

func (j *Journal) Import(user, id string) error {
	return j.logged(
		func() error { return j.p.Import(user, id) },
		func() []byte { return encImport(user, id) },
	)
}

func (j *Journal) ImportFrom(user, fromUser string, filter func(*kb.Statement) bool) (int, error) {
	var ids []string
	err := j.logged(
		func() (err error) {
			ids, err = j.p.ImportFromIDs(user, fromUser, filter)
			return err
		},
		func() []byte {
			if len(ids) == 0 { // imported nothing; no record
				return nil
			}
			return encImportBatch(user, ids)
		},
	)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

func (j *Journal) Retract(user, id string) error {
	return j.logged(
		func() error { return j.p.Retract(user, id) },
		func() []byte { return encRetract(user, id) },
	)
}

func (j *Journal) RegisterQuery(owner, name, text string) error {
	return j.logged(
		func() error { return j.p.RegisterQuery(owner, name, text) },
		func() []byte { return encRegisterQuery(owner, name, text) },
	)
}

func (j *Journal) DeclareResource(user, iri string) error {
	return j.logged(
		func() error { return j.p.DeclareResource(user, iri) },
		func() []byte { return encDeclare(kb.DeclResource, user, iri) },
	)
}

func (j *Journal) DeclareProperty(user, iri string) error {
	return j.logged(
		func() error { return j.p.DeclareProperty(user, iri) },
		func() []byte { return encDeclare(kb.DeclProperty, user, iri) },
	)
}

// Exec runs SQL against the databank. Statements that can change state
// (DDL and DML — anything but a bare SELECT) are logged; SELECTs read
// without touching the journal.
func (j *Journal) Exec(sql string) (*sqlexec.Result, error) {
	if isReadOnlySQL(sql) {
		return j.db.ExecScript(sql)
	}
	var res *sqlexec.Result
	err := j.logged(
		func() (err error) {
			res, err = j.db.ExecScript(sql)
			return err
		},
		func() []byte { return encSQL(sql) },
	)
	return res, err
}

// isReadOnlySQL reports whether every statement in the script is a SELECT.
func isReadOnlySQL(script string) bool {
	for _, stmt := range engine.SplitStatements(script) {
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		if !strings.EqualFold(fields[0], "SELECT") {
			return false
		}
	}
	return true
}

// Compact re-anchors the journal: under the mutation lock (so the platform
// is quiescent at a known LSN) it writes a fresh image recording that LSN,
// then atomically rotates in an empty log anchored there. A crash between
// the two steps is safe: the new image is durable before the old log is
// replaced, and recovery replays only records past the image's anchor, so
// the old log's records — all at or before that anchor — are validated
// but skipped, never re-applied.
func (j *Journal) Compact() (wal.Status, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wedged != nil {
		return wal.Status{}, j.wedged
	}
	lsn := j.log.LSN()
	if _, err := saveImageFS(j.fs, ImagePath(j.dir), j.db, j.p, lsn); err != nil {
		return wal.Status{}, fmt.Errorf("core: compact image: %w", err)
	}
	if err := j.log.Rotate(lsn); err != nil {
		return wal.Status{}, fmt.Errorf("core: compact rotate: %w", err)
	}
	return j.log.StatusNow(), nil
}

// Close flushes and closes the log. The platform stays usable in memory.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
