package core_test

import (
	"fmt"
	"strings"

	"crosse/internal/core"
	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlval"
)

// ExampleEnricher_Query reproduces the paper's Example 4.1 end to end:
// plain SQL answers from the databank, enriched with the querying user's
// own dangerLevel knowledge.
func ExampleEnricher_Query() {
	db := engine.Open()
	db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO elem_contained VALUES ('Mercury', 'a'), ('Zinc', 'a');
	`)
	platform := kb.NewPlatform()
	platform.RegisterUser("alice")
	smg := func(l string) rdf.Term { return rdf.NewIRI(core.DefaultIRIPrefix + l) }
	platform.Insert("alice", rdf.Triple{S: smg("Mercury"), P: smg("dangerLevel"), O: rdf.NewLiteral("high")})

	enricher := core.New(db, platform, nil)
	res, _ := enricher.Query("alice", `
		SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
		ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// Mercury high
	// Zinc NULL
}

// ExampleLoadMapping shows the XML resource mapping the JoinManager uses
// to translate between relational values and ontology resources.
func ExampleLoadMapping() {
	const doc = `<resourceMapping>
  <default iriPrefix="http://smartground.eu/onto#"/>
  <map table="landfill" column="city" literal="true"/>
</resourceMapping>`
	m, _ := core.LoadMapping(strings.NewReader(doc))
	fmt.Println(m.ToTerm("elem_contained", "elem_name", sqlval.NewString("Mercury")))
	fmt.Println(m.ToTerm("landfill", "city", sqlval.NewString("Torino")))
	// Output:
	// <http://smartground.eu/onto#Mercury>
	// "Torino"
}
