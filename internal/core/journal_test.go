package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
	"crosse/internal/wal"
)

// journalFixture opens a journal over real files whose bootstrap is the
// standard enrichment fixture schema plus registered users.
func journalFixture(t *testing.T, dir string, users ...string) (*Journal, bool) {
	t.Helper()
	j, restored, err := OpenJournal(dir, JournalOptions{Sync: wal.SyncAlways}, func() (*engine.DB, *kb.Platform, error) {
		db := engine.Open()
		if _, err := db.ExecScript(`
			CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
			INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano');
		`); err != nil {
			return nil, nil, err
		}
		p := kb.NewPlatform()
		for _, u := range users {
			if err := p.RegisterUser(u); err != nil {
				return nil, nil, err
			}
		}
		return db, p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return j, restored
}

// A journal must survive restarts: everything acknowledged before Close
// is there after reopening, statement ids keep counting from where they
// left off, and compaction does not change observable state.
func TestJournalRestartContinuity(t *testing.T) {
	dir := t.TempDir()
	j, restored := journalFixture(t, dir, "ada", "ben")
	if restored {
		t.Fatal("fresh dir reported restored")
	}
	id1, err := j.Insert("ada", rdf.Triple{S: smg("Mercury"), P: smg("dangerLevel"), O: lit("high")},
		kb.WithReference(kb.Reference{Title: "assay", Author: "ada"}))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Import("ben", id1); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Exec("INSERT INTO landfill VALUES ('c', 'Lyon')"); err != nil {
		t.Fatal(err)
	}
	if err := j.RegisterQuery("ada", "hazards", `SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`dangerLevel> "high" }`); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, restored := journalFixture(t, dir, "ada", "ben")
	if !restored {
		t.Fatal("existing dir not restored")
	}
	st, err := j2.Platform().Statement(id1)
	if err != nil {
		t.Fatalf("statement lost: %v", err)
	}
	if st.Ref == nil || st.Ref.Title != "assay" || !st.BelievedBy("ben") {
		t.Fatalf("statement state lost: %+v", st)
	}
	if _, ok := j2.Platform().LookupQuery("ada", "hazards"); !ok {
		t.Fatal("stored query lost")
	}
	r, err := j2.Exec("SELECT name FROM landfill")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("landfill rows = %d, want 3 (SQL mutation lost)", len(r.Rows))
	}
	if j2.Status().LSN != 4 {
		t.Fatalf("LSN = %d, want 4", j2.Status().LSN)
	}

	// Ids continue the original sequence after recovery.
	id2, err := j2.Insert("ben", rdf.Triple{S: smg("Lead"), P: smg("dangerLevel"), O: lit("high")})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("id collision after restart: %s", id2)
	}

	// Compaction folds the log into the image without changing state.
	before, err := probeCrashLike(j2)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := j2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Start != cst.LSN || cst.Start != 5 {
		t.Fatalf("compacted status: %+v", cst)
	}
	j2.Close()

	j3, restored := journalFixture(t, dir, "ada", "ben")
	if !restored {
		t.Fatal("post-compaction dir not restored")
	}
	defer j3.Close()
	after, err := probeCrashLike(j3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("compaction changed state\n--- before\n%+v\n--- after\n%+v", before, after)
	}
}

func probeCrashLike(j *Journal) (map[string]any, error) {
	p := j.Platform()
	var stmts []string
	for _, st := range p.Explore(nil) {
		stmts = append(stmts, fmt.Sprintf("%s|%s|%s|%v", st.ID, st.Owner, st.Triple, st.Believers()))
	}
	r, err := j.Exec("SELECT name, city FROM landfill")
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, row := range r.Rows {
		rows = append(rows, row[0].String()+"|"+row[1].String())
	}
	sizes := map[string]int{}
	for _, u := range p.Users() {
		sizes[u] = p.ViewSize(u)
	}
	return map[string]any{"stmts": stmts, "rows": rows, "sizes": sizes, "users": p.Users()}, nil
}

// SELECTs must not touch the log; mutating SQL must append exactly one
// record.
func TestJournalExecLogsOnlyWrites(t *testing.T) {
	j, _ := journalFixture(t, t.TempDir(), "ada")
	defer j.Close()
	base := j.Status().LSN
	if _, err := j.Exec("SELECT name FROM landfill"); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().LSN; got != base {
		t.Fatalf("SELECT appended a record: LSN %d → %d", base, got)
	}
	if _, err := j.Exec("INSERT INTO landfill VALUES ('d', 'Graz')"); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().LSN; got != base+1 {
		t.Fatalf("INSERT appended %d records, want 1", got-base)
	}
}

// An ImportFrom that imports nothing must not append a record (replaying
// an empty batch is fine, but a record per no-op would make the log grow
// with idempotent retries).
func TestJournalImportFromNoOp(t *testing.T) {
	j, _ := journalFixture(t, t.TempDir(), "ada", "ben")
	defer j.Close()
	base := j.Status().LSN
	n, err := j.ImportFrom("ben", "ada", nil) // ada owns nothing yet
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got := j.Status().LSN; got != base {
		t.Fatalf("empty ImportFrom appended a record")
	}
}

// TestJournalAppendsVsStreamedReads races write-ahead-logged mutations
// against streamed SPARQL reads and SESQL enrichment over the overlay
// views. Run with -race: the journal's lock covers {apply + append} but
// reads go straight to the platform's own RWMutex, so this validates the
// two locking regimes compose.
func TestJournalAppendsVsStreamedReads(t *testing.T) {
	dir := t.TempDir()
	users := []string{"r0", "r1", "r2", "expert"}
	j, _ := journalFixture(t, dir, users...)

	// Seed a corpus the readers stream over while writers mutate.
	for i := 0; i < 50; i++ {
		if _, err := j.Insert("expert", rdf.Triple{
			S: smg(fmt.Sprintf("E%d", i)), P: smg("dangerLevel"), O: lit("high"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(j.DB(), j.Platform(), nil)

	const writers, readers, rounds = 3, 3, 25
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("r%d", w)
			for i := 0; i < rounds; i++ {
				id, err := j.Insert(user, rdf.Triple{
					S: smg(fmt.Sprintf("W%d_%d", w, i)), P: smg("isA"), O: smg("HazardousWaste"),
				})
				if err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if _, err := j.ImportFrom(user, "expert", nil); err != nil {
						errCh <- err
						return
					}
				}
				if i%5 == 4 {
					if err := j.Retract(user, id); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("r%d", r)
			for i := 0; i < rounds; i++ {
				view, err := e.Platform.View(user)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := sparql.Eval(view, `SELECT ?s WHERE { ?s <`+DefaultIRIPrefix+`dangerLevel> "high" }`); err != nil {
					errCh <- err
					return
				}
				if _, err := e.Query(user, "SELECT name, city FROM landfill WHERE city < 'zzz'"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// A compactor races both: image + rotate under the journal lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := j.Compact(); err != nil {
				errCh <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	lsn := j.Status().LSN
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything the race acknowledged recovers.
	j2, restored := journalFixture(t, dir, users...)
	defer j2.Close()
	if !restored || j2.Status().LSN != lsn {
		t.Fatalf("recovered LSN %d (restored=%v), want %d", j2.Status().LSN, restored, lsn)
	}
}
