package core

import (
	"sort"
	"strings"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sqlexec"
)

func smg(local string) rdf.Term { return rdf.NewIRI(DefaultIRIPrefix + local) }

func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

// fixture builds the paper's running SmartGround scenario: the Fig. 3
// databank fragment plus alice's contextual knowledge base.
func fixture(t *testing.T) *Enricher {
	t.Helper()
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
		INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Milano'), ('c', 'Lyon');
		INSERT INTO elem_contained VALUES
			('Mercury', 'a'), ('Lead', 'a'), ('Zinc', 'a'),
			('Gold', 'b'), ('Mercury', 'b'),
			('Lead', 'c');
	`); err != nil {
		t.Fatal(err)
	}

	p := kb.NewPlatform()
	if err := p.RegisterUser("alice"); err != nil {
		t.Fatal(err)
	}
	add := func(s, prop string, o rdf.Term) {
		t.Helper()
		if _, err := p.Insert("alice", rdf.Triple{S: smg(s), P: smg(prop), O: o}); err != nil {
			t.Fatal(err)
		}
	}
	add("Mercury", "dangerLevel", lit("high"))
	add("Lead", "dangerLevel", lit("high"))
	add("Zinc", "dangerLevel", lit("low"))
	add("Mercury", "isA", smg("HazardousWaste"))
	add("Lead", "isA", smg("HazardousWaste"))
	add("Asbestos", "isA", smg("HazardousWaste"))
	add("Torino", "inCountry", smg("Italy"))
	add("Milano", "inCountry", smg("Italy"))
	add("Lyon", "inCountry", smg("France"))
	add("Mercury", "oreAssemblage", smg("Lead"))
	add("Lead", "oreAssemblage", smg("Zinc"))

	if err := p.RegisterQuery("", "dangerQuery",
		`SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`isA> <`+DefaultIRIPrefix+`HazardousWaste> }`); err != nil {
		t.Fatal(err)
	}
	return New(db, p, nil)
}

func resultRows(r *sqlexec.Result) []string {
	var out []string
	for _, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func TestPaperExample41SchemaExtension(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
SCHEMAEXTENSION( elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "elem_name,landfill_name,dangerLevel" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"Lead|a|high", "Mercury|a|high", "Zinc|a|low"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPaperExample42SchemaReplacement(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT name, city
FROM landfill
ENRICH
SCHEMAREPLACEMENT(city, inCountry)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "name,inCountry" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"a|Italy", "b|Italy", "c|France"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPaperExample43BoolSchemaExtension(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "elem_name,isA" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"Lead|true", "Mercury|true", "Zinc|false"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPaperExample44BoolSchemaReplacement(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT name, city
FROM landfill
ENRICH
BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "name,inCountry" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"a|true", "b|true", "c|false"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPaperExample45ReplaceConstant(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "landfill_name" {
		t.Errorf("columns = %v", r.Columns)
	}
	// Rows whose element is in the dangerQuery answer set {Mercury, Lead,
	// Asbestos}: (Mercury,a), (Lead,a), (Mercury,b), (Lead,c).
	want := []string{"a", "a", "b", "c"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReplaceConstantViaPlainProperty(t *testing.T) {
	// Without a stored query, the property's triples provide the values:
	// objects of (OreOfInterest, contains, ?o).
	e := fixture(t)
	if _, err := e.Platform.Insert("alice", rdf.Triple{S: smg("OreOfInterest"), P: smg("contains"), O: smg("Gold")}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("alice", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = OreOfInterest:c1}
ENRICH
REPLACECONSTANT(c1, OreOfInterest, contains)`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b"} // only Gold in landfill b
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPaperExample46ReplaceVariable(t *testing.T) {
	e := fixture(t)
	// Paper Example 4.6 verbatim (modulo the obvious alias typos in the
	// paper text: Elecon1 → Elecond1).
	r, err := e.Query("alice", `SELECT Elecond1.landfill_name AS l_name1,
 Elecond2.landfill_name AS l_name2,
 Elecond1.elem_name
FROM elem_contained AS Elecond1,
 elem_contained AS Elecond2
WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND
 Elecond1.elem_name = Elecond2.elem_name
ENRICH
REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "l_name1,l_name2,elem_name" {
		t.Errorf("columns = %v", r.Columns)
	}
	// Join on e1 = e2, then the tagged condition holds iff some
	// oreAssemblage(e2) differs from e1 — true for shared elements with a
	// non-self assemblage: Mercury (a,b pairs) and Lead (a,c pairs).
	want := []string{
		"a|a|Lead", "a|a|Mercury", "a|a|Zinc", // wait: Zinc has no assemblage
	}
	_ = want
	got := resultRows(r)
	// Mercury pairs: (a,a),(a,b),(b,a),(b,b); Lead pairs: (a,a),(a,c),(c,a),(c,c);
	// Zinc and Gold have no oreAssemblage entries → filtered out.
	expect := []string{
		"a|a|Lead", "a|a|Mercury", "a|b|Mercury", "a|c|Lead",
		"b|a|Mercury", "b|b|Mercury", "c|a|Lead", "c|c|Lead",
	}
	if strings.Join(got, " ") != strings.Join(expect, " ") {
		t.Errorf("got  %v\nwant %v", got, expect)
	}
}

func TestReplaceVariableSimple(t *testing.T) {
	e := fixture(t)
	// Which landfills contain an element whose assemblage includes Lead?
	r, err := e.Query("alice", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = 'Lead':c1}
ENRICH
REPLACEVARIABLE(c1, elem_name, oreAssemblage)`)
	if err != nil {
		t.Fatal(err)
	}
	// oreAssemblage(Mercury) = {Lead} matches; Lead's own assemblage is
	// {Zinc}, which does not.
	want := []string{"a", "b"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPlainSQLFastPath(t *testing.T) {
	e := fixture(t)
	r, stats, err := e.QueryStats("alice", `SELECT name FROM landfill ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d", len(r.Rows))
	}
	if stats.SPARQL != 0 || len(stats.SPARQLQueries) != 0 {
		t.Error("plain SQL must not touch the ontology")
	}
}

func TestMultipleEnrichmentsCompose(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name, landfill_name
FROM elem_contained
WHERE landfill_name = 'a'
ENRICH
SCHEMAEXTENSION(elem_name, dangerLevel)
BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "elem_name,landfill_name,dangerLevel,isA" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"Lead|a|high|true", "Mercury|a|high|true", "Zinc|a|low|false"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestWhereAndSchemaEnrichmentsTogether(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name, landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)
SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Lead|a|high", "Lead|c|high", "Mercury|a|high", "Mercury|b|high"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMissingPropertyYieldsNull(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	// Gold has no dangerLevel → NULL.
	want := []string{"Gold|NULL", "Mercury|high"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMultiValuedPropertyFansOut(t *testing.T) {
	e := fixture(t)
	if _, err := e.Platform.Insert("alice", rdf.Triple{S: smg("Mercury"), P: smg("dangerLevel"), O: lit("extreme")}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("alice", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(r)
	if len(got) != 3 { // Gold|NULL + Mercury×2
		t.Errorf("multi-valued property should fan out: %v", got)
	}
}

func TestContextDependentAnswers(t *testing.T) {
	// The paper's central claim: two users with different contexts get
	// different answers from the same SESQL query.
	e := fixture(t)
	if err := e.Platform.RegisterUser("bob"); err != nil {
		t.Fatal(err)
	}
	// Bob believes only Zinc is hazardous.
	if _, err := e.Platform.Insert("bob", rdf.Triple{S: smg("Zinc"), P: smg("isA"), O: smg("HazardousWaste")}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`

	ra, err := e.Query("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Query("bob", q)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := resultRows(ra), resultRows(rb)
	if strings.Join(ga, " ") == strings.Join(gb, " ") {
		t.Errorf("contexts must differentiate answers: alice=%v bob=%v", ga, gb)
	}
	if strings.Join(gb, " ") != "Lead|false Mercury|false Zinc|true" {
		t.Errorf("bob's context wrong: %v", gb)
	}
}

func TestImportedKnowledgeChangesAnswers(t *testing.T) {
	e := fixture(t)
	if err := e.Platform.RegisterUser("carol"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)`
	r0, err := e.Query("carol", q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r0.Rows {
		if !row[1].IsNull() {
			t.Fatalf("carol has no context; got %v", resultRows(r0))
		}
	}
	// Carol imports alice's geography statements.
	if _, err := e.Platform.ImportFrom("carol", "alice", func(st *kb.Statement) bool {
		return st.Triple.P == smg("inCountry")
	}); err != nil {
		t.Fatal(err)
	}
	r1, err := e.Query("carol", q)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a|Italy", "b|Italy", "c|France"}
	if got := resultRows(r1); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("after import: %v", got)
	}
}

func TestStatsStages(t *testing.T) {
	e := fixture(t)
	_, stats, err := e.QueryStats("alice", `SELECT elem_name, landfill_name FROM elem_contained
WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BaseRows != 3 || stats.FinalRows != 3 {
		t.Errorf("rows: base=%d final=%d", stats.BaseRows, stats.FinalRows)
	}
	if len(stats.SPARQLQueries) != 1 || !strings.Contains(stats.SPARQLQueries[0], "dangerLevel") {
		t.Errorf("SPARQL queries: %v", stats.SPARQLQueries)
	}
	// A schema-only enrichment defers nothing to the final query, so the
	// projection is answered straight from the join buffer: no final SQL.
	if stats.FinalSQLText != "" {
		t.Errorf("final SQL should be skipped for a pure projection, got %q", stats.FinalSQLText)
	}
	if stats.Total() <= 0 {
		t.Error("total time must be positive")
	}

	// A WHERE enrichment with a deferred ORDER BY/LIMIT still goes through
	// the temporary support database.
	_, stats2, err := e.QueryStats("alice", `SELECT landfill_name FROM elem_contained
WHERE ${elem_name = HazardousWaste:c1}
ORDER BY landfill_name LIMIT 2
ENRICH REPLACECONSTANT(c1, HazardousWaste, dangerQuery)`)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.FinalSQLText == "" || !strings.Contains(stats2.FinalSQLText, "sesql_result") {
		t.Errorf("deferred ORDER BY must run a final SQL, got %q", stats2.FinalSQLText)
	}
}

func TestOrderLimitWithWhereEnrichment(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Deferred ORDER BY + LIMIT are applied after enrichment filtering.
	r2, err := e.Query("alice", `SELECT landfill_name
FROM elem_contained
WHERE ${elem_name = HazardousWaste:cond1}
ORDER BY landfill_name DESC LIMIT 2
ENRICH
REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)`)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(r2)
	if strings.Join(got, " ") != "b c" {
		t.Errorf("deferred order/limit: %v", got)
	}
}

func TestUserWithoutKnowledgeGetsFalse(t *testing.T) {
	e := fixture(t)
	if err := e.Platform.RegisterUser("empty"); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("empty", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[1].Bool() {
			t.Errorf("empty context must yield false: %v", resultRows(r))
		}
	}
}

func TestErrorCases(t *testing.T) {
	e := fixture(t)
	bad := []struct {
		user, q string
	}{
		{"ghost", `SELECT name FROM landfill`},
		{"alice", `SELECT name FROM landfill ENRICH SCHEMAEXTENSION(nope, p)`},
		{"alice", `SELECT name FROM nope ENRICH SCHEMAEXTENSION(name, p)`},
		{"alice", `SELECT DISTINCT landfill_name FROM elem_contained WHERE ${elem_name = X:c1} ENRICH REPLACECONSTANT(c1, X, dangerQuery)`},
		{"alice", `SELECT landfill_name FROM elem_contained WHERE ${elem_name = X:c1} ENRICH REPLACECONSTANT(c1, Y, dangerQuery)`},
	}
	for _, c := range bad {
		if _, err := e.Query(c.user, c.q); err == nil {
			t.Errorf("Query(%s, %q) should fail", c.user, c.q)
		}
	}
}

func TestConceptChecker(t *testing.T) {
	e := fixture(t)
	check := NewConceptChecker(e.DB, e.Mapping)
	if !check("Mercury") {
		t.Error("Mercury is in the databank")
	}
	if !check(DefaultIRIPrefix + "Torino") {
		t.Error("IRI-form concept must resolve")
	}
	if check("Unobtainium") {
		t.Error("Unobtainium is not in the databank")
	}
	// Wire into the platform: integrated annotation works end-to-end.
	e.Platform.SetConceptChecker(check)
	if _, err := e.Platform.Insert("alice",
		rdf.Triple{S: smg("Mercury"), P: smg("note"), O: lit("seen in lab")}, kb.Integrated()); err != nil {
		t.Errorf("integrated annotation of db concept failed: %v", err)
	}
	if _, err := e.Platform.Insert("alice",
		rdf.Triple{S: smg("Unobtainium"), P: smg("note"), O: lit("x")}, kb.Integrated()); err == nil {
		t.Error("integrated annotation of unknown concept must fail")
	}
}
