package core

import (
	"crosse/internal/sparql"
	"crosse/internal/sqlexec"
)

// ExecOptions is the single knob set for one enriched evaluation: it
// unifies the previously parallel sqlexec.Options / sparql.Options
// plumbing, so callers configure the pipeline once and the enricher
// projects the relevant subset onto each executor. The zero value is the
// production configuration (parallel GOMAXPROCS execution, all
// optimisations on, fail fast on down sources).
type ExecOptions struct {
	// Parallelism caps intra-query parallelism for both the SQL and the
	// SPARQL executor: 0 (the default) means GOMAXPROCS, 1 forces the
	// serial paths, larger values bound each query's worker fan-out.
	Parallelism int

	// PartialResults degrades instead of failing when a remote source is
	// down before producing any row (an open FDW circuit): the source is
	// skipped and named in Stats.SkippedSources / Result.SkippedSources.
	PartialResults bool

	// DisableHashJoin, DisableIndexSeek and DisableTopK are the SQL
	// executor's ablation knobs (see sqlexec.Options); DisableReorder is
	// the SPARQL planner's. Benchmarks only; not for production use.
	DisableHashJoin  bool
	DisableIndexSeek bool
	DisableTopK      bool
	DisableReorder   bool
}

// SQL projects the options onto the relational executor.
func (o ExecOptions) SQL() sqlexec.Options {
	return sqlexec.Options{
		DisableHashJoin:  o.DisableHashJoin,
		DisableIndexSeek: o.DisableIndexSeek,
		DisableTopK:      o.DisableTopK,
		Parallelism:      o.Parallelism,
		PartialResults:   o.PartialResults,
	}
}

// SPARQL projects the options onto the ontology executor.
func (o ExecOptions) SPARQL() sparql.Options {
	return sparql.Options{
		DisableReorder: o.DisableReorder,
		Parallelism:    o.Parallelism,
	}
}

// FromSQLOptions lifts legacy sqlexec options into the unified set —
// compatibility constructor for callers still configured in executor
// terms.
func FromSQLOptions(s sqlexec.Options) ExecOptions {
	return ExecOptions{
		DisableHashJoin:  s.DisableHashJoin,
		DisableIndexSeek: s.DisableIndexSeek,
		DisableTopK:      s.DisableTopK,
		Parallelism:      s.Parallelism,
		PartialResults:   s.PartialResults,
	}
}

// FromSPARQLOptions lifts legacy sparql options into the unified set.
func FromSPARQLOptions(s sparql.Options) ExecOptions {
	return ExecOptions{
		DisableReorder: s.DisableReorder,
		Parallelism:    s.Parallelism,
	}
}
