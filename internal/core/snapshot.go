package core

// This file implements the whole-platform image: one durable artifact
// combining the main platform's relational state (the engine's SQL dump)
// with the semantic platform's binary snapshot (arena, views, statements —
// see internal/kb/snapshot.go). The paper couples the two platforms over
// REST (Sec. I-A); the image is the corresponding recovery unit, so a
// restarted deployment comes back with the databank AND every user's
// knowledge base without re-importing either. The frame is versioned and
// checksummed (CRC-32) so a torn or bit-rotted file fails loudly instead of
// restoring half a platform.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/wal"
)

// Image frame constants.
const (
	imageMagic = "CROSSEIMG"

	// imageVersion 2 adds the write-ahead-log anchor: the LSN of the last
	// logged mutation folded into the image, written (as a uvarint, covered
	// by the checksum) right after the version byte. Recovery replays the
	// log from that LSN. Version 1 images (pre-WAL) still load, with an
	// implied anchor of 0.
	imageVersion   = 2
	imageVersionV1 = 1

	// maxImageSection bounds one decoded section so a corrupt length prefix
	// cannot drive a runaway allocation.
	maxImageSection = 1 << 31
)

// WriteImage writes a platform image anchored at LSN 0 (no log).
func WriteImage(w io.Writer, db *engine.DB, p *kb.Platform) error {
	return WriteImageLSN(w, db, p, 0)
}

// WriteImageLSN writes a platform image: magic, version, the log anchor,
// the engine SQL dump and the kb binary snapshot (each length-prefixed),
// and a trailing CRC-32 over the anchor and both payloads.
func WriteImageLSN(w io.Writer, db *engine.DB, p *kb.Platform, lsn uint64) error {
	var sql bytes.Buffer
	if err := db.Dump(&sql); err != nil {
		return fmt.Errorf("core: dump databank: %w", err)
	}
	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		return fmt.Errorf("core: snapshot semantic platform: %w", err)
	}
	anchor := binary.AppendUvarint(nil, lsn)

	crc := crc32.NewIEEE()
	crc.Write(anchor)
	crc.Write(sql.Bytes())
	crc.Write(snap.Bytes())

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, imageMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(imageVersion); err != nil {
		return err
	}
	if _, err := bw.Write(anchor); err != nil {
		return err
	}
	for _, section := range [][]byte{sql.Bytes(), snap.Bytes()} {
		if _, err := bw.Write(binary.AppendUvarint(nil, uint64(len(section)))); err != nil {
			return err
		}
		if _, err := bw.Write(section); err != nil {
			return err
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func readSection(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxImageSection {
		return nil, fmt.Errorf("core: corrupt image: section of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ReadImage restores a platform image written by WriteImage, returning a
// fresh databank and semantic platform. The checksum is verified before any
// state is rebuilt.
func ReadImage(r io.Reader) (*engine.DB, *kb.Platform, error) {
	db, p, _, err := ReadImageLSN(r)
	return db, p, err
}

// ReadImageLSN is ReadImage also returning the image's write-ahead-log
// anchor: the LSN of the last logged mutation the image contains. Version 1
// images (written before the log existed) report anchor 0.
func ReadImageLSN(r io.Reader) (*engine.DB, *kb.Platform, uint64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, 0, fmt.Errorf("core: read image header: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, nil, 0, fmt.Errorf("core: not a platform image (bad magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, 0, fmt.Errorf("core: read image version: %w", err)
	}
	if version != imageVersion && version != imageVersionV1 {
		return nil, nil, 0, fmt.Errorf("core: unsupported image version %d (have %d)", version, imageVersion)
	}
	var lsn uint64
	var anchor []byte
	if version == imageVersion {
		lsn, err = binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, nil, 0, fmt.Errorf("core: read image log anchor: %w", err)
		}
		anchor = binary.AppendUvarint(nil, lsn)
	}
	sqlDump, err := readSection(br)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: read databank section: %w", err)
	}
	snap, err := readSection(br)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: read semantic section: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, 0, fmt.Errorf("core: read image checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(anchor)
	crc.Write(sqlDump)
	crc.Write(snap)
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, nil, 0, fmt.Errorf("core: image checksum mismatch (stored %08x, computed %08x)", got, crc.Sum32())
	}

	db := engine.Open()
	if err := db.Restore(bytes.NewReader(sqlDump)); err != nil {
		return nil, nil, 0, fmt.Errorf("core: restore databank: %w", err)
	}
	p, err := kb.Restore(bytes.NewReader(snap))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: restore semantic platform: %w", err)
	}
	return db, p, lsn, nil
}

// SaveImageFile writes the platform image to path atomically, returning the
// image size in bytes. The temp file is fsynced before the rename and the
// parent directory after it, so the swap survives power loss — an atomic
// rename alone only survives a process crash. A crash mid-save leaves the
// previous image intact.
func SaveImageFile(path string, db *engine.DB, p *kb.Platform) (int64, error) {
	return saveImageFS(wal.OS, path, db, p, 0)
}

// saveImageFS is SaveImageFile over an explicit filesystem (the journal
// saves through a fault-injecting FS in the crash property suite) with an
// explicit log anchor.
func saveImageFS(fs wal.FS, path string, db *engine.DB, p *kb.Platform, lsn uint64) (int64, error) {
	var buf bytes.Buffer
	if err := WriteImageLSN(&buf, db, p, lsn); err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return 0, err
	}
	size := int64(buf.Len())
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp)
		return 0, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return 0, err
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return size, nil
}

// LoadImageFile restores a platform image from disk.
func LoadImageFile(path string) (*engine.DB, *kb.Platform, error) {
	db, p, _, err := LoadImageFileLSN(path)
	return db, p, err
}

// LoadImageFileLSN restores a platform image and its log anchor from disk.
func LoadImageFileLSN(path string) (*engine.DB, *kb.Platform, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	return ReadImageLSN(f)
}
