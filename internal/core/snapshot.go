package core

// This file implements the whole-platform image: one durable artifact
// combining the main platform's relational state (the engine's SQL dump)
// with the semantic platform's binary snapshot (arena, views, statements —
// see internal/kb/snapshot.go). The paper couples the two platforms over
// REST (Sec. I-A); the image is the corresponding recovery unit, so a
// restarted deployment comes back with the databank AND every user's
// knowledge base without re-importing either. The frame is versioned and
// checksummed (CRC-32) so a torn or bit-rotted file fails loudly instead of
// restoring half a platform.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"crosse/internal/engine"
	"crosse/internal/kb"
)

// Image frame constants.
const (
	imageMagic   = "CROSSEIMG"
	imageVersion = 1

	// maxImageSection bounds one decoded section so a corrupt length prefix
	// cannot drive a runaway allocation.
	maxImageSection = 1 << 31
)

// WriteImage writes a platform image: magic, version, the engine SQL dump
// and the kb binary snapshot (each length-prefixed), and a trailing CRC-32
// over both payloads.
func WriteImage(w io.Writer, db *engine.DB, p *kb.Platform) error {
	var sql bytes.Buffer
	if err := db.Dump(&sql); err != nil {
		return fmt.Errorf("core: dump databank: %w", err)
	}
	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		return fmt.Errorf("core: snapshot semantic platform: %w", err)
	}

	crc := crc32.NewIEEE()
	crc.Write(sql.Bytes())
	crc.Write(snap.Bytes())

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, imageMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(imageVersion); err != nil {
		return err
	}
	for _, section := range [][]byte{sql.Bytes(), snap.Bytes()} {
		if _, err := bw.Write(binary.AppendUvarint(nil, uint64(len(section)))); err != nil {
			return err
		}
		if _, err := bw.Write(section); err != nil {
			return err
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func readSection(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxImageSection {
		return nil, fmt.Errorf("core: corrupt image: section of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ReadImage restores a platform image written by WriteImage, returning a
// fresh databank and semantic platform. The checksum is verified before any
// state is rebuilt.
func ReadImage(r io.Reader) (*engine.DB, *kb.Platform, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, fmt.Errorf("core: read image header: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, nil, fmt.Errorf("core: not a platform image (bad magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	if version != imageVersion {
		return nil, nil, fmt.Errorf("core: unsupported image version %d (have %d)", version, imageVersion)
	}
	sqlDump, err := readSection(br)
	if err != nil {
		return nil, nil, fmt.Errorf("core: read databank section: %w", err)
	}
	snap, err := readSection(br)
	if err != nil {
		return nil, nil, fmt.Errorf("core: read semantic section: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, fmt.Errorf("core: read image checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(sqlDump)
	crc.Write(snap)
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, nil, fmt.Errorf("core: image checksum mismatch (stored %08x, computed %08x)", got, crc.Sum32())
	}

	db := engine.Open()
	if err := db.Restore(bytes.NewReader(sqlDump)); err != nil {
		return nil, nil, fmt.Errorf("core: restore databank: %w", err)
	}
	p, err := kb.Restore(bytes.NewReader(snap))
	if err != nil {
		return nil, nil, fmt.Errorf("core: restore semantic platform: %w", err)
	}
	return db, p, nil
}

// SaveImageFile writes the platform image to path atomically (temp file in
// the same directory, then rename), returning the image size in bytes. A
// crash mid-save leaves the previous image intact.
func SaveImageFile(path string, db *engine.DB, p *kb.Platform) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if err := WriteImage(f, db, p); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}

// LoadImageFile restores a platform image from disk.
func LoadImageFile(path string) (*engine.DB, *kb.Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadImage(f)
}
