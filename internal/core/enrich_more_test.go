package core

import (
	"strings"
	"testing"

	"crosse/internal/kb"
	"crosse/internal/rdf"
)

func TestEnrichmentOnAggregatedQuery(t *testing.T) {
	e := fixture(t)
	// Enrich a GROUP BY result: attach country knowledge to grouped cities.
	r, err := e.Query("alice", `SELECT city, COUNT(*) AS n FROM landfill GROUP BY city
ENRICH SCHEMAEXTENSION(city, inCountry)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "city,n,inCountry" {
		t.Errorf("columns = %v", r.Columns)
	}
	want := []string{"Lyon|1|France", "Milano|1|Italy", "Torino|1|Italy"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEnrichmentOnStarProjection(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT * FROM landfill
ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "name,inCountry" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestEnrichmentAttrByAlias(t *testing.T) {
	e := fixture(t)
	r, err := e.Query("alice", `SELECT elem_name AS material, landfill_name FROM elem_contained
WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(material, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "material,landfill_name,dangerLevel" {
		t.Errorf("columns = %v", r.Columns)
	}
	if got := resultRows(r); len(got) != 3 {
		t.Errorf("rows: %v", got)
	}
}

func TestStoredQueryWrongArity(t *testing.T) {
	e := fixture(t)
	// A stored query projecting one var cannot drive SCHEMAEXTENSION
	// (which needs subject+object pairs).
	if err := e.Platform.RegisterQuery("alice", "oneVar",
		`SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`isA> <`+DefaultIRIPrefix+`HazardousWaste> }`); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query("alice", `SELECT elem_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, oneVar)`)
	if err == nil || !strings.Contains(err.Error(), "subject, object") {
		t.Errorf("want arity error, got %v", err)
	}
}

func TestStoredQueryDrivesSchemaExtension(t *testing.T) {
	e := fixture(t)
	// A two-variable stored query acts as a virtual property.
	if err := e.Platform.RegisterQuery("alice", "dangerPairs",
		`SELECT ?s ?o WHERE { ?s <`+DefaultIRIPrefix+`dangerLevel> ?o }`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("alice", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
ENRICH SCHEMAEXTENSION(elem_name, dangerPairs)`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Lead|high", "Mercury|high", "Zinc|low"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLiteralObjectConcept(t *testing.T) {
	e := fixture(t)
	// User annotated with literal objects: BOOLSCHEMAEXTENSION must match
	// them through the ConceptTerms literal fallback.
	if err := e.Platform.RegisterUser("lit"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Platform.Insert("lit", rdf.Triple{
		S: smg("Torino"), P: smg("inCountry"), O: rdf.NewLiteral("Italy"),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("lit", `SELECT name, city FROM landfill
ENRICH BOOLSCHEMAEXTENSION(city, inCountry, Italy)`)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(r)
	if !strings.Contains(strings.Join(got, " "), "a|Torino|true") {
		t.Errorf("literal concept match: %v", got)
	}
}

func TestColumnNameCollisionSuffixed(t *testing.T) {
	e := fixture(t)
	// Enriching with a property whose name collides with a projected
	// column gets a _2 suffix.
	if _, err := e.Platform.Insert("alice", rdf.Triple{
		S: smg("Mercury"), P: smg("elem_name"), O: rdf.NewLiteral("quicksilver"),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("alice", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'
ENRICH SCHEMAEXTENSION(elem_name, elem_name)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r.Columns, ",") != "elem_name,elem_name_2" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestDoubleWhereEnrichment(t *testing.T) {
	e := fixture(t)
	// Two independently tagged conditions, each enriched.
	r, err := e.Query("alice", `SELECT elem_name, landfill_name FROM elem_contained
WHERE ${elem_name = HazardousWaste:c1} AND ${elem_name = 'Lead':c2}
ENRICH
REPLACECONSTANT(c1, HazardousWaste, dangerQuery)
REPLACEVARIABLE(c2, elem_name, oreAssemblage)`)
	if err != nil {
		t.Fatal(err)
	}
	// c1 keeps hazardous rows {Mercury, Lead}; c2 keeps rows whose
	// assemblage contains Lead {Mercury}. Intersection: Mercury rows.
	want := []string{"Mercury|a", "Mercury|b"}
	if got := resultRows(r); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStatsAccumulateAcrossEnrichments(t *testing.T) {
	e := fixture(t)
	_, stats, err := e.QueryStats("alice", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH
SCHEMAEXTENSION(elem_name, dangerLevel)
BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)
SCHEMAREPLACEMENT(landfill_name, inCountry)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.SPARQLQueries) != 3 {
		t.Errorf("SPARQL queries = %d, want 3", len(stats.SPARQLQueries))
	}
}

func TestConceptCheckerWiredPlatform(t *testing.T) {
	e := fixture(t)
	e.Platform.SetConceptChecker(NewConceptChecker(e.DB, e.Mapping))
	// Integrated annotation via the platform uses the databank check.
	if _, err := e.Platform.Insert("alice",
		rdf.Triple{S: smg("Torino"), P: smg("note"), O: rdf.NewLiteral("visited")},
		kb.Integrated()); err != nil {
		t.Errorf("Torino is in the databank: %v", err)
	}
}

func TestXMLMappingDrivenPipeline(t *testing.T) {
	// A mapping that routes elem_name through a custom IRI prefix must
	// still join with KB facts minted under that prefix.
	mappingXML := `<resourceMapping>
  <default iriPrefix="` + DefaultIRIPrefix + `"/>
  <map table="elem_contained" column="elem_name" iriPrefix="http://elements.eu/"/>
</resourceMapping>`
	m, err := LoadMapping(strings.NewReader(mappingXML))
	if err != nil {
		t.Fatal(err)
	}
	base := fixture(t)
	e := New(base.DB, base.Platform, m)
	if err := e.Platform.RegisterUser("mapped"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Platform.Insert("mapped", rdf.Triple{
		S: rdf.NewIRI("http://elements.eu/Mercury"),
		P: rdf.NewIRI(DefaultIRIPrefix + "dangerLevel"),
		O: rdf.NewLiteral("extreme"),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("mapped", `SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(r)
	if !strings.Contains(strings.Join(got, " "), "Mercury|extreme") {
		t.Errorf("custom-prefix join: %v", got)
	}
}
