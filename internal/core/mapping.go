// Package core implements the semantically-enriched query processing module
// of CroSSE (Sec. IV-B, Fig. 6): given a SESQL query, the Semantic Query
// Parser (internal/sesql) splits it into a SQL part and an enrichment syntax
// tree; this package's Enricher — the Semantic Query Module (SQM) — then
// constructs SPARQL queries against the user's knowledge base, issues the
// SQL and SPARQL queries independently, and a JoinManager combines the
// partial results in a temporary support database using an XML-declared
// resource mapping, over which a final SQL query produces the SESQL result.
package core

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crosse/internal/rdf"
	"crosse/internal/sqlval"
)

// Mapping translates between relational values and ontology resources. The
// paper's JoinManager "leverag[es] the resource mapping described in an XML
// file"; this is that file's in-memory form.
//
// Each rule binds a relational column (optionally table-qualified) to a
// rendering: either IRI minting under a prefix, or plain literals. The
// default rule applies to columns without a specific one, and also decides
// how enrichment clause arguments (property and concept names) become IRIs.
type Mapping struct {
	rules  map[string]rule // key "table.column" or "column" (lower-cased)
	defIRI string          // default IRI prefix
}

type rule struct {
	iriPrefix string
	literal   bool
}

// xmlMapping is the on-disk schema.
type xmlMapping struct {
	XMLName xml.Name `xml:"resourceMapping"`
	Default struct {
		IRIPrefix string `xml:"iriPrefix,attr"`
	} `xml:"default"`
	Maps []struct {
		Table     string `xml:"table,attr"`
		Column    string `xml:"column,attr"`
		IRIPrefix string `xml:"iriPrefix,attr"`
		Literal   bool   `xml:"literal,attr"`
	} `xml:"map"`
}

// DefaultIRIPrefix is used when no mapping file is supplied: values and
// ontology names live in the SmartGround namespace.
const DefaultIRIPrefix = "http://smartground.eu/onto#"

// NewMapping returns a mapping with only the default rule.
func NewMapping(defaultPrefix string) *Mapping {
	if defaultPrefix == "" {
		defaultPrefix = DefaultIRIPrefix
	}
	return &Mapping{rules: map[string]rule{}, defIRI: defaultPrefix}
}

// LoadMapping parses the XML resource-mapping document.
func LoadMapping(r io.Reader) (*Mapping, error) {
	var doc xmlMapping
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: bad resource mapping XML: %w", err)
	}
	m := NewMapping(doc.Default.IRIPrefix)
	for _, e := range doc.Maps {
		if e.Column == "" {
			return nil, fmt.Errorf("core: mapping entry missing column attribute")
		}
		if e.Literal && e.IRIPrefix != "" {
			return nil, fmt.Errorf("core: mapping for %s.%s is both literal and IRI", e.Table, e.Column)
		}
		key := strings.ToLower(e.Column)
		if e.Table != "" {
			key = strings.ToLower(e.Table) + "." + key
		}
		m.rules[key] = rule{iriPrefix: e.IRIPrefix, literal: e.Literal}
	}
	return m, nil
}

// XMLDocument renders the mapping back to its XML document form.
func (m *Mapping) XMLDocument() string {
	var b strings.Builder
	b.WriteString("<resourceMapping>\n")
	fmt.Fprintf(&b, "  <default iriPrefix=%q/>\n", m.defIRI)
	for key, r := range m.rules {
		table, col := "", key
		if i := strings.IndexByte(key, '.'); i >= 0 {
			table, col = key[:i], key[i+1:]
		}
		if r.literal {
			fmt.Fprintf(&b, "  <map table=%q column=%q literal=\"true\"/>\n", table, col)
		} else {
			fmt.Fprintf(&b, "  <map table=%q column=%q iriPrefix=%q/>\n", table, col, r.iriPrefix)
		}
	}
	b.WriteString("</resourceMapping>\n")
	return b.String()
}

func (m *Mapping) lookup(table, column string) rule {
	if table != "" {
		if r, ok := m.rules[strings.ToLower(table)+"."+strings.ToLower(column)]; ok {
			return r
		}
	}
	if r, ok := m.rules[strings.ToLower(column)]; ok {
		return r
	}
	return rule{iriPrefix: m.defIRI}
}

// ToTerm renders a relational value as the RDF term the ontology uses for
// it, according to the column's rule.
func (m *Mapping) ToTerm(table, column string, v sqlval.Value) rdf.Term {
	r := m.lookup(table, column)
	if r.literal {
		return literalTerm(v)
	}
	prefix := r.iriPrefix
	if prefix == "" {
		prefix = m.defIRI
	}
	return rdf.NewIRI(prefix + v.String())
}

func literalTerm(v sqlval.Value) rdf.Term {
	switch v.Type() {
	case sqlval.TypeInt:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDInteger)
	case sqlval.TypeFloat:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDDouble)
	case sqlval.TypeBool:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDBoolean)
	default:
		return rdf.NewLiteral(v.String())
	}
}

// FromTerm converts an ontology term back into a relational value: IRIs are
// stripped of any known prefix, typed literals become typed values.
func (m *Mapping) FromTerm(t rdf.Term) sqlval.Value {
	switch t.Kind {
	case rdf.IRI:
		val := t.Value
		if strings.HasPrefix(val, m.defIRI) {
			return sqlval.NewString(strings.TrimPrefix(val, m.defIRI))
		}
		for _, r := range m.rules {
			if r.iriPrefix != "" && strings.HasPrefix(val, r.iriPrefix) {
				return sqlval.NewString(strings.TrimPrefix(val, r.iriPrefix))
			}
		}
		return sqlval.NewString(val)
	case rdf.Literal:
		switch t.Datatype {
		case rdf.XSDInteger:
			if i, err := strconv.ParseInt(t.Value, 10, 64); err == nil {
				return sqlval.NewInt(i)
			}
		case rdf.XSDDouble:
			if f, err := strconv.ParseFloat(t.Value, 64); err == nil {
				return sqlval.NewFloat(f)
			}
		case rdf.XSDBoolean:
			return sqlval.NewBool(t.Value == "true")
		}
		return sqlval.NewString(t.Value)
	default:
		return sqlval.NewString("_:" + t.Value)
	}
}

// PropertyIRI maps an enrichment clause's property argument to its IRI.
func (m *Mapping) PropertyIRI(name string) rdf.Term {
	if strings.Contains(name, "://") {
		return rdf.NewIRI(name)
	}
	return rdf.NewIRI(m.defIRI + name)
}

// ConceptTerms maps an enrichment clause's concept argument to the terms it
// may appear as in the ontology: the minted IRI and the plain literal (user
// annotations use either form).
func (m *Mapping) ConceptTerms(name string) []rdf.Term {
	if strings.Contains(name, "://") {
		return []rdf.Term{rdf.NewIRI(name)}
	}
	return []rdf.Term{rdf.NewIRI(m.defIRI + name), rdf.NewLiteral(name)}
}
