package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"crosse/internal/engine"
	"crosse/internal/kb"
	"crosse/internal/rdf"
	"crosse/internal/sparql"
)

// randomFixture builds a databank + KB with randomized (seeded) content so
// the enrichment invariants are checked beyond the paper's hand-picked
// values.
func randomFixture(t *testing.T, seed int64) *Enricher {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := engine.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Catalog().Table("elem_contained")
	elems := []string{"E0", "E1", "E2", "E3", "E4", "E5", "E6", "E7"}
	for i := 0; i < 60; i++ {
		row, _ := engine.Row(elems[rng.Intn(len(elems))], fmt.Sprintf("L%d", rng.Intn(6)))
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	p := kb.NewPlatform()
	if err := p.RegisterUser("u"); err != nil {
		t.Fatal(err)
	}
	for _, e := range elems {
		if rng.Intn(2) == 0 {
			if _, err := p.Insert("u", rdf.Triple{
				S: rdf.NewIRI(DefaultIRIPrefix + e),
				P: rdf.NewIRI(DefaultIRIPrefix + "isA"),
				O: rdf.NewIRI(DefaultIRIPrefix + "HazardousWaste"),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(3) > 0 {
			if _, err := p.Insert("u", rdf.Triple{
				S: rdf.NewIRI(DefaultIRIPrefix + e),
				P: rdf.NewIRI(DefaultIRIPrefix + "dangerLevel"),
				O: rdf.NewLiteral(fmt.Sprintf("lvl%d", rng.Intn(3))),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return New(db, p, nil)
}

// Property: SCHEMAEXTENSION followed by projecting away the new column is
// the raw SQL result, up to fan-out duplication from multi-valued
// properties (here properties are single-valued, so exact equality holds).
func TestExtensionProjectionInvariant(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		enr := randomFixture(t, seed)
		raw, err := enr.Query("u", `SELECT elem_name, landfill_name FROM elem_contained`)
		if err != nil {
			t.Fatal(err)
		}
		enriched, err := enr.Query("u", `SELECT elem_name, landfill_name FROM elem_contained
ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)`)
		if err != nil {
			t.Fatal(err)
		}
		var a, b []string
		for _, r := range raw.Rows {
			a = append(a, r[0].String()+"|"+r[1].String())
		}
		for _, r := range enriched.Rows {
			b = append(b, r[0].String()+"|"+r[1].String())
		}
		sort.Strings(a)
		sort.Strings(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: projection invariant broken:\nraw      %v\nenriched %v", seed, a, b)
		}
	}
}

// Property: the true-set of BOOLSCHEMAEXTENSION equals the SPARQL answer
// set intersected with the column's values.
func TestBoolExtensionMatchesSPARQL(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		enr := randomFixture(t, seed)
		res, err := enr.Query("u", `SELECT elem_name FROM elem_contained
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`)
		if err != nil {
			t.Fatal(err)
		}
		trueSet := map[string]bool{}
		colValues := map[string]bool{}
		for _, r := range res.Rows {
			colValues[r[0].Str()] = true
			if r[1].Bool() {
				trueSet[r[0].Str()] = true
			} else if trueSet[r[0].Str()] {
				t.Fatalf("seed %d: inconsistent boolean for %s", seed, r[0].Str())
			}
		}
		view, err := enr.Platform.View("u")
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sparql.Eval(view, `SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`isA> <`+DefaultIRIPrefix+`HazardousWaste> }`)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for _, b := range sres.Bindings {
			name := strings.TrimPrefix(b["x"].Value, DefaultIRIPrefix)
			if colValues[name] {
				want[name] = true
			}
		}
		if !reflect.DeepEqual(trueSet, want) {
			t.Fatalf("seed %d: true-set %v != SPARQL∩column %v", seed, trueSet, want)
		}
	}
}

// Property: REPLACECONSTANT with a property that lists explicit values is
// equivalent to the IN-list SQL query over the same values.
func TestReplaceConstantEqualsInList(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		enr := randomFixture(t, seed)
		// Gather the hazardous set from the KB directly.
		view, _ := enr.Platform.View("u")
		sres, err := sparql.Eval(view, `SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`isA> <`+DefaultIRIPrefix+`HazardousWaste> }`)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, b := range sres.Bindings {
			names = append(names, "'"+strings.TrimPrefix(b["x"].Value, DefaultIRIPrefix)+"'")
		}
		if len(names) == 0 {
			continue
		}
		if err := enr.Platform.RegisterQuery("u", fmt.Sprintf("hz%d", seed),
			`SELECT ?x WHERE { ?x <`+DefaultIRIPrefix+`isA> <`+DefaultIRIPrefix+`HazardousWaste> }`); err != nil {
			t.Fatal(err)
		}

		sesqlRes, err := enr.Query("u", fmt.Sprintf(`SELECT landfill_name FROM elem_contained
WHERE ${elem_name = Hazardous:c1}
ENRICH REPLACECONSTANT(c1, Hazardous, hz%d)`, seed))
		if err != nil {
			t.Fatal(err)
		}
		sqlRes, err := enr.DB.Query(`SELECT landfill_name FROM elem_contained WHERE elem_name IN (` +
			strings.Join(names, ",") + `)`)
		if err != nil {
			t.Fatal(err)
		}
		var a, b []string
		for _, r := range sesqlRes.Rows {
			a = append(a, r[0].String())
		}
		for _, r := range sqlRes.Rows {
			b = append(b, r[0].String())
		}
		sort.Strings(a)
		sort.Strings(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: REPLACECONSTANT %v != IN-list %v", seed, a, b)
		}
	}
}

// Property: enrichment is context-monotone for BOOLSCHEMAEXTENSION —
// adding knowledge never flips true to false.
func TestBoolExtensionMonotone(t *testing.T) {
	enr := randomFixture(t, 42)
	const q = `SELECT elem_name FROM elem_contained
ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)`
	before, err := enr.Query("u", q)
	if err != nil {
		t.Fatal(err)
	}
	trueBefore := map[string]bool{}
	for _, r := range before.Rows {
		if r[1].Bool() {
			trueBefore[r[0].Str()] = true
		}
	}
	// Add more knowledge.
	if _, err := enr.Platform.Insert("u", rdf.Triple{
		S: rdf.NewIRI(DefaultIRIPrefix + "E0"),
		P: rdf.NewIRI(DefaultIRIPrefix + "isA"),
		O: rdf.NewIRI(DefaultIRIPrefix + "HazardousWaste"),
	}); err != nil {
		t.Fatal(err)
	}
	after, err := enr.Query("u", q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after.Rows {
		if trueBefore[r[0].Str()] && !r[1].Bool() {
			t.Fatalf("monotonicity broken for %s", r[0].Str())
		}
	}
}
